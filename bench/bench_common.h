#ifndef PUPIL_BENCH_BENCH_COMMON_H_
#define PUPIL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "capping/oracle.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/catalog.h"
#include "workload/mixes.h"

namespace pupil::bench {

/** The five processor power caps the paper evaluates (Section 5.1). */
inline const std::vector<double>&
powerCaps()
{
    static const std::vector<double> caps = {60, 100, 140, 180, 220};
    return caps;
}

/** Names of the 20 benchmarks in the paper's Fig. 3 presentation order. */
inline std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const auto& params : workload::benchmarkCatalog())
        names.push_back(params.name);
    return names;
}

/**
 * Root experiment seed: the PUPIL_SEED environment variable when set to a
 * valid integer, otherwise @p fallback. Lets reproducibility studies rerun
 * any bench under a different seed family without recompiling (per-job
 * seeds are still derived from this root by the SweepRunner).
 */
inline uint64_t
envSeed(uint64_t fallback)
{
    const char* text = std::getenv("PUPIL_SEED");
    if (text == nullptr || *text == '\0')
        return fallback;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    return (end != text && *end == '\0') ? value : fallback;
}

/** Default experiment options shared by the bench binaries. */
inline harness::ExperimentOptions
defaultOptions(double capWatts)
{
    harness::ExperimentOptions options;
    options.capWatts = capWatts;
    options.seed = envSeed(options.seed);
    // Efficiency is measured over the final window of a long run, i.e.
    // each controller's *converged* behaviour (the paper's Fig. 1
    // discussion compares performance "once the software approach
    // converges"; Table 3's .87/.74 Soft-Decision/RAPL ratio equals that
    // converged 20% gap). Settling time and cap violations are still
    // measured over the whole run.
    options.durationSec = 220.0;
    options.statsWindowSec = 100.0;
    return options;
}

/**
 * Short mode: honor the PUPIL_BENCH_FAST environment variable by shrinking
 * run durations (useful in CI); full runs remain the default.
 */
inline void
applyFastMode(harness::ExperimentOptions& options)
{
    if (std::getenv("PUPIL_BENCH_FAST") != nullptr) {
        options.durationSec = 150.0;
        options.statsWindowSec = 50.0;
    }
}

/**
 * Structured-trace output path: the value following a `--trace` argument
 * if present, otherwise the PUPIL_TRACE environment variable, otherwise
 * empty (tracing disabled). Benches that honor this create a
 * trace::Recorder only when the path is non-empty, so an untraced
 * invocation stays byte-identical to a build without the trace layer.
 */
inline std::string
tracePathFromArgs(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--trace")
            return argv[i + 1];
    }
    const char* env = std::getenv("PUPIL_TRACE");
    return env != nullptr ? env : "";
}

/**
 * Sweep-runner options shared by the bench binaries: traces are dropped
 * (the tables only read scalar metrics) and a `--serial` argument forces
 * one worker thread. Thread count otherwise honors PUPIL_SWEEP_THREADS,
 * falling back to hardware_concurrency.
 */
inline harness::SweepRunner::Options
sweepOptions(int argc, char** argv)
{
    harness::SweepRunner::Options options;
    options.keepTraces = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--serial")
            options.threads = 1;
    }
    return options;
}

}  // namespace pupil::bench

#endif  // PUPIL_BENCH_BENCH_COMMON_H_
