/**
 * @file
 * Reproduces the paper's Table 3 ("Comparison of Harmonic Mean
 * Performance") and Fig. 3 (per-application performance of each power
 * control technique normalized to optimal, for the five power caps).
 *
 * For every benchmark and cap, each governor runs on the simulated
 * platform; performance is measured over the converged window and
 * normalized to the exhaustive-search optimal configuration. The
 * 20 x 5 x 5 = 500 runs (plus the 100 oracle searches) execute on the
 * SweepRunner thread pool; pass --serial or set PUPIL_SWEEP_THREADS to
 * control the worker count -- the tables are bit-identical either way.
 */
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    const machine::PowerModel powerModel;
    const sched::Scheduler scheduler;
    const std::vector<std::string> names = bench::benchmarkNames();
    const std::vector<double>& caps = bench::powerCaps();
    const std::vector<harness::GovernorKind>& governors =
        harness::allGovernors();
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));

    std::printf("=== Fig. 3 / Table 3: single-application performance "
                "normalized to optimal ===\n\n");

    // Oracle reference per (cap, benchmark), computed on the pool too.
    std::vector<capping::OracleResult> oracles(caps.size() * names.size());
    runner.forEach(oracles.size(), [&](size_t i) {
        const double cap = caps[i / names.size()];
        const auto apps = harness::singleApp(names[i % names.size()]);
        oracles[i] = capping::searchOptimal(scheduler, powerModel, apps, cap);
    });

    // One job per (cap, benchmark, governor), in presentation order.
    std::vector<harness::SweepJob> jobs;
    jobs.reserve(oracles.size() * governors.size());
    for (double cap : caps) {
        for (const std::string& name : names) {
            for (harness::GovernorKind kind : governors) {
                harness::SweepJob job;
                job.kind = kind;
                job.apps = harness::singleApp(name);
                job.options = bench::defaultOptions(cap);
                bench::applyFastMode(job.options);
                job.label = name;
                jobs.push_back(std::move(job));
            }
        }
    }
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    std::vector<std::vector<double>> harmonicRows;
    for (size_t c = 0; c < caps.size(); ++c) {
        util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Modeling",
                           "Soft-Decision", "PUPiL"});
        std::vector<std::vector<double>> normalized(governors.size());
        std::vector<int> infeasible(governors.size(), 0);
        for (size_t n = 0; n < names.size(); ++n) {
            const capping::OracleResult& oracle =
                oracles[c * names.size() + n];
            std::vector<std::string> row = {names[n]};
            for (size_t g = 0; g < governors.size(); ++g) {
                const harness::SweepOutcome& outcome =
                    outcomes[(c * names.size() + n) * governors.size() + g];
                if (!outcome.ok || !outcome.result.capFeasible) {
                    ++infeasible[g];
                    row.push_back(outcome.ok ? "-" : "err");
                    continue;
                }
                const double norm =
                    outcome.result.aggregatePerf / oracle.aggregatePerf;
                normalized[g].push_back(norm);
                row.push_back(util::Table::cell(norm));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        harmonicRows.push_back({});
        for (size_t g = 0; g < normalized.size(); ++g) {
            // Like the paper, a technique that cannot enforce the cap for
            // part of the suite gets no summary entry at that cap.
            if (infeasible[g] > 0 || normalized[g].empty()) {
                harmonicRows.back().push_back(0.0);
                meanRow.push_back("-");
                continue;
            }
            const double hm = util::harmonicMean(normalized[g]);
            harmonicRows.back().push_back(hm);
            meanRow.push_back(util::Table::cell(hm));
        }
        table.addSeparator();
        table.addRow(meanRow);
        std::printf("--- Power cap %.0f W ---\n", caps[c]);
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Table 3 summary (harmonic mean performance) ===\n");
    util::Table summary({"Power Cap", "RAPL", "Soft-DVFS", "Soft-Modeling",
                         "Soft-Decision", "PUPiL"});
    for (size_t c = 0; c < caps.size(); ++c) {
        std::vector<std::string> row = {
            util::Table::cell((long long)caps[c]) + "W"};
        for (double hm : harmonicRows[c])
            row.push_back(hm > 0 ? util::Table::cell(hm) : std::string("-"));
        summary.addRow(row);
    }
    summary.print(std::cout);
    std::printf(
        "\nPaper reference (Table 3):\n"
        "  60W:  RAPL .54  Soft-DVFS  -   Soft-Modeling  -   "
        "Soft-Decision .70  PUPiL .71\n"
        "  100W: RAPL .68  Soft-DVFS .66  Soft-Modeling .66  "
        "Soft-Decision .80  PUPiL .85\n"
        "  140W: RAPL .74  Soft-DVFS .71  Soft-Modeling .65  "
        "Soft-Decision .87  PUPiL .89\n"
        "  180W: RAPL .78  Soft-DVFS .74  Soft-Modeling .76  "
        "Soft-Decision .88  PUPiL .92\n"
        "  220W: RAPL .79  Soft-DVFS .75  Soft-Modeling .85  "
        "Soft-Decision .91  PUPiL .94\n");
    return 0;
}
