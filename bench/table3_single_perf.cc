/**
 * @file
 * Reproduces the paper's Table 3 ("Comparison of Harmonic Mean
 * Performance") and Fig. 3 (per-application performance of each power
 * control technique normalized to optimal, for the five power caps).
 *
 * For every benchmark and cap, each governor runs on the simulated
 * platform; performance is measured over the converged window and
 * normalized to the exhaustive-search optimal configuration.
 */
#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const machine::PowerModel powerModel;
    const sched::Scheduler scheduler;
    const std::vector<std::string> names = bench::benchmarkNames();

    std::printf("=== Fig. 3 / Table 3: single-application performance "
                "normalized to optimal ===\n\n");

    std::vector<std::vector<double>> harmonicRows;
    for (double cap : bench::powerCaps()) {
        util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Modeling",
                           "Soft-Decision", "PUPiL"});
        std::vector<std::vector<double>> normalized(
            harness::allGovernors().size());
        std::vector<int> infeasible(harness::allGovernors().size(), 0);
        for (const std::string& name : names) {
            const auto apps = harness::singleApp(name);
            const auto oracle =
                capping::searchOptimal(scheduler, powerModel, apps, cap);
            std::vector<std::string> row = {name};
            for (size_t g = 0; g < harness::allGovernors().size(); ++g) {
                const auto kind = harness::allGovernors()[g];
                auto options = bench::defaultOptions(cap);
                bench::applyFastMode(options);
                const auto result =
                    harness::runExperiment(kind, apps, options);
                if (!result.capFeasible) {
                    ++infeasible[g];
                    row.push_back("-");
                    continue;
                }
                const double norm =
                    result.aggregatePerf / oracle.aggregatePerf;
                normalized[g].push_back(norm);
                row.push_back(util::Table::cell(norm));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        harmonicRows.push_back({});
        for (size_t g = 0; g < normalized.size(); ++g) {
            // Like the paper, a technique that cannot enforce the cap for
            // part of the suite gets no summary entry at that cap.
            if (infeasible[g] > 0 || normalized[g].empty()) {
                harmonicRows.back().push_back(0.0);
                meanRow.push_back("-");
                continue;
            }
            const double hm = util::harmonicMean(normalized[g]);
            harmonicRows.back().push_back(hm);
            meanRow.push_back(util::Table::cell(hm));
        }
        table.addSeparator();
        table.addRow(meanRow);
        std::printf("--- Power cap %.0f W ---\n", cap);
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Table 3 summary (harmonic mean performance) ===\n");
    util::Table summary({"Power Cap", "RAPL", "Soft-DVFS", "Soft-Modeling",
                         "Soft-Decision", "PUPiL"});
    for (size_t c = 0; c < bench::powerCaps().size(); ++c) {
        std::vector<std::string> row = {
            util::Table::cell((long long)bench::powerCaps()[c]) + "W"};
        for (double hm : harmonicRows[c])
            row.push_back(hm > 0 ? util::Table::cell(hm) : std::string("-"));
        summary.addRow(row);
    }
    summary.print(std::cout);
    std::printf(
        "\nPaper reference (Table 3):\n"
        "  60W:  RAPL .54  Soft-DVFS  -   Soft-Modeling  -   "
        "Soft-Decision .70  PUPiL .71\n"
        "  100W: RAPL .68  Soft-DVFS .66  Soft-Modeling .66  "
        "Soft-Decision .80  PUPiL .85\n"
        "  140W: RAPL .74  Soft-DVFS .71  Soft-Modeling .65  "
        "Soft-Decision .87  PUPiL .89\n"
        "  180W: RAPL .78  Soft-DVFS .74  Soft-Modeling .76  "
        "Soft-Decision .88  PUPiL .92\n"
        "  220W: RAPL .79  Soft-DVFS .75  Soft-Modeling .85  "
        "Soft-Decision .91  PUPiL .94\n");
    return 0;
}
