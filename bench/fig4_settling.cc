/**
 * @file
 * Reproduces Fig. 4: settling times of the power control techniques for
 * every benchmark under the 140 W cap. Settling time is the time until
 * the cap is durably enforced (Section 4.3.1); Soft-Modeling is omitted
 * like in the paper (it is an offline approach with no settling notion).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const double cap = 140.0;
    std::printf("=== Fig. 4: settling time (ms) per benchmark, %.0f W cap "
                "===\n\n", cap);

    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kSoftDvfs,
        harness::GovernorKind::kSoftDecision, harness::GovernorKind::kPupil};

    util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Decision",
                       "PUPiL"});
    std::vector<std::vector<double>> settle(kinds.size());
    for (const std::string& name : bench::benchmarkNames()) {
        std::vector<std::string> row = {name};
        for (size_t g = 0; g < kinds.size(); ++g) {
            auto options = bench::defaultOptions(cap);
            bench::applyFastMode(options);
            const auto result =
                harness::runExperiment(kinds[g], harness::singleApp(name),
                                       options);
            const double ms = result.settlingTimeSec * 1000.0;
            settle[g].push_back(ms);
            row.push_back(util::Table::cell(ms, 0));
        }
        table.addRow(row);
    }
    std::vector<std::string> avgRow = {"Average"};
    for (const auto& values : settle)
        avgRow.push_back(util::Table::cell(util::mean(values), 0));
    table.addSeparator();
    table.addRow(avgRow);
    table.print(std::cout);

    std::printf(
        "\nPaper reference (140 W): RAPL averages 356 ms, PUPiL 365 ms,\n"
        "Soft-DVFS ~7,300 ms, Soft-Decision ~95,000 ms -- hardware enforces\n"
        "the cap orders of magnitude faster than software, and the hybrid\n"
        "keeps hardware's timeliness.\n");
    return 0;
}
