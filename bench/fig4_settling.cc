/**
 * @file
 * Reproduces Fig. 4: settling times of the power control techniques for
 * every benchmark under the 140 W cap. Settling time is the time until
 * the cap is durably enforced (Section 4.3.1); Soft-Modeling is omitted
 * like in the paper (it is an offline approach with no settling notion).
 * The 20 x 4 runs execute on the SweepRunner pool (--serial /
 * PUPIL_SWEEP_THREADS control the worker count).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    const double cap = 140.0;
    std::printf("=== Fig. 4: settling time (ms) per benchmark, %.0f W cap "
                "===\n\n", cap);

    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kSoftDvfs,
        harness::GovernorKind::kSoftDecision, harness::GovernorKind::kPupil};
    const std::vector<std::string> names = bench::benchmarkNames();

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(names.size() * kinds.size());
    for (const std::string& name : names) {
        for (harness::GovernorKind kind : kinds) {
            harness::SweepJob job;
            job.kind = kind;
            job.apps = harness::singleApp(name);
            job.options = bench::defaultOptions(cap);
            bench::applyFastMode(job.options);
            job.label = name;
            jobs.push_back(std::move(job));
        }
    }
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Decision",
                       "PUPiL"});
    std::vector<std::vector<double>> settle(kinds.size());
    for (size_t n = 0; n < names.size(); ++n) {
        std::vector<std::string> row = {names[n]};
        for (size_t g = 0; g < kinds.size(); ++g) {
            const harness::SweepOutcome& outcome =
                outcomes[n * kinds.size() + g];
            if (!outcome.ok) {
                row.push_back("err");
                continue;
            }
            const double ms = outcome.result.settlingTimeSec * 1000.0;
            settle[g].push_back(ms);
            row.push_back(util::Table::cell(ms, 0));
        }
        table.addRow(row);
    }
    std::vector<std::string> avgRow = {"Average"};
    for (const auto& values : settle)
        avgRow.push_back(util::Table::cell(util::mean(values), 0));
    table.addSeparator();
    table.addRow(avgRow);
    table.print(std::cout);

    std::printf(
        "\nPaper reference (140 W): RAPL averages 356 ms, PUPiL 365 ms,\n"
        "Soft-DVFS ~7,300 ms, Soft-Decision ~95,000 ms -- hardware enforces\n"
        "the cap orders of magnitude faster than software, and the hybrid\n"
        "keeps hardware's timeliness.\n");
    return 0;
}
