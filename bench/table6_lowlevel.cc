/**
 * @file
 * Reproduces Table 6: low-level metrics (spin cycles %, achieved memory
 * bandwidth) for the oblivious mixes where PUPiL's advantage over RAPL is
 * largest (mix7, mix8, mix12), collected VTune-style over the whole run.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const double cap = 140.0;
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const double workSec =
        std::getenv("PUPIL_BENCH_FAST") != nullptr ? 90.0 : 180.0;

    std::printf("=== Table 6: PUPiL and RAPL low-level multiapp data "
                "(oblivious, %.0f W) ===\n\n", cap);
    util::Table table({"Workload", "Spin% RAPL", "Spin% PUPiL",
                       "BW RAPL (GB/s)", "BW PUPiL (GB/s)"});
    for (const char* mixName : {"mix7", "mix8", "mix12"}) {
        const auto& mix = workload::findMix(mixName);
        const auto apps =
            harness::mixApps(mix, workload::Scenario::kOblivious);
        harness::ExperimentOptions options;
        options.capWatts = cap;
        for (const auto& app : apps) {
            const auto oracle = capping::searchOptimal(sched, pm, {app}, cap);
            options.workItems.push_back(oracle.appItemsPerSec[0] * workSec);
        }
        double spin[2] = {0, 0};
        double bw[2] = {0, 0};
        int g = 0;
        for (auto kind : {harness::GovernorKind::kRapl,
                          harness::GovernorKind::kPupil}) {
            const auto result = harness::runExperiment(kind, apps, options);
            spin[g] = result.spinPercent;
            bw[g] = result.bandwidthGBs;
            ++g;
        }
        table.addRow({mixName, util::Table::cell(spin[0], 1),
                      util::Table::cell(spin[1], 2),
                      util::Table::cell(bw[0], 1),
                      util::Table::cell(bw[1], 1)});
    }
    table.print(std::cout);
    std::printf(
        "\nPaper reference (Table 6):\n"
        "  mix7   spin 15%% -> 0.23%%   BW 14.6 -> 23.8 GB/s\n"
        "  mix8   spin 54%% -> 0.48%%   BW 17.5 -> 30.3 GB/s\n"
        "  mix12  spin 33%% -> 0.40%%   BW 14.3 -> 27.0 GB/s\n"
        "The mechanism: a polling app holds its scheduling quanta while\n"
        "making no progress; PUPiL's resource throttling lets it finish\n"
        "and leave, restoring bandwidth to the memory-bound apps.\n");
    return 0;
}
