/**
 * @file
 * Ablation: how much does Algorithm 2's calibrated resource order matter?
 * The decision walker runs against the noiseless analytic model with the
 * calibrated order, the reverse order, and DVFS-first, for a set of
 * applications and caps; we report achieved performance normalized to the
 * exhaustive optimum and the number of measurement windows spent. The
 * (benchmark, cap, order) walks run on the SweepRunner pool via its
 * generic forEach (they drive the analytic model, not a full experiment).
 */
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "util/table.h"

using namespace pupil;

namespace {

/** Walk to convergence over the analytic model; returns normalized perf. */
double
runWalk(const workload::AppParams& app, double cap,
        std::vector<core::Resource> order, int* steps)
{
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const std::vector<sched::AppDemand> apps = {{&app, 32}};

    core::DecisionWalker::Options options;
    options.windowSamples = 5;
    options.checkPower = true;
    core::DecisionWalker walker(std::move(order), options);
    walker.start(machine::minimalConfig(), cap, 0.0);

    auto evaluate = [&](const machine::MachineConfig& cfg, double& perf,
                        double& power) {
        const auto out = sched.solve(cfg, {1.0, 1.0}, apps);
        perf = out.apps[0].itemsPerSec / 1e6;
        power = pm.totalPower(cfg, out.loads);
    };
    double now = 0.0;
    while (!walker.converged() && now < 600.0) {
        now += 0.1;
        double perf = 0.0;
        double power = 0.0;
        evaluate(walker.config(), perf, power);
        walker.addSample(perf, power, now);
    }
    *steps = walker.stepsTaken();
    double perf = 0.0;
    double power = 0.0;
    evaluate(walker.config(), perf, power);
    const auto oracle = capping::searchOptimal(sched, pm, apps, cap);
    const auto refs = capping::soloReferenceRates(sched, apps);
    const auto out = sched.solve(walker.config(), {1.0, 1.0}, apps);
    return (out.apps[0].itemsPerSec / refs[0]) / oracle.aggregatePerf;
}

}  // namespace

int
main(int argc, char** argv)
{
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const auto report =
        core::calibrateOrdering(sched, pm, workload::calibrationApp());
    const auto calibrated = report.orderedResources(true);
    auto reversed = calibrated;
    std::reverse(reversed.begin(), reversed.end());
    std::printf("=== Ablation: resource ordering in the decision walk "
                "===\n\n");

    const std::vector<const char*> names = {"x264", "kmeans", "vips",
                                            "blackscholes", "STREAM"};
    const std::vector<double> caps = {60.0, 140.0};
    const std::vector<const std::vector<core::Resource>*> orders = {
        &calibrated, &reversed};

    struct Walk
    {
        double norm = 0.0;
        int steps = 0;
    };
    std::vector<Walk> walks(names.size() * caps.size() * orders.size());
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    runner.forEach(walks.size(), [&](size_t i) {
        const char* name = names[i / (caps.size() * orders.size())];
        const double cap = caps[i / orders.size() % caps.size()];
        const auto& order = *orders[i % orders.size()];
        walks[i].norm = runWalk(workload::findBenchmark(name), cap, order,
                                &walks[i].steps);
    });

    util::Table table({"benchmark", "cap (W)", "calibrated", "reversed",
                       "calib steps", "rev steps"});
    for (size_t n = 0; n < names.size(); ++n) {
        for (size_t c = 0; c < caps.size(); ++c) {
            const size_t base = (n * caps.size() + c) * orders.size();
            table.addRow({names[n], util::Table::cell(caps[c], 0),
                          util::Table::cell(walks[base].norm),
                          util::Table::cell(walks[base + 1].norm),
                          util::Table::cell((long long)walks[base].steps),
                          util::Table::cell(
                              (long long)walks[base + 1].steps)});
        }
    }
    table.print(std::cout);
    std::printf("\nWith DVFS tested first (reversed order), the walk locks "
                "in a clock speed sized for the minimal configuration and "
                "the later, coarser resources are then power-blocked -- the "
                "paper's rationale for ordering by impact with DVFS last.\n");
    return 0;
}
