/**
 * @file
 * Reproduces Fig. 1: the tradeoff between timeliness and efficiency.
 * x264 runs under a 140 W cap; RAPL (hardware) and Soft-Decision
 * (software-only) power and performance traces are printed side by side,
 * and full-resolution traces are written to CSV for plotting.
 */
#include <cstdio>

#include "bench_common.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/csv.h"

using namespace pupil;

namespace {

double
traceValueAt(const std::vector<telemetry::TracePoint>& trace, double t)
{
    double value = 0.0;
    for (const auto& pt : trace) {
        if (pt.timeSec > t)
            break;
        value = pt.value;
    }
    return value;
}

}  // namespace

int
main(int argc, char** argv)
{
    const double cap = 140.0;
    harness::ExperimentOptions options = bench::defaultOptions(cap);
    bench::applyFastMode(options);
    const double horizon = std::min(150.0, options.durationSec);
    options.durationSec = horizon;
    options.statsWindowSec = horizon;

    // Optional structured trace (--trace <path> or PUPIL_TRACE). Both runs
    // record into one timeline; with no path the experiments run untraced
    // and the output below is byte-identical to an uninstrumented build.
    const std::string tracePath = bench::tracePathFromArgs(argc, argv);
    trace::Recorder recorder;
    if (!tracePath.empty())
        options.trace = &recorder;

    std::printf("=== Fig. 1: RAPL vs Soft-Decision, x264 under a %.0f W cap "
                "===\n\n", cap);
    const auto apps = harness::singleApp("x264");
    const auto rapl =
        harness::runExperiment(harness::GovernorKind::kRapl, apps, options);
    const auto soft = harness::runExperiment(
        harness::GovernorKind::kSoftDecision, apps, options);

    // The perf traces are normalized aggregates; convert to frames/s using
    // the app's solo reference (items/s per normalized unit).
    const double fpsPerUnit =
        rapl.appItemsPerSec[0] > 0.0 && rapl.aggregatePerf > 0.0
            ? rapl.appItemsPerSec[0] / rapl.aggregatePerf
            : 1.0;

    std::printf("%8s | %12s %14s | %12s %14s\n", "time(s)", "RAPL P(W)",
                "RAPL (fps)", "Soft P(W)", "Soft (fps)");
    for (double t = 2.5; t <= horizon; t += 5.0) {
        std::printf("%8.1f | %12.1f %14.1f | %12.1f %14.1f\n", t,
                    traceValueAt(rapl.powerTrace, t),
                    traceValueAt(rapl.perfTrace, t) * fpsPerUnit,
                    traceValueAt(soft.powerTrace, t),
                    traceValueAt(soft.perfTrace, t) * fpsPerUnit);
    }

    std::printf("\nSummary:\n");
    std::printf("  RAPL:          settles in %6.2f s, mean %5.1f fps\n",
                rapl.settlingTimeSec, rapl.appItemsPerSec[0]);
    std::printf("  Soft-Decision: settles in %6.2f s, mean %5.1f fps "
                "(cap violated for %.1f s while exploring)\n",
                soft.settlingTimeSec, soft.appItemsPerSec[0],
                soft.capViolationSec);
    std::printf("\nPaper reference: RAPL hits the cap quickly at ~33.5 fps; "
                "the software approach needs tens of seconds but converges "
                "~20%% higher (~41 fps).\n");

    util::CsvWriter csv("fig1_trace.csv",
                        {"time_s", "rapl_power_w", "rapl_fps",
                         "soft_power_w", "soft_fps"});
    for (size_t i = 0; i < rapl.powerTrace.size() &&
                       i < soft.powerTrace.size(); ++i) {
        csv.row(std::vector<double>{
            rapl.powerTrace[i].timeSec, rapl.powerTrace[i].value,
            rapl.perfTrace[i].value * fpsPerUnit, soft.powerTrace[i].value,
            soft.perfTrace[i].value * fpsPerUnit});
    }
    std::printf("\nFull traces written to fig1_trace.csv\n");
    if (!tracePath.empty() &&
        trace::writeFile(tracePath, trace::toChromeJson(recorder))) {
        std::printf("Structured trace (%zu events) written to %s "
                    "(chrome://tracing / ui.perfetto.dev)\n",
                    recorder.size(), tracePath.c_str());
    }
    return 0;
}
