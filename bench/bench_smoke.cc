/**
 * @file
 * Smoke test for the bench harness: a tiny sweep (2 apps x 1 cap x 2
 * governors, ~5 simulated seconds each) through the SweepRunner, wired
 * into ctest as `bench_smoke`. Exits nonzero if any job fails or reports
 * non-positive performance, so CI catches harness/bench plumbing breakage
 * without paying for a full table run.
 *
 * A second pair of jobs smoke-tests the resilience-sweep path: Soft-DVFS
 * and PUPiL under a dead power meter. The meter dies at t = 0, so blind
 * Soft-DVFS never leaves the uncapped warm start while PUPiL's hardware
 * fallback enforces the cap -- the check asserts exactly that contrast
 * (plus that PUPiL actually records a detection).
 *
 * A final section steps a tiny hierarchical budget tree (2 racks x 2
 * nodes) through a node-loss window, asserting budget conservation at
 * every level -- the cheap stand-in for the full bench/cluster_scale
 * sweep. One of its nodes serves open-loop tenant traffic, so the
 * LoadDriver-under-BudgetTree path (churn riding under grant changes)
 * is exercised on every CI pass too.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/budget_tree.h"
#include "faults/schedule.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    const std::vector<std::string> names = {"swaptions", "kmeans"};
    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kPupil};
    const double cap = 140.0;

    std::vector<harness::SweepJob> jobs;
    for (const std::string& name : names) {
        for (harness::GovernorKind kind : kinds) {
            harness::SweepJob job;
            job.kind = kind;
            job.apps = harness::singleApp(name);
            job.options.capWatts = cap;
            job.options.durationSec = 5.0;
            job.options.statsWindowSec = 2.0;
            job.options.seed = bench::envSeed(job.options.seed);
            job.label = name;
            jobs.push_back(std::move(job));
        }
    }

    // Resilience path: the same cap with the power meter dead all run.
    const size_t faultFirst = jobs.size();
    for (harness::GovernorKind kind : {harness::GovernorKind::kSoftDvfs,
                                       harness::GovernorKind::kPupil}) {
        harness::SweepJob job;
        job.kind = kind;
        job.apps = harness::singleApp("swaptions");
        job.options.capWatts = cap;
        job.options.durationSec = 8.0;
        job.options.statsWindowSec = 2.0;
        job.options.seed = bench::envSeed(job.options.seed);
        job.options.platform.faultSpec = "sensor-dropout,power,0,100";
        job.label = "dropout";
        jobs.push_back(std::move(job));
    }

    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    int failures = 0;
    for (const harness::SweepOutcome& outcome : outcomes) {
        if (!outcome.ok) {
            std::printf("FAIL %-14s job %zu: %s\n", outcome.label.c_str(),
                        outcome.jobIndex, outcome.error.c_str());
            ++failures;
            continue;
        }
        if (outcome.result.aggregatePerf <= 0.0) {
            std::printf("FAIL %-14s job %zu: non-positive perf %.4f\n",
                        outcome.label.c_str(), outcome.jobIndex,
                        outcome.result.aggregatePerf);
            ++failures;
            continue;
        }
        std::printf("ok   %-14s job %zu: perf %.4f, power %.1f W\n",
                    outcome.label.c_str(), outcome.jobIndex,
                    outcome.result.aggregatePerf,
                    outcome.result.meanPowerWatts);
    }
    if (failures == 0) {
        const harness::ExperimentResult& blind =
            outcomes[faultFirst].result;        // Soft-DVFS, meter dead
        const harness::ExperimentResult& hybrid =
            outcomes[faultFirst + 1].result;    // PUPiL, meter dead
        if (hybrid.capViolationSec >= blind.capViolationSec) {
            std::printf(
                "FAIL dropout: PUPiL violated %.2f s >= Soft-DVFS %.2f s\n",
                hybrid.capViolationSec, blind.capViolationSec);
            ++failures;
        }
        if (hybrid.faultsDetected == 0 || hybrid.degradedSec <= 0.0) {
            std::printf(
                "FAIL dropout: PUPiL never degraded (detected %llu, "
                "degraded %.2f s)\n",
                (unsigned long long)hybrid.faultsDetected,
                hybrid.degradedSec);
            ++failures;
        }
    }

    // Budget-tree path: a tiny 2-rack x 2-node tree stepped through a
    // node-loss window, checking the plumbing the cluster_scale bench
    // exercises at scale -- conservation at every level, work actually
    // progressing, and shifting firing.
    {
        cluster::BudgetTree::Options topts;
        topts.globalBudgetWatts = 500.0;
        topts.threads = 1;
        cluster::BudgetTree tree(topts);
        const char* treeApps[4] = {"swaptions", "kmeans", "x264", "btree"};
        // Node r1n1 also serves open-loop tenant traffic: a hot stream
        // (4 jobs/s) so arrivals, binds, and completions all fire within
        // the 10 simulated seconds.
        load::LoadDriver::Options churn;
        churn.enabled = true;
        churn.spec.ratePerSec = 4.0;
        churn.spec.meanWorkItems = 3.0;
        churn.spec.minWorkItems = 1.0;
        for (int r = 0; r < 2; ++r) {
            const size_t rack = tree.addRack("rack" + std::to_string(r));
            for (int n = 0; n < 2; ++n)
                tree.addNode(rack,
                             "r" + std::to_string(r) + "n" +
                                 std::to_string(n),
                             harness::singleApp(treeApps[r * 2 + n]),
                             harness::GovernorKind::kPupil,
                             bench::envSeed(1) + uint64_t(r * 2 + n),
                             "",
                             r == 1 && n == 1
                                 ? churn
                                 : load::LoadDriver::Options());
        }
        const auto schedule =
            faults::FaultSchedule::parse("node-loss,r0n1,3,6");
        tree.setFaultSchedule(&schedule);
        double worstError = 0.0;
        for (double t = 1.0; t <= 10.0; t += 1.0) {
            tree.run(t);
            worstError = std::max(worstError, tree.budgetErrorWatts());
        }
        if (worstError > 1e-6) {
            std::printf("FAIL tree: budget conservation error %.9f W\n",
                        worstError);
            ++failures;
        }
        if (tree.aggregatePerformance() <= 0.0) {
            std::printf("FAIL tree: non-positive aggregate perf\n");
            ++failures;
        }
        if (tree.lossEvents() != 1 || tree.rejoinEvents() != 1) {
            std::printf("FAIL tree: expected 1 loss + 1 rejoin, saw %d/%d\n",
                        tree.lossEvents(), tree.rejoinEvents());
            ++failures;
        }
        const load::SloTracker& churned = tree.node(1, 1).load->tracker();
        if (churned.totalArrivals() == 0 ||
            churned.totalCompletions() == 0) {
            std::printf("FAIL tree: churn node saw %llu arrivals / %llu "
                        "completions (expected both > 0)\n",
                        (unsigned long long)churned.totalArrivals(),
                        (unsigned long long)churned.totalCompletions());
            ++failures;
        }
        if (failures == 0)
            std::printf("ok   budget-tree   4 nodes: perf %.4f, err %.1e W, "
                        "%llu tenant jobs served\n",
                        tree.aggregatePerformance(), worstError,
                        (unsigned long long)churned.totalCompletions());
    }

    if (failures > 0) {
        std::printf("bench_smoke: %d of %zu jobs failed\n", failures,
                    outcomes.size());
        return 1;
    }
    std::printf("bench_smoke: all %zu jobs ok\n", outcomes.size() + 1);
    return 0;
}
