/**
 * @file
 * Reproduces Fig. 5: benchmark characteristics -- computation rate (GIPS)
 * vs memory bandwidth (GB/s), with each benchmark classified by whether
 * RAPL lands within 10% of optimal at the 140 W cap (the paper's blue/red
 * dot split used to construct the Table 4 mixes).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    std::printf("=== Fig. 5: benchmark characteristics (uncapped, default "
                "configuration) ===\n\n");

    util::Table table({"benchmark", "GIPS", "BW (GB/s)", "RAPL/optimal@140W",
                       "class"});
    int matches = 0;
    for (const std::string& name : bench::benchmarkNames()) {
        const auto apps = harness::singleApp(name);
        // Characteristics: the app alone, everything on, no cap.
        const auto out = sched.solve(machine::maximalConfig(), {1.0, 1.0},
                                     apps);
        // RAPL efficiency at 140 W.
        const auto oracle = capping::searchOptimal(sched, pm, apps, 140.0);
        auto options = bench::defaultOptions(140.0);
        bench::applyFastMode(options);
        const auto rapl = harness::runExperiment(harness::GovernorKind::kRapl,
                                                 apps, options);
        const double norm = rapl.aggregatePerf / oracle.aggregatePerf;
        const bool blue = norm >= 0.90;
        const bool paperBlue = [&] {
            for (const auto& n : workload::raplFriendlySet())
                if (n == name)
                    return true;
            return false;
        }();
        matches += blue == paperBlue;
        table.addRow({name, util::Table::cell(out.totalIps / 1e9, 1),
                      util::Table::cell(out.totalBytesPerSec / 1e9, 1),
                      util::Table::cell(norm),
                      std::string(blue ? "near-optimal" : ">10% off") +
                          (blue == paperBlue ? "" : " (*)")});
    }
    table.print(std::cout);
    std::printf("\n%d/20 classifications match the paper's blue/red split "
                "((*) marks mismatches).\n", matches);
    std::printf("Paper reference: STREAM has the highest bandwidth (~80 "
                "GB/s) yet RAPL does poorly on it, while jacobi (second "
                "highest) does fine -- memory intensity alone does not "
                "predict RAPL efficiency; scaling behaviour does.\n");
    return 0;
}
