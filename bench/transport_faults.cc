/**
 * @file
 * Message-fault sweep over the extracted BudgetTree control plane.
 *
 * Runs the same 4-rack budget tree under seven transport fault mixes --
 * clean, delay, drop, duplicate, reorder, rack partition, and a storm
 * of all five -- and gates the protocol's ride-through guarantees as
 * deterministic bits (all fixed-seed simulation, no wall-clock ratios):
 *
 *  - determinism_ok: every mix replayed twice from the same seeds
 *    produces byte-identical stateDigest()s (drop/dup/delay Bernoulli
 *    draws and reorder shuffles come from a dedicated RNG stream);
 *  - conservation_ok: the per-view budget error (each level measured
 *    against what the network actually DELIVERED to it) stays inside
 *    1e-6 * budget at every period boundary of every mix;
 *  - clamps_ok: no online node ever enforces a nonzero cap outside
 *    [minNodeCapWatts, nodeTdpWatts], no matter what the network did;
 *  - partition_ride_through_ok: while a rack's uplink is cut it keeps
 *    enforcing (and internally re-dividing) its last delivered grant --
 *    members stay online, their cap sum matches the rack's grant view,
 *    and the transport actually recorded partition drops.
 *
 * --quick shortens the run (the bench_smoke/CI tier); the full run
 * steps each mix longer and also sweeps an 8-rack tree. Results go to
 * stdout and to BENCH_transport.json (override with --out PATH) that
 * bench/check_perf.py compares against bench/perf_baseline.json.
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/budget_tree.h"
#include "faults/schedule.h"
#include "trace/export.h"
#include "util/table.h"

using namespace pupil;

namespace {

using cluster::BudgetTree;

constexpr int kNodesPerRack = 4;

struct MixSpec
{
    std::string name;
    std::string spec;        ///< fault schedule, "" = clean
    bool partitioned;        ///< has a partition window on rack 1
    /** Drops/delays in the mix can keep a node's applied cap behind the
     *  rack agent's intent, so the strict cap-sum == grant-view check
     *  only runs when the partition is the ONLY fault in play. */
    bool lossy = false;
};

/** Partition window on rack 1 (shared by the mix table and the
 *  ride-through checks): cut at t=5, healed at t=11. */
constexpr double kPartitionStart = 5.0;
constexpr double kPartitionEnd = 11.0;

std::vector<MixSpec>
faultMixes()
{
    return {
        {"clean", "", false},
        {"delay", "msg-delay,*,2,999,1.4", false},
        {"drop", "msg-drop,*,2,999,0,0.25", false},
        {"dup", "msg-dup,*,2,999,0,0.5", false},
        {"reorder", "msg-reorder,*,2,999", false},
        {"partition", "partition,rack1,5,11", true, false},
        {"storm",
         "msg-delay,*,2,999,1.2;msg-drop,*,3,999,0,0.2;"
         "msg-dup,*,2,999,0,0.35;msg-reorder,*,2,999;"
         "partition,rack1,5,11;node-loss,r2n1,4,9",
         true, true},
    };
}

BudgetTree
makeTree(int racks, uint64_t seed)
{
    BudgetTree::Options options;
    options.globalBudgetWatts = 150.0 * racks * kNodesPerRack;
    options.periodSec = 1.0;
    options.threads = 1;
    BudgetTree tree(options);
    const auto& catalog = workload::benchmarkCatalog();
    int id = 0;
    for (int r = 0; r < racks; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < kNodesPerRack; ++n, ++id) {
            const auto& app = catalog[size_t(id * 7) % catalog.size()];
            const auto kind = (id % 4 == 3)
                                  ? harness::GovernorKind::kRapl
                                  : harness::GovernorKind::kPupil;
            tree.addNode(rack,
                         "r" + std::to_string(r) + "n" + std::to_string(n),
                         harness::singleApp(app.name, 16), kind,
                         harness::SweepRunner::deriveSeed(seed, size_t(id)));
        }
    }
    return tree;
}

struct MixResult
{
    std::string name;
    int periods = 0;
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    double maxBudgetErrorWatts = 0.0;
    double throughput = 0.0;        ///< mean normalized perf, 2nd half
    uint64_t digest = 0;
    bool deterministic = false;
    bool conserved = true;
    bool clamped = true;
    bool rodeThrough = true;        ///< vacuously true without a partition
};

struct DriveOutcome
{
    uint64_t digest = 0;
    double maxBudgetError = 0.0;
    double throughput = 0.0;
    bool conserved = true;
    bool clamped = true;
    bool rodeThrough = true;
    int periods = 0;
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
};

DriveOutcome
drive(const MixSpec& mix, int racks, double durationSec, uint64_t seed)
{
    BudgetTree tree = makeTree(racks, seed);
    faults::FaultSchedule schedule;
    if (!mix.spec.empty()) {
        schedule = faults::FaultSchedule::parse(mix.spec);
        tree.setFaultSchedule(&schedule);
    }

    DriveOutcome out;
    const double budget = 150.0 * racks * kNodesPerRack;
    const double conserveTol = 1e-6 * budget + 1e-9;
    double perfSum = 0.0;
    int perfSamples = 0;
    uint64_t partitionDropsAtCut = 0;
    for (double t = 1.0; t <= durationSec + 1e-9; t += 1.0) {
        tree.run(t);
        const double err = tree.budgetErrorWatts();
        out.maxBudgetError = std::max(out.maxBudgetError, err);
        if (err > conserveTol)
            out.conserved = false;
        for (size_t r = 0; r < tree.rackCount(); ++r) {
            for (size_t n = 0; n < tree.nodeCount(r); ++n) {
                const auto& node = tree.node(r, n);
                if (!node.online) {
                    if (node.capWatts != 0.0)
                        out.clamped = false;
                    continue;
                }
                if (node.capWatts == 0.0)
                    continue;  // rejoin bootstrap: grant still in flight
                if (node.capWatts < 30.0 - 1e-9 ||
                    node.capWatts > 270.0 + 1e-9)
                    out.clamped = false;
            }
        }
        if (mix.partitioned && t > kPartitionStart + 1.5 &&
            t < kPartitionEnd - 0.5) {
            // Mid-window: the cut rack must still be enforcing its last
            // delivered grant across its (online) members.
            if (tree.transportStats().partitionDrops <= partitionDropsAtCut)
                out.rodeThrough = false;
            double capSum = 0.0;
            for (size_t n = 0; n < tree.nodeCount(1); ++n) {
                const auto& node = tree.node(1, n);
                if (!node.online)
                    continue;
                capSum += node.capWatts;
                if (node.capWatts < 30.0 - 1e-9 ||
                    node.capWatts > 270.0 + 1e-9)
                    out.rodeThrough = false;
            }
            if (!mix.lossy &&
                std::abs(capSum - tree.rackGrantViewWatts(1)) >
                    1e-6 * budget + 1e-9)
                out.rodeThrough = false;
        } else if (mix.partitioned && t <= kPartitionStart) {
            partitionDropsAtCut = tree.transportStats().partitionDrops;
        }
        if (t > durationSec / 2.0) {
            perfSum += tree.aggregatePerformance();
            ++perfSamples;
        }
    }
    out.throughput = perfSamples > 0 ? perfSum / perfSamples : 0.0;
    out.digest = tree.stateDigest();
    out.periods = tree.periods();
    out.sent = tree.transportStats().sent;
    out.delivered = tree.transportStats().delivered;
    out.dropped = tree.transportStats().dropped;  // includes partition cuts
    return out;
}

MixResult
runMix(const MixSpec& mix, int racks, double durationSec, uint64_t seed)
{
    const DriveOutcome first = drive(mix, racks, durationSec, seed);
    const DriveOutcome replay = drive(mix, racks, durationSec, seed);

    MixResult r;
    r.name = mix.name;
    r.periods = first.periods;
    r.sent = first.sent;
    r.delivered = first.delivered;
    r.dropped = first.dropped;
    r.maxBudgetErrorWatts = first.maxBudgetError;
    r.throughput = first.throughput;
    r.digest = first.digest;
    r.deterministic = first.digest == replay.digest &&
                      first.sent == replay.sent &&
                      first.dropped == replay.dropped;
    r.conserved = first.conserved;
    r.clamped = first.clamped;
    r.rodeThrough = first.rodeThrough;
    return r;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string outPath = "BENCH_transport.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const uint64_t seed = bench::envSeed(42);
    const double durationSec = quick ? 16.0 : 40.0;
    const std::vector<int> rackScales =
        quick ? std::vector<int>{4} : std::vector<int>{4, 8};

    std::printf("=== Transport fault mixes over the budget tree "
                "(%s mode, %g s, seed %llu) ===\n\n",
                quick ? "quick" : "full", durationSec,
                static_cast<unsigned long long>(seed));

    // The gated bits aggregate over EVERY mix at EVERY scale: a single
    // divergent replay, conservation breach, clamp escape, or broken
    // partition ride-through zeroes the corresponding bit.
    bool allDeterministic = true;
    bool allConserved = true;
    bool allClamped = true;
    bool allRodeThrough = true;
    uint64_t totalSent = 0;
    uint64_t totalDropped = 0;
    double maxBudgetError = 0.0;
    std::vector<MixResult> headline;  // largest scale, for the table/JSON

    for (int racks : rackScales) {
        std::vector<MixResult> results;
        for (const MixSpec& mix : faultMixes()) {
            MixResult r = runMix(mix, racks, durationSec, seed);
            allDeterministic = allDeterministic && r.deterministic;
            allConserved = allConserved && r.conserved;
            allClamped = allClamped && r.clamped;
            allRodeThrough = allRodeThrough && r.rodeThrough;
            totalSent += r.sent;
            totalDropped += r.dropped;
            maxBudgetError = std::max(maxBudgetError,
                                      r.maxBudgetErrorWatts);
            if (!r.deterministic)
                std::fprintf(stderr,
                             "FAIL: mix '%s' (%d racks) diverged on "
                             "replay\n",
                             r.name.c_str(), racks);
            if (!r.conserved)
                std::fprintf(stderr,
                             "FAIL: mix '%s' (%d racks) broke budget "
                             "conservation (%.9f W)\n",
                             r.name.c_str(), racks,
                             r.maxBudgetErrorWatts);
            if (!r.clamped)
                std::fprintf(stderr,
                             "FAIL: mix '%s' (%d racks) enforced a cap "
                             "outside the node envelope\n",
                             r.name.c_str(), racks);
            if (!r.rodeThrough)
                std::fprintf(stderr,
                             "FAIL: mix '%s' (%d racks) failed partition "
                             "ride-through\n",
                             r.name.c_str(), racks);
            results.push_back(std::move(r));
        }
        headline = std::move(results);
    }

    util::Table table({"mix", "sent", "delivered", "dropped", "max err W",
                       "throughput", "det", "ok"});
    for (const MixResult& r : headline) {
        const bool ok = r.conserved && r.clamped && r.rodeThrough;
        table.addRow({r.name, std::to_string(r.sent),
                      std::to_string(r.delivered),
                      std::to_string(r.dropped),
                      util::Table::cell(r.maxBudgetErrorWatts, 9),
                      util::Table::cell(r.throughput, 4),
                      r.deterministic ? "yes" : "NO", ok ? "yes" : "NO"});
    }
    table.print(std::cout);

    const bool allOk = allDeterministic && allConserved && allClamped &&
                       allRodeThrough;
    std::printf("\nProtocol gates: determinism %s, conservation %s, "
                "clamps %s, partition ride-through %s.\n",
                allDeterministic ? "ok" : "FAILED",
                allConserved ? "ok" : "FAILED",
                allClamped ? "ok" : "FAILED",
                allRodeThrough ? "ok" : "FAILED");

    std::string json;
    json += "{\n  \"schema\": \"pupil-transport-faults-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"transport_faults\": {\n";
    json += "    \"mixes\": " + std::to_string(headline.size()) + ",\n";
    json += "    \"racks\": " + std::to_string(rackScales.back()) + ",\n";
    json += "    \"periods_per_mix\": " +
            std::to_string(headline.empty() ? 0 : headline.front().periods) +
            ",\n";
    json += "    \"msgs_sent\": " + std::to_string(totalSent) + ",\n";
    json += "    \"msgs_dropped\": " + std::to_string(totalDropped) + ",\n";
    json += "    \"max_budget_error_watts\": " +
            trace::formatDouble(maxBudgetError) + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(allDeterministic ? "1" : "0") + ",\n";
    json += "    \"conservation_ok\": " +
            std::string(allConserved ? "1" : "0") + ",\n";
    json += "    \"clamps_ok\": " + std::string(allClamped ? "1" : "0") +
            ",\n";
    json += "    \"partition_ride_through_ok\": " +
            std::string(allRodeThrough ? "1" : "0") + "\n";
    json += "  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", outPath.c_str());
    return allOk ? 0 : 2;
}
