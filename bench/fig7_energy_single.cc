/**
 * @file
 * Reproduces Fig. 7: single-application energy efficiency (performance
 * per watt, i.e. work per joule) of each power control technique,
 * normalized to the optimal configuration's efficiency, for all five caps.
 * All runs execute on the SweepRunner pool (--serial /
 * PUPIL_SWEEP_THREADS control the worker count).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kSoftDvfs,
        harness::GovernorKind::kSoftDecision, harness::GovernorKind::kPupil};
    const std::vector<std::string> names = bench::benchmarkNames();
    const std::vector<double>& caps = bench::powerCaps();
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));

    std::printf("=== Fig. 7: energy efficiency normalized to optimal ===\n");

    std::vector<capping::OracleResult> oracles(caps.size() * names.size());
    runner.forEach(oracles.size(), [&](size_t i) {
        const double cap = caps[i / names.size()];
        const auto apps = harness::singleApp(names[i % names.size()]);
        oracles[i] = capping::searchOptimal(sched, pm, apps, cap);
    });

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(oracles.size() * kinds.size());
    for (double cap : caps) {
        for (const std::string& name : names) {
            for (harness::GovernorKind kind : kinds) {
                harness::SweepJob job;
                job.kind = kind;
                job.apps = harness::singleApp(name);
                job.options = bench::defaultOptions(cap);
                bench::applyFastMode(job.options);
                job.label = name;
                jobs.push_back(std::move(job));
            }
        }
    }
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    for (size_t c = 0; c < caps.size(); ++c) {
        util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Decision",
                           "PUPiL"});
        std::vector<std::vector<double>> normalized(kinds.size());
        std::vector<int> infeasible(kinds.size(), 0);
        for (size_t n = 0; n < names.size(); ++n) {
            const capping::OracleResult& oracle =
                oracles[c * names.size() + n];
            const double oracleEff =
                oracle.aggregatePerf / std::max(oracle.powerWatts, 1.0);
            std::vector<std::string> row = {names[n]};
            for (size_t g = 0; g < kinds.size(); ++g) {
                const harness::SweepOutcome& outcome =
                    outcomes[(c * names.size() + n) * kinds.size() + g];
                if (!outcome.ok || !outcome.result.capFeasible) {
                    ++infeasible[g];
                    row.push_back(outcome.ok ? "-" : "err");
                    continue;
                }
                const double norm =
                    outcome.result.perfPerJoule / oracleEff;
                normalized[g].push_back(norm);
                row.push_back(util::Table::cell(norm));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (size_t g = 0; g < normalized.size(); ++g) {
            meanRow.push_back(infeasible[g] > 0 || normalized[g].empty()
                                  ? "-"
                                  : util::Table::cell(util::harmonicMean(
                                        normalized[g])));
        }
        table.addSeparator();
        table.addRow(meanRow);
        std::printf("\n--- Power cap %.0f W ---\n", caps[c]);
        table.print(std::cout);
    }
    std::printf(
        "\nPaper reference: Soft-Decision and PUPiL deliver 1.15-1.3x the\n"
        "energy efficiency of RAPL or Soft-DVFS -- a by-product of higher\n"
        "performance at the same (capped) power.\n");
    return 0;
}
