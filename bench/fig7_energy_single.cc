/**
 * @file
 * Reproduces Fig. 7: single-application energy efficiency (performance
 * per watt, i.e. work per joule) of each power control technique,
 * normalized to the optimal configuration's efficiency, for all five caps.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kSoftDvfs,
        harness::GovernorKind::kSoftDecision, harness::GovernorKind::kPupil};

    std::printf("=== Fig. 7: energy efficiency normalized to optimal ===\n");
    for (double cap : bench::powerCaps()) {
        util::Table table({"benchmark", "RAPL", "Soft-DVFS", "Soft-Decision",
                           "PUPiL"});
        std::vector<std::vector<double>> normalized(kinds.size());
        std::vector<int> infeasible(kinds.size(), 0);
        for (const std::string& name : bench::benchmarkNames()) {
            const auto apps = harness::singleApp(name);
            const auto oracle = capping::searchOptimal(sched, pm, apps, cap);
            const double oracleEff =
                oracle.aggregatePerf / std::max(oracle.powerWatts, 1.0);
            std::vector<std::string> row = {name};
            for (size_t g = 0; g < kinds.size(); ++g) {
                auto options = bench::defaultOptions(cap);
                bench::applyFastMode(options);
                const auto result =
                    harness::runExperiment(kinds[g], apps, options);
                if (!result.capFeasible) {
                    ++infeasible[g];
                    row.push_back("-");
                    continue;
                }
                const double norm = result.perfPerJoule / oracleEff;
                normalized[g].push_back(norm);
                row.push_back(util::Table::cell(norm));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (size_t g = 0; g < normalized.size(); ++g) {
            meanRow.push_back(infeasible[g] > 0 || normalized[g].empty()
                                  ? "-"
                                  : util::Table::cell(util::harmonicMean(
                                        normalized[g])));
        }
        table.addSeparator();
        table.addRow(meanRow);
        std::printf("\n--- Power cap %.0f W ---\n", cap);
        table.print(std::cout);
    }
    std::printf(
        "\nPaper reference: Soft-Decision and PUPiL deliver 1.15-1.3x the\n"
        "energy efficiency of RAPL or Soft-DVFS -- a by-product of higher\n"
        "performance at the same (capped) power.\n");
    return 0;
}
