/**
 * @file
 * Resilience sweep: how each capping technique behaves when its inputs
 * fail. Every fault scenario (src/faults/) is run against RAPL-only,
 * Soft-DVFS, Soft-Decision, and PUPiL on the same workload and cap, and
 * the tables report the cap-violation rate (fraction of the run the true
 * power exceeded the cap) and performance normalized to each governor's
 * own fault-free run.
 *
 * The punchline is the paper's robustness argument for the hybrid design:
 * when the software-visible power meter dies, Soft-DVFS is left blind at
 * whatever operating point it had (here: the uncapped warm start, a
 * persistent violation), while PUPiL detects the dead channel, falls back
 * to hardware-only enforcement, and matches RAPL's violation rate.
 *
 * Scenarios run on the SweepRunner pool (--serial / PUPIL_SWEEP_THREADS
 * control workers); PUPIL_BENCH_FAST=1 shortens runs, PUPIL_SEED reseeds.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pupil;

namespace {

struct Scenario
{
    const char* name;
    const char* spec;  ///< faults::FaultSchedule spec; "" = fault-free
};

/** The fault catalog, one scenario per injector boundary. */
const std::vector<Scenario>&
scenarios()
{
    static const std::vector<Scenario> list = {
        {"baseline", ""},
        {"sensor-dropout", "sensor-dropout,power,0,100000"},
        {"sensor-stuck", "sensor-stuck,power,30,100000"},
        {"sensor-spike", "sensor-spike,power,30,100000,3.0,0.25"},
        {"msr-write-ignored", "msr-write-ignored,*,0,100000"},
        {"alloc-refused", "alloc-refused,*,0,100000"},
        {"actuation-delay", "actuation-delay,*,0,100000,2.0"},
    };
    return list;
}

}  // namespace

int
main(int argc, char** argv)
{
    const double cap = 140.0;
    const std::string app = "x264";
    std::printf("=== Resilience sweep: %s under a %.0f W cap, per fault "
                "scenario ===\n\n", app.c_str(), cap);

    const std::vector<harness::GovernorKind> kinds = {
        harness::GovernorKind::kRapl, harness::GovernorKind::kSoftDvfs,
        harness::GovernorKind::kSoftDecision, harness::GovernorKind::kPupil};

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(scenarios().size() * kinds.size());
    for (const Scenario& scenario : scenarios()) {
        for (harness::GovernorKind kind : kinds) {
            harness::SweepJob job;
            job.kind = kind;
            job.apps = harness::singleApp(app);
            job.options = bench::defaultOptions(cap);
            bench::applyFastMode(job.options);
            job.options.platform.faultSpec = scenario.spec;
            job.label = scenario.name;
            jobs.push_back(std::move(job));
        }
    }
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    const auto at = [&](size_t s, size_t g) -> const harness::SweepOutcome& {
        return outcomes[s * kinds.size() + g];
    };

    const std::vector<std::string> headers = {
        "scenario", "RAPL", "Soft-DVFS", "Soft-Decision", "PUPiL"};

    std::printf("--- Cap-violation rate (%% of run over the cap) ---\n");
    util::Table violations(headers);
    for (size_t s = 0; s < scenarios().size(); ++s) {
        std::vector<std::string> row = {scenarios()[s].name};
        for (size_t g = 0; g < kinds.size(); ++g) {
            const harness::SweepOutcome& outcome = at(s, g);
            if (!outcome.ok) {
                row.push_back("err");
                continue;
            }
            const double rate = 100.0 * outcome.result.capViolationSec /
                                std::max(outcome.result.durationSec, 1e-9);
            row.push_back(util::Table::cell(rate, 1));
        }
        violations.addRow(row);
    }
    violations.print(std::cout);

    std::printf("\n--- Performance normalized to each governor's own "
                "fault-free run ---\n");
    util::Table perf(headers);
    for (size_t s = 0; s < scenarios().size(); ++s) {
        std::vector<std::string> row = {scenarios()[s].name};
        for (size_t g = 0; g < kinds.size(); ++g) {
            const harness::SweepOutcome& outcome = at(s, g);
            const harness::SweepOutcome& base = at(0, g);
            if (!outcome.ok || !base.ok ||
                base.result.aggregatePerf <= 0.0) {
                row.push_back("err");
                continue;
            }
            row.push_back(util::Table::cell(
                outcome.result.aggregatePerf / base.result.aggregatePerf,
                2));
        }
        perf.addRow(row);
    }
    perf.print(std::cout);

    std::printf("\n--- PUPiL degradation accounting (whole run) ---\n");
    util::Table account(
        {"scenario", "degraded s", "injected", "detected"});
    const size_t pupil = kinds.size() - 1;
    for (size_t s = 0; s < scenarios().size(); ++s) {
        const harness::SweepOutcome& outcome = at(s, pupil);
        if (!outcome.ok) {
            account.addRow({scenarios()[s].name, "err", "err", "err"});
            continue;
        }
        account.addRow(
            {scenarios()[s].name,
             util::Table::cell(outcome.result.degradedSec, 1),
             util::Table::cell((long long)outcome.result.faultsInjected),
             util::Table::cell((long long)outcome.result.faultsDetected)});
    }
    account.print(std::cout);

    std::printf(
        "\nReading: under sensor faults the software-only controllers are\n"
        "steering on garbage -- Soft-DVFS sits blind at its last operating\n"
        "point (the uncapped warm start: a persistent violation) -- while\n"
        "PUPiL's watchdog detects the unhealthy channel and falls back to\n"
        "hardware-only enforcement, matching RAPL's violation rate at the\n"
        "cost of running the default configuration. Actuator faults slow\n"
        "or freeze the software walk but never break the cap, because the\n"
        "hardware path is programmed first.\n");
    return 0;
}
