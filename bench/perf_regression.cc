/**
 * @file
 * Performance regression bench for the memoized scheduler solve.
 *
 * Three sections, each timed cached (SolveCache) vs. uncached over
 * fixed-seed repetitions, reporting median and p95:
 *
 *  - walker_convergence: Algorithm 1/2 decision walks to convergence
 *    against the noiseless analytic model, the workload where memoization
 *    pays: every measurement window re-solves its configuration once per
 *    sample and the binary search revisits settings. Target: >= 3x
 *    throughput (walks/s) with the cache on.
 *  - solve_throughput: raw memoized vs. plain solve rate while cycling a
 *    32-configuration working set (the cache's steady hit regime).
 *  - end_to_end: a fig1-style traced PUPiL run (wall-clock); ticking
 *    dominates here, so the expectation is parity, not speedup -- the
 *    section exists to catch the cache *hurting* a real run.
 *
 * Every section first self-checks decision-invariance (cached and
 * uncached results bit-identical) and aborts non-zero on any mismatch.
 * Results go to stdout and to a machine-readable BENCH_perf.json
 * (default; override with --out PATH) that bench/check_perf.py compares
 * against bench/perf_baseline.json in CI. --quick shrinks the workload
 * for the smoke tier.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "machine/config.h"
#include "sched/solve_cache.h"
#include "trace/export.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

namespace {

double
timeSec(const std::function<void()>& body)
{
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

struct Summary
{
    double median = 0.0;
    double p95 = 0.0;
};

Summary
summarize(const std::vector<double>& samples)
{
    return {util::percentile(samples, 50.0), util::percentile(samples, 95.0)};
}

/** One decision walk to convergence over the noiseless analytic model;
 *  solves go through @p cache when non-null. Returns a bit-sensitive
 *  checksum of every sample fed to the walker plus the final config. */
struct WalkOutcome
{
    machine::MachineConfig finalConfig;
    int steps = 0;
    uint64_t solves = 0;
    double checksum = 0.0;
};

WalkOutcome
runWalk(const sched::Scheduler& sched, const machine::PowerModel& pm,
        const std::vector<sched::AppDemand>& apps, double cap,
        const std::vector<core::Resource>& order, sched::SolveCache* cache,
        sched::SolveScratch& scratch)
{
    core::DecisionWalker::Options options;
    options.windowSamples = 30;  // matches the production PUPiL governor
    options.checkPower = true;
    core::DecisionWalker walker(order, options);
    walker.start(machine::minimalConfig(), cap, 0.0);

    WalkOutcome outcome;
    sched::SystemOutcome out;
    const auto evaluate = [&](const machine::MachineConfig& cfg,
                              double& perf, double& power) {
        const sched::SystemOutcome* result;
        if (cache != nullptr) {
            result = cache->solveRef(sched, cfg, {1.0, 1.0}, apps, scratch);
        } else {
            sched.solve(cfg, {1.0, 1.0}, apps, scratch, out);
            result = &out;
        }
        ++outcome.solves;
        perf = result->totalIps / 1e9;
        power = pm.totalPower(cfg, result->loads);
    };
    double now = 0.0;
    while (!walker.converged() && now < 600.0) {
        now += 0.1;
        double perf = 0.0;
        double power = 0.0;
        evaluate(walker.config(), perf, power);
        walker.addSample(perf, power, now);
        outcome.checksum += perf + power;
    }
    outcome.finalConfig = walker.config();
    outcome.steps = walker.stepsTaken();
    return outcome;
}

struct WalkCase
{
    std::string label;
    std::vector<sched::AppDemand> apps;
    double cap;
};

int
checkWalksIdentical(const sched::Scheduler& sched,
                    const machine::PowerModel& pm,
                    const std::vector<WalkCase>& cases,
                    const std::vector<core::Resource>& order)
{
    sched::SolveScratch scratch;
    for (const WalkCase& c : cases) {
        sched::SolveCache cache(sched::SolveCache::kDefaultCapacity);
        const WalkOutcome plain =
            runWalk(sched, pm, c.apps, c.cap, order, nullptr, scratch);
        const WalkOutcome cached =
            runWalk(sched, pm, c.apps, c.cap, order, &cache, scratch);
        if (plain.finalConfig != cached.finalConfig ||
            plain.checksum != cached.checksum ||
            plain.steps != cached.steps) {
            std::fprintf(stderr,
                         "FAIL: cached walk diverged from uncached for %s "
                         "@ %.0f W (checksum %.17g vs %.17g)\n",
                         c.label.c_str(), c.cap, cached.checksum,
                         plain.checksum);
            return 1;
        }
    }
    return 0;
}

std::string
jsonSummary(const Summary& s)
{
    return "{\"median\":" + trace::formatDouble(s.median) +
           ",\"p95\":" + trace::formatDouble(s.p95) + "}";
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string outPath = "BENCH_perf.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const int reps = quick ? 5 : 9;
    const uint64_t seed = bench::envSeed(42);

    std::printf("=== Perf regression: memoized solves & allocation-free "
                "tick (%s mode) ===\n\n",
                quick ? "quick" : "full");

    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const auto order = core::calibrateOrdering(sched, pm,
                                               workload::calibrationApp())
                           .orderedResources(true);

    // ----- section 1: walker convergence --------------------------------
    // Multi-application walks (paper Section 5.4, cooperative scenario):
    // the 4-app contention solve is the expensive one, and each
    // measurement window re-solves its configuration windowSamples times,
    // which is exactly the repetition the cache memoizes.
    std::vector<WalkCase> cases;
    const std::vector<const char*> walkMixes =
        quick ? std::vector<const char*>{"mix5", "mix9"}
              : std::vector<const char*>{"mix1", "mix3", "mix5", "mix7",
                                         "mix9", "mix11"};
    const std::vector<double> walkCaps =
        quick ? std::vector<double>{60.0, 140.0} : bench::powerCaps();
    for (const char* name : walkMixes) {
        for (double cap : walkCaps)
            cases.push_back({name,
                             harness::mixApps(workload::findMix(name),
                                              workload::Scenario::kOblivious),
                             cap});
    }
    if (checkWalksIdentical(sched, pm, cases, order) != 0)
        return 1;

    sched::SolveScratch scratch;
    // Warm caches model the steady-state regime: a long-running governor
    // owns one cache for its whole run, so every re-convergence (after a
    // cap change, a phase change, a fault clearing) walks configurations
    // it has already solved. Cold = a fresh cache per walk, the
    // first-convergence cost.
    std::vector<sched::SolveCache> warmCaches;
    for (size_t i = 0; i < cases.size(); ++i)
        warmCaches.emplace_back(sched::SolveCache::kDefaultCapacity);
    for (size_t i = 0; i < cases.size(); ++i)  // pre-warm, untimed
        runWalk(sched, pm, cases[i].apps, cases[i].cap, order,
                &warmCaches[i], scratch);
    std::vector<double> walkPlain, walkCold, walkWarm;
    for (int r = 0; r < reps; ++r) {
        walkPlain.push_back(timeSec([&] {
            for (const WalkCase& c : cases)
                runWalk(sched, pm, c.apps, c.cap, order, nullptr, scratch);
        }));
        walkCold.push_back(timeSec([&] {
            for (const WalkCase& c : cases) {
                sched::SolveCache cache(sched::SolveCache::kDefaultCapacity);
                runWalk(sched, pm, c.apps, c.cap, order, &cache, scratch);
            }
        }));
        walkWarm.push_back(timeSec([&] {
            for (size_t i = 0; i < cases.size(); ++i)
                runWalk(sched, pm, cases[i].apps, cases[i].cap, order,
                        &warmCaches[i], scratch);
        }));
    }
    const double nWalks = double(cases.size());
    auto toRate = [](std::vector<double> secs, double count) {
        for (double& s : secs)
            s = count / s;
        return secs;
    };
    const Summary walkPlainRate = summarize(toRate(walkPlain, nWalks));
    const Summary walkColdRate = summarize(toRate(walkCold, nWalks));
    const Summary walkWarmRate = summarize(toRate(walkWarm, nWalks));
    const double walkColdSpeedup =
        walkColdRate.median / walkPlainRate.median;
    const double walkSpeedup = walkWarmRate.median / walkPlainRate.median;

    // ----- section 2: raw solve throughput ------------------------------
    const auto space = machine::enumerateUserConfigs();
    std::vector<machine::MachineConfig> ring;
    for (size_t i = 0; i < 32; ++i)
        ring.push_back(space[(i * 37) % space.size()]);
    const std::vector<sched::AppDemand> apps = harness::mixApps(
        workload::findMix("mix9"), workload::Scenario::kOblivious);
    const int cycles = quick ? 60 : 300;
    const double nSolves = double(cycles) * double(ring.size());

    {
        // Invariance self-check for the ring before timing it.
        sched::SolveCache cache(64);
        sched::SystemOutcome cached, plain;
        for (const auto& cfg : ring) {
            sched.solve(cfg, {1.0, 1.0}, apps, scratch, plain);
            cache.solve(sched, cfg, {1.0, 1.0}, apps, scratch, cached);
            if (plain.totalIps != cached.totalIps ||
                plain.spinFraction != cached.spinFraction) {
                std::fprintf(stderr,
                             "FAIL: cached solve diverged on config %s\n",
                             cfg.toString().c_str());
                return 1;
            }
        }
    }
    std::vector<double> solvePlain, solveCached;
    volatile double sink = 0.0;
    for (int r = 0; r < reps; ++r) {
        solvePlain.push_back(timeSec([&] {
            sched::SystemOutcome out;
            for (int k = 0; k < cycles; ++k) {
                for (const auto& cfg : ring) {
                    sched.solve(cfg, {1.0, 1.0}, apps, scratch, out);
                    sink = sink + out.totalIps;
                }
            }
        }));
        solveCached.push_back(timeSec([&] {
            sched::SolveCache cache(64);
            for (int k = 0; k < cycles; ++k) {
                for (const auto& cfg : ring) {
                    const sched::SystemOutcome* out = cache.solveRef(
                        sched, cfg, {1.0, 1.0}, apps, scratch);
                    sink = sink + out->totalIps;
                }
            }
        }));
    }
    const Summary solvePlainRate = summarize(toRate(solvePlain, nSolves));
    const Summary solveCachedRate = summarize(toRate(solveCached, nSolves));
    const double solveSpeedup =
        solveCachedRate.median / solvePlainRate.median;

    // ----- section 3: end-to-end traced run -----------------------------
    harness::ExperimentOptions e2e;
    e2e.capWatts = 140.0;
    e2e.durationSec = quick ? 6.0 : 20.0;
    e2e.statsWindowSec = e2e.durationSec / 2.0;
    e2e.seed = seed;
    const std::vector<sched::AppDemand> e2eApps = harness::singleApp("x264");

    harness::ExperimentOptions uncachedOptions = e2e;
    uncachedOptions.platform.solveCacheCapacity = 0;
    {
        const auto a = harness::runExperiment(harness::GovernorKind::kPupil,
                                              e2eApps, e2e);
        const auto b = harness::runExperiment(harness::GovernorKind::kPupil,
                                              e2eApps, uncachedOptions);
        if (a.aggregatePerf != b.aggregatePerf ||
            a.meanPowerWatts != b.meanPowerWatts) {
            std::fprintf(stderr, "FAIL: cached end-to-end run diverged "
                                 "(%.17g vs %.17g normalized perf)\n",
                         a.aggregatePerf, b.aggregatePerf);
            return 1;
        }
    }
    std::vector<double> e2ePlainMs, e2eCachedMs;
    for (int r = 0; r < reps; ++r) {
        e2ePlainMs.push_back(1e3 * timeSec([&] {
            harness::runExperiment(harness::GovernorKind::kPupil, e2eApps,
                                   uncachedOptions);
        }));
        e2eCachedMs.push_back(1e3 * timeSec([&] {
            harness::runExperiment(harness::GovernorKind::kPupil, e2eApps,
                                   e2e);
        }));
    }
    const Summary e2ePlain = summarize(e2ePlainMs);
    const Summary e2eCached = summarize(e2eCachedMs);
    const double e2eSpeedup = e2ePlain.median / e2eCached.median;

    // ----- report -------------------------------------------------------
    util::Table table({"section", "uncached", "cached", "speedup"});
    auto rate2 = [](const Summary& s) {
        return util::Table::cell(s.median, 1) + " /s";
    };
    table.addRow({"walker first convergence (walks/s)",
                  rate2(walkPlainRate), rate2(walkColdRate),
                  util::Table::cell(walkColdSpeedup, 2)});
    table.addRow({"walker re-convergence, warm (walks/s)",
                  rate2(walkPlainRate), rate2(walkWarmRate),
                  util::Table::cell(walkSpeedup, 2)});
    table.addRow({"raw solve throughput (solves/s)",
                  util::Table::cell(solvePlainRate.median, 0),
                  util::Table::cell(solveCachedRate.median, 0),
                  util::Table::cell(solveSpeedup, 2)});
    table.addRow({"end-to-end PUPiL run (ms)",
                  util::Table::cell(e2ePlain.median, 1),
                  util::Table::cell(e2eCached.median, 1),
                  util::Table::cell(e2eSpeedup, 2)});
    table.print(std::cout);
    std::printf("\nDecision-invariance self-checks passed: cached and "
                "uncached results are bit-identical.\n");
    std::printf("Walker-convergence speedup target (>= 3x): %s\n",
                walkSpeedup >= 3.0 ? "met" : "NOT MET");

    std::string json;
    json += "{\n  \"schema\": \"pupil-perf-regression-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"walker_convergence\": {\n";
    json += "    \"uncached_walks_per_sec\": " + jsonSummary(walkPlainRate) +
            ",\n";
    json += "    \"cold_cached_walks_per_sec\": " +
            jsonSummary(walkColdRate) + ",\n";
    json += "    \"warm_cached_walks_per_sec\": " +
            jsonSummary(walkWarmRate) + ",\n";
    json += "    \"cold_speedup\": " + trace::formatDouble(walkColdSpeedup) +
            ",\n";
    json += "    \"speedup\": " + trace::formatDouble(walkSpeedup) + "\n"
            "  },\n";
    json += "  \"solve_throughput\": {\n";
    json += "    \"uncached_solves_per_sec\": " +
            jsonSummary(solvePlainRate) + ",\n";
    json += "    \"cached_solves_per_sec\": " + jsonSummary(solveCachedRate) +
            ",\n";
    json += "    \"speedup\": " + trace::formatDouble(solveSpeedup) + "\n"
            "  },\n";
    json += "  \"end_to_end\": {\n";
    json += "    \"uncached_ms\": " + jsonSummary(e2ePlain) + ",\n";
    json += "    \"cached_ms\": " + jsonSummary(e2eCached) + ",\n";
    json += "    \"speedup\": " + trace::formatDouble(e2eSpeedup) + "\n"
            "  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("\nWrote %s\n", outPath.c_str());

    // The tentpole's headline claim is enforced here, not just reported:
    // regressing the walker below 3x fails the bench (and CI).
    if (walkSpeedup < 3.0)
        return 2;
    return 0;
}
