/**
 * @file
 * Reproduces Fig. 6 and Table 5: the ratio of PUPiL to RAPL weighted
 * speedup for the 12 multi-application mixes (Table 4), in both the
 * cooperative scenario (8 threads per app) and the oblivious scenario
 * (32 threads per app), across the five power caps.
 *
 * Weighted speedup follows Section 4.3.2: each application's performance
 * in the mix is weighted by its solo performance (here: its optimal solo
 * rate under the same cap). Runs are completion experiments -- every app
 * carries a fixed amount of work and exits when done, so a slow, polling
 * application poisons the machine exactly as long as it actually runs.
 * Oracle searches and the 240 experiment runs execute on the SweepRunner
 * pool (--serial / PUPIL_SWEEP_THREADS control the worker count).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

namespace {

/** Solo work seconds each app is given (at its solo-optimal rate). */
double
workSeconds()
{
    return std::getenv("PUPIL_BENCH_FAST") != nullptr ? 90.0 : 180.0;
}

const std::vector<workload::Scenario> kScenarios = {
    workload::Scenario::kCooperative, workload::Scenario::kOblivious};

const std::vector<harness::GovernorKind> kKinds = {
    harness::GovernorKind::kRapl, harness::GovernorKind::kPupil};

}  // namespace

int
main(int argc, char** argv)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<double>& caps = bench::powerCaps();
    const std::vector<workload::Mix>& mixes = workload::multiAppMixes();
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    std::printf("=== Fig. 6 / Table 5: PUPiL-to-RAPL weighted speedup "
                "ratios ===\n\n");

    // One cell per (scenario, cap, mix); each needs per-app solo-optimal
    // work targets from the oracle before its two experiments can run.
    const size_t cells = kScenarios.size() * caps.size() * mixes.size();
    std::vector<std::vector<double>> cellWork(cells);
    runner.forEach(cells, [&](size_t i) {
        const workload::Scenario scenario =
            kScenarios[i / (caps.size() * mixes.size())];
        const double cap = caps[i / mixes.size() % caps.size()];
        const workload::Mix& mix = mixes[i % mixes.size()];
        for (const auto& app : harness::mixApps(mix, scenario)) {
            const auto oracle = capping::searchOptimal(sched, pm, {app}, cap);
            cellWork[i].push_back(oracle.appItemsPerSec[0] * workSeconds());
        }
    });

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(cells * kKinds.size());
    for (size_t i = 0; i < cells; ++i) {
        const workload::Scenario scenario =
            kScenarios[i / (caps.size() * mixes.size())];
        const double cap = caps[i / mixes.size() % caps.size()];
        const workload::Mix& mix = mixes[i % mixes.size()];
        for (harness::GovernorKind kind : kKinds) {
            harness::SweepJob job;
            job.kind = kind;
            job.apps = harness::mixApps(mix, scenario);
            job.options.capWatts = cap;
            job.options.workItems = cellWork[i];
            job.label = mix.name;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    std::vector<std::vector<double>> summary(2);  // per scenario, per cap
    for (size_t s = 0; s < kScenarios.size(); ++s) {
        std::printf("--- %s scenario ---\n",
                    workload::scenarioName(kScenarios[s]));
        util::Table table({"mix", "60W", "100W", "140W", "180W", "220W"});
        std::vector<std::vector<double>> perCap(caps.size());
        std::vector<std::vector<std::string>> rows;
        for (const auto& mix : mixes)
            rows.push_back({mix.name});
        for (size_t c = 0; c < caps.size(); ++c) {
            for (size_t m = 0; m < mixes.size(); ++m) {
                const size_t cell =
                    (s * caps.size() + c) * mixes.size() + m;
                double ws[2] = {0.0, 0.0};
                bool ok = true;
                for (size_t g = 0; g < kKinds.size(); ++g) {
                    const harness::SweepOutcome& outcome =
                        outcomes[cell * kKinds.size() + g];
                    ok = ok && outcome.ok;
                    if (!outcome.ok)
                        continue;
                    const auto& times = outcome.result.completionTimes;
                    for (double t : times)
                        ws[g] += workSeconds() / t / double(times.size());
                }
                if (!ok || ws[0] <= 0.0) {
                    rows[m].push_back("err");
                    continue;
                }
                const double ratio = ws[1] / ws[0];
                perCap[c].push_back(ratio);
                rows[m].push_back(util::Table::cell(ratio));
            }
        }
        for (auto& row : rows)
            table.addRow(row);
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (size_t c = 0; c < perCap.size(); ++c) {
            const double hm = util::harmonicMean(perCap[c]);
            summary[s].push_back(hm);
            meanRow.push_back(util::Table::cell(hm));
        }
        table.addSeparator();
        table.addRow(meanRow);
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Table 5 summary: ratio of PUPiL to RAPL performance "
                "===\n");
    util::Table t5({"Power Cap", "Cooperative", "Oblivious"});
    for (size_t c = 0; c < caps.size(); ++c) {
        t5.addRow({util::Table::cell((long long)caps[c]) + "W",
                   util::Table::cell(summary[0][c]),
                   util::Table::cell(summary[1][c])});
    }
    t5.print(std::cout);
    std::printf(
        "\nPaper reference (Table 5):\n"
        "  60W  1.43 / 2.53    100W 1.21 / 2.56    140W 1.18 / 2.44\n"
        "  180W 1.18 / 2.46    220W 1.21 / 2.43\n"
        "Reproduction note: the shape holds (PUPiL >= RAPL, spin-heavy\n"
        "mixes gain most, oblivious > cooperative); the oblivious\n"
        "magnitudes are smaller than the paper's because the analytic\n"
        "contention model understates real scheduling interference (see\n"
        "EXPERIMENTS.md).\n");
    return 0;
}
