/**
 * @file
 * Reproduces Fig. 6 and Table 5: the ratio of PUPiL to RAPL weighted
 * speedup for the 12 multi-application mixes (Table 4), in both the
 * cooperative scenario (8 threads per app) and the oblivious scenario
 * (32 threads per app), across the five power caps.
 *
 * Weighted speedup follows Section 4.3.2: each application's performance
 * in the mix is weighted by its solo performance (here: its optimal solo
 * rate under the same cap). Runs are completion experiments -- every app
 * carries a fixed amount of work and exits when done, so a slow, polling
 * application poisons the machine exactly as long as it actually runs.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

namespace {

/** Solo work seconds each app is given (at its solo-optimal rate). */
double
workSeconds()
{
    return std::getenv("PUPIL_BENCH_FAST") != nullptr ? 90.0 : 180.0;
}

}  // namespace

int
main()
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    std::printf("=== Fig. 6 / Table 5: PUPiL-to-RAPL weighted speedup "
                "ratios ===\n\n");

    std::vector<std::vector<double>> summary(2);  // per scenario, per cap
    for (auto scenario : {workload::Scenario::kCooperative,
                          workload::Scenario::kOblivious}) {
        const size_t scenarioIdx =
            scenario == workload::Scenario::kCooperative ? 0 : 1;
        std::printf("--- %s scenario ---\n",
                    workload::scenarioName(scenario));
        util::Table table({"mix", "60W", "100W", "140W", "180W", "220W"});
        std::vector<std::vector<double>> perCap(bench::powerCaps().size());
        std::vector<std::vector<std::string>> rows;
        for (const auto& mix : workload::multiAppMixes())
            rows.push_back({mix.name});
        for (size_t c = 0; c < bench::powerCaps().size(); ++c) {
            const double cap = bench::powerCaps()[c];
            for (size_t m = 0; m < workload::multiAppMixes().size(); ++m) {
                const auto& mix = workload::multiAppMixes()[m];
                const auto apps = harness::mixApps(mix, scenario);
                harness::ExperimentOptions options;
                options.capWatts = cap;
                std::vector<double> soloTime;
                for (const auto& app : apps) {
                    const auto oracle =
                        capping::searchOptimal(sched, pm, {app}, cap);
                    options.workItems.push_back(oracle.appItemsPerSec[0] *
                                                workSeconds());
                    soloTime.push_back(workSeconds());
                }
                double ws[2] = {0.0, 0.0};
                int g = 0;
                for (auto kind : {harness::GovernorKind::kRapl,
                                  harness::GovernorKind::kPupil}) {
                    const auto result =
                        harness::runExperiment(kind, apps, options);
                    for (size_t i = 0; i < apps.size(); ++i)
                        ws[g] += soloTime[i] / result.completionTimes[i] /
                                 double(apps.size());
                    ++g;
                }
                const double ratio = ws[1] / ws[0];
                perCap[c].push_back(ratio);
                rows[m].push_back(util::Table::cell(ratio));
            }
        }
        for (auto& row : rows)
            table.addRow(row);
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (size_t c = 0; c < perCap.size(); ++c) {
            const double hm = util::harmonicMean(perCap[c]);
            summary[scenarioIdx].push_back(hm);
            meanRow.push_back(util::Table::cell(hm));
        }
        table.addSeparator();
        table.addRow(meanRow);
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Table 5 summary: ratio of PUPiL to RAPL performance "
                "===\n");
    util::Table t5({"Power Cap", "Cooperative", "Oblivious"});
    for (size_t c = 0; c < bench::powerCaps().size(); ++c) {
        t5.addRow({util::Table::cell((long long)bench::powerCaps()[c]) + "W",
                   util::Table::cell(summary[0][c]),
                   util::Table::cell(summary[1][c])});
    }
    t5.print(std::cout);
    std::printf(
        "\nPaper reference (Table 5):\n"
        "  60W  1.43 / 2.53    100W 1.21 / 2.56    140W 1.18 / 2.44\n"
        "  180W 1.18 / 2.46    220W 1.21 / 2.43\n"
        "Reproduction note: the shape holds (PUPiL >= RAPL, spin-heavy\n"
        "mixes gain most, oblivious > cooperative); the oblivious\n"
        "magnitudes are smaller than the paper's because the analytic\n"
        "contention model understates real scheduling interference (see\n"
        "EXPERIMENTS.md).\n");
    return 0;
}
