/**
 * @file
 * Datacenter-scale sweep over the hierarchical budget tree.
 *
 * Two tiers of tree:
 *
 *  - FULL-STACK tiers (64 / 256 / 512 nodes): every leaf is a complete
 *    Platform + governor + RAPL stack, the legacy control plane
 *    (hysteresis off) -- the configuration the pinned golden digests
 *    cover. Reports throughput-under-budget, steady-state rebalance
 *    latency, the step/control wall-time ratio check_perf.py gates, the
 *    serial-vs-parallel digest determinism bit, and the worst
 *    budget-conservation error at any level in any period.
 *
 *  - SURROGATE tiers (4096 / 16384 / 51200 nodes): the event-driven
 *    control plane (hysteresisWatts > 0) over calibrated O(1) surrogate
 *    leaves, with one full-stack calibration sample per 64 nodes feeding
 *    the shared per-(app, governor) response tables. Reports
 *    steady-state control/step latency (median + p95), the
 *    faster-than-real-time bit (steady-state simulated period costs less
 *    wall time than it simulates), the event-suppression counters, and
 *    the same determinism and conservation gates.
 *
 * Latency methodology: per-period wall-time samples from
 * BudgetTree::controlWallSamples(), with the first quarter of the run
 * (minimum 2 periods) discarded as warm-up -- the first periods carry
 * one-time costs (initial grant fan-out, allocator warm-up, fault-window
 * onsets) that used to skew the all-period average this bench once
 * reported. Steady-state median and p95 are reported separately.
 *
 * --quick runs the 64-node full-stack tier and the 4096-node surrogate
 * tier (the bench_smoke/CI tier); the full run sweeps all six. Results
 * go to stdout and to a machine-readable BENCH_cluster.json (override
 * with --out PATH) that bench/check_perf.py compares against
 * bench/perf_baseline.json.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/budget_tree.h"
#include "faults/schedule.h"
#include "trace/export.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

namespace {

constexpr int kNodesPerRack = 8;
/** One full-stack calibration sample per this many surrogate-tier nodes. */
constexpr int kSampleEvery = 64;
/** Event-driven band for the surrogate tiers (Watts). */
constexpr double kHysteresisWatts = 2.0;

using cluster::BudgetTree;

struct ScaleResult
{
    int nodes = 0;
    int racks = 0;
    int periods = 0;
    double throughput = 0.0;        ///< mean normalized perf, 2nd half
    double perfPerNode = 0.0;
    double maxBudgetErrorWatts = 0.0;
    double rebalanceLatencyMeanMs = 0.0;  ///< all periods incl. warm-up
    double rebalanceLatencyMs = 0.0;      ///< steady-state median
    double rebalanceLatencyP95Ms = 0.0;   ///< steady-state p95
    double controlStepRatio = 0.0;  ///< stepWall / controlWall
    double parallelSpeedup = 0.0;   ///< serial stepWall / parallel stepWall
    int lossEvents = 0;
    int rejoinEvents = 0;
    int shifts = 0;
    bool deterministic = false;
};

struct SurrogateResult
{
    int nodes = 0;
    int racks = 0;
    int periods = 0;
    int fullStackNodes = 0;
    double steadyControlMedianMs = 0.0;
    double steadyControlP95Ms = 0.0;
    double steadyStepMedianMs = 0.0;
    double maxBudgetErrorWatts = 0.0;
    double budgetErrorLimitWatts = 0.0;
    uint64_t reportsSuppressed = 0;
    uint64_t rebalancesSuppressed = 0;
    int shifts = 0;
    int lossEvents = 0;
    bool deterministic = false;
    bool fasterThanRealTime = false;
    bool budgetErrorOk = false;
};

BudgetTree::Options
treeOptions(int nodes, int threads)
{
    BudgetTree::Options options;
    options.globalBudgetWatts = 150.0 * nodes;  // tight vs the 270 W TDP
    options.periodSec = 1.0;
    options.threads = threads;
    return options;
}

/** A 3-level tree: nodes/8 racks, catalog workloads and governor kinds
 *  cycled node by node, per-node seeds derived from the sweep root. */
BudgetTree
makeTree(int nodes, int threads, uint64_t seed)
{
    BudgetTree tree(treeOptions(nodes, threads));
    const auto& catalog = workload::benchmarkCatalog();
    int id = 0;
    for (int r = 0; r < nodes / kNodesPerRack; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < kNodesPerRack; ++n, ++id) {
            const auto& app = catalog[size_t(id * 7) % catalog.size()];
            const auto kind = (id % 4 == 3)
                                  ? harness::GovernorKind::kRapl
                                  : harness::GovernorKind::kPupil;
            tree.addNode(rack,
                         "r" + std::to_string(r) + "n" + std::to_string(n),
                         harness::singleApp(app.name, 16), kind,
                         harness::SweepRunner::deriveSeed(seed, size_t(id)));
        }
    }
    return tree;
}

/**
 * A surrogate-tier tree: same topology, workload cycle, and governor mix
 * as makeTree, but every node except one in kSampleEvery is a surrogate
 * leaf, the sampled full-stack nodes calibrate the shared response
 * tables, and the event-driven hysteresis band is on.
 */
BudgetTree
makeSurrogateTree(int nodes, int threads, uint64_t seed)
{
    BudgetTree::Options options = treeOptions(nodes, threads);
    options.hysteresisWatts = kHysteresisWatts;
    BudgetTree tree(options);
    const auto& catalog = workload::benchmarkCatalog();
    int id = 0;
    for (int r = 0; r < nodes / kNodesPerRack; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < kNodesPerRack; ++n, ++id) {
            const auto& app = catalog[size_t(id * 7) % catalog.size()];
            const auto kind = (id % 4 == 3)
                                  ? harness::GovernorKind::kRapl
                                  : harness::GovernorKind::kPupil;
            const std::string name =
                "r" + std::to_string(r) + "n" + std::to_string(n);
            const uint64_t nodeSeed =
                harness::SweepRunner::deriveSeed(seed, size_t(id));
            if (id % kSampleEvery == 0) {
                const size_t i = tree.addNode(
                    rack, name, harness::singleApp(app.name, 16), kind,
                    nodeSeed);
                tree.addCalibrationSource(rack, i, app.name, kind);
            } else {
                tree.addSurrogateNode(rack, name, app.name, kind, nodeSeed);
            }
        }
    }
    return tree;
}

/** One node-loss window per rack, staggered so rebalances keep firing. */
std::string
faultSpec(int nodes, int maxRacks)
{
    std::string spec;
    const int racks = std::min(nodes / kNodesPerRack, maxRacks);
    for (int r = 0; r < racks; ++r) {
        const double start = 4.0 + double(r % 5);
        const double end = start + 6.0;
        if (!spec.empty())
            spec += ';';
        spec += "node-loss,r" + std::to_string(r) + "n" +
                std::to_string(r % kNodesPerRack) + ',' +
                trace::formatDouble(start) + ',' + trace::formatDouble(end);
    }
    return spec;
}

struct RunOutcome
{
    double throughput = 0.0;
    double maxBudgetError = 0.0;
    uint64_t digest = 0;
};

RunOutcome
drive(BudgetTree& tree, const faults::FaultSchedule& schedule,
      double durationSec)
{
    tree.setFaultSchedule(&schedule);
    RunOutcome outcome;
    double perfSum = 0.0;
    int perfSamples = 0;
    for (double t = 1.0; t <= durationSec + 1e-9; t += 1.0) {
        tree.run(t);
        outcome.maxBudgetError =
            std::max(outcome.maxBudgetError, tree.budgetErrorWatts());
        if (t > durationSec / 2.0) {  // converged window only
            perfSum += tree.aggregatePerformance();
            ++perfSamples;
        }
    }
    outcome.throughput = perfSamples > 0 ? perfSum / perfSamples : 0.0;
    outcome.digest = tree.stateDigest();
    return outcome;
}

/** Drop the warm-up quarter (minimum 2 periods) of per-period samples. */
std::vector<double>
steadySamples(const std::vector<double>& samples)
{
    const size_t skip =
        std::min(samples.size(),
                 std::max<size_t>(2, samples.size() / 4));
    return std::vector<double>(samples.begin() + long(skip), samples.end());
}

ScaleResult
runScale(int nodes, double durationSec, uint64_t seed, bool serialOnly)
{
    const auto schedule =
        faults::FaultSchedule::parse(faultSpec(nodes, nodes));

    BudgetTree serial = makeTree(nodes, 1, seed);
    const RunOutcome serialOut = drive(serial, schedule, durationSec);

    BudgetTree parallel = makeTree(nodes, serialOnly ? 1 : 0, seed);
    const RunOutcome parallelOut = drive(parallel, schedule, durationSec);

    ScaleResult result;
    result.nodes = nodes;
    result.racks = nodes / kNodesPerRack;
    result.periods = parallel.periods();
    result.throughput = parallelOut.throughput;
    result.perfPerNode = parallelOut.throughput / double(nodes);
    result.maxBudgetErrorWatts =
        std::max(serialOut.maxBudgetError, parallelOut.maxBudgetError);
    // Latency figures come from the serial run: both numerator and
    // denominator then scale with single-thread host speed, so the
    // step/control ratio check_perf.py gates is independent of the CI
    // runner's core count. The headline latency is the steady-state
    // median (the all-period mean keeps the warm-up transient and is
    // reported separately as the skewed legacy figure).
    result.rebalanceLatencyMeanMs =
        1e3 * serial.controlWallSec() / double(serial.periods());
    const std::vector<double> steady =
        steadySamples(serial.controlWallSamples());
    result.rebalanceLatencyMs = 1e3 * util::percentile(steady, 50.0);
    result.rebalanceLatencyP95Ms = 1e3 * util::percentile(steady, 95.0);
    result.controlStepRatio =
        serial.stepWallSec() / serial.controlWallSec();
    result.parallelSpeedup =
        parallel.stepWallSec() > 0.0
            ? serial.stepWallSec() / parallel.stepWallSec()
            : 0.0;
    result.lossEvents = parallel.lossEvents();
    result.rejoinEvents = parallel.rejoinEvents();
    result.shifts = parallel.shifts();
    result.deterministic = serialOut.digest == parallelOut.digest &&
                           serialOut.throughput == parallelOut.throughput;
    return result;
}

SurrogateResult
runSurrogateScale(int nodes, double durationSec, uint64_t seed,
                  bool serialOnly)
{
    // Fault windows on the first 32 racks only: FaultSchedule::anyActive
    // is O(events) per node per period, so a 6400-entry schedule would
    // bill the fault *bookkeeping*, not the control plane, at 50k nodes.
    const auto schedule =
        faults::FaultSchedule::parse(faultSpec(nodes, 32));

    BudgetTree serial = makeSurrogateTree(nodes, 1, seed);
    const RunOutcome serialOut = drive(serial, schedule, durationSec);

    BudgetTree parallel = makeSurrogateTree(nodes, serialOnly ? 1 : 0, seed);
    const RunOutcome parallelOut = drive(parallel, schedule, durationSec);

    SurrogateResult result;
    result.nodes = nodes;
    result.racks = nodes / kNodesPerRack;
    result.periods = parallel.periods();
    result.fullStackNodes = (nodes + kSampleEvery - 1) / kSampleEvery;
    const std::vector<double> control =
        steadySamples(parallel.controlWallSamples());
    const std::vector<double> step =
        steadySamples(parallel.stepWallSamples());
    result.steadyControlMedianMs = 1e3 * util::percentile(control, 50.0);
    result.steadyControlP95Ms = 1e3 * util::percentile(control, 95.0);
    result.steadyStepMedianMs = 1e3 * util::percentile(step, 50.0);
    result.maxBudgetErrorWatts =
        std::max(serialOut.maxBudgetError, parallelOut.maxBudgetError);
    result.budgetErrorLimitWatts = 1e-7 * 150.0 * nodes + 1e-9;
    result.reportsSuppressed = parallel.reportsSuppressed();
    result.rebalancesSuppressed = parallel.rebalancesSuppressed();
    result.shifts = parallel.shifts();
    result.lossEvents = parallel.lossEvents();
    result.deterministic = serialOut.digest == parallelOut.digest;
    // Faster than real time: one steady-state simulated period (control
    // plane + node stepping) costs less wall time than the period it
    // simulates.
    result.fasterThanRealTime =
        1e-3 * (result.steadyControlMedianMs + result.steadyStepMedianMs) <
        treeOptions(nodes, 1).periodSec;
    result.budgetErrorOk =
        result.maxBudgetErrorWatts <= result.budgetErrorLimitWatts;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool serialOnly = false;
    std::string outPath = "BENCH_cluster.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--serial")
            serialOnly = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const uint64_t seed = bench::envSeed(42);
    const double durationSec = quick ? 20.0 : 60.0;
    const double surrogateDurationSec = quick ? 12.0 : 20.0;
    const std::vector<int> scales =
        quick ? std::vector<int>{64} : std::vector<int>{64, 256, 512};
    const std::vector<int> surrogateScales =
        quick ? std::vector<int>{4096}
              : std::vector<int>{4096, 16384, 51200};

    std::printf("=== Cluster-scale budget tree (%s mode, %g s, seed %llu) "
                "===\n\n",
                quick ? "quick" : "full", durationSec,
                static_cast<unsigned long long>(seed));

    std::vector<ScaleResult> results;
    int failures = 0;
    for (int nodes : scales) {
        const ScaleResult r = runScale(nodes, durationSec, seed, serialOnly);
        if (!r.deterministic) {
            std::fprintf(stderr,
                         "FAIL: serial and parallel stepping diverged at "
                         "%d nodes\n",
                         nodes);
            ++failures;
        }
        if (r.maxBudgetErrorWatts > 1e-6) {
            std::fprintf(stderr,
                         "FAIL: budget conservation error %.9f W at %d "
                         "nodes\n",
                         r.maxBudgetErrorWatts, nodes);
            ++failures;
        }
        results.push_back(r);
    }

    util::Table table({"nodes", "racks", "perf/node", "rebal ms med",
                       "rebal ms p95", "step/control", "par speedup",
                       "loss", "shifts"});
    for (const ScaleResult& r : results) {
        table.addRow({std::to_string(r.nodes), std::to_string(r.racks),
                      util::Table::cell(r.perfPerNode, 4),
                      util::Table::cell(r.rebalanceLatencyMs, 3),
                      util::Table::cell(r.rebalanceLatencyP95Ms, 3),
                      util::Table::cell(r.controlStepRatio, 1),
                      util::Table::cell(r.parallelSpeedup, 2),
                      std::to_string(r.lossEvents),
                      std::to_string(r.shifts)});
    }
    table.print(std::cout);

    std::printf("\n--- Surrogate tiers (event-driven, band %g W, 1 "
                "full-stack sample per %d nodes) ---\n\n",
                kHysteresisWatts, kSampleEvery);
    std::vector<SurrogateResult> surrogateResults;
    for (int nodes : surrogateScales) {
        const SurrogateResult r =
            runSurrogateScale(nodes, surrogateDurationSec, seed, serialOnly);
        if (!r.deterministic) {
            std::fprintf(stderr,
                         "FAIL: surrogate serial/parallel digests diverged "
                         "at %d nodes\n",
                         nodes);
            ++failures;
        }
        if (!r.budgetErrorOk) {
            std::fprintf(stderr,
                         "FAIL: surrogate budget error %.9f W exceeds "
                         "%.9f W at %d nodes\n",
                         r.maxBudgetErrorWatts, r.budgetErrorLimitWatts,
                         nodes);
            ++failures;
        }
        if (!r.fasterThanRealTime) {
            std::fprintf(stderr,
                         "FAIL: %d-node tree slower than real time "
                         "(%.1f ms control + %.1f ms step per 1 s period)\n",
                         nodes, r.steadyControlMedianMs,
                         r.steadyStepMedianMs);
            ++failures;
        }
        surrogateResults.push_back(r);
    }

    util::Table stable({"nodes", "racks", "ctrl ms med", "ctrl ms p95",
                        "step ms med", "rt", "suppressed", "shifts",
                        "loss"});
    for (const SurrogateResult& r : surrogateResults) {
        stable.addRow(
            {std::to_string(r.nodes), std::to_string(r.racks),
             util::Table::cell(r.steadyControlMedianMs, 3),
             util::Table::cell(r.steadyControlP95Ms, 3),
             util::Table::cell(r.steadyStepMedianMs, 3),
             r.fasterThanRealTime ? "yes" : "NO",
             std::to_string(r.reportsSuppressed + r.rebalancesSuppressed),
             std::to_string(r.shifts), std::to_string(r.lossEvents)});
    }
    stable.print(std::cout);
    std::printf("\nDeterminism: serial and parallel stepping digests %s.\n",
                failures == 0 ? "match at every scale" : "DIVERGED");

    // The headline entries check_perf.py gates are the largest scale of
    // each tier (in CI's quick mode: 64 full-stack, 4096 surrogate).
    const ScaleResult& head = results.back();
    const SurrogateResult& shead = surrogateResults.back();
    std::string json;
    json += "{\n  \"schema\": \"pupil-cluster-scale-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"cluster_scale\": {\n";
    json += "    \"nodes\": " + std::to_string(head.nodes) + ",\n";
    json += "    \"racks\": " + std::to_string(head.racks) + ",\n";
    json += "    \"periods\": " + std::to_string(head.periods) + ",\n";
    json += "    \"throughput_under_budget\": " +
            trace::formatDouble(head.throughput) + ",\n";
    json += "    \"perf_per_node\": " +
            trace::formatDouble(head.perfPerNode) + ",\n";
    json += "    \"max_budget_error_watts\": " +
            trace::formatDouble(head.maxBudgetErrorWatts) + ",\n";
    json += "    \"rebalance_latency_ms\": " +
            trace::formatDouble(head.rebalanceLatencyMs) + ",\n";
    json += "    \"rebalance_latency_p95_ms\": " +
            trace::formatDouble(head.rebalanceLatencyP95Ms) + ",\n";
    json += "    \"rebalance_latency_mean_ms\": " +
            trace::formatDouble(head.rebalanceLatencyMeanMs) + ",\n";
    json += "    \"control_step_ratio\": " +
            trace::formatDouble(head.controlStepRatio) + ",\n";
    json += "    \"parallel_speedup\": " +
            trace::formatDouble(head.parallelSpeedup) + ",\n";
    json += "    \"loss_events\": " + std::to_string(head.lossEvents) +
            ",\n";
    json += "    \"rejoin_events\": " + std::to_string(head.rejoinEvents) +
            ",\n";
    json += "    \"shifts\": " + std::to_string(head.shifts) + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(head.deterministic ? "1" : "0") + "\n";
    json += "  },\n";
    json += "  \"cluster_surrogate\": {\n";
    json += "    \"nodes\": " + std::to_string(shead.nodes) + ",\n";
    json += "    \"racks\": " + std::to_string(shead.racks) + ",\n";
    json += "    \"periods\": " + std::to_string(shead.periods) + ",\n";
    json += "    \"full_stack_samples\": " +
            std::to_string(shead.fullStackNodes) + ",\n";
    json += "    \"steady_control_ms_median\": " +
            trace::formatDouble(shead.steadyControlMedianMs) + ",\n";
    json += "    \"steady_control_ms_p95\": " +
            trace::formatDouble(shead.steadyControlP95Ms) + ",\n";
    json += "    \"steady_step_ms_median\": " +
            trace::formatDouble(shead.steadyStepMedianMs) + ",\n";
    json += "    \"max_budget_error_watts\": " +
            trace::formatDouble(shead.maxBudgetErrorWatts) + ",\n";
    json += "    \"reports_suppressed\": " +
            std::to_string(shead.reportsSuppressed) + ",\n";
    json += "    \"rebalances_suppressed\": " +
            std::to_string(shead.rebalancesSuppressed) + ",\n";
    json += "    \"shifts\": " + std::to_string(shead.shifts) + ",\n";
    json += "    \"faster_than_real_time\": " +
            std::string(shead.fasterThanRealTime ? "1" : "0") + ",\n";
    json += "    \"budget_error_ok\": " +
            std::string(shead.budgetErrorOk ? "1" : "0") + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(shead.deterministic ? "1" : "0") + "\n";
    json += "  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", outPath.c_str());
    return failures == 0 ? 0 : 2;
}
