/**
 * @file
 * Datacenter-scale sweep over the hierarchical budget tree.
 *
 * Builds 3-level datacenter -> rack -> node trees (8 nodes per rack,
 * mixed workloads from the benchmark catalog, a mixed governor
 * population, and one scheduled node-loss window per rack), steps them
 * to steady state, and reports:
 *
 *  - throughput-under-budget: aggregate normalized performance over the
 *    converged second half of the run (deterministic for a fixed
 *    PUPIL_SEED, so the per-node figure is byte-stable across hosts);
 *  - rebalance latency: control-plane wall time (membership, both
 *    rebalance levels, batched cap pushes) per period, plus the
 *    dimensionless step/control wall-time ratio check_perf.py gates;
 *  - parallel stepping speedup: serial vs pooled node stepping, which
 *    by construction must agree bit-for-bit -- the determinism check
 *    compares full state digests and fails the bench on any mismatch;
 *  - worst budget-conservation error seen at any level in any period.
 *
 * --quick runs the 64-node tree only (the bench_smoke/CI tier); the full
 * run sweeps 64/256/512 nodes. Results go to stdout and to a
 * machine-readable BENCH_cluster.json (override with --out PATH) that
 * bench/check_perf.py compares against bench/perf_baseline.json.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cluster/budget_tree.h"
#include "faults/schedule.h"
#include "trace/export.h"
#include "util/table.h"

using namespace pupil;

namespace {

struct ScaleResult
{
    int nodes = 0;
    int racks = 0;
    int periods = 0;
    double throughput = 0.0;        ///< mean normalized perf, 2nd half
    double perfPerNode = 0.0;
    double maxBudgetErrorWatts = 0.0;
    double rebalanceLatencyMs = 0.0;
    double controlStepRatio = 0.0;  ///< stepWall / controlWall
    double parallelSpeedup = 0.0;   ///< serial stepWall / parallel stepWall
    int lossEvents = 0;
    int rejoinEvents = 0;
    int shifts = 0;
    bool deterministic = false;
};

constexpr int kNodesPerRack = 8;

using cluster::BudgetTree;

BudgetTree::Options
treeOptions(int nodes, int threads)
{
    BudgetTree::Options options;
    options.globalBudgetWatts = 150.0 * nodes;  // tight vs the 270 W TDP
    options.periodSec = 1.0;
    options.threads = threads;
    return options;
}

/** A 3-level tree: nodes/8 racks, catalog workloads and governor kinds
 *  cycled node by node, per-node seeds derived from the sweep root. */
BudgetTree
makeTree(int nodes, int threads, uint64_t seed)
{
    BudgetTree tree(treeOptions(nodes, threads));
    const auto& catalog = workload::benchmarkCatalog();
    int id = 0;
    for (int r = 0; r < nodes / kNodesPerRack; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < kNodesPerRack; ++n, ++id) {
            const auto& app = catalog[size_t(id * 7) % catalog.size()];
            const auto kind = (id % 4 == 3)
                                  ? harness::GovernorKind::kRapl
                                  : harness::GovernorKind::kPupil;
            tree.addNode(rack,
                         "r" + std::to_string(r) + "n" + std::to_string(n),
                         harness::singleApp(app.name, 16), kind,
                         harness::SweepRunner::deriveSeed(seed, size_t(id)));
        }
    }
    return tree;
}

/** One node-loss window per rack, staggered so rebalances keep firing. */
std::string
faultSpec(int nodes)
{
    std::string spec;
    for (int r = 0; r < nodes / kNodesPerRack; ++r) {
        const double start = 4.0 + double(r % 5);
        const double end = start + 6.0;
        if (!spec.empty())
            spec += ';';
        spec += "node-loss,r" + std::to_string(r) + "n" +
                std::to_string(r % kNodesPerRack) + ',' +
                trace::formatDouble(start) + ',' + trace::formatDouble(end);
    }
    return spec;
}

struct RunOutcome
{
    double throughput = 0.0;
    double maxBudgetError = 0.0;
    uint64_t digest = 0;
};

RunOutcome
drive(BudgetTree& tree, const faults::FaultSchedule& schedule,
      double durationSec)
{
    tree.setFaultSchedule(&schedule);
    RunOutcome outcome;
    double perfSum = 0.0;
    int perfSamples = 0;
    for (double t = 1.0; t <= durationSec + 1e-9; t += 1.0) {
        tree.run(t);
        outcome.maxBudgetError =
            std::max(outcome.maxBudgetError, tree.budgetErrorWatts());
        if (t > durationSec / 2.0) {  // converged window only
            perfSum += tree.aggregatePerformance();
            ++perfSamples;
        }
    }
    outcome.throughput = perfSamples > 0 ? perfSum / perfSamples : 0.0;
    outcome.digest = tree.stateDigest();
    return outcome;
}

ScaleResult
runScale(int nodes, double durationSec, uint64_t seed, bool serialOnly)
{
    const auto schedule = faults::FaultSchedule::parse(faultSpec(nodes));

    BudgetTree serial = makeTree(nodes, 1, seed);
    const RunOutcome serialOut = drive(serial, schedule, durationSec);

    BudgetTree parallel = makeTree(nodes, serialOnly ? 1 : 0, seed);
    const RunOutcome parallelOut = drive(parallel, schedule, durationSec);

    ScaleResult result;
    result.nodes = nodes;
    result.racks = nodes / kNodesPerRack;
    result.periods = parallel.periods();
    result.throughput = parallelOut.throughput;
    result.perfPerNode = parallelOut.throughput / double(nodes);
    result.maxBudgetErrorWatts =
        std::max(serialOut.maxBudgetError, parallelOut.maxBudgetError);
    // Latency figures come from the serial run: both numerator and
    // denominator then scale with single-thread host speed, so the
    // step/control ratio check_perf.py gates is independent of the CI
    // runner's core count.
    result.rebalanceLatencyMs =
        1e3 * serial.controlWallSec() / double(serial.periods());
    result.controlStepRatio =
        serial.stepWallSec() / serial.controlWallSec();
    result.parallelSpeedup =
        parallel.stepWallSec() > 0.0
            ? serial.stepWallSec() / parallel.stepWallSec()
            : 0.0;
    result.lossEvents = parallel.lossEvents();
    result.rejoinEvents = parallel.rejoinEvents();
    result.shifts = parallel.shifts();
    result.deterministic = serialOut.digest == parallelOut.digest &&
                           serialOut.throughput == parallelOut.throughput;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    bool serialOnly = false;
    std::string outPath = "BENCH_cluster.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--serial")
            serialOnly = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const uint64_t seed = bench::envSeed(42);
    const double durationSec = quick ? 20.0 : 60.0;
    const std::vector<int> scales =
        quick ? std::vector<int>{64} : std::vector<int>{64, 256, 512};

    std::printf("=== Cluster-scale budget tree (%s mode, %g s, seed %llu) "
                "===\n\n",
                quick ? "quick" : "full", durationSec,
                static_cast<unsigned long long>(seed));

    std::vector<ScaleResult> results;
    int failures = 0;
    for (int nodes : scales) {
        const ScaleResult r = runScale(nodes, durationSec, seed, serialOnly);
        if (!r.deterministic) {
            std::fprintf(stderr,
                         "FAIL: serial and parallel stepping diverged at "
                         "%d nodes\n",
                         nodes);
            ++failures;
        }
        if (r.maxBudgetErrorWatts > 1e-6) {
            std::fprintf(stderr,
                         "FAIL: budget conservation error %.9f W at %d "
                         "nodes\n",
                         r.maxBudgetErrorWatts, nodes);
            ++failures;
        }
        results.push_back(r);
    }

    util::Table table({"nodes", "racks", "perf/node", "rebal ms/period",
                       "step/control", "par speedup", "loss", "shifts"});
    for (const ScaleResult& r : results) {
        table.addRow({std::to_string(r.nodes), std::to_string(r.racks),
                      util::Table::cell(r.perfPerNode, 4),
                      util::Table::cell(r.rebalanceLatencyMs, 3),
                      util::Table::cell(r.controlStepRatio, 1),
                      util::Table::cell(r.parallelSpeedup, 2),
                      std::to_string(r.lossEvents),
                      std::to_string(r.shifts)});
    }
    table.print(std::cout);
    std::printf("\nDeterminism: serial and parallel stepping digests %s.\n",
                failures == 0 ? "match at every scale" : "DIVERGED");

    // The headline entry check_perf.py gates is the largest scale run (in
    // CI's quick mode, the 64-node tree).
    const ScaleResult& head = results.back();
    std::string json;
    json += "{\n  \"schema\": \"pupil-cluster-scale-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"cluster_scale\": {\n";
    json += "    \"nodes\": " + std::to_string(head.nodes) + ",\n";
    json += "    \"racks\": " + std::to_string(head.racks) + ",\n";
    json += "    \"periods\": " + std::to_string(head.periods) + ",\n";
    json += "    \"throughput_under_budget\": " +
            trace::formatDouble(head.throughput) + ",\n";
    json += "    \"perf_per_node\": " +
            trace::formatDouble(head.perfPerNode) + ",\n";
    json += "    \"max_budget_error_watts\": " +
            trace::formatDouble(head.maxBudgetErrorWatts) + ",\n";
    json += "    \"rebalance_latency_ms\": " +
            trace::formatDouble(head.rebalanceLatencyMs) + ",\n";
    json += "    \"control_step_ratio\": " +
            trace::formatDouble(head.controlStepRatio) + ",\n";
    json += "    \"parallel_speedup\": " +
            trace::formatDouble(head.parallelSpeedup) + ",\n";
    json += "    \"loss_events\": " + std::to_string(head.lossEvents) +
            ",\n";
    json += "    \"rejoin_events\": " + std::to_string(head.rejoinEvents) +
            ",\n";
    json += "    \"shifts\": " + std::to_string(head.shifts) + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(failures == 0 ? "1" : "0") + "\n";
    json += "  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", outPath.c_str());
    return failures == 0 ? 0 : 2;
}
