/**
 * @file
 * Ablation: the 3-sigma measurement filter (paper Eqs. 1-4). The decision
 * walk runs on a platform with aggressive transient noise (page-fault-like
 * performance dips) with and without the filter window; without it,
 * single-sample decisions misjudge resources and the monitor phase
 * spuriously re-walks.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/soft_decision.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "util/table.h"

using namespace pupil;

namespace {

struct Outcome
{
    double normalizedPerf = 0.0;
    int walks = 0;
    double capViolationSec = 0.0;
};

Outcome
run(const char* appName, double cap, int windowSamples, uint64_t seed)
{
    const auto apps = harness::singleApp(appName);
    sim::PlatformOptions popts;
    popts.seed = seed;
    // Heavier transients than the default channel: 5% outlier samples.
    popts.perfNoise = {0.03, 0.05, 0.3};
    sim::Platform platform(popts, apps);
    platform.warmStart(machine::maximalConfig());

    core::DecisionWalker::Options wopts = core::SoftDecision::defaultOptions();
    wopts.windowSamples = windowSamples;
    core::SoftDecision governor(wopts);
    rapl::RaplController rapl;
    governor.attachRapl(&rapl);
    governor.setCap(cap);
    platform.addActor(&rapl);
    platform.addActor(&governor);
    const double duration =
        std::getenv("PUPIL_BENCH_FAST") != nullptr ? 150.0 : 240.0;
    platform.run(duration);

    const auto oracle = capping::searchOptimal(
        platform.scheduler(), platform.powerModel(), apps, cap);
    Outcome outcome;
    platform.resetStatsWindow();
    platform.run(duration + 20.0);
    outcome.normalizedPerf =
        platform.energy().meanItemsPerSec() / oracle.aggregatePerf;
    outcome.walks = governor.walker()->walkCount();
    outcome.capViolationSec = platform.capViolationSec(cap);
    return outcome;
}

}  // namespace

int
main()
{
    std::printf("=== Ablation: the 3-sigma feedback filter under transient "
                "noise ===\n\n");
    util::Table table({"benchmark", "window", "perf vs optimal", "walks",
                       "cap violations (s)"});
    for (const char* name : {"x264", "bodytrack", "kmeans"}) {
        for (int window : {1, 5, 30}) {
            const Outcome outcome = run(name, 140.0, window, 1234);
            table.addRow({name, util::Table::cell((long long)window),
                          util::Table::cell(outcome.normalizedPerf),
                          util::Table::cell((long long)outcome.walks),
                          util::Table::cell(outcome.capViolationSec, 1)});
        }
    }
    table.print(std::cout);
    std::printf("\nWindow 1 = acting on raw samples: transient dips read as "
                "real regressions, resources are misjudged and the monitor "
                "re-walks; the paper's windowed 3-sigma filter makes "
                "decisions on persistent signal only.\n");
    return 0;
}
