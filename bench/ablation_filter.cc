/**
 * @file
 * Ablation: the 3-sigma measurement filter (paper Eqs. 1-4). The decision
 * walk runs on a platform with aggressive transient noise (page-fault-like
 * performance dips) with and without the filter window; without it,
 * single-sample decisions misjudge resources and the monitor phase
 * spuriously re-walks. The (benchmark, window) grid runs on the
 * SweepRunner pool via its generic forEach (the custom platform/governor
 * setup does not fit a standard experiment job).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/soft_decision.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "util/table.h"

using namespace pupil;

namespace {

struct Outcome
{
    double normalizedPerf = 0.0;
    int walks = 0;
    double capViolationSec = 0.0;
};

Outcome
run(const char* appName, double cap, int windowSamples, uint64_t seed)
{
    const auto apps = harness::singleApp(appName);
    sim::PlatformOptions popts;
    popts.seed = seed;
    // Heavier transients than the default channel: 5% outlier samples.
    popts.perfNoise = {0.03, 0.05, 0.3};
    sim::Platform platform(popts, apps);
    platform.warmStart(machine::maximalConfig());

    core::DecisionWalker::Options wopts = core::SoftDecision::defaultOptions();
    wopts.windowSamples = windowSamples;
    core::SoftDecision governor(wopts);
    rapl::RaplController rapl;
    governor.attachRapl(&rapl);
    governor.setCap(cap);
    platform.addActor(&rapl);
    platform.addActor(&governor);
    const double duration =
        std::getenv("PUPIL_BENCH_FAST") != nullptr ? 150.0 : 240.0;
    platform.run(duration);

    const auto oracle = capping::searchOptimal(
        platform.scheduler(), platform.powerModel(), apps, cap);
    Outcome outcome;
    platform.resetStatsWindow();
    platform.run(duration + 20.0);
    outcome.normalizedPerf =
        platform.energy().meanItemsPerSec() / oracle.aggregatePerf;
    outcome.walks = governor.walker()->walkCount();
    outcome.capViolationSec = platform.capViolationSec(cap);
    return outcome;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::printf("=== Ablation: the 3-sigma feedback filter under transient "
                "noise ===\n\n");
    const std::vector<const char*> names = {"x264", "bodytrack", "kmeans"};
    const std::vector<int> windows = {1, 5, 30};

    std::vector<Outcome> outcomes(names.size() * windows.size());
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    runner.forEach(outcomes.size(), [&](size_t i) {
        outcomes[i] = run(names[i / windows.size()], 140.0,
                          windows[i % windows.size()], 1234);
    });

    util::Table table({"benchmark", "window", "perf vs optimal", "walks",
                       "cap violations (s)"});
    for (size_t n = 0; n < names.size(); ++n) {
        for (size_t w = 0; w < windows.size(); ++w) {
            const Outcome& outcome = outcomes[n * windows.size() + w];
            table.addRow({names[n],
                          util::Table::cell((long long)windows[w]),
                          util::Table::cell(outcome.normalizedPerf),
                          util::Table::cell((long long)outcome.walks),
                          util::Table::cell(outcome.capViolationSec, 1)});
        }
    }
    table.print(std::cout);
    std::printf("\nWindow 1 = acting on raw samples: transient dips read as "
                "real regressions, resources are misjudged and the monitor "
                "re-walks; the paper's windowed 3-sigma filter makes "
                "decisions on persistent signal only.\n");
    return 0;
}
