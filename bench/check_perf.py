#!/usr/bin/env python3
"""Compare a BENCH_perf.json produced by bench/perf_regression against the
checked-in baseline (bench/perf_baseline.json) and fail on regression.

Only dimensionless speedup ratios are compared -- absolute throughput
depends on the host, but cached-vs-uncached ratios on the same host in
the same process are stable. A ratio regresses when it falls below
baseline * (1 - tolerance) (default tolerance 25%), or below an absolute
floor (the walker-convergence >= 3x target from the perf issue).

Exit status: 0 ok, 1 regression or malformed input.

Usage: check_perf.py [--bench PATH] [--baseline PATH]
"""

import argparse
import json
import sys


def lookup(tree, dotted):
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise KeyError(dotted)
    return float(node)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="build/bench/BENCH_perf.json",
                        help="BENCH_perf.json written by perf_regression")
    parser.add_argument("--baseline", default="bench/perf_baseline.json",
                        help="checked-in baseline ratios")
    args = parser.parse_args(argv)

    try:
        with open(args.bench) as f:
            bench = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_perf: cannot load inputs: {err}", file=sys.stderr)
        return 1

    if bench.get("schema") != "pupil-perf-regression-v1":
        print(f"check_perf: unexpected bench schema {bench.get('schema')!r}",
              file=sys.stderr)
        return 1

    tolerance = float(baseline.get("tolerance", 0.25))
    ratios = baseline.get("ratios", {})
    floors = baseline.get("floors", {})
    if not ratios:
        print("check_perf: baseline has no ratios", file=sys.stderr)
        return 1

    failures = []
    print(f"{'metric':<38} {'measured':>9} {'baseline':>9} {'min ok':>8}")
    for name in sorted(set(ratios) | set(floors)):
        try:
            measured = lookup(bench, name)
        except KeyError:
            failures.append(f"{name}: missing from bench output")
            continue
        minimum = 0.0
        if name in ratios:
            minimum = max(minimum, float(ratios[name]) * (1.0 - tolerance))
        if name in floors:
            minimum = max(minimum, float(floors[name]))
        base = ratios.get(name, "-")
        status = "ok" if measured >= minimum else "REGRESSED"
        print(f"{name:<38} {measured:>9.3f} {base!s:>9} {minimum:>8.3f}"
              f"  {status}")
        if measured < minimum:
            failures.append(
                f"{name}: measured {measured:.3f} < minimum {minimum:.3f}")

    if failures:
        print("\ncheck_perf: performance regression detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_perf: all ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
