#!/usr/bin/env python3
"""Compare bench JSON outputs against the checked-in baseline
(bench/perf_baseline.json) and fail on regression.

Accepts one or more --bench files (repeat the flag): the perf-regression
bench's BENCH_perf.json, the cluster-scale bench's BENCH_cluster.json,
and the strategy tournament's BENCH_strategy.json. Each file's schema is
validated and their metric trees are merged, so one baseline gates all.

Only dimensionless ratios (and deterministic simulation outputs) are
compared -- absolute throughput depends on the host, but cached-vs-uncached
and step-vs-control ratios on the same host in the same process are
stable, and fixed-seed simulation metrics are byte-stable everywhere. A
metric regresses when it falls below baseline * (1 - tolerance) (default
tolerance 25%), or below an absolute floor (e.g. the walker-convergence
>= 3x target, or the cluster determinism bit which must be exactly 1).

Exit status: 0 ok, 1 regression or malformed input.

Usage: check_perf.py [--bench PATH]... [--baseline PATH]
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = {
    "pupil-perf-regression-v1",
    "pupil-cluster-scale-v1",
    "pupil-strategy-tournament-v1",
    "pupil-slo-frontier-v1",
    "pupil-transport-faults-v1",
}


def lookup(tree, dotted):
    node = tree
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(dotted)
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise KeyError(dotted)
    return float(node)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", action="append", default=[],
                        help="bench JSON output; repeat for several files "
                             "(default: build/bench/BENCH_perf.json)")
    parser.add_argument("--baseline", default="bench/perf_baseline.json",
                        help="checked-in baseline ratios")
    args = parser.parse_args(argv)
    bench_paths = args.bench or ["build/bench/BENCH_perf.json"]

    merged = {}
    try:
        for path in bench_paths:
            with open(path) as f:
                bench = json.load(f)
            schema = bench.get("schema")
            if schema not in KNOWN_SCHEMAS:
                print(f"check_perf: unexpected bench schema {schema!r} "
                      f"in {path}", file=sys.stderr)
                return 1
            overlap = set(merged) & set(bench) - {"schema", "mode", "seed"}
            if overlap:
                print(f"check_perf: {path} redefines {sorted(overlap)}",
                      file=sys.stderr)
                return 1
            merged.update(bench)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_perf: cannot load inputs: {err}", file=sys.stderr)
        return 1

    tolerance = float(baseline.get("tolerance", 0.25))
    ratios = baseline.get("ratios", {})
    floors = baseline.get("floors", {})
    if not ratios:
        print("check_perf: baseline has no ratios", file=sys.stderr)
        return 1

    failures = []
    missing = []
    print(f"{'metric':<38} {'measured':>9} {'baseline':>9} {'min ok':>8}")
    for name in sorted(set(ratios) | set(floors)):
        try:
            measured = lookup(merged, name)
        except KeyError:
            # A baseline key the bench output no longer produces is as
            # loud as a regression: print it in the table AND explain
            # which files were merged, so a renamed metric or a bench
            # dropped from the CI invocation cannot pass silently.
            print(f"{name:<38} {'-':>9} {'-':>9} {'-':>8}  MISSING")
            failures.append(f"{name}: missing from bench output")
            missing.append(name)
            continue
        minimum = 0.0
        if name in ratios:
            minimum = max(minimum, float(ratios[name]) * (1.0 - tolerance))
        if name in floors:
            minimum = max(minimum, float(floors[name]))
        base = ratios.get(name, "-")
        status = "ok" if measured >= minimum else "REGRESSED"
        print(f"{name:<38} {measured:>9.3f} {base!s:>9} {minimum:>8.3f}"
              f"  {status}")
        if measured < minimum:
            failures.append(
                f"{name}: measured {measured:.3f} < minimum {minimum:.3f}")

    if missing:
        sections = sorted(k for k in merged
                          if k not in ("schema", "mode", "seed"))
        print(f"\ncheck_perf: {len(missing)} expected baseline key(s) "
              f"absent from the bench output:", file=sys.stderr)
        for name in missing:
            print(f"  - {name}", file=sys.stderr)
        print(f"  merged {len(bench_paths)} bench file(s): "
              f"{', '.join(bench_paths)}", file=sys.stderr)
        print(f"  sections present after merge: "
              f"{', '.join(sections) or '(none)'}", file=sys.stderr)
        print("  (was a bench dropped from the invocation, or a metric "
              "renamed without updating bench/perf_baseline.json?)",
              file=sys.stderr)
    if failures:
        print("\ncheck_perf: performance regression detected:",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ncheck_perf: all ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
