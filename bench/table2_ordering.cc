/**
 * @file
 * Reproduces Table 1 (server resources) and Table 2 (system
 * configurations: the resource order established by Algorithm 2 with each
 * resource's measured maximum speedup and powerup).
 */
#include <cstdio>
#include <iostream>

#include "core/ordering.h"
#include "machine/power_model.h"
#include "machine/topology.h"
#include "sched/scheduler.h"
#include "util/table.h"
#include "workload/catalog.h"

using namespace pupil;

int
main()
{
    const machine::Topology& topo = machine::defaultTopology();
    std::printf("=== Table 1: server resources ===\n");
    util::Table t1({"Processor", "Cores", "Sockets", "Speeds (GHz)",
                    "TurboBoost", "HyperThreads", "Mem Ctrls", "TDP (W)",
                    "Configs"});
    t1.addRow({"Xeon E5-2690 (modelled)",
               util::Table::cell((long long)topo.coresPerSocket),
               util::Table::cell((long long)topo.sockets), "1.2-2.9", "yes",
               "yes", util::Table::cell((long long)topo.memControllers),
               util::Table::cell(topo.socketTdpWatts, 0),
               util::Table::cell(
                   (long long)machine::enumerateUserConfigs().size())});
    t1.print(std::cout);

    std::printf("\n=== Table 2: resource ordering (Algorithm 2, calibration "
                "benchmark) ===\n");
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const core::OrderingReport report = core::calibrateOrdering(
        scheduler, pm, workload::calibrationApp());

    util::Table t2({"Configuration", "Settings", "Max Speedup",
                    "Max Powerup"});
    for (const core::OrderingEntry& entry : report.entries) {
        t2.addRow({entry.resource.name(),
                   util::Table::cell((long long)entry.resource.settings()),
                   util::Table::cell(entry.maxSpeedup, 1),
                   util::Table::cell(entry.maxPowerup, 1)});
    }
    t2.print(std::cout);
    std::printf(
        "\nPaper reference (Table 2):\n"
        "  cores per socket  8   7.9  2.1\n"
        "  sockets           2   2.0  1.7\n"
        "  hyperthreading    2   1.9  1.2\n"
        "  mem controllers   2   1.8  1.1\n"
        "  clock speeds     16   3.2  3.4\n");
    return 0;
}
