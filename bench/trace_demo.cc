/**
 * @file
 * End-to-end demonstration of the structured trace layer: one recorder
 * captures a PUPiL run under a fault scenario (decision walker, RAPL
 * firmware, scheduler, fault injector, mode machine, harness markers)
 * followed by a three-node cluster power-shifting run with a node loss
 * (cluster membership and rebalance events), then exports the combined
 * timeline as Chrome trace-event JSON and flat CSV.
 *
 *     trace_demo [--trace <path>]     # default trace_demo.json
 *
 * Load the JSON in chrome://tracing or https://ui.perfetto.dev; each
 * subsystem renders as its own track.
 */
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "cluster/power_shifter.h"
#include "faults/schedule.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    std::string jsonPath = bench::tracePathFromArgs(argc, argv);
    if (jsonPath.empty())
        jsonPath = "trace_demo.json";
    std::string csvPath = jsonPath;
    const size_t dot = csvPath.rfind(".json");
    if (dot != std::string::npos && dot == csvPath.size() - 5)
        csvPath.resize(dot);
    csvPath += ".csv";

    // The firmware and scheduler tracks are chatty at 1 ms resolution; a
    // deeper-than-default ring keeps the whole demo without overwrites.
    trace::Recorder recorder(1 << 17);

    // A PUPiL run under a mid-run power-meter dropout: exercises the
    // decision walker, the RAPL firmware, the scheduler, the fault
    // injector, and the hybrid->degraded->hybrid mode machine.
    std::printf("=== trace_demo: structured tracing across the stack ===\n\n");
    harness::ExperimentOptions options = bench::defaultOptions(140.0);
    options.durationSec = 60.0;
    options.statsWindowSec = 30.0;
    options.platform.faultSpec = "sensor-dropout,power,20,30";
    options.trace = &recorder;
    const auto result = harness::runExperiment(
        harness::GovernorKind::kPupil, harness::singleApp("x264"), options);
    std::printf("PUPiL under a 140 W cap with a 10 s meter dropout: "
                "perf %.3f, mean power %.1f W, degraded for %.1f s\n",
                result.aggregatePerf, result.meanPowerWatts,
                result.degradedSec);

    // A small cluster with a node loss and rejoin: exercises the
    // PowerShifter membership and rebalance events on the same recorder.
    cluster::PowerShifter::Options copts;
    copts.globalBudgetWatts = 360.0;
    cluster::PowerShifter shifter(copts);
    shifter.attachTrace(&recorder);
    shifter.addNode("n0", harness::singleApp("x264", 16),
                    harness::GovernorKind::kPupil, 1);
    shifter.addNode("n1", harness::singleApp("kmeans", 16),
                    harness::GovernorKind::kPupil, 2);
    shifter.addNode("n2", harness::singleApp("swish++", 16),
                    harness::GovernorKind::kPupil, 3);
    const faults::FaultSchedule schedule =
        faults::FaultSchedule::parse("node-loss,n1,20,40");
    shifter.setFaultSchedule(&schedule);
    shifter.run(60.0);
    std::printf("3-node cluster, 360 W budget, n1 lost for 20 s: "
                "%d rebalances, %d loss, %d rejoin\n\n",
                shifter.shifts(), shifter.lossEvents(),
                shifter.rejoinEvents());

    const auto counts = recorder.subsystemCounts();
    std::printf("%zu events recorded (%llu dropped):\n", recorder.size(),
                (unsigned long long)recorder.dropped());
    for (int s = 0; s < trace::kSubsystemCount; ++s) {
        std::printf("  %-10s %8llu\n",
                    trace::subsystemName(trace::Subsystem(s)),
                    (unsigned long long)counts[s]);
    }

    const bool jsonOk =
        trace::writeFile(jsonPath, trace::toChromeJson(recorder));
    const bool csvOk = trace::writeFile(csvPath, trace::toCsv(recorder));
    if (jsonOk)
        std::printf("\nChrome trace JSON written to %s "
                    "(chrome://tracing / ui.perfetto.dev)\n",
                    jsonPath.c_str());
    if (csvOk)
        std::printf("Flat CSV written to %s\n", csvPath.c_str());
    return jsonOk && csvOk ? 0 : 1;
}
