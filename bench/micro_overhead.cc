/**
 * @file
 * Micro-benchmarks (google-benchmark) of the runtime components: the
 * costs that determine whether the control systems could run at their
 * modelled periods on real hardware (RAPL firmware at 1 ms, governor
 * sampling at 100 ms) and how expensive the offline searches are.
 */
#include <benchmark/benchmark.h>

#include "capping/oracle.h"
#include "harness/experiment.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "machine/power_model.h"
#include "rapl/rapl.h"
#include "sched/scheduler.h"
#include "sim/platform.h"
#include "telemetry/filter.h"
#include "trace/trace.h"
#include "workload/catalog.h"
#include "workload/mixes.h"

using namespace pupil;

namespace {

void
BM_PowerModelEval(benchmark::State& state)
{
    const machine::PowerModel pm;
    const auto cfg = machine::maximalConfig();
    std::array<machine::SocketLoad, 2> loads{};
    loads[0] = loads[1] = {8.0, 8.0, 0.8};
    for (auto _ : state)
        benchmark::DoNotOptimize(pm.totalPower(cfg, loads));
}
BENCHMARK(BM_PowerModelEval);

void
BM_SchedulerSolveSingleApp(benchmark::State& state)
{
    const sched::Scheduler sched;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};
    const auto cfg = machine::maximalConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.solve(cfg, {1.0, 1.0}, apps));
}
BENCHMARK(BM_SchedulerSolveSingleApp);

void
BM_SchedulerSolveMix(benchmark::State& state)
{
    const sched::Scheduler sched;
    const auto apps = harness::mixApps(workload::findMix("mix8"),
                                       workload::Scenario::kOblivious);
    const auto cfg = machine::maximalConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(sched.solve(cfg, {1.0, 1.0}, apps));
}
BENCHMARK(BM_SchedulerSolveMix);

void
BM_SigmaFilterStep(benchmark::State& state)
{
    telemetry::SigmaFilter filter(30);
    double x = 0.0;
    for (auto _ : state) {
        filter.add(100.0 + x);
        x += 0.001;
        benchmark::DoNotOptimize(filter.filtered());
    }
}
BENCHMARK(BM_SigmaFilterStep);

void
BM_WalkerSampleStep(benchmark::State& state)
{
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const auto report =
        core::calibrateOrdering(sched, pm, workload::calibrationApp());
    core::DecisionWalker::Options options;
    options.windowSamples = 30;
    core::DecisionWalker walker(report.orderedResources(true), options);
    walker.start(machine::minimalConfig(), 140.0, 0.0);
    double now = 0.0;
    for (auto _ : state) {
        now += 0.1;
        walker.addSample(100.0, 120.0, now);
        benchmark::DoNotOptimize(walker.converged());
    }
}
BENCHMARK(BM_WalkerSampleStep);

void
BM_PlatformTickMillisecond(benchmark::State& state)
{
    sim::PlatformOptions options;
    sim::Platform platform(options, {{&workload::findBenchmark("x264"), 32}});
    platform.warmStart(machine::maximalConfig());
    double t = 0.001;
    for (auto _ : state) {
        platform.run(t);
        t += 0.001;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlatformTickMillisecond);

void
BM_RaplControlInterval(benchmark::State& state)
{
    sim::PlatformOptions options;
    sim::Platform platform(options, {{&workload::findBenchmark("x264"), 32}});
    platform.warmStart(machine::maximalConfig());
    rapl::RaplController rapl;
    rapl.setTotalCapEvenSplit(140.0);
    rapl.onStart(platform);
    double now = 0.0;
    for (auto _ : state) {
        now += 0.001;
        rapl.onTick(platform, now);
    }
}
BENCHMARK(BM_RaplControlInterval);

void
BM_TraceEmit(benchmark::State& state)
{
    trace::Recorder recorder;
    double now = 0.0;
    for (auto _ : state) {
        now += 0.001;
        trace::emit(&recorder, now, trace::EventKind::kClampChange, 0.8,
                    120.0, 0, 7);
    }
    benchmark::DoNotOptimize(recorder.size());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmit);

void
BM_TraceEmitDisabled(benchmark::State& state)
{
    // The cost every instrumentation point pays when no recorder is
    // attached: one null test. This is the "tracing off" tax on the 1 ms
    // firmware path.
    trace::Recorder* recorder = nullptr;
    benchmark::DoNotOptimize(recorder);
    double now = 0.0;
    for (auto _ : state) {
        now += 0.001;
        trace::emit(recorder, now, trace::EventKind::kClampChange, 0.8,
                    120.0, 0, 7);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitDisabled);

void
BM_PlatformTickTraced(benchmark::State& state)
{
    // Pair with BM_PlatformTickMillisecond: the same simulation loop with
    // a recorder attached. The acceptance bar is <2% overhead enabled
    // (and exact equality of simulation results, covered by trace_test).
    sim::PlatformOptions options;
    sim::Platform platform(options, {{&workload::findBenchmark("x264"), 32}});
    platform.warmStart(machine::maximalConfig());
    trace::Recorder recorder;
    platform.attachTrace(&recorder);
    double t = 0.001;
    for (auto _ : state) {
        platform.run(t);
        t += 0.001;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlatformTickTraced);

void
BM_RaplControlIntervalTraced(benchmark::State& state)
{
    // Pair with BM_RaplControlInterval: the firmware loop recording limit
    // writes, budget-window edges, and clamp changes.
    sim::PlatformOptions options;
    sim::Platform platform(options, {{&workload::findBenchmark("x264"), 32}});
    platform.warmStart(machine::maximalConfig());
    trace::Recorder recorder;
    platform.attachTrace(&recorder);
    rapl::RaplController rapl;
    rapl.setTotalCapEvenSplit(140.0);
    rapl.onStart(platform);
    double now = 0.0;
    for (auto _ : state) {
        now += 0.001;
        rapl.onTick(platform, now);
    }
}
BENCHMARK(BM_RaplControlIntervalTraced);

void
BM_OracleSearchUserSpace(benchmark::State& state)
{
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("kmeans"), 32}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            capping::searchOptimal(sched, pm, apps, 140.0, false));
    }
}
BENCHMARK(BM_OracleSearchUserSpace);

void
BM_CalibrateOrdering(benchmark::State& state)
{
    const sched::Scheduler sched;
    const machine::PowerModel pm;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::calibrateOrdering(sched, pm, workload::calibrationApp()));
    }
}
BENCHMARK(BM_CalibrateOrdering);

}  // namespace

BENCHMARK_MAIN();
