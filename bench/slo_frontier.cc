/**
 * @file
 * Cap-vs-SLO frontier: open-loop tenant traffic served under a power cap
 * by the hardware, software, and hybrid governors.
 *
 * The grid is {RAPL, Soft-DVFS, PUPiL} x caps x arrival rates x arrival
 * shapes on the SweepRunner pool. Every cell runs the same
 * seed-deterministic job stream (RAPL-unfriendly catalog apps, three
 * priority tiers with p99 latency SLOs) against the governor's live cap,
 * with the slo::CapArbiter splitting that cap across tiers. Per cell the
 * bench reports the SLO violation rate (late completions + queue drops +
 * overdue abandonments over scored jobs), pooled p99 latency, and
 * throughput -- the frontier a datacenter operator trades along when
 * tightening a rack budget.
 *
 * Every reported number is a fixed-seed deterministic simulation output,
 * so the JSON feeds bench/check_perf.py directly; the gated bits are the
 * pooled-vs-serial determinism self-check (exit 2 on divergence, the
 * strategy-tournament discipline) and hybrid_beats_rapl: at least one
 * equal (cap, rate, shape) cell where PUPiL's violation rate is strictly
 * below RAPL's -- the paper's hybrid-beats-hardware claim restated in
 * SLO terms. Caps here sit in the tight 40-80 W band where hardware
 * duty-cycle clamping visibly starves the RAPL-unfriendly apps.
 *
 * --quick runs 2 caps x 2 rates x Poisson (the ctest/CI tier); the full
 * run adds the diurnal and flash-crowd shapes, a third rate, and two
 * more caps. Results go to stdout and BENCH_slo.json (--out PATH).
 */
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "load/traffic.h"
#include "trace/export.h"
#include "util/table.h"

using namespace pupil;

namespace {

const std::vector<harness::GovernorKind> kGovernors = {
    harness::GovernorKind::kRapl,
    harness::GovernorKind::kSoftDvfs,
    harness::GovernorKind::kPupil,
};

struct CellSpec
{
    harness::GovernorKind governor;
    double cap = 0.0;
    double rate = 0.0;
    load::ArrivalKind shape = load::ArrivalKind::kPoisson;
};

std::vector<CellSpec>
buildGrid(bool quick)
{
    const std::vector<double> caps =
        quick ? std::vector<double>{40.0, 50.0}
              : std::vector<double>{40.0, 50.0, 60.0, 80.0};
    const std::vector<double> rates =
        quick ? std::vector<double>{0.4, 0.8}
              : std::vector<double>{0.4, 0.8, 1.2};
    const std::vector<load::ArrivalKind> shapes =
        quick ? std::vector<load::ArrivalKind>{load::ArrivalKind::kPoisson}
              : load::allArrivalKinds();
    std::vector<CellSpec> grid;
    for (const harness::GovernorKind governor : kGovernors)
        for (const load::ArrivalKind shape : shapes)
            for (const double cap : caps)
                for (const double rate : rates)
                    grid.push_back({governor, cap, rate, shape});
    return grid;
}

std::vector<harness::SweepJob>
buildJobs(const std::vector<CellSpec>& grid, bool quick, uint64_t seed)
{
    std::vector<harness::SweepJob> jobs;
    for (const CellSpec& cell : grid) {
        harness::SweepJob job;
        job.kind = cell.governor;
        // No static apps: the whole machine serves the tenant stream.
        job.options = bench::defaultOptions(cell.cap);
        job.options.seed = seed;
        job.options.load.enabled = true;
        job.options.load.spec.kind = cell.shape;
        job.options.load.spec.ratePerSec = cell.rate;
        if (quick) {
            job.options.durationSec = 150.0;
            job.options.statsWindowSec = 60.0;
        }
        bench::applyFastMode(job.options);
        job.label = std::string(harness::governorName(cell.governor)) +
                    '/' + load::arrivalKindName(cell.shape) + '@' +
                    trace::formatDouble(cell.cap) + "W/" +
                    trace::formatDouble(cell.rate) + "jps";
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** FNV-1a over every number the frontier is built from. */
uint64_t
outcomeDigest(const std::vector<harness::SweepOutcome>& outcomes)
{
    uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    const auto mixDouble = [&mix](double v) {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    for (const auto& outcome : outcomes) {
        for (const char c : outcome.label)
            mix(uint64_t(uint8_t(c)));
        mix(outcome.ok ? 1 : 0);
        mix(outcome.result.jobsArrived);
        mix(outcome.result.jobsCompleted);
        mix(outcome.result.jobsDropped);
        mix(outcome.result.sloViolations);
        mixDouble(outcome.result.sloViolationRate);
        mixDouble(outcome.result.p99LatencySec);
        mixDouble(outcome.result.meanPowerWatts);
    }
    return h;
}

struct GovernorStats
{
    double violationRateSum = 0.0;
    double p99Sum = 0.0;
    uint64_t arrived = 0;
    uint64_t completed = 0;
    uint64_t dropped = 0;
    int cells = 0;

    double violationRate() const
    {
        return cells > 0 ? violationRateSum / cells : 0.0;
    }
    double p99Sec() const { return cells > 0 ? p99Sum / cells : 0.0; }
};

std::string
jsonKey(harness::GovernorKind kind)
{
    std::string key = harness::governorName(kind);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return char(std::tolower(c)); });
    std::replace(key.begin(), key.end(), '-', '_');
    return key;  // "rapl", "soft_dvfs", "pupil"
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string outPath = "BENCH_slo.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const uint64_t seed = bench::envSeed(42);
    const std::vector<CellSpec> grid = buildGrid(quick);
    const std::vector<harness::SweepJob> jobs = buildJobs(grid, quick, seed);

    std::printf("=== Cap-vs-SLO frontier (%s mode, %zu cells, seed %llu) "
                "===\n\n",
                quick ? "quick" : "full", jobs.size(),
                static_cast<unsigned long long>(seed));

    harness::SweepRunner pooled(bench::sweepOptions(argc, argv));
    const auto outcomes = pooled.run(jobs);

    // Thread-count independence: per-cell seeds depend only on the job
    // index, and the traffic stream derives from the cell seed, so the
    // same grid run serially must be bit-identical.
    harness::SweepRunner::Options serialOptions;
    serialOptions.threads = 1;
    serialOptions.keepTraces = false;
    const auto serialOutcomes =
        harness::SweepRunner(serialOptions).run(jobs);
    const bool deterministic =
        outcomeDigest(outcomes) == outcomeDigest(serialOutcomes);

    int failures = deterministic ? 0 : 1;
    if (!deterministic)
        std::fprintf(stderr,
                     "FAIL: pooled and serial frontier runs diverged\n");

    // The acceptance bit: somewhere on the frontier, at an equal
    // (cap, rate, shape) operating point, the hybrid governor serves the
    // same stream with strictly fewer SLO misses than hardware capping.
    int hybridBeatsRapl = 0;
    for (size_t i = 0; i < grid.size(); ++i) {
        if (grid[i].governor != harness::GovernorKind::kPupil ||
            !outcomes[i].ok)
            continue;
        for (size_t j = 0; j < grid.size(); ++j) {
            if (grid[j].governor != harness::GovernorKind::kRapl ||
                !outcomes[j].ok || grid[j].cap != grid[i].cap ||
                grid[j].rate != grid[i].rate ||
                grid[j].shape != grid[i].shape)
                continue;
            if (outcomes[i].result.sloViolationRate <
                outcomes[j].result.sloViolationRate)
                hybridBeatsRapl = 1;
        }
    }

    std::vector<GovernorStats> stats(kGovernors.size());
    util::Table table({"cell", "arrived", "done", "dropped", "p99 s",
                       "violation %"});
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        if (!outcome.ok) {
            std::fprintf(stderr, "FAIL: cell %s threw: %s\n",
                         outcome.label.c_str(), outcome.error.c_str());
            ++failures;
            continue;
        }
        for (size_t g = 0; g < kGovernors.size(); ++g) {
            if (kGovernors[g] != grid[i].governor)
                continue;
            GovernorStats& s = stats[g];
            ++s.cells;
            s.violationRateSum += outcome.result.sloViolationRate;
            s.p99Sum += outcome.result.p99LatencySec;
            s.arrived += outcome.result.jobsArrived;
            s.completed += outcome.result.jobsCompleted;
            s.dropped += outcome.result.jobsDropped;
        }
        table.addRow({outcome.label,
                      std::to_string(outcome.result.jobsArrived),
                      std::to_string(outcome.result.jobsCompleted),
                      std::to_string(outcome.result.jobsDropped),
                      util::Table::cell(outcome.result.p99LatencySec, 1),
                      util::Table::cell(
                          100.0 * outcome.result.sloViolationRate, 2)});
    }
    table.print(std::cout);
    std::printf("\nDeterminism: pooled and serial runs %s.\n",
                deterministic ? "are bit-identical" : "DIVERGED");
    std::printf("Hybrid beats RAPL at an equal operating point: %s.\n",
                hybridBeatsRapl ? "yes" : "NO");

    std::string json;
    json += "{\n  \"schema\": \"pupil-slo-frontier-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"slo_frontier\": {\n";
    json += "    \"cells\": " + std::to_string(jobs.size()) + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(deterministic ? "1" : "0") + ",\n";
    json += "    \"hybrid_beats_rapl\": " +
            std::to_string(hybridBeatsRapl) + ",\n";
    for (size_t g = 0; g < kGovernors.size(); ++g) {
        const GovernorStats& s = stats[g];
        json += "    \"" + jsonKey(kGovernors[g]) + "\": {\n";
        json += "      \"violation_rate\": " +
                trace::formatDouble(s.violationRate()) + ",\n";
        json += "      \"p99_sec\": " + trace::formatDouble(s.p99Sec()) +
                ",\n";
        json += "      \"arrived\": " + std::to_string(s.arrived) + ",\n";
        json += "      \"completed\": " + std::to_string(s.completed) +
                ",\n";
        json += "      \"dropped\": " + std::to_string(s.dropped) +
                "\n    },\n";
    }
    std::vector<std::string> entries;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok)
            continue;
        entries.push_back(
            "      {\"cell\": \"" + outcomes[i].label + "\", \"cap\": " +
            trace::formatDouble(grid[i].cap) + ", \"rate\": " +
            trace::formatDouble(grid[i].rate) + ", \"violation_rate\": " +
            trace::formatDouble(outcomes[i].result.sloViolationRate) +
            ", \"p99_sec\": " +
            trace::formatDouble(outcomes[i].result.p99LatencySec) + "}");
    }
    json += "    \"frontier\": [\n";
    for (size_t i = 0; i < entries.size(); ++i)
        json += entries[i] + (i + 1 < entries.size() ? ",\n" : "\n");
    json += "    ]\n  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", outPath.c_str());
    return failures == 0 ? 0 : 2;
}
