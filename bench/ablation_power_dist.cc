/**
 * @file
 * Ablation: PUPiL's core-proportional socket power distribution
 * (Section 3.3.2) versus a naive even split. The benefit appears for
 * workloads whose best configuration is asymmetric (single-socket apps
 * like kmeans): the even split strands half the budget on the idle
 * socket. The policy sweep runs on the SweepRunner pool (--serial /
 * PUPIL_SWEEP_THREADS control the worker count).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pupil;

int
main(int argc, char** argv)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<std::string> names = {"kmeans", "dijkstra", "x264",
                                            "swish++", "blackscholes"};
    const std::vector<double> caps = {60.0, 100.0, 140.0};
    const std::vector<core::PowerDistPolicy> policies = {
        core::PowerDistPolicy::kEvenSplit,
        core::PowerDistPolicy::kCoreProportional};
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));
    std::printf("=== Ablation: PUPiL socket power distribution policy "
                "===\n\n");

    std::vector<capping::OracleResult> oracles(names.size() * caps.size());
    runner.forEach(oracles.size(), [&](size_t i) {
        const auto apps = harness::singleApp(names[i / caps.size()]);
        oracles[i] = capping::searchOptimal(sched, pm, apps,
                                            caps[i % caps.size()]);
    });

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(oracles.size() * policies.size());
    for (const std::string& name : names) {
        for (double cap : caps) {
            for (core::PowerDistPolicy policy : policies) {
                harness::SweepJob job;
                job.kind = harness::GovernorKind::kPupil;
                job.apps = harness::singleApp(name);
                job.options = bench::defaultOptions(cap);
                bench::applyFastMode(job.options);
                job.options.pupilPolicy = policy;
                job.label = name;
                jobs.push_back(std::move(job));
            }
        }
    }
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    util::Table table({"benchmark", "cap (W)", "even-split",
                       "core-proportional", "gain"});
    for (size_t n = 0; n < names.size(); ++n) {
        for (size_t c = 0; c < caps.size(); ++c) {
            const capping::OracleResult& oracle =
                oracles[n * caps.size() + c];
            double perf[2] = {0.0, 0.0};
            for (size_t p = 0; p < policies.size(); ++p) {
                const harness::SweepOutcome& outcome =
                    outcomes[(n * caps.size() + c) * policies.size() + p];
                if (outcome.ok)
                    perf[p] = outcome.result.aggregatePerf /
                              oracle.aggregatePerf;
            }
            table.addRow({names[n], util::Table::cell(caps[c], 0),
                          util::Table::cell(perf[0]),
                          util::Table::cell(perf[1]),
                          util::Table::cell(perf[1] / perf[0])});
        }
    }
    table.print(std::cout);
    std::printf("\nAsymmetric-optimum apps (kmeans, dijkstra, swish++) lose "
                "performance when half the budget is pinned to a socket "
                "they do not use; symmetric apps are unaffected.\n");
    return 0;
}
