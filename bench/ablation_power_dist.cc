/**
 * @file
 * Ablation: PUPiL's core-proportional socket power distribution
 * (Section 3.3.2) versus a naive even split. The benefit appears for
 * workloads whose best configuration is asymmetric (single-socket apps
 * like kmeans): the even split strands half the budget on the idle
 * socket.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    std::printf("=== Ablation: PUPiL socket power distribution policy "
                "===\n\n");
    util::Table table({"benchmark", "cap (W)", "even-split",
                       "core-proportional", "gain"});
    for (const char* name : {"kmeans", "dijkstra", "x264", "swish++",
                             "blackscholes"}) {
        for (double cap : {60.0, 100.0, 140.0}) {
            const auto apps = harness::singleApp(name);
            const auto oracle = capping::searchOptimal(sched, pm, apps, cap);
            double perf[2] = {0, 0};
            int i = 0;
            for (auto policy : {core::PowerDistPolicy::kEvenSplit,
                                core::PowerDistPolicy::kCoreProportional}) {
                auto options = bench::defaultOptions(cap);
                bench::applyFastMode(options);
                options.pupilPolicy = policy;
                const auto result = harness::runExperiment(
                    harness::GovernorKind::kPupil, apps, options);
                perf[i++] = result.aggregatePerf / oracle.aggregatePerf;
            }
            table.addRow({name, util::Table::cell(cap, 0),
                          util::Table::cell(perf[0]),
                          util::Table::cell(perf[1]),
                          util::Table::cell(perf[1] / perf[0])});
        }
    }
    table.print(std::cout);
    std::printf("\nAsymmetric-optimum apps (kmeans, dijkstra, swish++) lose "
                "performance when half the budget is pinned to a socket "
                "they do not use; symmetric apps are unaffected.\n");
    return 0;
}
