/**
 * @file
 * Decision-strategy tournament: every strategy in the zoo against the
 * same workloads and caps, under both walker-based governors.
 *
 * The grid is strategies x {Soft-Decision, PUPiL} x apps x caps on the
 * SweepRunner pool. Per strategy the tournament reports:
 *
 *  - convergence time: mean seconds from walk start to the Monitor phase
 *    (the decision.converge_sec gauge of the last converged walk);
 *  - steady-state performance: geometric-mean ratio of converged
 *    aggregate performance against the paper's binary search on the same
 *    (governor, app, cap) cell -- binary search is 1.0 by construction;
 *  - violation rate: fraction of the run spent above the cap (only the
 *    software-checked governor can violate; PUPiL's RAPL absorbs it);
 *  - converged fraction: walks that reached Monitor before the run ended.
 *
 * Every metric is a fixed-seed deterministic simulation output, so the
 * JSON feeds bench/check_perf.py directly. The bench also runs the whole
 * grid twice -- once on the pool, once serially -- and fails (exit 2)
 * unless both passes produce bit-identical results, proving the
 * per-strategy RNG seeding is independent of PUPIL_SWEEP_THREADS.
 *
 * --quick runs 3 apps x 2 caps (the ctest/CI tier); the full run sweeps
 * the 20-benchmark catalog over the paper's 5 cap levels. Results go to
 * stdout and to BENCH_strategy.json (override with --out PATH).
 */
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/strategy.h"
#include "trace/export.h"
#include "util/table.h"

using namespace pupil;

namespace {

const std::vector<harness::GovernorKind> kGovernors = {
    harness::GovernorKind::kSoftDecision,
    harness::GovernorKind::kPupil,
};

struct JobSpec
{
    core::StrategyKind strategy;
    harness::GovernorKind governor;
    std::string app;
    double cap = 0.0;
};

std::vector<JobSpec>
buildGrid(bool quick)
{
    const std::vector<std::string> apps =
        quick ? std::vector<std::string>{"x264", "kmeans", "blackscholes"}
              : bench::benchmarkNames();
    const std::vector<double> caps =
        quick ? std::vector<double>{100.0, 180.0} : bench::powerCaps();
    std::vector<JobSpec> grid;
    for (const core::StrategyKind strategy : core::allStrategyKinds())
        for (const harness::GovernorKind governor : kGovernors)
            for (const std::string& app : apps)
                for (const double cap : caps)
                    grid.push_back({strategy, governor, app, cap});
    return grid;
}

std::vector<harness::SweepJob>
buildJobs(const std::vector<JobSpec>& grid, bool quick, uint64_t seed)
{
    std::vector<harness::SweepJob> jobs;
    for (const JobSpec& spec : grid) {
        harness::SweepJob job;
        job.kind = spec.governor;
        job.apps = harness::singleApp(spec.app);
        job.options = bench::defaultOptions(spec.cap);
        job.options.seed = seed;
        job.options.strategy.kind = spec.strategy;
        if (quick) {
            job.options.durationSec = 180.0;
            job.options.statsWindowSec = 60.0;
        }
        bench::applyFastMode(job.options);
        job.label = std::string(core::strategyName(spec.strategy)) + '/' +
                    harness::governorName(spec.governor) + '/' + spec.app +
                    '@' + trace::formatDouble(spec.cap) + 'W';
        jobs.push_back(std::move(job));
    }
    return jobs;
}

double
metricValue(const harness::ExperimentResult& result, const std::string& name)
{
    for (const auto& [key, value] : result.metrics)
        if (key == name)
            return value;
    return 0.0;
}

/** FNV-1a over every number the tables are built from. */
uint64_t
outcomeDigest(const std::vector<harness::SweepOutcome>& outcomes)
{
    uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    const auto mixDouble = [&mix](double v) {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    };
    for (const auto& outcome : outcomes) {
        for (const char c : outcome.label)
            mix(uint64_t(uint8_t(c)));
        mix(outcome.ok ? 1 : 0);
        mixDouble(outcome.result.aggregatePerf);
        mixDouble(outcome.result.meanPowerWatts);
        mixDouble(outcome.result.capViolationSec);
        mixDouble(metricValue(outcome.result, "decision.converge_sec"));
        mix(outcome.result.converged ? 1 : 0);
    }
    return h;
}

struct StrategyStats
{
    double convergeSecSum = 0.0;
    double violationFracSum = 0.0;
    double logPerfRatioSum = 0.0;
    int cells = 0;
    int converged = 0;

    double convergeSec() const
    {
        return cells > 0 ? convergeSecSum / cells : 0.0;
    }
    double violationRate() const
    {
        return cells > 0 ? violationFracSum / cells : 0.0;
    }
    double perfVsBinary() const
    {
        return cells > 0 ? std::exp(logPerfRatioSum / cells) : 0.0;
    }
    double convergedFrac() const
    {
        return cells > 0 ? double(converged) / cells : 0.0;
    }
};

std::string
jsonKey(core::StrategyKind kind)
{
    std::string key = core::strategyName(kind);
    std::replace(key.begin(), key.end(), '-', '_');
    return key;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::string outPath = "BENCH_strategy.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            quick = true;
        else if (arg == "--out" && i + 1 < argc)
            outPath = argv[++i];
    }
    const uint64_t seed = bench::envSeed(42);
    const std::vector<JobSpec> grid = buildGrid(quick);
    const std::vector<harness::SweepJob> jobs = buildJobs(grid, quick, seed);

    std::printf("=== Strategy tournament (%s mode, %zu jobs, seed %llu) "
                "===\n\n",
                quick ? "quick" : "full", jobs.size(),
                static_cast<unsigned long long>(seed));

    harness::SweepRunner pooled(bench::sweepOptions(argc, argv));
    const auto outcomes = pooled.run(jobs);

    // Thread-count independence: the same grid run serially must be
    // bit-identical (per-job seeds depend only on the job index, and the
    // strategy RNG seed is derived from the job seed).
    harness::SweepRunner::Options serialOptions;
    serialOptions.threads = 1;
    serialOptions.keepTraces = false;
    const auto serialOutcomes =
        harness::SweepRunner(serialOptions).run(jobs);
    const bool deterministic =
        outcomeDigest(outcomes) == outcomeDigest(serialOutcomes);

    int failures = deterministic ? 0 : 1;
    if (!deterministic)
        std::fprintf(stderr, "FAIL: pooled and serial tournament runs "
                             "diverged\n");

    // Index converged performance per cell for the vs-binary ratios.
    std::map<std::string, double> binaryPerf;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (grid[i].strategy != core::StrategyKind::kBinarySearch)
            continue;
        const std::string cell = std::string(
            harness::governorName(grid[i].governor)) + '/' + grid[i].app +
            '@' + trace::formatDouble(grid[i].cap);
        binaryPerf[cell] = outcomes[i].result.aggregatePerf;
    }

    std::map<core::StrategyKind, StrategyStats> stats;
    int allConverged = 1;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        if (!outcome.ok) {
            std::fprintf(stderr, "FAIL: job %s threw: %s\n",
                         outcome.label.c_str(), outcome.error.c_str());
            ++failures;
            continue;
        }
        StrategyStats& s = stats[grid[i].strategy];
        ++s.cells;
        if (outcome.result.converged)
            ++s.converged;
        else
            allConverged = 0;
        s.convergeSecSum += metricValue(outcome.result,
                                        "decision.converge_sec");
        s.violationFracSum +=
            outcome.result.capViolationSec /
            std::max(outcome.result.durationSec, 1e-9);
        const std::string cell = std::string(
            harness::governorName(grid[i].governor)) + '/' + grid[i].app +
            '@' + trace::formatDouble(grid[i].cap);
        const double base = binaryPerf.count(cell) ? binaryPerf[cell] : 0.0;
        if (base > 0.0 && outcome.result.aggregatePerf > 0.0)
            s.logPerfRatioSum +=
                std::log(outcome.result.aggregatePerf / base);
    }

    util::Table table({"strategy", "converge s", "perf vs binary",
                       "violation %", "converged"});
    for (const core::StrategyKind kind : core::allStrategyKinds()) {
        const StrategyStats& s = stats[kind];
        table.addRow({core::strategyName(kind),
                      util::Table::cell(s.convergeSec(), 1),
                      util::Table::cell(s.perfVsBinary(), 3),
                      util::Table::cell(100.0 * s.violationRate(), 2),
                      util::Table::cell(s.convergedFrac(), 2)});
    }
    table.print(std::cout);
    std::printf("\nDeterminism: pooled and serial runs %s.\n",
                deterministic ? "are bit-identical" : "DIVERGED");

    std::string json;
    json += "{\n  \"schema\": \"pupil-strategy-tournament-v1\",\n";
    json += "  \"mode\": \"" + std::string(quick ? "quick" : "full") +
            "\",\n  \"seed\": " + std::to_string(seed) + ",\n";
    json += "  \"strategy_tournament\": {\n";
    json += "    \"jobs\": " + std::to_string(jobs.size()) + ",\n";
    json += "    \"determinism_ok\": " +
            std::string(deterministic ? "1" : "0") + ",\n";
    json += "    \"all_converged\": " + std::to_string(allConverged) + ",\n";
    bool first = true;
    for (const core::StrategyKind kind : core::allStrategyKinds()) {
        const StrategyStats& s = stats[kind];
        if (!first)
            json += ",\n";
        first = false;
        json += "    \"" + jsonKey(kind) + "\": {\n";
        json += "      \"converge_sec\": " +
                trace::formatDouble(s.convergeSec()) + ",\n";
        json += "      \"perf_vs_binary\": " +
                trace::formatDouble(s.perfVsBinary()) + ",\n";
        json += "      \"violation_rate\": " +
                trace::formatDouble(s.violationRate()) + ",\n";
        json += "      \"converged_frac\": " +
                trace::formatDouble(s.convergedFrac()) + "\n    }";
    }
    json += "\n  }\n}\n";
    if (!trace::writeFile(outPath, json)) {
        std::fprintf(stderr, "FAIL: could not write %s\n", outPath.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", outPath.c_str());
    return failures == 0 ? 0 : 2;
}
