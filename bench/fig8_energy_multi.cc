/**
 * @file
 * Reproduces Fig. 8: the ratio of PUPiL to RAPL energy efficiency for the
 * multi-application mixes, cooperative and oblivious, across the caps.
 * Efficiency is the mix's total (normalized) work divided by the energy
 * consumed getting all of it done.
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

int
main()
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const double workSec =
        std::getenv("PUPIL_BENCH_FAST") != nullptr ? 90.0 : 180.0;
    // Keep the bench's runtime in check: evaluate the caps at the extremes
    // and the middle (the paper's trend is monotone in between).
    const std::vector<double> caps =
        std::getenv("PUPIL_BENCH_FAST") != nullptr
            ? std::vector<double>{60.0, 140.0, 220.0}
            : bench::powerCaps();

    std::printf("=== Fig. 8: PUPiL-to-RAPL energy-efficiency ratio ===\n\n");
    for (auto scenario : {workload::Scenario::kCooperative,
                          workload::Scenario::kOblivious}) {
        std::printf("--- %s scenario ---\n",
                    workload::scenarioName(scenario));
        std::vector<std::string> header = {"mix"};
        for (double cap : caps)
            header.push_back(util::Table::cell((long long)cap) + "W");
        util::Table table(header);
        std::vector<std::vector<double>> perCap(caps.size());
        for (const auto& mix : workload::multiAppMixes()) {
            std::vector<std::string> row = {mix.name};
            for (size_t c = 0; c < caps.size(); ++c) {
                const auto apps = harness::mixApps(mix, scenario);
                harness::ExperimentOptions options;
                options.capWatts = caps[c];
                for (const auto& app : apps) {
                    const auto oracle =
                        capping::searchOptimal(sched, pm, {app}, caps[c]);
                    options.workItems.push_back(oracle.appItemsPerSec[0] *
                                                workSec);
                }
                double eff[2] = {0, 0};
                int g = 0;
                for (auto kind : {harness::GovernorKind::kRapl,
                                  harness::GovernorKind::kPupil}) {
                    const auto result =
                        harness::runExperiment(kind, apps, options);
                    eff[g] = result.perfPerJoule;
                    ++g;
                }
                const double ratio = eff[1] / eff[0];
                perCap[c].push_back(ratio);
                row.push_back(util::Table::cell(ratio));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (const auto& values : perCap)
            meanRow.push_back(util::Table::cell(util::harmonicMean(values)));
        table.addSeparator();
        table.addRow(meanRow);
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("Paper reference: PUPiL improves multi-application energy\n"
                "efficiency over RAPL by 5-40%% across caps -- not its goal,\n"
                "but a by-product of finishing the same work sooner.\n");
    return 0;
}
