/**
 * @file
 * Reproduces Fig. 8: the ratio of PUPiL to RAPL energy efficiency for the
 * multi-application mixes, cooperative and oblivious, across the caps.
 * Efficiency is the mix's total (normalized) work divided by the energy
 * consumed getting all of it done. All runs execute on the SweepRunner
 * pool (--serial / PUPIL_SWEEP_THREADS control the worker count).
 */
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"
#include "util/table.h"

using namespace pupil;

namespace {

const std::vector<workload::Scenario> kScenarios = {
    workload::Scenario::kCooperative, workload::Scenario::kOblivious};

const std::vector<harness::GovernorKind> kKinds = {
    harness::GovernorKind::kRapl, harness::GovernorKind::kPupil};

}  // namespace

int
main(int argc, char** argv)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const double workSec =
        std::getenv("PUPIL_BENCH_FAST") != nullptr ? 90.0 : 180.0;
    // Keep the bench's runtime in check: evaluate the caps at the extremes
    // and the middle (the paper's trend is monotone in between).
    const std::vector<double> caps =
        std::getenv("PUPIL_BENCH_FAST") != nullptr
            ? std::vector<double>{60.0, 140.0, 220.0}
            : bench::powerCaps();
    const std::vector<workload::Mix>& mixes = workload::multiAppMixes();
    harness::SweepRunner runner(bench::sweepOptions(argc, argv));

    std::printf("=== Fig. 8: PUPiL-to-RAPL energy-efficiency ratio ===\n\n");

    // One cell per (scenario, mix, cap) -- the mixes are rows here, so the
    // cell order follows the table's row-major presentation order.
    const size_t cells = kScenarios.size() * mixes.size() * caps.size();
    std::vector<std::vector<double>> cellWork(cells);
    runner.forEach(cells, [&](size_t i) {
        const workload::Scenario scenario =
            kScenarios[i / (mixes.size() * caps.size())];
        const workload::Mix& mix = mixes[i / caps.size() % mixes.size()];
        const double cap = caps[i % caps.size()];
        for (const auto& app : harness::mixApps(mix, scenario)) {
            const auto oracle = capping::searchOptimal(sched, pm, {app}, cap);
            cellWork[i].push_back(oracle.appItemsPerSec[0] * workSec);
        }
    });

    std::vector<harness::SweepJob> jobs;
    jobs.reserve(cells * kKinds.size());
    for (size_t i = 0; i < cells; ++i) {
        const workload::Scenario scenario =
            kScenarios[i / (mixes.size() * caps.size())];
        const workload::Mix& mix = mixes[i / caps.size() % mixes.size()];
        const double cap = caps[i % caps.size()];
        for (harness::GovernorKind kind : kKinds) {
            harness::SweepJob job;
            job.kind = kind;
            job.apps = harness::mixApps(mix, scenario);
            job.options.capWatts = cap;
            job.options.workItems = cellWork[i];
            job.label = mix.name;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<harness::SweepOutcome> outcomes = runner.run(jobs);

    for (size_t s = 0; s < kScenarios.size(); ++s) {
        std::printf("--- %s scenario ---\n",
                    workload::scenarioName(kScenarios[s]));
        std::vector<std::string> header = {"mix"};
        for (double cap : caps)
            header.push_back(util::Table::cell((long long)cap) + "W");
        util::Table table(header);
        std::vector<std::vector<double>> perCap(caps.size());
        for (size_t m = 0; m < mixes.size(); ++m) {
            std::vector<std::string> row = {mixes[m].name};
            for (size_t c = 0; c < caps.size(); ++c) {
                const size_t cell =
                    (s * mixes.size() + m) * caps.size() + c;
                const harness::SweepOutcome& raplOut =
                    outcomes[cell * kKinds.size()];
                const harness::SweepOutcome& pupilOut =
                    outcomes[cell * kKinds.size() + 1];
                if (!raplOut.ok || !pupilOut.ok ||
                    raplOut.result.perfPerJoule <= 0.0) {
                    row.push_back("err");
                    continue;
                }
                const double ratio = pupilOut.result.perfPerJoule /
                                     raplOut.result.perfPerJoule;
                perCap[c].push_back(ratio);
                row.push_back(util::Table::cell(ratio));
            }
            table.addRow(row);
        }
        std::vector<std::string> meanRow = {"Harm.Mean"};
        for (const auto& values : perCap)
            meanRow.push_back(util::Table::cell(util::harmonicMean(values)));
        table.addSeparator();
        table.addRow(meanRow);
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf("Paper reference: PUPiL improves multi-application energy\n"
                "efficiency over RAPL by 5-40%% across caps -- not its goal,\n"
                "but a by-product of finishing the same work sooner.\n");
    return 0;
}
