#ifndef PUPIL_PUPIL_H_
#define PUPIL_PUPIL_H_

/**
 * @file
 * Umbrella header for the PUPiL library -- a reproduction of
 * "Maximizing Performance Under a Power Cap: A Comparison of Hardware,
 * Software, and Hybrid Techniques" (Zhang & Hoffmann, ASPLOS 2016).
 *
 * Layering (each layer depends only on those above it):
 *   util       -- rng, statistics, small linear algebra, tables/CSV
 *   faults     -- deterministic fault schedules and the injector that
 *                 imposes them at the sensor/MSR/actuator/node seams
 *   machine    -- topology, DVFS, the 1024-point configuration space,
 *                 calibrated power model, stateful machine w/ latencies
 *   workload   -- analytic application models, 20-benchmark catalog,
 *                 the paper's multi-application mixes
 *   sched      -- OS scheduler + contention model (shares, bandwidth,
 *                 spin cycles, serial-phase amplification)
 *   telemetry  -- noisy sensors, the 3-sigma filter, settling metrics,
 *                 energy accounting, VTune-like counters
 *   sim        -- discrete-time platform tying it all together
 *   rapl       -- emulated MSR file + hardware capping firmware
 *   capping    -- Governor interface, RAPL-only / Soft-DVFS /
 *                 Soft-Modeling baselines, the exhaustive oracle
 *   core       -- the paper's contribution: resource ordering
 *                 (Algorithm 2), the decision walker (Algorithm 1) and
 *                 its pluggable strategy zoo, Soft-Decision, and the
 *                 PUPiL hybrid governor
 *   harness    -- one-call experiment runner used by tests and benches
 *
 * Quick start:
 * @code
 *   sim::Platform platform({}, {{&workload::findBenchmark("x264"), 32}});
 *   platform.warmStart(machine::maximalConfig());
 *   rapl::RaplController rapl;
 *   core::Pupil pupil;
 *   pupil.attachRapl(&rapl);
 *   pupil.setCap(140.0);
 *   platform.addActor(&rapl);
 *   platform.addActor(&pupil);
 *   platform.run(60.0);
 * @endcode
 */

#include "capping/governor.h"
#include "capping/oracle.h"
#include "capping/pack_and_cap.h"
#include "capping/rapl_governor.h"
#include "capping/regression.h"
#include "capping/soft_dvfs.h"
#include "capping/soft_modeling.h"
#include "cluster/power_shifter.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "core/power_dist.h"
#include "core/pupil.h"
#include "core/resource.h"
#include "core/soft_decision.h"
#include "core/strategy.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "machine/config.h"
#include "machine/dvfs.h"
#include "machine/machine.h"
#include "machine/power_model.h"
#include "machine/topology.h"
#include "rapl/msr.h"
#include "rapl/rapl.h"
#include "sched/scheduler.h"
#include "sim/actor.h"
#include "sim/phase_driver.h"
#include "sim/platform.h"
#include "telemetry/counters.h"
#include "telemetry/energy.h"
#include "telemetry/filter.h"
#include "telemetry/health.h"
#include "telemetry/sensor.h"
#include "telemetry/settling.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/app_model.h"
#include "workload/catalog.h"
#include "workload/mixes.h"
#include "workload/phase.h"

#endif  // PUPIL_PUPIL_H_
