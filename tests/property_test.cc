/** @file Property-based invariant tests: ~100 fixed-seed random cases per
 *  property, exercising cap splitting, cluster power shifting, and the
 *  decision walker's accept rule across the input space rather than at
 *  hand-picked points. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "cluster/budget_tree.h"
#include "cluster/power_shifter.h"
#include "load/cap_arbiter.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "core/power_dist.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "workload/catalog.h"

namespace pupil {
namespace {

using machine::MachineConfig;

constexpr int kCases = 100;

TEST(SplitCapProperty, SharesAlwaysSumToTheCap)
{
    const machine::PowerModel pm;
    const auto configs = machine::enumerateExtendedConfigs();
    util::Rng rng(2024);
    for (int c = 0; c < kCases; ++c) {
        const MachineConfig& cfg =
            configs[rng.uniformInt(configs.size())];
        const double cap = rng.uniform(10.0, 260.0);
        for (const auto policy : {core::PowerDistPolicy::kEvenSplit,
                                  core::PowerDistPolicy::kCoreProportional}) {
            const auto shares = core::splitCap(pm, cfg, cap, policy);
            EXPECT_NEAR(shares[0] + shares[1], cap, 1e-9)
                << cfg.toString() << " cap=" << cap
                << " policy=" << core::policyName(policy);
        }
    }
}

TEST(SplitCapProperty, FeasibleCapsNeverStarveASocketBelowItsFloor)
{
    // Whenever the cap covers the machine's static draw, the
    // core-proportional policy hands every socket at least its static
    // floor (an inactive socket exactly its idle draw), so no socket is
    // asked to enforce a cap hardware cannot reach.
    const machine::PowerModel pm;
    const auto configs = machine::enumerateExtendedConfigs();
    util::Rng rng(77);
    for (int c = 0; c < kCases; ++c) {
        const MachineConfig& cfg =
            configs[rng.uniformInt(configs.size())];
        const double floor0 = pm.staticSocketPower(cfg, 0);
        const double floor1 = pm.staticSocketPower(cfg, 1);
        const double cap = floor0 + floor1 + rng.uniform(0.0, 200.0);
        const auto shares = core::splitCap(
            pm, cfg, cap, core::PowerDistPolicy::kCoreProportional);
        EXPECT_GE(shares[0], floor0 - 1e-9) << cfg.toString();
        EXPECT_GE(shares[1], floor1 - 1e-9) << cfg.toString();
        for (int s = 0; s < 2; ++s) {
            if (!cfg.socketActive(s)) {
                EXPECT_NEAR(shares[s], pm.staticSocketPower(cfg, s), 1e-9)
                    << cfg.toString();
            }
        }
    }
}

TEST(PowerShifterProperty, CapsSumToTheBudgetAcrossRandomLossAndRejoin)
{
    // Across random cluster sizes, budgets, and node-loss windows, the
    // per-node caps must sum to the grantable budget -- min(global budget,
    // sum of online TDPs) -- at every reallocation boundary whenever at
    // least one node is online: watts travel between nodes but are never
    // created or destroyed, and a node is never granted watts its TDP
    // cannot absorb nor dropped below the per-node floor.
    const char* names[4] = {"n0", "n1", "n2", "n3"};
    const char* apps[4] = {"x264", "kmeans", "swish++", "blackscholes"};
    util::Rng rng(4242);
    for (int c = 0; c < kCases; ++c) {
        cluster::PowerShifter::Options opts;
        const int nodeCount = 2 + int(rng.uniformInt(3));
        opts.globalBudgetWatts = rng.uniform(150.0, 500.0);
        opts.minNodeCapWatts = 20.0;
        cluster::PowerShifter shifter(opts);
        for (int n = 0; n < nodeCount; ++n)
            shifter.addNode(names[n], harness::singleApp(apps[n], 16),
                            harness::GovernorKind::kPupil, c * 7 + n + 1);
        // One or two random loss windows inside the run.
        std::string spec;
        const int windows = 1 + int(rng.uniformInt(2));
        for (int w = 0; w < windows; ++w) {
            const int victim = int(rng.uniformInt(uint64_t(nodeCount)));
            const double start = rng.uniform(2.0, 10.0);
            const double end = start + rng.uniform(2.0, 8.0);
            if (!spec.empty())
                spec += ';';
            spec += std::string("node-loss,") + names[victim] + ',' +
                    std::to_string(start) + ',' + std::to_string(end);
        }
        const auto schedule = faults::FaultSchedule::parse(spec);
        shifter.setFaultSchedule(&schedule);
        for (double t = 2.0; t <= 20.0; t += 2.0) {
            shifter.run(t);
            bool anyOnline = false;
            double offlineCaps = 0.0;
            for (size_t n = 0; n < shifter.nodeCount(); ++n) {
                const cluster::Node& node = shifter.node(n);
                if (node.online) {
                    anyOnline = true;
                    EXPECT_GE(node.capWatts, opts.minNodeCapWatts - 1e-9)
                        << "t=" << t << " n=" << n << " spec=" << spec;
                    EXPECT_LE(node.capWatts, opts.nodeTdpWatts + 1e-9)
                        << "t=" << t << " n=" << n << " spec=" << spec;
                } else {
                    offlineCaps += node.capWatts;
                }
            }
            EXPECT_DOUBLE_EQ(offlineCaps, 0.0) << spec;
            if (anyOnline) {
                EXPECT_LT(shifter.budgetErrorWatts(), 1e-6)
                    << "t=" << t << " spec=" << spec;
            }
        }
    }
}

TEST(WalkerProperty, NeverAcceptsAConfigWhoseModeledPowerExceedsTheCap)
{
    // Software-only mode (checkPower = true): drive the walker with
    // noiseless model feedback under random caps and workloads, and on
    // every accept event check the configuration it just committed to
    // against the analytic power model. Algorithm 1's accept rule must
    // only ever keep settings the measured power justified.
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const auto order =
        core::calibrateOrdering(scheduler, pm, workload::calibrationApp())
            .orderedResources(true);
    const auto& catalog = workload::benchmarkCatalog();
    util::Rng rng(31337);
    int accepts = 0;
    for (int c = 0; c < kCases; ++c) {
        const auto& app = catalog[rng.uniformInt(catalog.size())];
        const double cap = rng.uniform(60.0, 220.0);
        core::DecisionWalker::Options options;
        options.windowSamples = 5;
        options.checkPower = true;
        core::DecisionWalker walker(order, options);
        trace::Recorder recorder;
        walker.attachTrace(&recorder);
        walker.start(machine::minimalConfig(), cap, 0.0);
        const std::vector<sched::AppDemand> apps = {{&app, 32}};
        double now = 0.0;
        while (!walker.converged() && now < 600.0) {
            now += 0.1;
            const auto out =
                scheduler.solve(walker.config(), {1.0, 1.0}, apps);
            const double perf = out.apps[0].itemsPerSec / 1e6;
            const double power = pm.totalPower(walker.config(), out.loads);
            walker.addSample(perf, power, now);
        }
        EXPECT_TRUE(walker.converged())
            << app.name << " cap=" << cap << " stuck in "
            << walker.phaseName();

        // Replay the event stream into a shadow configuration: config-try
        // events reproduce every setting the walker wrote, so at each
        // accept event the shadow holds exactly the configuration the
        // walker committed to (the walker itself has already raised the
        // next resource by the time addSample returns).
        MachineConfig shadow = machine::minimalConfig();
        for (const auto& event : recorder.snapshot()) {
            switch (event.kind) {
              case trace::EventKind::kWalkStart:
                shadow = machine::minimalConfig();
                break;
              case trace::EventKind::kConfigTry:
                order[size_t(event.i0)].apply(shadow, event.i1);
                break;
              case trace::EventKind::kConfigAccept: {
                order[size_t(event.i0)].apply(shadow, event.i1);
                ++accepts;
                const auto committed =
                    scheduler.solve(shadow, {1.0, 1.0}, apps);
                const double committedPower =
                    pm.totalPower(shadow, committed.loads);
                EXPECT_LE(committedPower, cap + 1e-6)
                    << app.name << " cap=" << cap << " accepted "
                    << shadow.toString();
                break;
              }
              default:
                break;
            }
        }
    }
    // The property is vacuous if walks never accept anything.
    EXPECT_GT(accepts, kCases);
}

TEST(StrategyProperty, NoStrategyEverConvergesOverTheCap)
{
    // The strategy-generic walker-never-over-cap suite: for every decision
    // discipline in the zoo, ~kCases random (resource subset, cap, app)
    // walks in software-checked mode must end the Monitor phase on a
    // configuration whose measured power is at or below the cap. The
    // subset draw exercises walks over partial orders (single resources,
    // no DVFS, DVFS alone), not just the full calibrated machine.
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const auto fullOrder =
        core::calibrateOrdering(scheduler, pm, workload::calibrationApp())
            .orderedResources(true);
    const auto& catalog = workload::benchmarkCatalog();
    for (const core::StrategyKind kind : core::allStrategyKinds()) {
        util::Rng rng(0xC0FFEE ^ uint64_t(kind));
        for (int c = 0; c < kCases; ++c) {
            std::vector<core::Resource> order;
            for (const core::Resource& r : fullOrder)
                if (rng.bernoulli(0.7))
                    order.push_back(r);
            if (order.empty())
                order.push_back(fullOrder[rng.uniformInt(fullOrder.size())]);
            const auto& app = catalog[rng.uniformInt(catalog.size())];
            const double cap = rng.uniform(60.0, 220.0);

            core::DecisionWalker::Options options;
            options.windowSamples = 5;
            options.checkPower = true;
            options.strategy.kind = kind;
            options.strategy.seed = rng.next() | 1;  // non-zero
            core::DecisionWalker walker(order, options);
            walker.start(machine::minimalConfig(), cap, 0.0);
            const std::vector<sched::AppDemand> apps = {{&app, 32}};
            double now = 0.0;
            while (!walker.converged() && now < 900.0) {
                now += 0.1;
                const auto out =
                    scheduler.solve(walker.config(), {1.0, 1.0}, apps);
                walker.addSample(out.apps[0].itemsPerSec / 1e6,
                                 pm.totalPower(walker.config(), out.loads),
                                 now);
            }
            ASSERT_TRUE(walker.converged())
                << core::strategyName(kind) << ' ' << app.name
                << " cap=" << cap << " stuck in " << walker.phaseName();
            const auto out =
                scheduler.solve(walker.config(), {1.0, 1.0}, apps);
            const double power = pm.totalPower(walker.config(), out.loads);
            EXPECT_LE(power, cap + 1e-6)
                << core::strategyName(kind) << ' ' << app.name
                << " cap=" << cap << " converged on "
                << walker.config().toString();
        }
    }
}

TEST(CapArbiterProperty, NeverGrantsAboveTheCapAndNeverStrandsWatts)
{
    // Random caps and demands (some zero): the grants must sum to
    // exactly the cap while any tier has demand, and to zero when none
    // does -- the arbiter neither over-grants nor strands watts.
    const slo::CapArbiter arbiter;
    util::Rng rng(4242);
    for (int c = 0; c < kCases; ++c) {
        const double cap = rng.uniform(10.0, 400.0);
        std::array<double, load::kTierCount> demand = {};
        double total = 0.0;
        for (int t = 0; t < load::kTierCount; ++t) {
            demand[size_t(t)] =
                rng.uniform(0.0, 1.0) < 0.3 ? 0.0 : rng.uniform(0.1, 80.0);
            total += demand[size_t(t)];
        }
        const auto grants = arbiter.split(cap, demand);
        double granted = 0.0;
        for (int t = 0; t < load::kTierCount; ++t)
            granted += grants[size_t(t)];
        if (total > 0.0) {
            EXPECT_NEAR(granted, cap, 1e-9) << "cap=" << cap;
        } else {
            EXPECT_DOUBLE_EQ(granted, 0.0);
        }
        EXPECT_LE(granted, cap + 1e-9);
    }
}

TEST(CapArbiterProperty, ActiveTiersKeepTheirFloorsIdleTiersGetNothing)
{
    // A tier with nonzero demand is never starved below its protected
    // floor (floorFrac * cap), scaled uniformly when the active floors
    // alone oversubscribe the cap; a tier with zero demand gets zero.
    const slo::CapArbiter arbiter;
    const auto& floorFrac = arbiter.options().floorFrac;
    util::Rng rng(777);
    for (int c = 0; c < kCases; ++c) {
        const double cap = rng.uniform(10.0, 400.0);
        std::array<double, load::kTierCount> demand = {};
        for (int t = 0; t < load::kTierCount; ++t)
            demand[size_t(t)] =
                rng.uniform(0.0, 1.0) < 0.4 ? 0.0 : rng.uniform(0.05, 50.0);
        const auto grants = arbiter.split(cap, demand);
        double activeFloorSum = 0.0;
        for (int t = 0; t < load::kTierCount; ++t)
            if (demand[size_t(t)] > 0.0)
                activeFloorSum += floorFrac[size_t(t)] * cap;
        const double scale =
            activeFloorSum > cap ? cap / activeFloorSum : 1.0;
        for (int t = 0; t < load::kTierCount; ++t) {
            if (demand[size_t(t)] <= 0.0) {
                EXPECT_DOUBLE_EQ(grants[size_t(t)], 0.0)
                    << "idle tier " << t << " cap=" << cap;
            } else {
                EXPECT_GE(grants[size_t(t)],
                          floorFrac[size_t(t)] * cap * scale - 1e-9)
                    << "tier " << t << " cap=" << cap
                    << " demand=" << demand[size_t(t)];
            }
        }
    }
}

TEST(TransportProperty, ConservationClampsAndProgressUnderRandomFaultMixes)
{
    // Random message-fault schedules (drop/delay/reorder/dup/partition,
    // plus node-loss for population churn) over random budgets and seeds.
    // Whatever the network does, three things must hold at every
    // observation point: (1) per-view conservation -- each level's granted
    // caps sum to what was DELIVERED to it -- stays within tolerance;
    // (2) every cap a leaf enforces lies in [floor, TDP] (an online node
    // enforcing nothing, capWatts 0, is the rejoin/bootstrap state while
    // its first grant is in flight or lost); (3) periods always advance:
    // no fault mix deadlocks the control loop.
    const char* apps[4] = {"x264", "kmeans", "swish++", "blackscholes"};
    const char* msgKinds[4] = {"msg-drop", "msg-delay", "msg-reorder",
                               "msg-dup"};
    util::Rng rng(0x7249);
    uint64_t totalDelivered = 0;
    uint64_t totalDropped = 0;
    for (int c = 0; c < kCases; ++c) {
        cluster::BudgetTree::Options opts;
        opts.globalBudgetWatts = rng.uniform(300.0, 800.0);
        opts.threads = 1;
        opts.msgFaultSeed = 0x1000 + uint64_t(c);
        cluster::BudgetTree tree(opts);
        std::vector<std::string> nodeNames;
        std::vector<std::string> rackNames;
        for (int r = 0; r < 2; ++r) {
            rackNames.push_back("rack" + std::to_string(r));
            tree.addRack(rackNames.back());
            for (int n = 0; n < 2; ++n) {
                nodeNames.push_back("r" + std::to_string(r) + "n" +
                                    std::to_string(n));
                tree.addNode(size_t(r), nodeNames.back(),
                             harness::singleApp(apps[(r * 2 + n) % 4], 16),
                             harness::GovernorKind::kPupil,
                             uint64_t(c * 29 + r * 4 + n + 1));
            }
        }
        std::string spec;
        const int eventCount = 2 + int(rng.uniformInt(3));
        for (int e = 0; e < eventCount; ++e) {
            const double start = rng.uniform(0.0, 8.0);
            const double end = start + rng.uniform(1.0, 6.0);
            const int kind = int(rng.uniformInt(6));
            std::string entry;
            if (kind < 4) {
                std::string target = "*";
                const double pick = rng.uniform(0.0, 1.0);
                if (pick < 0.35)
                    target = nodeNames[size_t(
                        rng.uniformInt(nodeNames.size()))];
                else if (pick < 0.6)
                    target = rackNames[size_t(
                        rng.uniformInt(rackNames.size()))];
                const double param =
                    kind == 1 ? rng.uniform(0.5, 2.5) : 0.0;
                const double prob = rng.uniform(0.3, 1.0);
                entry = std::string(msgKinds[kind]) + ',' + target + ',' +
                        std::to_string(start) + ',' + std::to_string(end) +
                        ',' + std::to_string(param) + ',' +
                        std::to_string(prob);
            } else if (kind == 4) {
                entry = "partition," +
                        rackNames[size_t(
                            rng.uniformInt(rackNames.size()))] +
                        ',' + std::to_string(start) + ',' +
                        std::to_string(end);
            } else {
                entry = "node-loss," +
                        nodeNames[size_t(
                            rng.uniformInt(nodeNames.size()))] +
                        ',' + std::to_string(start) + ',' +
                        std::to_string(end);
            }
            if (!spec.empty())
                spec += ';';
            spec += entry;
        }
        const auto schedule = faults::FaultSchedule::parse(spec);
        tree.setFaultSchedule(&schedule);
        int lastPeriods = 0;
        for (double t = 3.0; t <= 12.0; t += 3.0) {
            tree.run(t);
            EXPECT_GT(tree.periods(), lastPeriods)
                << "control loop stalled; spec=" << spec;
            lastPeriods = tree.periods();
            EXPECT_LT(tree.budgetErrorWatts(),
                      1e-6 * opts.globalBudgetWatts + 1e-9)
                << "t=" << t << " spec=" << spec;
            for (size_t r = 0; r < tree.rackCount(); ++r) {
                for (size_t n = 0; n < tree.nodeCount(r); ++n) {
                    const cluster::Node& node = tree.node(r, n);
                    if (!node.online) {
                        EXPECT_DOUBLE_EQ(node.capWatts, 0.0)
                            << "offline leaf holds a grant; spec=" << spec;
                    } else if (node.capWatts != 0.0) {
                        EXPECT_GE(node.capWatts,
                                  opts.minNodeCapWatts - 1e-9)
                            << "t=" << t << " r=" << r << " n=" << n
                            << " spec=" << spec;
                        EXPECT_LE(node.capWatts, opts.nodeTdpWatts + 1e-9)
                            << "t=" << t << " r=" << r << " n=" << n
                            << " spec=" << spec;
                    }
                }
            }
        }
        totalDelivered += tree.transportStats().delivered;
        totalDropped += tree.transportStats().dropped;
    }
    // Sanity on the harness itself: the sweep must actually exercise the
    // network both ways -- messages flowing and messages lost.
    EXPECT_GT(totalDelivered, 0u);
    EXPECT_GT(totalDropped, 0u);
}

TEST(EventDrivenProperty, ChurnNeverBreaksConservationFloorsOrCeilings)
{
    // ~kCases random demand-churn schedules against event-driven
    // (hysteresis > 0) surrogate trees: every period, each node's demand
    // may jump to a new utilization. Whatever the churn and whatever the
    // band, dirty-subtree rebalancing must never break the invariants the
    // legacy control plane guarantees: per-view conservation within
    // tolerance, every enforced cap inside [floor, TDP], offline leaves
    // holding no grant. (The band only decides WHEN the tree recomputes,
    // never WHAT a recomputation is allowed to produce.)
    util::Rng rng(0xEDA);
    for (int c = 0; c < kCases; ++c) {
        cluster::BudgetTree::Options opts;
        const int racks = 2 + int(rng.uniformInt(3));
        const int nodesPerRack = 2 + int(rng.uniformInt(5));
        opts.globalBudgetWatts =
            rng.uniform(80.0, 220.0) * racks * nodesPerRack;
        opts.threads = 1;
        opts.hysteresisWatts = rng.uniform(0.5, 10.0);
        cluster::BudgetTree tree(opts);
        const char* apps[3] = {"x264", "kmeans", "swish++"};
        for (int r = 0; r < racks; ++r) {
            tree.addRack("rack" + std::to_string(r));
            for (int n = 0; n < nodesPerRack; ++n) {
                tree.addSurrogateNode(
                    size_t(r),
                    "r" + std::to_string(r) + "n" + std::to_string(n),
                    apps[(r + n) % 3], harness::GovernorKind::kPupil,
                    uint64_t(c * 97 + r * 8 + n + 1));
            }
        }
        for (double t = 1.0; t <= 16.0; t += 1.0) {
            tree.run(t);
            // Random demand churn: some nodes jump to a new utilization.
            for (int r = 0; r < racks; ++r) {
                for (int n = 0; n < nodesPerRack; ++n) {
                    if (rng.bernoulli(0.25)) {
                        tree.surrogateLeaf(size_t(r), size_t(n))
                            ->setUtilization(rng.uniform(0.05, 1.2));
                    }
                }
            }
            EXPECT_LT(tree.budgetErrorWatts(),
                      1e-6 * opts.globalBudgetWatts + 1e-9)
                << "case " << c << " t=" << t
                << " band=" << opts.hysteresisWatts;
            for (size_t r = 0; r < tree.rackCount(); ++r) {
                for (size_t n = 0; n < tree.nodeCount(r); ++n) {
                    const cluster::Node& node = tree.node(r, n);
                    if (node.capWatts != 0.0) {
                        EXPECT_GE(node.capWatts, opts.minNodeCapWatts - 1e-9)
                            << "case " << c << " t=" << t;
                        EXPECT_LE(node.capWatts, opts.nodeTdpWatts + 1e-9)
                            << "case " << c << " t=" << t;
                    }
                }
            }
        }
    }
}

TEST(EventDrivenProperty, QuiescentTreePerformsZeroRebalances)
{
    // The point of the event-driven mode: with constant demand, once the
    // surrogate lags have relaxed and every level has acted on the
    // settled demand, NO further rebalance fires anywhere in the tree --
    // heartbeat reports keep arriving (so staleness never trips), but
    // their deltas sit inside the band and every gate suppresses. The
    // legacy plane would have kept recomputing every level every period
    // forever.
    util::Rng rng(0x901E5);
    for (int c = 0; c < 20; ++c) {
        cluster::BudgetTree::Options opts;
        const int racks = 2 + int(rng.uniformInt(3));
        const int nodesPerRack = 2 + int(rng.uniformInt(4));
        opts.globalBudgetWatts =
            rng.uniform(100.0, 200.0) * racks * nodesPerRack;
        opts.threads = 1;
        opts.hysteresisWatts = rng.uniform(2.0, 8.0);
        cluster::BudgetTree tree(opts);
        const char* apps[3] = {"x264", "kmeans", "swish++"};
        for (int r = 0; r < racks; ++r) {
            tree.addRack("rack" + std::to_string(r));
            for (int n = 0; n < nodesPerRack; ++n) {
                cluster::SurrogateLeaf::Options leafOpts;
                leafOpts.utilization = 0.3 + 0.1 * ((r * nodesPerRack + n) % 7);
                tree.addSurrogateNode(
                    size_t(r),
                    "r" + std::to_string(r) + "n" + std::to_string(n),
                    apps[(r + n) % 3], harness::GovernorKind::kPupil,
                    uint64_t(c * 53 + r * 8 + n + 1), leafOpts);
            }
        }
        // Converge: grants out, lags relaxed, donation deltas shrunk
        // inside the band (the tightest bands take ~16 periods).
        tree.run(20.0);
        const int settledShifts = tree.shifts();
        const uint64_t suppressedBefore = tree.rebalancesSuppressed();
        tree.run(40.0);
        EXPECT_EQ(tree.shifts(), settledShifts)
            << "case " << c << ": a quiescent tree rebalanced (band="
            << opts.hysteresisWatts << ")";
        // And not because nothing was considered: the gates actively
        // suppressed recomputations during the quiet stretch.
        EXPECT_GT(tree.rebalancesSuppressed(), suppressedBefore)
            << "case " << c;
        EXPECT_LT(tree.budgetErrorWatts(),
                  1e-6 * opts.globalBudgetWatts + 1e-9);
    }
}

}  // namespace
}  // namespace pupil
