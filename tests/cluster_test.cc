/** @file Tests for cluster-level power shifting on top of node cappers. */
#include <gtest/gtest.h>

#include "cluster/power_shifter.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "workload/catalog.h"

namespace pupil::cluster {
namespace {

TEST(PowerShifter, CapsAlwaysSumToGlobalBudget)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 300.0;
    PowerShifter cluster(options);
    cluster.addNode("n0", harness::singleApp("swaptions"),
                    harness::GovernorKind::kPupil, 1);
    cluster.addNode("n1", harness::singleApp("dijkstra"),
                    harness::GovernorKind::kPupil, 2);
    cluster.addNode("n2", harness::singleApp("swish++"),
                    harness::GovernorKind::kPupil, 3);
    for (double t = 5.0; t <= 40.0; t += 5.0) {
        cluster.run(t);
        EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5) << "t=" << t;
    }
    EXPECT_GT(cluster.shifts(), 0);
}

TEST(PowerShifter, GlobalBudgetIsRespected)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 250.0;
    PowerShifter cluster(options);
    cluster.addNode("a", harness::singleApp("blackscholes"),
                    harness::GovernorKind::kPupil, 4);
    cluster.addNode("b", harness::singleApp("cfd"),
                    harness::GovernorKind::kPupil, 5);
    cluster.run(60.0);
    EXPECT_LE(cluster.totalPowerWatts(), 250.0 * 1.03);
}

TEST(PowerShifter, WattsFlowTowardTheHungryNode)
{
    // A light node (limited-parallelism swish++ needs ~85 W) shares a
    // 260 W budget with a heavy node (swaptions can burn 230 W alone).
    // Shifting must move the light node's headroom to the heavy node.
    PowerShifter::Options options;
    options.globalBudgetWatts = 260.0;
    PowerShifter cluster(options);
    const size_t heavy = cluster.addNode(
        "heavy", harness::singleApp("swaptions"),
        harness::GovernorKind::kPupil, 6);
    const size_t light = cluster.addNode(
        "light", harness::singleApp("swish++"),
        harness::GovernorKind::kPupil, 7);
    cluster.run(90.0);
    EXPECT_GT(cluster.node(heavy).capWatts, 145.0);
    EXPECT_LT(cluster.node(light).capWatts, 115.0);
    // The heavy node actually uses its enlarged cap.
    EXPECT_GT(cluster.node(heavy).platform->truePower(), 140.0);
}

TEST(PowerShifter, MinimumNodeCapIsRespected)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 200.0;
    options.minNodeCapWatts = 40.0;
    PowerShifter cluster(options);
    cluster.addNode("busy", harness::singleApp("swaptions"),
                    harness::GovernorKind::kPupil, 8);
    cluster.addNode("idle", harness::singleApp("dijkstra"),
                    harness::GovernorKind::kPupil, 9);
    cluster.run(60.0);
    for (size_t i = 0; i < cluster.nodeCount(); ++i)
        EXPECT_GE(cluster.node(i).capWatts, 39.9) << i;
}

TEST(PowerShifter, NodeLossMidShiftRedistributesItsWatts)
{
    // n1 drops out of the cluster at t = 10 s, mid-shift, and rejoins at
    // t = 30 s. The global budget invariant must hold throughout: the
    // lost node's watts flow to the survivors immediately, never vanish,
    // and the rejoined node is folded back in without exceeding the
    // budget.
    PowerShifter::Options options;
    options.globalBudgetWatts = 300.0;
    PowerShifter cluster(options);
    const size_t n0 = cluster.addNode("n0", harness::singleApp("swaptions"),
                                      harness::GovernorKind::kPupil, 21);
    const size_t n1 = cluster.addNode("n1", harness::singleApp("x264"),
                                      harness::GovernorKind::kPupil, 22);
    const size_t n2 = cluster.addNode("n2", harness::singleApp("btree"),
                                      harness::GovernorKind::kPupil, 23);
    const faults::FaultSchedule schedule =
        faults::FaultSchedule::parse("node-loss,n1,10,30");
    cluster.setFaultSchedule(&schedule);

    cluster.run(8.0);
    ASSERT_TRUE(cluster.node(n1).online);
    const double capBefore = cluster.node(n1).capWatts;
    EXPECT_GT(capBefore, 0.0);

    // Caps sum to the budget at every observation point, lost node or not.
    for (double t = 12.0; t <= 50.0; t += 4.0) {
        cluster.run(t);
        EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5) << "t=" << t;
        if (t < 30.0) {
            EXPECT_FALSE(cluster.node(n1).online) << "t=" << t;
            EXPECT_DOUBLE_EQ(cluster.node(n1).capWatts, 0.0) << "t=" << t;
            // The survivors hold the whole budget between them.
            EXPECT_NEAR(cluster.node(n0).capWatts +
                            cluster.node(n2).capWatts,
                        300.0, 0.5)
                << "t=" << t;
        }
    }

    // After the window the node is back with a real share.
    EXPECT_TRUE(cluster.node(n1).online);
    EXPECT_GT(cluster.node(n1).capWatts, options.minNodeCapWatts - 0.1);
    EXPECT_EQ(cluster.lossEvents(), 1);
    EXPECT_EQ(cluster.rejoinEvents(), 1);
    // An offline node's platform is frozen, so the cluster-wide power
    // measurement keeps respecting the budget.
    EXPECT_LE(cluster.totalPowerWatts(), 300.0 * 1.03);
}

TEST(PowerShifter, InitialDivisionArmsHardwareBeforeFirstPeriod)
{
    // Regression: the initial budget division used to program only the
    // node governors, never the RAPL firmware. A node under a
    // software-only governor (no hardware backing of its own) then ran
    // uncapped for the entire first reallocation period. The initial
    // shares must reach governor AND firmware before any node steps.
    PowerShifter::Options options;
    options.globalBudgetWatts = 200.0;  // 100 W/node: a tight share
    PowerShifter cluster(options);
    cluster.addNode("s0", harness::singleApp("swaptions"),
                    harness::GovernorKind::kSoftDvfs, 30);
    cluster.addNode("s1", harness::singleApp("x264"),
                    harness::GovernorKind::kSoftDvfs, 31);
    cluster.run(1.0);  // still inside the first period (periodSec = 2)
    for (size_t i = 0; i < cluster.nodeCount(); ++i) {
        const Node& node = cluster.node(i);
        const auto z0 = node.rapl->zoneStatus(0);
        const auto z1 = node.rapl->zoneStatus(1);
        EXPECT_TRUE(z0.enabled) << i;
        EXPECT_TRUE(z1.enabled) << i;
        EXPECT_NEAR(z0.capWatts + z1.capWatts, node.capWatts, 1e-6) << i;
        // With the backstop armed, a node cannot blow through its share
        // while its software governor is still settling (swaptions would
        // otherwise burn ~230 W against a 100 W share).
        EXPECT_LE(node.platform->truePower(), node.capWatts * 1.10) << i;
    }
}

TEST(PowerShifter, DeadMeterNodeIsNeverStarvedOfBudget)
{
    // Regression: a node whose power meter reads ~0 (sensor dropout) used
    // to look like it had maximal headroom -- it donated its cap down to
    // the floor every period and, with measured power 0, took a zero
    // grant weight, so it never received budget back. The implausible-
    // reading guard must hold such a node's budget instead: it neither
    // donates on the bogus number nor drops out of the grant pool.
    PowerShifter::Options options;
    options.globalBudgetWatts = 260.0;
    PowerShifter cluster(options);
    const size_t dead = cluster.addNode(
        "dead", harness::singleApp("swaptions"),
        harness::GovernorKind::kPupil, 32, "sensor-dropout,power,0,1000");
    const size_t light = cluster.addNode(
        "light", harness::singleApp("swish++"),
        harness::GovernorKind::kPupil, 33);
    cluster.run(60.0);
    // The dead-meter node started from a 130 W even share; grants only
    // ever add to it, so anything below that means it was drained on the
    // bogus reading (pre-fix it decayed to the 30 W floor).
    EXPECT_GE(cluster.node(dead).capWatts, 130.0 - 1e-6);
    EXPECT_LT(cluster.budgetErrorWatts(), 1e-6);
    // Shifting itself still happens (the light node donates real headroom).
    EXPECT_GT(cluster.shifts(), 0);
    (void)light;
}

TEST(PowerShifter, GrantsAreClampedToNodeTdp)
{
    // Regression: nothing used to bound a node's cap from above, so a
    // donation-heavy run could grant one node more watts than its package
    // TDPs can draw -- budget parked where it can never be spent. Caps
    // must stay within the machine's 270 W TDP with the excess
    // redistributed, preserving the budget sum.
    PowerShifter::Options options;
    options.globalBudgetWatts = 500.0;
    PowerShifter cluster(options);
    cluster.addNode("hungry", harness::singleApp("swaptions"),
                    harness::GovernorKind::kPupil, 34);
    cluster.addNode("quiet", harness::singleApp("dijkstra"),
                    harness::GovernorKind::kPupil, 35);
    for (double t = 10.0; t <= 60.0; t += 10.0) {
        cluster.run(t);
        for (size_t i = 0; i < cluster.nodeCount(); ++i) {
            EXPECT_LE(cluster.node(i).capWatts,
                      options.nodeTdpWatts + 1e-9)
                << "t=" << t << " node=" << i;
        }
        // 500 W over two 270 W nodes is grantable in full.
        EXPECT_NEAR(cluster.totalCapWatts(), 500.0, 1e-6) << "t=" << t;
    }

    // With a budget no online population can absorb, caps pin at the
    // TDP sum instead of inventing capacity.
    PowerShifter::Options over;
    over.globalBudgetWatts = 600.0;
    PowerShifter wide(over);
    wide.addNode("a", harness::singleApp("x264"),
                 harness::GovernorKind::kPupil, 36);
    wide.addNode("b", harness::singleApp("btree"),
                 harness::GovernorKind::kPupil, 37);
    wide.run(20.0);
    EXPECT_NEAR(wide.totalCapWatts(), 2 * over.nodeTdpWatts, 1e-6);
    EXPECT_LT(wide.budgetErrorWatts(), 1e-6);
}

TEST(PowerShifter, SamePeriodLossAndRejoinConservesTheBudget)
{
    // a's loss window ends exactly where b's begins, so at t = 12 a
    // single membership update sees one node rejoin and another drop out
    // simultaneously. The reshare must hand b's watts over, fold a back
    // in, and keep the caps summing to the budget through the swap.
    PowerShifter::Options options;
    options.globalBudgetWatts = 300.0;
    PowerShifter cluster(options);
    const size_t a = cluster.addNode("a", harness::singleApp("x264"),
                                     harness::GovernorKind::kPupil, 38);
    const size_t b = cluster.addNode("b", harness::singleApp("kmeans"),
                                     harness::GovernorKind::kPupil, 39);
    const size_t c = cluster.addNode("c", harness::singleApp("btree"),
                                     harness::GovernorKind::kPupil, 40);
    const faults::FaultSchedule schedule =
        faults::FaultSchedule::parse("node-loss,a,4,12;node-loss,b,12,30");
    cluster.setFaultSchedule(&schedule);

    cluster.run(14.0);  // past the swap boundary
    EXPECT_TRUE(cluster.node(a).online);
    EXPECT_FALSE(cluster.node(b).online);
    EXPECT_DOUBLE_EQ(cluster.node(b).capWatts, 0.0);
    EXPECT_GE(cluster.node(a).capWatts, options.minNodeCapWatts - 1e-9);
    EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5);
    EXPECT_LT(cluster.budgetErrorWatts(), 1e-6);
    EXPECT_EQ(cluster.lossEvents(), 2);
    EXPECT_EQ(cluster.rejoinEvents(), 1);

    cluster.run(40.0);  // b back as well
    EXPECT_TRUE(cluster.node(b).online);
    EXPECT_EQ(cluster.rejoinEvents(), 2);
    EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5);
    EXPECT_LT(cluster.budgetErrorWatts(), 1e-6);
    for (size_t i = 0; i < cluster.nodeCount(); ++i)
        EXPECT_GE(cluster.node(i).capWatts,
                  options.minNodeCapWatts - 1e-9)
            << i;
    (void)c;
}

TEST(PowerShifter, WorksWithRaplOnlyNodes)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 280.0;
    PowerShifter cluster(options);
    cluster.addNode("r0", harness::singleApp("btree"),
                    harness::GovernorKind::kRapl, 10);
    cluster.addNode("r1", harness::singleApp("kmeans"),
                    harness::GovernorKind::kRapl, 11);
    cluster.run(30.0);
    EXPECT_LE(cluster.totalPowerWatts(), 280.0 * 1.03);
    EXPECT_NEAR(cluster.totalCapWatts(), 280.0, 0.5);
}

}  // namespace
}  // namespace pupil::cluster
