/** @file Tests for cluster-level power shifting on top of node cappers. */
#include <gtest/gtest.h>

#include "cluster/power_shifter.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "workload/catalog.h"

namespace pupil::cluster {
namespace {

TEST(PowerShifter, CapsAlwaysSumToGlobalBudget)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 300.0;
    PowerShifter cluster(options);
    cluster.addNode("n0", harness::singleApp("swaptions"),
                    harness::GovernorKind::kPupil, 1);
    cluster.addNode("n1", harness::singleApp("dijkstra"),
                    harness::GovernorKind::kPupil, 2);
    cluster.addNode("n2", harness::singleApp("swish++"),
                    harness::GovernorKind::kPupil, 3);
    for (double t = 5.0; t <= 40.0; t += 5.0) {
        cluster.run(t);
        EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5) << "t=" << t;
    }
    EXPECT_GT(cluster.shifts(), 0);
}

TEST(PowerShifter, GlobalBudgetIsRespected)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 250.0;
    PowerShifter cluster(options);
    cluster.addNode("a", harness::singleApp("blackscholes"),
                    harness::GovernorKind::kPupil, 4);
    cluster.addNode("b", harness::singleApp("cfd"),
                    harness::GovernorKind::kPupil, 5);
    cluster.run(60.0);
    EXPECT_LE(cluster.totalPowerWatts(), 250.0 * 1.03);
}

TEST(PowerShifter, WattsFlowTowardTheHungryNode)
{
    // A light node (limited-parallelism swish++ needs ~85 W) shares a
    // 260 W budget with a heavy node (swaptions can burn 230 W alone).
    // Shifting must move the light node's headroom to the heavy node.
    PowerShifter::Options options;
    options.globalBudgetWatts = 260.0;
    PowerShifter cluster(options);
    const size_t heavy = cluster.addNode(
        "heavy", harness::singleApp("swaptions"),
        harness::GovernorKind::kPupil, 6);
    const size_t light = cluster.addNode(
        "light", harness::singleApp("swish++"),
        harness::GovernorKind::kPupil, 7);
    cluster.run(90.0);
    EXPECT_GT(cluster.node(heavy).capWatts, 145.0);
    EXPECT_LT(cluster.node(light).capWatts, 115.0);
    // The heavy node actually uses its enlarged cap.
    EXPECT_GT(cluster.node(heavy).platform->truePower(), 140.0);
}

TEST(PowerShifter, MinimumNodeCapIsRespected)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 200.0;
    options.minNodeCapWatts = 40.0;
    PowerShifter cluster(options);
    cluster.addNode("busy", harness::singleApp("swaptions"),
                    harness::GovernorKind::kPupil, 8);
    cluster.addNode("idle", harness::singleApp("dijkstra"),
                    harness::GovernorKind::kPupil, 9);
    cluster.run(60.0);
    for (size_t i = 0; i < cluster.nodeCount(); ++i)
        EXPECT_GE(cluster.node(i).capWatts, 39.9) << i;
}

TEST(PowerShifter, NodeLossMidShiftRedistributesItsWatts)
{
    // n1 drops out of the cluster at t = 10 s, mid-shift, and rejoins at
    // t = 30 s. The global budget invariant must hold throughout: the
    // lost node's watts flow to the survivors immediately, never vanish,
    // and the rejoined node is folded back in without exceeding the
    // budget.
    PowerShifter::Options options;
    options.globalBudgetWatts = 300.0;
    PowerShifter cluster(options);
    const size_t n0 = cluster.addNode("n0", harness::singleApp("swaptions"),
                                      harness::GovernorKind::kPupil, 21);
    const size_t n1 = cluster.addNode("n1", harness::singleApp("x264"),
                                      harness::GovernorKind::kPupil, 22);
    const size_t n2 = cluster.addNode("n2", harness::singleApp("btree"),
                                      harness::GovernorKind::kPupil, 23);
    const faults::FaultSchedule schedule =
        faults::FaultSchedule::parse("node-loss,n1,10,30");
    cluster.setFaultSchedule(&schedule);

    cluster.run(8.0);
    ASSERT_TRUE(cluster.node(n1).online);
    const double capBefore = cluster.node(n1).capWatts;
    EXPECT_GT(capBefore, 0.0);

    // Caps sum to the budget at every observation point, lost node or not.
    for (double t = 12.0; t <= 50.0; t += 4.0) {
        cluster.run(t);
        EXPECT_NEAR(cluster.totalCapWatts(), 300.0, 0.5) << "t=" << t;
        if (t < 30.0) {
            EXPECT_FALSE(cluster.node(n1).online) << "t=" << t;
            EXPECT_DOUBLE_EQ(cluster.node(n1).capWatts, 0.0) << "t=" << t;
            // The survivors hold the whole budget between them.
            EXPECT_NEAR(cluster.node(n0).capWatts +
                            cluster.node(n2).capWatts,
                        300.0, 0.5)
                << "t=" << t;
        }
    }

    // After the window the node is back with a real share.
    EXPECT_TRUE(cluster.node(n1).online);
    EXPECT_GT(cluster.node(n1).capWatts, options.minNodeCapWatts - 0.1);
    EXPECT_EQ(cluster.lossEvents(), 1);
    EXPECT_EQ(cluster.rejoinEvents(), 1);
    // An offline node's platform is frozen, so the cluster-wide power
    // measurement keeps respecting the budget.
    EXPECT_LE(cluster.totalPowerWatts(), 300.0 * 1.03);
}

TEST(PowerShifter, WorksWithRaplOnlyNodes)
{
    PowerShifter::Options options;
    options.globalBudgetWatts = 280.0;
    PowerShifter cluster(options);
    cluster.addNode("r0", harness::singleApp("btree"),
                    harness::GovernorKind::kRapl, 10);
    cluster.addNode("r1", harness::singleApp("kmeans"),
                    harness::GovernorKind::kRapl, 11);
    cluster.run(30.0);
    EXPECT_LE(cluster.totalPowerWatts(), 280.0 * 1.03);
    EXPECT_NEAR(cluster.totalCapWatts(), 280.0, 0.5);
}

}  // namespace
}  // namespace pupil::cluster
