/** @file Unit tests for the util library (rng, stats, linalg, table, csv). */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/csv.h"
#include "util/linalg.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace pupil::util {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.uniform());
    EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(13);
    OnlineStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gaussian(3.0, 2.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, UniformIntRange)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(7), 7u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.split();
    EXPECT_NE(a.next(), b.next());
}

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStats, MatchesDirectComputation)
{
    OnlineStats stats;
    const std::vector<double> xs = {1, 2, 3, 4, 100};
    for (double x : xs)
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.mean(), mean(xs));
    EXPECT_NEAR(stats.stddev(), stddev(xs), 1e-12);
    EXPECT_EQ(stats.min(), 1.0);
    EXPECT_EQ(stats.max(), 100.0);
}

TEST(Stats, HarmonicMeanKnownValue)
{
    EXPECT_NEAR(harmonicMean({1.0, 0.5}), 2.0 / 3.0, 1e-12);
}

TEST(Stats, HarmonicMeanBelowArithmetic)
{
    const std::vector<double> xs = {0.3, 0.7, 0.9, 1.4};
    EXPECT_LT(harmonicMean(xs), mean(xs));
}

TEST(Stats, HarmonicMeanRejectsNonPositive)
{
    EXPECT_EQ(harmonicMean({1.0, 0.0}), 0.0);
    EXPECT_EQ(harmonicMean({}), 0.0);
}

TEST(Stats, GeometricMeanKnownValue)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> xs = {5, 1, 3, 2, 4};
    EXPECT_EQ(percentile(xs, 0), 1.0);
    EXPECT_EQ(percentile(xs, 100), 5.0);
    EXPECT_EQ(percentile(xs, 50), 3.0);
}

TEST(Linalg, SolvesKnownSystem)
{
    Matrix a(2, 2);
    a.at(0, 0) = 2;
    a.at(0, 1) = 1;
    a.at(1, 0) = 1;
    a.at(1, 1) = 3;
    std::vector<double> x;
    ASSERT_TRUE(solveLinearSystem(a, {5, 10}, x));
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(Linalg, DetectsSingularSystem)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 2;
    a.at(1, 1) = 4;
    std::vector<double> x;
    EXPECT_FALSE(solveLinearSystem(a, {1, 2}, x));
}

TEST(Linalg, LeastSquaresRecoversLine)
{
    // y = 3 + 2x, exactly.
    Matrix design(5, 2);
    std::vector<double> y(5);
    for (int i = 0; i < 5; ++i) {
        design.at(i, 0) = 1.0;
        design.at(i, 1) = i;
        y[i] = 3.0 + 2.0 * i;
    }
    std::vector<double> beta;
    ASSERT_TRUE(leastSquares(design, y, 0.0, beta));
    EXPECT_NEAR(beta[0], 3.0, 1e-9);
    EXPECT_NEAR(beta[1], 2.0, 1e-9);
}

TEST(Table, RendersHeadersAndRows)
{
    Table table({"a", "bb"});
    table.addRow({"1", "2"});
    const std::string out = table.toString();
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(Table, CellFormatsPrecision)
{
    EXPECT_EQ(Table::cell(1.005, 2), "1.00");  // round-to-even artifacts ok
    EXPECT_EQ(Table::cell(2.5, 1), "2.5");
    EXPECT_EQ(Table::cell(static_cast<long long>(42)), "42");
}

TEST(Csv, WritesEscapedCells)
{
    const std::string path = "/tmp/pupil_csv_test.csv";
    {
        CsvWriter csv(path, {"x", "y"});
        ASSERT_TRUE(csv.ok());
        csv.row(std::vector<std::string>{"a,b", "he said \"hi\""});
        csv.row(std::vector<double>{1.5, 2.5});
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "\"a,b\",\"he said \"\"hi\"\"\"");
    std::getline(in, line);
    EXPECT_EQ(line, "1.5,2.5");
    std::remove(path.c_str());
}

TEST(Csv, EscapePassesCleanFieldsThrough)
{
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("plain"), "plain");
    EXPECT_EQ(csvEscape("with space"), "with space");
    EXPECT_EQ(csvEscape("semi;colon"), "semi;colon");
}

TEST(Csv, EscapeQuotesSpecialFields)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvEscape("cr\rhere"), "\"cr\rhere\"");
    EXPECT_EQ(csvEscape("\""), "\"\"\"\"");
}

TEST(Csv, SplitRecordInvertsEscape)
{
    const std::vector<std::string> fields = {
        "plain", "", "a,b", "say \"hi\"", "line\nbreak",
        "tricky,\"mix\"\nof,everything", ",", "\"\"",
    };
    std::string record;
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            record += ',';
        record += csvEscape(fields[i]);
    }
    EXPECT_EQ(csvSplitRecord(record), fields);
}

TEST(Csv, SplitRecordRoundTripsRandomFields)
{
    // Property: csvSplitRecord(join(csvEscape(f))) == f for arbitrary
    // byte content, including the CSV metacharacters themselves.
    static const char kBytes[] = "ab,\"\n\r;x0 ";
    Rng rng(99);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<std::string> fields(1 + rng.uniformInt(6));
        for (std::string& field : fields) {
            const size_t length = rng.uniformInt(12);
            for (size_t i = 0; i < length; ++i)
                field += kBytes[rng.uniformInt(sizeof(kBytes) - 1)];
        }
        std::string record;
        for (size_t i = 0; i < fields.size(); ++i) {
            if (i > 0)
                record += ',';
            record += csvEscape(fields[i]);
        }
        ASSERT_EQ(csvSplitRecord(record), fields) << "record: " << record;
    }
}

TEST(Csv, WriterRoundTripsThroughSplitRecord)
{
    const std::string path = "/tmp/pupil_csv_roundtrip_test.csv";
    const std::vector<std::string> cells = {"a,b", "say \"hi\"", "plain"};
    {
        CsvWriter csv(path, {"c1", "c2", "c3"});
        ASSERT_TRUE(csv.ok());
        csv.row(cells);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(csvSplitRecord(line),
              (std::vector<std::string>{"c1", "c2", "c3"}));
    std::getline(in, line);
    EXPECT_EQ(csvSplitRecord(line), cells);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace pupil::util
