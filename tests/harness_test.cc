/** @file Tests for the experiment harness. */
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/catalog.h"

namespace pupil::harness {
namespace {

TEST(Harness, GovernorNamesMatchPaper)
{
    EXPECT_STREQ(governorName(GovernorKind::kRapl), "RAPL");
    EXPECT_STREQ(governorName(GovernorKind::kSoftDvfs), "Soft-DVFS");
    EXPECT_STREQ(governorName(GovernorKind::kSoftModeling), "Soft-Modeling");
    EXPECT_STREQ(governorName(GovernorKind::kSoftDecision), "Soft-Decision");
    EXPECT_STREQ(governorName(GovernorKind::kPupil), "PUPiL");
    EXPECT_EQ(allGovernors().size(), 5u);
}

TEST(Harness, SingleAppBuildsDemand)
{
    const auto apps = singleApp("cfd", 16);
    ASSERT_EQ(apps.size(), 1u);
    EXPECT_EQ(apps[0].params->name, "cfd");
    EXPECT_EQ(apps[0].threads, 16);
}

TEST(Harness, MixAppsUsesScenarioThreads)
{
    const auto& mix = workload::findMix("mix5");
    const auto coop = mixApps(mix, workload::Scenario::kCooperative);
    const auto obl = mixApps(mix, workload::Scenario::kOblivious);
    ASSERT_EQ(coop.size(), 4u);
    for (const auto& app : coop)
        EXPECT_EQ(app.threads, 8);
    for (const auto& app : obl)
        EXPECT_EQ(app.threads, 32);
    EXPECT_EQ(coop[0].params->name, "x264");
}

TEST(Harness, ResultCarriesTracesAndMetrics)
{
    ExperimentOptions options;
    options.capWatts = 140.0;
    options.durationSec = 20.0;
    options.statsWindowSec = 10.0;
    const auto result = runExperiment(GovernorKind::kRapl,
                                      singleApp("swaptions"), options);
    EXPECT_EQ(result.governor, "RAPL");
    EXPECT_EQ(result.capWatts, 140.0);
    EXPECT_GT(result.aggregatePerf, 0.0);
    EXPECT_GT(result.meanPowerWatts, 50.0);
    EXPECT_GT(result.perfPerJoule, 0.0);
    EXPECT_FALSE(result.powerTrace.empty());
    EXPECT_EQ(result.powerTrace.size(), result.perfTrace.size());
    ASSERT_EQ(result.appItemsPerSec.size(), 1u);
    EXPECT_GT(result.appItemsPerSec[0], 0.0);
    EXPECT_TRUE(result.completionTimes.empty());  // not a completion run
}

TEST(Harness, SameSeedReproducesExactly)
{
    ExperimentOptions options;
    options.capWatts = 100.0;
    options.durationSec = 15.0;
    options.statsWindowSec = 5.0;
    options.seed = 77;
    const auto a = runExperiment(GovernorKind::kSoftDvfs,
                                 singleApp("btree"), options);
    const auto b = runExperiment(GovernorKind::kSoftDvfs,
                                 singleApp("btree"), options);
    EXPECT_DOUBLE_EQ(a.aggregatePerf, b.aggregatePerf);
    EXPECT_DOUBLE_EQ(a.meanPowerWatts, b.meanPowerWatts);
    EXPECT_DOUBLE_EQ(a.settlingTimeSec, b.settlingTimeSec);
}

TEST(Harness, CompletionRunReportsPerAppTimes)
{
    ExperimentOptions options;
    options.capWatts = 140.0;
    options.workItems = {1e3, 2e3};  // tiny jobs; finish in seconds
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 16},
        {&workload::findBenchmark("blackscholes"), 16}};
    const auto result =
        runExperiment(GovernorKind::kRapl, apps, options);
    ASSERT_EQ(result.completionTimes.size(), 2u);
    for (double t : result.completionTimes) {
        EXPECT_GT(t, 0.0);
        EXPECT_LT(t, options.maxDurationSec);
    }
    EXPECT_LE(result.durationSec, options.maxDurationSec);
}

TEST(Harness, CompletionRunStopsAtMaxDuration)
{
    ExperimentOptions options;
    options.capWatts = 140.0;
    options.maxDurationSec = 5.0;
    options.workItems = {1e18};  // never finishes
    const auto result = runExperiment(GovernorKind::kRapl,
                                      singleApp("swaptions"), options);
    EXPECT_NEAR(result.durationSec, 5.0, 0.1);
    EXPECT_NEAR(result.completionTimes[0], 5.0, 0.1);
}

TEST(Harness, PupilPolicyOptionIsHonored)
{
    // Even-split PUPiL must strand budget for a single-socket-optimal app.
    ExperimentOptions options;
    options.capWatts = 60.0;
    options.durationSec = 120.0;
    options.statsWindowSec = 40.0;
    const auto apps = singleApp("kmeans");
    options.pupilPolicy = core::PowerDistPolicy::kCoreProportional;
    const auto proportional =
        runExperiment(GovernorKind::kPupil, apps, options);
    options.pupilPolicy = core::PowerDistPolicy::kEvenSplit;
    const auto even = runExperiment(GovernorKind::kPupil, apps, options);
    EXPECT_GT(proportional.aggregatePerf, even.aggregatePerf * 1.1);
}

}  // namespace
}  // namespace pupil::harness
