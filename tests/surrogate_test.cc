/** @file Differential battery for the calibrated surrogate leaf
 *  (cluster/surrogate_leaf.h): across ~100 random (application, cap,
 *  governor) cells, a SurrogateModel calibrated from a full
 *  Platform + governor + RAPL leaf must reproduce that leaf's
 *  steady-state power and normalized performance within the stated
 *  tolerances; drift re-calibration must provably trigger on a regime
 *  change and must NOT trigger on in-tolerance noise. Plus unit coverage
 *  for the prior, the interpolation, the leaf relaxation dynamics, the
 *  meter-jitter channel, and the tree-level calibration plumbing. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "capping/governor.h"
#include "cluster/budget_tree.h"
#include "cluster/leaf_model.h"
#include "cluster/surrogate_leaf.h"
#include "harness/experiment.h"
#include "machine/config.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "util/rng.h"
#include "workload/catalog.h"

namespace pupil {
namespace {

using cluster::FullStackLeaf;
using cluster::SurrogateLeaf;
using cluster::SurrogateLibrary;
using cluster::SurrogateModel;

// Stated tolerances of the differential battery. The surrogate is a
// steady-state response table, so it must land within an honest
// engineering envelope of the stack it stands in for -- not bit-exact:
// the full stack has governor hunting the table deliberately averages
// away, and several catalog apps run PHASES (STREAM flips from a 0.5- to
// a 1.0-perf regime mid-run; ScalParC cycles its power draw between 63
// and 119 W indefinitely), so the instantaneous response genuinely
// depends on when you look. The battery therefore has two rings: EVERY
// cell must land inside the loose envelope, and at least 85% of cells
// must land inside the tight one (a phase boundary crossing between the
// calibration window and the truth window can push an individual cell
// into the loose ring; a systematic model error pushes the whole
// population out of the tight ring and fails the count).
constexpr double kPowerTolWatts = 12.0;
constexpr double kPowerTolFraction = 0.08;  ///< of the enforced cap
constexpr double kPerfTol = 0.15;           ///< absolute, perf is O(1)
constexpr double kLooseScale = 2.0;
constexpr int kMinTightCells = 85;          ///< of kCells = 100

/** A standalone full-stack node, built exactly as BudgetTree::addNode
 *  builds one (platform + RAPL firmware + node governor). */
struct FullNode
{
    std::unique_ptr<sim::Platform> platform;
    std::unique_ptr<rapl::RaplController> rapl;
    std::unique_ptr<capping::Governor> governor;
    std::unique_ptr<FullStackLeaf> leaf;
};

FullNode
makeFullNode(const std::string& app, harness::GovernorKind kind,
             uint64_t seed)
{
    FullNode node;
    sim::PlatformOptions popts;
    popts.seed = seed;
    node.platform = std::make_unique<sim::Platform>(
        popts, harness::singleApp(app, 16));
    node.platform->warmStart(machine::maximalConfig());
    node.rapl = std::make_unique<rapl::RaplController>();
    node.governor = harness::makeGovernor(kind);
    node.governor->attachRapl(node.rapl.get());
    node.platform->addActor(node.rapl.get());
    node.platform->addActor(node.governor.get());
    node.leaf = std::make_unique<FullStackLeaf>(
        node.platform.get(), node.governor.get(), node.rapl.get(), nullptr);
    return node;
}

/** Enforce @p capWatts, let the stack settle for @p settlePeriods 1 s
 *  periods, then feed one (cap, true power, perf) observation per period
 *  into @p model for @p observePeriods more -- the tree's calibration
 *  protocol, pointed at the settled response the model is defined over
 *  (PUPiL's hill climb takes ~10 periods from a warm start, and samples
 *  taken mid-climb describe a machine state the table shouldn't keep). */
void
calibrateAt(FullNode& node, SurrogateModel& model, double capWatts,
            double& now, int settlePeriods, int observePeriods)
{
    node.leaf->applyCap(capWatts);
    for (int p = 0; p < settlePeriods; ++p) {
        now += 1.0;
        node.leaf->stepTo(now);
    }
    for (int p = 0; p < observePeriods; ++p) {
        now += 1.0;
        node.leaf->stepTo(now);
        model.observe(capWatts, node.leaf->truePower(),
                      node.leaf->normalizedPerf());
    }
}

TEST(SurrogateDifferential, HundredRandomCellsWithinTolerance)
{
    const auto& catalog = workload::benchmarkCatalog();
    util::Rng rng(20260808);
    constexpr int kCells = 100;
    double maxPowerErr = 0.0;
    double maxPerfErr = 0.0;
    int tightCells = 0;
    for (int cell = 0; cell < kCells; ++cell) {
        const std::string app =
            catalog[size_t(rng.uniformInt(catalog.size()))].name;
        const harness::GovernorKind kind = rng.bernoulli(0.25)
                                               ? harness::GovernorKind::kRapl
                                               : harness::GovernorKind::kPupil;
        const double cap = rng.uniform(60.0, 250.0);
        const uint64_t seed = rng.next();

        FullNode node = makeFullNode(app, kind, seed);
        SurrogateModel model;
        double now = 0.0;
        // Absorb the governor's initial climb from the warm start (no
        // observations: mid-climb samples describe no settled machine),
        // then calibrate the two grid points bracketing the target cap
        // (the points predict() interpolates between; the tree sees the
        // same coverage as grants wander over the grid) and the target
        // itself. Re-settling after a +-20 W cap change is fast once the
        // governor has climbed, so those windows are short.
        calibrateAt(node, model, cap, now, 26, 0);
        const double span =
            model.options().maxCapWatts - model.options().minCapWatts;
        const double spacing = span / double(model.options().bins - 1);
        const double loCap =
            model.options().minCapWatts +
            std::floor((cap - model.options().minCapWatts) / spacing) *
                spacing;
        calibrateAt(node, model, loCap, now, 4, 3);
        calibrateAt(node, model, std::min(model.options().maxCapWatts,
                                          loCap + spacing),
                    now, 4, 3);
        calibrateAt(node, model, cap, now, 4, 6);
        // Ground truth: the full stack's converged response at the cap.
        double powerSum = 0.0;
        double perfSum = 0.0;
        constexpr int kTruthPeriods = 4;
        for (int p = 0; p < kTruthPeriods; ++p) {
            now += 1.0;
            node.leaf->stepTo(now);
            powerSum += node.leaf->truePower();
            perfSum += node.leaf->normalizedPerf();
        }
        const double truthPower = powerSum / kTruthPeriods;
        const double truthPerf = perfSum / kTruthPeriods;

        SurrogateLeaf leaf(&model, {}, seed);
        leaf.applyCap(cap);
        leaf.stepTo(10.0);  // >> responseTauSec: fully relaxed
        const double powerErr = std::abs(leaf.truePower() - truthPower);
        const double perfErr = std::abs(leaf.normalizedPerf() - truthPerf);
        maxPowerErr = std::max(maxPowerErr, powerErr);
        maxPerfErr = std::max(maxPerfErr, perfErr);
        const double powerTol =
            std::max(kPowerTolWatts, kPowerTolFraction * cap);
        if (powerErr <= powerTol && perfErr <= kPerfTol)
            ++tightCells;
        EXPECT_LE(powerErr, kLooseScale * powerTol)
            << "cell " << cell << ": " << app << " @ " << cap << " W, "
            << (kind == harness::GovernorKind::kRapl ? "rapl" : "pupil")
            << " -- surrogate " << leaf.truePower() << " W vs full stack "
            << truthPower << " W";
        EXPECT_LE(perfErr, kLooseScale * kPerfTol)
            << "cell " << cell << ": " << app << " @ " << cap << " W, "
            << (kind == harness::GovernorKind::kRapl ? "rapl" : "pupil")
            << " -- surrogate perf " << leaf.normalizedPerf()
            << " vs full stack " << truthPerf;
    }
    EXPECT_GE(tightCells, kMinTightCells)
        << "too many cells needed the loose (phase-crossing) envelope";
    // Not assertions -- a record of how tight the battery actually ran.
    RecordProperty("tight_cells", std::to_string(tightCells));
    RecordProperty("max_power_error_watts", std::to_string(maxPowerErr));
    RecordProperty("max_perf_error", std::to_string(maxPerfErr));
}

TEST(SurrogateDifferential, DriftRecalibrationProvablyTriggers)
{
    SurrogateModel model;
    // 150 W sits exactly on a grid point at the default 20 W spacing, so
    // predictions there read the bin back without interpolation.
    constexpr double kCap = 150.0;
    for (int i = 0; i < 8; ++i)
        model.observe(kCap, 140.0, 0.8);
    ASSERT_EQ(model.recalibrations(), 0u);
    EXPECT_NEAR(model.predict(kCap).powerWatts, 140.0, 1e-9);

    // In-tolerance noise must fold in at the EWMA rate, not reset.
    model.observe(kCap, 140.0 + model.options().driftPowerWatts * 0.5, 0.8);
    EXPECT_EQ(model.recalibrations(), 0u);

    // A power regime change past the drift tolerance must discard the
    // bin's history and re-seed from the new sample in ONE observation.
    const double shifted = 140.0 + model.options().driftPowerWatts * 3.0;
    model.observe(kCap, shifted, 0.8);
    EXPECT_EQ(model.recalibrations(), 1u);
    EXPECT_NEAR(model.predict(kCap).powerWatts, shifted, 1e-9);

    // Same for a perf regime change.
    model.observe(kCap, shifted, 0.8 + model.options().driftPerf * 1.5);
    EXPECT_EQ(model.recalibrations(), 2u);
    EXPECT_NEAR(model.predict(kCap).perf,
                0.8 + model.options().driftPerf * 1.5, 1e-9);
}

TEST(SurrogateModelTest, PriorAnswersBeforeCalibration)
{
    const SurrogateModel model;
    EXPECT_EQ(model.samples(), 0u);
    EXPECT_EQ(model.calibratedBins(), 0u);
    for (double cap = 30.0; cap <= 270.0; cap += 10.0) {
        const auto predicted = model.predict(cap);
        const auto prior = model.prior(cap);
        EXPECT_DOUBLE_EQ(predicted.powerWatts, prior.powerWatts);
        EXPECT_DOUBLE_EQ(predicted.perf, prior.perf);
        // The prior never claims more power than the cap leaves room for,
        // and perf stays inside [0, priorPeakPerf].
        EXPECT_LE(prior.powerWatts, cap);
        EXPECT_GE(prior.perf, 0.0);
        EXPECT_LE(prior.perf, model.options().priorPeakPerf + 1e-12);
    }
    // Monotone: more cap never predicts less prior perf.
    double lastPerf = -1.0;
    for (double cap = 30.0; cap <= 270.0; cap += 10.0) {
        const double perf = model.prior(cap).perf;
        EXPECT_GE(perf, lastPerf - 1e-12);
        lastPerf = perf;
    }
}

TEST(SurrogateModelTest, PredictionInterpolatesBetweenGridPoints)
{
    SurrogateModel model;
    // Default grid: a point every 20 W from 30. Calibrate 130 and 150.
    model.observe(130.0, 100.0, 0.5);
    model.observe(150.0, 120.0, 0.7);
    EXPECT_EQ(model.calibratedBins(), 2u);
    const auto mid = model.predict(140.0);
    EXPECT_NEAR(mid.powerWatts, 110.0, 1e-9);
    EXPECT_NEAR(mid.perf, 0.6, 1e-9);
}

TEST(SurrogateLeafTest, RelaxesToThePredictedResponse)
{
    SurrogateModel model;
    model.observe(150.0, 132.0, 0.85);
    SurrogateLeaf leaf(&model, {}, 7);
    leaf.applyCap(150.0);
    leaf.stepTo(0.1);  // one tau-fraction in: partway there
    EXPECT_GT(leaf.truePower(), 0.0);
    EXPECT_LT(leaf.truePower(), 132.0);
    leaf.stepTo(8.0);  // many taus: converged
    EXPECT_NEAR(leaf.truePower(), 132.0, 0.5);
    EXPECT_NEAR(leaf.normalizedPerf(), 0.85, 0.01);
    // The enforced cap is a hard clamp even if the table overshoots.
    leaf.applyCap(100.0);
    leaf.stepTo(16.0);
    EXPECT_LE(leaf.truePower(), 100.0 + 1e-9);
}

TEST(SurrogateLeafTest, UtilizationScalesTheResponseDownToIdle)
{
    SurrogateModel model;
    model.observe(150.0, 132.0, 0.85);
    SurrogateLeaf::Options options;
    options.utilization = 0.0;
    SurrogateLeaf leaf(&model, options, 7);
    leaf.applyCap(150.0);
    leaf.stepTo(8.0);
    EXPECT_NEAR(leaf.truePower(), options.idleFloorWatts, 0.5);
    EXPECT_NEAR(leaf.normalizedPerf(), 0.0, 0.01);
    leaf.setUtilization(1.0);
    leaf.stepTo(16.0);
    EXPECT_NEAR(leaf.truePower(), 132.0, 0.5);
}

TEST(SurrogateLeafTest, MeterChannelIsCleanByDefaultAndSeededWithJitter)
{
    SurrogateModel model;
    model.observe(150.0, 132.0, 0.85);
    SurrogateLeaf clean(&model, {}, 11);
    clean.applyCap(150.0);
    clean.stepTo(8.0);
    EXPECT_DOUBLE_EQ(clean.readPower(), clean.truePower());

    SurrogateLeaf::Options jopts;
    jopts.meterJitterFraction = 0.05;
    SurrogateLeaf a(&model, jopts, 11);
    SurrogateLeaf b(&model, jopts, 11);
    a.applyCap(150.0);
    b.applyCap(150.0);
    a.stepTo(8.0);
    b.stepTo(8.0);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(a.readPower(), b.readPower());  // same seed, same
                                                         // meter stream
}

TEST(SurrogateLibraryTest, OneModelPerAppGovernorCell)
{
    SurrogateLibrary library;
    SurrogateModel& a = library.cell("x264", 0);
    SurrogateModel& b = library.cell("x264", 1);
    SurrogateModel& c = library.cell("kmeans", 0);
    EXPECT_EQ(library.cellCount(), 3u);
    EXPECT_NE(&a, &b);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(&library.cell("x264", 0), &a);  // same cell on re-touch
    EXPECT_EQ(library.findCell("x264", 1), &b);
    EXPECT_EQ(library.findCell("absent", 0), nullptr);
}

/** Tree-level plumbing: sampled full-stack leaves calibrate the shared
 *  library, surrogate leaves answer from it, and the mixed tree keeps
 *  the conservation invariant and serial/parallel digest identity. */
TEST(SurrogateTreeTest, CalibrationSourcesFeedTheSharedLibrary)
{
    auto build = [](int threads) {
        cluster::BudgetTree::Options options;
        options.globalBudgetWatts = 150.0 * 8;
        options.threads = threads;
        options.hysteresisWatts = 2.0;
        auto tree = std::make_unique<cluster::BudgetTree>(options);
        for (int r = 0; r < 2; ++r) {
            const size_t rack =
                tree->addRack("rack" + std::to_string(r));
            for (int n = 0; n < 4; ++n) {
                const std::string name =
                    "r" + std::to_string(r) + "n" + std::to_string(n);
                const uint64_t seed = uint64_t(100 + r * 4 + n);
                if (n == 0) {
                    const size_t i = tree->addNode(
                        rack, name, harness::singleApp("x264", 16),
                        harness::GovernorKind::kPupil, seed);
                    tree->addCalibrationSource(rack, i, "x264",
                                               harness::GovernorKind::kPupil);
                } else {
                    tree->addSurrogateNode(rack, name, "x264",
                                           harness::GovernorKind::kPupil,
                                           seed);
                }
            }
        }
        return tree;
    };
    auto serial = build(1);
    auto parallel = build(0);
    serial->run(10.0);
    parallel->run(10.0);

    const SurrogateModel* cell = serial->surrogates().findCell(
        "x264", int(harness::GovernorKind::kPupil));
    ASSERT_NE(cell, nullptr);
    EXPECT_GT(cell->samples(), 0u);       // one per period per source
    EXPECT_GT(cell->calibratedBins(), 0u);
    EXPECT_LE(serial->budgetErrorWatts(), 1e-7 * (150.0 * 8) + 1e-9);
    EXPECT_EQ(serial->stateDigest(), parallel->stateDigest())
        << "mixed full-stack/surrogate tree must step identically on any "
           "thread count";
}

}  // namespace
}  // namespace pupil
