/** @file Tests for the scheduler/contention model. */
#include <gtest/gtest.h>

#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/catalog.h"

namespace pupil::sched {
namespace {

using machine::MachineConfig;
using workload::findBenchmark;

const std::array<double, 2> kFullDuty = {1.0, 1.0};

MachineConfig
config(int cores, int sockets, bool ht, int mc, int pstate)
{
    MachineConfig cfg;
    cfg.coresPerSocket = cores;
    cfg.sockets = sockets;
    cfg.hyperthreading = ht;
    cfg.memControllers = mc;
    cfg.setUniformPState(pstate);
    return cfg;
}

TEST(Scheduler, EmptySystemIsZero)
{
    Scheduler sched;
    const SystemOutcome out =
        sched.solve(machine::minimalConfig(), kFullDuty, {});
    EXPECT_EQ(out.totalIps, 0.0);
    EXPECT_EQ(out.spinFraction, 0.0);
}

TEST(Scheduler, SoloThroughputScalesWithFrequency)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("blackscholes"), 32};
    const auto low = sched.solve(config(8, 2, false, 2, 0), kFullDuty, {app});
    const auto high =
        sched.solve(config(8, 2, false, 2, 14), kFullDuty, {app});
    EXPECT_NEAR(high.apps[0].itemsPerSec / low.apps[0].itemsPerSec,
                2.9 / 1.2, 0.05);
}

TEST(Scheduler, SoloThroughputScalesWithCores)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("blackscholes"), 32};
    const auto one = sched.solve(config(1, 1, false, 2, 10), kFullDuty, {app});
    const auto eight =
        sched.solve(config(8, 1, false, 2, 10), kFullDuty, {app});
    const double ratio = eight.apps[0].itemsPerSec / one.apps[0].itemsPerSec;
    EXPECT_GT(ratio, 6.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(Scheduler, DutyCycleThrottlesThroughput)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("swaptions"), 32};
    const auto cfg = config(8, 2, false, 2, 10);
    const auto full = sched.solve(cfg, kFullDuty, {app});
    const auto half = sched.solve(cfg, {0.5, 0.5}, {app});
    EXPECT_NEAR(half.apps[0].itemsPerSec, full.apps[0].itemsPerSec * 0.5,
                full.apps[0].itemsPerSec * 0.02);
}

TEST(Scheduler, HyperthreadingHurtsX264)
{
    // The paper's Section 2 observation: hyperthreads cost x264 throughput.
    Scheduler sched;
    const AppDemand app = {&findBenchmark("x264"), 32};
    const auto noHt = sched.solve(config(8, 2, false, 2, 10), kFullDuty, {app});
    const auto ht = sched.solve(config(8, 2, true, 2, 10), kFullDuty, {app});
    EXPECT_LT(ht.apps[0].itemsPerSec, noHt.apps[0].itemsPerSec);
}

TEST(Scheduler, HyperthreadingHelpsScalableApps)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("btree"), 32};
    const auto noHt = sched.solve(config(8, 2, false, 2, 10), kFullDuty, {app});
    const auto ht = sched.solve(config(8, 2, true, 2, 10), kFullDuty, {app});
    EXPECT_GT(ht.apps[0].itemsPerSec, noHt.apps[0].itemsPerSec);
}

TEST(Scheduler, SecondSocketHurtsKmeans)
{
    // kmeans bottlenecks on inter-socket communication (Section 5.2).
    Scheduler sched;
    const AppDemand app = {&findBenchmark("kmeans"), 32};
    const auto one = sched.solve(config(8, 1, false, 2, 10), kFullDuty, {app});
    const auto two = sched.solve(config(8, 2, false, 2, 10), kFullDuty, {app});
    EXPECT_LT(two.apps[0].itemsPerSec, one.apps[0].itemsPerSec);
}

TEST(Scheduler, SecondSocketHelpsScalableApps)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("swaptions"), 32};
    const auto one = sched.solve(config(8, 1, false, 2, 10), kFullDuty, {app});
    const auto two = sched.solve(config(8, 2, false, 2, 10), kFullDuty, {app});
    EXPECT_GT(two.apps[0].itemsPerSec, one.apps[0].itemsPerSec * 1.5);
}

TEST(Scheduler, StreamSaturatesMemoryBandwidth)
{
    Scheduler sched(40.0);
    const AppDemand app = {&findBenchmark("STREAM"), 32};
    const auto out = sched.solve(config(8, 2, false, 2, 15), kFullDuty, {app});
    EXPECT_NEAR(out.apps[0].bytesPerSec, 80e9, 1e9);
    EXPECT_LT(out.apps[0].bwRetention, 1.0);
    // Frequency stops mattering once bandwidth-bound.
    const auto slower =
        sched.solve(config(8, 2, false, 2, 10), kFullDuty, {app});
    EXPECT_NEAR(slower.apps[0].itemsPerSec, out.apps[0].itemsPerSec,
                out.apps[0].itemsPerSec * 0.02);
}

TEST(Scheduler, SecondControllerDoublesBandwidthCeiling)
{
    Scheduler sched(40.0);
    const AppDemand app = {&findBenchmark("STREAM"), 32};
    const auto one = sched.solve(config(8, 2, false, 1, 15), kFullDuty, {app});
    const auto two = sched.solve(config(8, 2, false, 2, 15), kFullDuty, {app});
    EXPECT_NEAR(two.apps[0].bytesPerSec / one.apps[0].bytesPerSec, 2.0, 0.1);
}

TEST(Scheduler, HyperthreadPairingDegradesBandwidthEfficiency)
{
    Scheduler sched(40.0);
    const AppDemand app = {&findBenchmark("STREAM"), 32};
    const auto noHt = sched.solve(config(8, 2, false, 2, 15), kFullDuty, {app});
    const auto ht = sched.solve(config(8, 2, true, 2, 15), kFullDuty, {app});
    EXPECT_LT(ht.apps[0].bytesPerSec, noHt.apps[0].bytesPerSec);
}

TEST(Scheduler, BandwidthMaxMinInsulatesLightConsumers)
{
    Scheduler sched(40.0);
    const AppDemand stream = {&findBenchmark("STREAM"), 16};
    const AppDemand compute = {&findBenchmark("swaptions"), 16};
    const auto mixed = sched.solve(config(8, 2, false, 2, 15), kFullDuty,
                                   {stream, compute});
    // The compute app's small demand is fully granted.
    EXPECT_NEAR(mixed.apps[1].bwRetention, 1.0, 1e-9);
    // The streaming app absorbs the shortage.
    EXPECT_LT(mixed.apps[0].bwRetention, 1.0);
}

TEST(Scheduler, FairSharingUnderOversubscription)
{
    Scheduler sched;
    const AppDemand a = {&findBenchmark("blackscholes"), 32};
    const AppDemand b = {&findBenchmark("swaptions"), 32};
    const auto out = sched.solve(config(8, 2, false, 2, 10), kFullDuty, {a, b});
    // Equal thread counts, EP apps: shares should be nearly equal.
    EXPECT_NEAR(out.apps[0].shareCtx, out.apps[1].shareCtx, 0.5);
    const double total = out.apps[0].shareCtx + out.apps[1].shareCtx;
    EXPECT_NEAR(total, 16.0, 0.5);
}

TEST(Scheduler, SpinAppBurnsCyclesWithoutProgress)
{
    Scheduler sched;
    const AppDemand dijkstra = {&findBenchmark("dijkstra"), 32};
    const auto out =
        sched.solve(config(8, 2, true, 2, 10), kFullDuty, {dijkstra});
    EXPECT_GT(out.apps[0].spinCtx, 1.0);
    EXPECT_GT(out.spinFraction, 0.05);
}

TEST(Scheduler, CondvarAppDoesNotSpin)
{
    Scheduler sched;
    const AppDemand vips = {&findBenchmark("vips"), 32};
    const auto out = sched.solve(config(8, 2, true, 2, 10), kFullDuty, {vips});
    EXPECT_EQ(out.apps[0].spinCtx, 0.0);
}

TEST(Scheduler, OversubscriptionStretchesSerialSections)
{
    // dijkstra (30% serial) crawls when 3 other oblivious apps crowd the
    // machine -- worse than a fair 1/4 share would suggest.
    Scheduler sched;
    const auto cfg = config(8, 2, true, 2, 10);
    const AppDemand dijkstra = {&findBenchmark("dijkstra"), 32};
    const auto solo = sched.solve(cfg, kFullDuty, {dijkstra});
    std::vector<AppDemand> crowd = {dijkstra,
                                    {&findBenchmark("swaptions"), 32},
                                    {&findBenchmark("blackscholes"), 32},
                                    {&findBenchmark("btree"), 32}};
    const auto shared = sched.solve(cfg, kFullDuty, crowd);
    EXPECT_LT(shared.apps[0].itemsPerSec, solo.apps[0].itemsPerSec * 0.4);
}

TEST(Scheduler, SpanningSpinAppPoisonsSystemBandwidth)
{
    // A polling app whose threads span both sockets bounces its lock lines
    // across the inter-socket link, degrading everyone's memory bandwidth.
    Scheduler sched;
    std::vector<AppDemand> apps = {{&findBenchmark("kmeans"), 32},
                                   {&findBenchmark("STREAM"), 32}};
    const auto spanning = sched.solve(config(8, 2, false, 2, 10), kFullDuty,
                                      apps);
    const auto confined = sched.solve(config(8, 1, false, 2, 10), kFullDuty,
                                      apps);
    // STREAM's achieved bandwidth collapses in the spanning case relative
    // to the total ceiling.
    EXPECT_LT(spanning.apps[1].bytesPerSec, 50e9);
    EXPECT_GT(confined.totalBytesPerSec, 0.0);
}

TEST(Scheduler, LoadsFeedPowerModelConsistently)
{
    Scheduler sched;
    const AppDemand app = {&findBenchmark("cfd"), 32};
    const auto cfg = config(8, 2, true, 2, 10);
    const auto out = sched.solve(cfg, kFullDuty, {app});
    for (int s = 0; s < 2; ++s) {
        EXPECT_LE(out.loads[s].busyPrimary, 8.0);
        EXPECT_LE(out.loads[s].busySibling, 8.0);
        EXPECT_GE(out.loads[s].activity, 0.0);
        EXPECT_LE(out.loads[s].activity, 1.0);
    }
}

TEST(Scheduler, ZeroThreadAppIsInert)
{
    Scheduler sched;
    std::vector<AppDemand> apps = {{&findBenchmark("cfd"), 0},
                                   {&findBenchmark("swaptions"), 32}};
    const auto out = sched.solve(config(8, 2, false, 2, 10), kFullDuty, apps);
    EXPECT_EQ(out.apps[0].itemsPerSec, 0.0);
    EXPECT_EQ(out.apps[0].shareCtx, 0.0);
    EXPECT_GT(out.apps[1].itemsPerSec, 0.0);
}

// Property sweep: for every benchmark, solo throughput never decreases
// when the p-state rises (with everything else fixed).
class FreqMonotone : public ::testing::TestWithParam<int>
{
};

TEST_P(FreqMonotone, ThroughputNonDecreasingInPState)
{
    Scheduler sched;
    const auto& app = workload::benchmarkCatalog()[size_t(GetParam())];
    const AppDemand demand = {&app, 32};
    double prev = 0.0;
    for (int p = 0; p < 15; ++p) {
        const auto out =
            sched.solve(config(8, 2, false, 2, p), kFullDuty, {demand});
        EXPECT_GE(out.apps[0].itemsPerSec, prev * 0.999)
            << app.name << " p-state " << p;
        prev = out.apps[0].itemsPerSec;
    }
}

INSTANTIATE_TEST_SUITE_P(Catalog, FreqMonotone, ::testing::Range(0, 20));

}  // namespace
}  // namespace pupil::sched
