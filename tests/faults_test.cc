/**
 * @file
 * Tests for the fault-injection subsystem (src/faults/) and the graceful
 * degradation it exercises: schedule parsing, the injector's boundary
 * semantics, determinism from (spec, seed), zero-cost interposition when
 * disabled, and the PUPiL governor's fallback/re-engage state machine.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/pupil.h"
#include "faults/injector.h"
#include "faults/schedule.h"
#include "machine/machine.h"
#include "rapl/msr.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "util/rng.h"
#include "workload/catalog.h"

namespace pupil::faults {
namespace {

TEST(FaultSchedule, ParsesAllFields)
{
    const FaultSchedule schedule = FaultSchedule::parse(
        "sensor-spike,power,30,90,3.0,0.25;"
        "node-loss,n1,10,20");
    ASSERT_EQ(schedule.events().size(), 2u);
    const FaultEvent& spike = schedule.events()[0];
    EXPECT_EQ(spike.kind, FaultKind::kSensorSpike);
    EXPECT_EQ(spike.target, "power");
    EXPECT_DOUBLE_EQ(spike.startSec, 30.0);
    EXPECT_DOUBLE_EQ(spike.endSec, 90.0);
    EXPECT_DOUBLE_EQ(spike.param, 3.0);
    EXPECT_DOUBLE_EQ(spike.prob, 0.25);
    const FaultEvent& loss = schedule.events()[1];
    EXPECT_EQ(loss.kind, FaultKind::kNodeLoss);
    EXPECT_EQ(loss.target, "n1");
    EXPECT_DOUBLE_EQ(loss.prob, 1.0);
}

TEST(FaultSchedule, NewlinesCommentsAndBlanksAreAccepted)
{
    const FaultSchedule schedule = FaultSchedule::parse(
        "# the meter dies for a minute\n"
        "sensor-dropout,power,0,60\n"
        "\n"
        "msr-write-ignored,0,5,15  # socket 0 wedged\n");
    ASSERT_EQ(schedule.events().size(), 2u);
    EXPECT_EQ(schedule.events()[0].kind, FaultKind::kSensorDropout);
    EXPECT_EQ(schedule.events()[1].kind, FaultKind::kMsrWriteIgnored);
    EXPECT_EQ(schedule.events()[1].target, "0");
}

TEST(FaultSchedule, EmptySpecDisablesEverything)
{
    EXPECT_TRUE(FaultSchedule::parse("").empty());
    EXPECT_TRUE(FaultSchedule::parse("  # comment only ").empty());
}

TEST(FaultSchedule, MalformedSpecsThrow)
{
    EXPECT_THROW(FaultSchedule::parse("bogus-kind,power,0,10"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("sensor-dropout,power,10"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("sensor-dropout,power,20,10"),
                 std::invalid_argument);
    EXPECT_THROW(FaultSchedule::parse("sensor-dropout,power,0,10,1,2,3"),
                 std::invalid_argument);
}

TEST(FaultSchedule, ActivityWindowIsHalfOpenAndTargeted)
{
    const FaultSchedule schedule =
        FaultSchedule::parse("sensor-dropout,power,10,20");
    EXPECT_FALSE(schedule.anyActive(FaultKind::kSensorDropout, "power", 9.9));
    EXPECT_TRUE(schedule.anyActive(FaultKind::kSensorDropout, "power", 10.0));
    EXPECT_TRUE(schedule.anyActive(FaultKind::kSensorDropout, "power", 19.9));
    EXPECT_FALSE(schedule.anyActive(FaultKind::kSensorDropout, "power", 20.0));
    EXPECT_FALSE(schedule.anyActive(FaultKind::kSensorDropout, "perf", 15.0));
    // A "*" target hits every instance of the boundary.
    const FaultSchedule any = FaultSchedule::parse("sensor-dropout,*,0,5");
    EXPECT_TRUE(any.anyActive(FaultKind::kSensorDropout, "perf", 1.0));
    EXPECT_TRUE(any.anyActive(FaultKind::kSensorDropout, "rapl1", 1.0));
}

TEST(FaultSchedule, KindNamesRoundTrip)
{
    EXPECT_STREQ(kindName(FaultKind::kSensorStuck), "sensor-stuck");
    EXPECT_STREQ(kindName(FaultKind::kActuationDelay), "actuation-delay");
    EXPECT_STREQ(channelName(SensorChannel::kRaplSocket1), "rapl1");
    EXPECT_STREQ(kindName(FaultKind::kMsgDrop), "msg-drop");
    EXPECT_STREQ(kindName(FaultKind::kPartition), "partition");
}

TEST(FaultSchedule, MessageFaultKindsParse)
{
    const FaultSchedule schedule = FaultSchedule::parse(
        "msg-delay,rack0,0,10,1.5;"
        "msg-drop,*,0,20,0,0.25;"
        "msg-reorder,r0n1,5,15;"
        "msg-dup,rack1,2,8,0,0.5;"
        "partition,rack0,4,9");
    ASSERT_EQ(schedule.events().size(), 5u);
    EXPECT_EQ(schedule.events()[0].kind, FaultKind::kMsgDelay);
    EXPECT_DOUBLE_EQ(schedule.events()[0].param, 1.5);
    EXPECT_EQ(schedule.events()[1].kind, FaultKind::kMsgDrop);
    EXPECT_DOUBLE_EQ(schedule.events()[1].prob, 0.25);
    EXPECT_EQ(schedule.events()[2].kind, FaultKind::kMsgReorder);
    EXPECT_EQ(schedule.events()[3].kind, FaultKind::kMsgDup);
    EXPECT_EQ(schedule.events()[4].kind, FaultKind::kPartition);
    EXPECT_EQ(schedule.events()[4].target, "rack0");
    for (const FaultEvent& event : schedule.events())
        EXPECT_TRUE(clusterScoped(event.kind)) << kindName(event.kind);
    EXPECT_FALSE(clusterScoped(FaultKind::kSensorDropout));
    EXPECT_FALSE(clusterScoped(FaultKind::kActuationDelay));
}

TEST(FaultSchedule, ClusterScopedKindsAreRejectedInNodeLocalSpecs)
{
    // A node-local fault spec drives one platform's sensor/MSR/actuation
    // boundaries; cluster topology kinds silently doing nothing there
    // would be a debugging trap, so the injector refuses them outright.
    const char* specs[] = {"node-loss,n0,0,10", "msg-drop,*,0,10",
                           "partition,rack0,0,10"};
    for (const char* spec : specs) {
        EXPECT_THROW(FaultInjector(FaultSchedule::parse(spec), 1),
                     std::invalid_argument)
            << spec;
    }
}

TEST(FaultSchedule, ValidateClusterTargetsRejectsUnknownNames)
{
    const std::vector<std::string> nodes = {"r0n0", "r0n1", "r1n0"};
    const std::vector<std::string> racks = {"rack0", "rack1"};
    // Known names and wildcards pass; node-local kinds are not checked.
    EXPECT_NO_THROW(validateClusterTargets(
        FaultSchedule::parse("node-loss,r0n1,0,5;partition,rack1,0,5;"
                             "msg-drop,*,0,5;msg-delay,r1n0,0,5,1.0;"
                             "msg-dup,rack0,0,5;sensor-dropout,power,0,5"),
        nodes, racks));
    // A node-loss naming a rack, a partition naming a node, and message
    // kinds naming nothing in the topology are all configuration bugs.
    const char* bad[] = {"node-loss,rack0,0,5", "partition,r0n0,0,5",
                         "msg-reorder,r9n9,0,5", "node-loss,r0n2,0,5"};
    for (const char* spec : bad) {
        try {
            validateClusterTargets(FaultSchedule::parse(spec), nodes, racks);
            FAIL() << spec << " was accepted";
        } catch (const std::invalid_argument& error) {
            // The message must name the offending target so the fix is
            // obvious from the exception alone.
            EXPECT_NE(std::string(error.what()).find(
                          FaultSchedule::parse(spec).events()[0].target),
                      std::string::npos)
                << error.what();
        }
    }
}

TEST(FaultInjector, DropoutStuckAndSpikeSemantics)
{
    FaultInjector injector(
        FaultSchedule::parse("sensor-dropout,power,10,20;"
                             "sensor-stuck,perf,10,20;"
                             "sensor-spike,rapl0,10,20,3.0"),
        1);
    // Healthy before the window: samples pass through untouched.
    EXPECT_DOUBLE_EQ(injector.sensorSample(SensorChannel::kPower, 150.0, 5.0),
                     150.0);
    EXPECT_DOUBLE_EQ(injector.sensorSample(SensorChannel::kPerf, 0.8, 5.0),
                     0.8);
    EXPECT_DOUBLE_EQ(
        injector.sensorSample(SensorChannel::kRaplSocket0, 70.0, 5.0), 70.0);
    // In the window: dead, frozen at the last healthy value, and 3x.
    EXPECT_DOUBLE_EQ(
        injector.sensorSample(SensorChannel::kPower, 151.0, 15.0), 0.0);
    EXPECT_DOUBLE_EQ(injector.sensorSample(SensorChannel::kPerf, 0.9, 15.0),
                     0.8);
    EXPECT_DOUBLE_EQ(
        injector.sensorSample(SensorChannel::kRaplSocket0, 70.0, 15.0),
        210.0);
    // After the window everything recovers.
    EXPECT_DOUBLE_EQ(
        injector.sensorSample(SensorChannel::kPower, 152.0, 25.0), 152.0);
    EXPECT_DOUBLE_EQ(injector.sensorSample(SensorChannel::kPerf, 0.9, 25.0),
                     0.9);
    EXPECT_GT(injector.injectionsPerformed(), 0u);
}

TEST(FaultInjector, ProbabilisticSpikesAreSeedDeterministic)
{
    const std::string spec = "sensor-spike,power,0,100,2.0,0.5";
    FaultInjector a(FaultSchedule::parse(spec), 7);
    FaultInjector b(FaultSchedule::parse(spec), 7);
    FaultInjector c(FaultSchedule::parse(spec), 8);
    int spikesA = 0;
    int spikesB = 0;
    int spikesC = 0;
    bool seedsDiffer = false;
    for (int i = 0; i < 200; ++i) {
        const double t = 0.1 * i;
        const double va = a.sensorSample(SensorChannel::kPower, 100.0, t);
        const double vb = b.sensorSample(SensorChannel::kPower, 100.0, t);
        const double vc = c.sensorSample(SensorChannel::kPower, 100.0, t);
        EXPECT_DOUBLE_EQ(va, vb) << "sample " << i;
        spikesA += va > 100.0;
        spikesB += vb > 100.0;
        spikesC += vc > 100.0;
        seedsDiffer = seedsDiffer || va != vc;
    }
    EXPECT_EQ(spikesA, spikesB);
    // Roughly half the samples spike, and a different seed reorders them.
    EXPECT_GT(spikesA, 50);
    EXPECT_LT(spikesA, 150);
    EXPECT_TRUE(seedsDiffer);
}

TEST(FaultInjector, ActivationAccountingCountsEnteredWindows)
{
    FaultInjector injector(
        FaultSchedule::parse("sensor-dropout,power,10,20;"
                             "alloc-refused,*,30,40"),
        1);
    injector.setNow(5.0);
    EXPECT_EQ(injector.eventsActivated(), 0u);
    injector.setNow(12.0);
    EXPECT_EQ(injector.eventsActivated(), 1u);
    injector.setNow(35.0);
    EXPECT_EQ(injector.eventsActivated(), 2u);
    injector.setNow(50.0);  // leaving windows never decrements
    EXPECT_EQ(injector.eventsActivated(), 2u);
}

TEST(MsrFaults, WriteIgnoredDropsCapWrites)
{
    FaultInjector injector(
        FaultSchedule::parse("msr-write-ignored,0,10,20"), 1);
    rapl::MsrFile msr;
    msr.attachFaults(&injector, /*socket=*/0);

    injector.setNow(5.0);
    msr.setPowerLimit({100.0, 0.25, true});
    EXPECT_NEAR(msr.powerLimit().powerWatts, 100.0, 0.5);

    injector.setNow(15.0);  // wedged: the write is silently lost
    msr.setPowerLimit({60.0, 0.25, true});
    EXPECT_NEAR(msr.powerLimit().powerWatts, 100.0, 0.5);

    injector.setNow(25.0);  // recovered
    msr.setPowerLimit({60.0, 0.25, true});
    EXPECT_NEAR(msr.powerLimit().powerWatts, 60.0, 0.5);

    // The other socket is never affected.
    rapl::MsrFile other;
    other.attachFaults(&injector, /*socket=*/1);
    injector.setNow(15.0);
    other.setPowerLimit({80.0, 0.25, true});
    EXPECT_NEAR(other.powerLimit().powerWatts, 80.0, 0.5);
}

TEST(MsrFaults, StaleEnergyFreezesTheCounter)
{
    FaultInjector injector(
        FaultSchedule::parse("msr-stale-energy,*,10,20"), 1);
    rapl::MsrFile msr;
    msr.attachFaults(&injector, /*socket=*/0);

    injector.setNow(5.0);
    msr.addEnergy(100.0);
    const double before = msr.energyJoules();
    EXPECT_NEAR(before, 100.0, 0.01);

    injector.setNow(15.0);
    msr.addEnergy(50.0);  // frozen: the update is dropped
    EXPECT_DOUBLE_EQ(msr.energyJoules(), before);

    injector.setNow(25.0);
    msr.addEnergy(50.0);
    EXPECT_NEAR(msr.energyJoules(), before + 50.0, 0.01);
}

TEST(MachineFaults, AllocRefusedDropsMigrationsNotDvfs)
{
    FaultInjector injector(FaultSchedule::parse("alloc-refused,*,0,100"), 1);
    machine::Machine machine;
    machine.attachFaults(&injector);

    // A migration-class request is refused outright.
    machine.requestConfig(machine::maximalConfig(), 1.0);
    EXPECT_EQ(machine.osConfig(10.0).coresPerSocket,
              machine::minimalConfig().coresPerSocket);

    // A p-state-only request goes through the cpufreq path and still works.
    machine::MachineConfig dvfs = machine::minimalConfig();
    dvfs.setUniformPState(machine::DvfsTable::kTurboPState);
    machine.requestConfig(dvfs, 10.0);
    EXPECT_EQ(machine.osConfig(20.0).pstate[0],
              machine::DvfsTable::kTurboPState);
}

TEST(MachineFaults, DvfsRejectedDropsDvfsNotMigrations)
{
    FaultInjector injector(FaultSchedule::parse("dvfs-rejected,*,0,100"), 1);
    machine::Machine machine;
    machine.attachFaults(&injector);

    machine::MachineConfig dvfs = machine::minimalConfig();
    dvfs.setUniformPState(machine::DvfsTable::kTurboPState);
    machine.requestConfig(dvfs, 1.0);  // rejected: stays at p-state 0
    EXPECT_EQ(machine.osConfig(10.0).pstate[0], 0);

    machine.requestConfig(machine::maximalConfig(), 10.0);
    EXPECT_EQ(machine.osConfig(20.0).coresPerSocket,
              machine::maximalConfig().coresPerSocket);
}

TEST(MachineFaults, ActuationDelayPostponesTheChange)
{
    FaultInjector injector(
        FaultSchedule::parse("actuation-delay,*,0,100,2.0"), 1);
    machine::Machine machine;
    machine.attachFaults(&injector);

    machine.requestConfig(machine::maximalConfig(), 1.0);
    // Normal migration latency (150 ms) has passed, but the extra 2 s of
    // fault latency has not.
    EXPECT_TRUE(machine.configChangePending(1.5));
    EXPECT_FALSE(machine.configChangePending(3.5));
    EXPECT_EQ(machine.osConfig(3.5).coresPerSocket,
              machine::maximalConfig().coresPerSocket);
}

TEST(ZeroCost, InactiveScheduleIsByteIdenticalToNoSchedule)
{
    // A platform with no fault spec and one whose only event starts long
    // after the run must produce bit-identical observable histories: the
    // interposition itself costs nothing until a window opens.
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};
    sim::PlatformOptions bare;
    bare.seed = 99;
    sim::PlatformOptions armed = bare;
    armed.faultSpec = "sensor-dropout,power,500,600";

    sim::Platform a(bare, apps);
    sim::Platform b(armed, apps);
    EXPECT_EQ(a.faults(), nullptr);
    ASSERT_NE(b.faults(), nullptr);
    a.warmStart(machine::maximalConfig());
    b.warmStart(machine::maximalConfig());
    a.run(5.0);
    b.run(5.0);

    EXPECT_EQ(a.truePower(), b.truePower());
    EXPECT_EQ(a.energy().meanPower(), b.energy().meanPower());
    EXPECT_EQ(a.readPower(), b.readPower());
    EXPECT_EQ(a.readPerformance(), b.readPerformance());
    ASSERT_EQ(a.powerTrace().size(), b.powerTrace().size());
    for (size_t i = 0; i < a.powerTrace().size(); ++i)
        EXPECT_EQ(a.powerTrace()[i].value, b.powerTrace()[i].value) << i;
    EXPECT_EQ(b.counters().faultsInjected(), 0u);
}

/** Drive PUPiL on a faulted platform; returns the platform's violations. */
class PupilDegradationTest : public ::testing::Test
{
  protected:
    void
    runScenario(core::Pupil& pupil, sim::Platform& platform,
                rapl::RaplController& rapl, double untilSec)
    {
        platform.warmStart(machine::maximalConfig());
        pupil.attachRapl(&rapl);
        pupil.setCap(140.0);
        platform.addActor(&rapl);
        platform.addActor(&pupil);
        platform.run(untilSec);
    }
};

TEST_F(PupilDegradationTest, FallsBackAndReengagesDeterministically)
{
    // The power meter dies at t = 10 s and recovers at t = 20 s. PUPiL
    // must degrade to hardware-only enforcement shortly after the dropout
    // begins, ride it out on RAPL, and re-engage software after its
    // healthy streak -- all while the cap stays enforced.
    sim::PlatformOptions options;
    options.seed = 11;
    options.faultSpec = "sensor-dropout,power,10,20";
    sim::Platform platform(
        options, {{&workload::findBenchmark("x264"), 32}});
    rapl::RaplController rapl;
    core::Pupil pupil;

    runScenario(pupil, platform, rapl, 9.0);
    EXPECT_EQ(pupil.mode(), core::Pupil::Mode::kHybrid);
    EXPECT_EQ(pupil.degradedEntries(), 0);

    platform.run(15.0);
    EXPECT_EQ(pupil.mode(), core::Pupil::Mode::kDegraded);
    EXPECT_EQ(pupil.degradedEntries(), 1);
    EXPECT_EQ(pupil.reengagements(), 0);

    platform.run(60.0);
    EXPECT_EQ(pupil.mode(), core::Pupil::Mode::kHybrid);
    EXPECT_EQ(pupil.degradedEntries(), 1);
    EXPECT_EQ(pupil.reengagements(), 1);

    // Resilience accounting reached the platform's counters.
    EXPECT_GT(platform.counters().degradedSeconds(), 5.0);
    EXPECT_LT(platform.counters().degradedSeconds(), 20.0);
    EXPECT_GE(platform.counters().faultsInjected(), 1u);
    EXPECT_EQ(platform.counters().faultsDetected(), 1u);

    // Hardware kept the cap while software was blind.
    EXPECT_LT(platform.capViolationSec(140.0), 2.0);
}

TEST_F(PupilDegradationTest, TransitionsAreReproducibleFromSpecAndSeed)
{
    // Two identical runs agree on every transition count and on the
    // degraded-time accounting to the last bit.
    auto runOnce = [](double& degradedSec, int& entries, int& reengaged) {
        sim::PlatformOptions options;
        options.seed = 11;
        options.faultSpec = "sensor-dropout,power,10,20";
        sim::Platform platform(
            options, {{&workload::findBenchmark("x264"), 32}});
        platform.warmStart(machine::maximalConfig());
        rapl::RaplController rapl;
        core::Pupil pupil;
        pupil.attachRapl(&rapl);
        pupil.setCap(140.0);
        platform.addActor(&rapl);
        platform.addActor(&pupil);
        platform.run(40.0);
        degradedSec = platform.counters().degradedSeconds();
        entries = pupil.degradedEntries();
        reengaged = pupil.reengagements();
    };
    double degradedA = 0.0;
    double degradedB = 0.0;
    int entriesA = 0;
    int entriesB = 0;
    int reengagedA = 0;
    int reengagedB = 0;
    runOnce(degradedA, entriesA, reengagedA);
    runOnce(degradedB, entriesB, reengagedB);
    EXPECT_EQ(degradedA, degradedB);
    EXPECT_EQ(entriesA, entriesB);
    EXPECT_EQ(reengagedA, reengagedB);
    EXPECT_EQ(entriesA, 1);
}

TEST_F(PupilDegradationTest, HealthyRunNeverDegrades)
{
    sim::PlatformOptions options;
    options.seed = 3;
    sim::Platform platform(
        options, {{&workload::findBenchmark("swaptions"), 32}});
    rapl::RaplController rapl;
    core::Pupil pupil;
    runScenario(pupil, platform, rapl, 30.0);
    EXPECT_EQ(pupil.mode(), core::Pupil::Mode::kHybrid);
    EXPECT_EQ(pupil.degradedEntries(), 0);
    EXPECT_EQ(platform.counters().degradedSeconds(), 0.0);
    EXPECT_EQ(platform.counters().faultsDetected(), 0u);
}

// ---------------------------------------------------------------------------
// Fuzz-style property tests for FaultSchedule::parse. The parser faces
// user-written spec strings (CLI flags, scenario files); its contract is
// reject-or-accept, never crash or UB -- these run under the ASan/UBSan CI
// job. Every accepted schedule must satisfy the documented invariants.
// ---------------------------------------------------------------------------

/** Invariants every successfully parsed event must satisfy. */
void
expectEventInvariants(const FaultSchedule& schedule)
{
    for (const FaultEvent& event : schedule.events()) {
        EXPECT_TRUE(std::isfinite(event.startSec));
        EXPECT_TRUE(std::isfinite(event.endSec));
        EXPECT_TRUE(std::isfinite(event.param));
        EXPECT_GE(event.startSec, 0.0);
        EXPECT_GT(event.endSec, event.startSec);
        EXPECT_GE(event.prob, 0.0);
        EXPECT_LE(event.prob, 1.0);
        EXPECT_FALSE(event.target.empty());
    }
}

TEST(FaultScheduleFuzz, StructuredInvalidSpecsAreRejected)
{
    const char* rejected[] = {
        // Unknown / empty kinds.
        "bogus,power,0,10",
        ",power,0,10",
        "SENSOR-DROPOUT,power,0,10",  // names are case-sensitive
        // Field-count violations.
        "sensor-dropout",
        "sensor-dropout,power",
        "sensor-dropout,power,0",
        "sensor-dropout,power,0,10,1,0.5,extra",
        // Unparseable numbers.
        "sensor-dropout,power,zero,10",
        "sensor-dropout,power,0,ten",
        "sensor-spike,power,0,10,3.0x",
        "sensor-spike,power,0,10,3.0,50%",
        "sensor-dropout,power,0 0,10",
        // Non-finite numbers (strtod accepts these spellings).
        "sensor-dropout,power,nan,10",
        "sensor-dropout,power,0,inf",
        "sensor-spike,power,0,10,1e999",
        "sensor-spike,power,0,10,3.0,-nan",
        // Out-of-range times.
        "sensor-dropout,power,-1,10",
        "sensor-dropout,power,10,10",
        "sensor-dropout,power,20,10",
        "sensor-dropout,power,-20,-10",
        // Out-of-range probabilities.
        "sensor-spike,power,0,10,3.0,1.5",
        "sensor-spike,power,0,10,3.0,-0.25",
        "sensor-spike,power,0,10,3.0,1e6",
        // A valid entry does not excuse an invalid sibling.
        "sensor-dropout,power,0,10;bogus,power,0,10",
    };
    for (const char* spec : rejected) {
        EXPECT_THROW(FaultSchedule::parse(spec), std::invalid_argument)
            << "spec not rejected: \"" << spec << "\"";
    }
}

TEST(FaultScheduleFuzz, RandomGarbageNeverCrashes)
{
    // Unstructured fuzz: random strings over an alphabet rich in the
    // parser's meta-characters. Any outcome but a clean parse or a clean
    // std::invalid_argument is a bug (a crash/UB surfaces under ASan).
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789,,;;##..--++eE  \t\r\n*\"'%";
    util::Rng rng(0xFAu);
    int accepted = 0;
    for (int iter = 0; iter < 3000; ++iter) {
        std::string spec;
        const size_t length = rng.uniformInt(64);
        for (size_t i = 0; i < length; ++i)
            spec += kAlphabet[rng.uniformInt(sizeof(kAlphabet) - 1)];
        try {
            expectEventInvariants(FaultSchedule::parse(spec));
            ++accepted;
        } catch (const std::invalid_argument&) {
            // Rejection is the expected outcome for garbage.
        }
    }
    // Mostly comments/blanks parse fine; the count just documents that the
    // accept path is exercised too.
    EXPECT_GT(accepted, 0);
}

TEST(FaultScheduleFuzz, MutatedValidSpecsRejectOrHoldInvariants)
{
    // Mutation fuzz: start from a fully valid multi-entry spec and flip,
    // insert, or delete random bytes. The parser must either reject the
    // mutant or produce a schedule that still satisfies every invariant.
    const std::string valid =
        "sensor-spike,power,30,90,3.0,0.25;"
        "sensor-dropout,perf,0,60;"
        "msr-write-ignored,0,5,15;"
        "actuation-delay,*,10,20,2.0;"
        "node-loss,n1,10,20";
    static const char kBytes[] = "0123456789,;#.-+eEnaif*x ";
    util::Rng rng(0xF00Du);
    for (int iter = 0; iter < 3000; ++iter) {
        std::string spec = valid;
        const int edits = 1 + int(rng.uniformInt(4));
        for (int e = 0; e < edits; ++e) {
            const size_t pos = rng.uniformInt(spec.size());
            switch (rng.uniformInt(3)) {
              case 0:
                spec[pos] = kBytes[rng.uniformInt(sizeof(kBytes) - 1)];
                break;
              case 1:
                spec.insert(pos, 1,
                            kBytes[rng.uniformInt(sizeof(kBytes) - 1)]);
                break;
              default:
                spec.erase(pos, 1);
                break;
            }
        }
        try {
            expectEventInvariants(FaultSchedule::parse(spec));
        } catch (const std::invalid_argument&) {
        }
    }
}

TEST(FaultScheduleFuzz, HugeAndTinyFiniteValuesSurvive)
{
    // Extreme but finite values must parse and stay usable: activity
    // queries at any time must not trip UB (overflow is fine in double).
    const FaultSchedule schedule = FaultSchedule::parse(
        "sensor-spike,power,0,1e308,1e300,1;"
        "actuation-delay,*,1e-300,2e-300,1e-308");
    expectEventInvariants(schedule);
    EXPECT_TRUE(schedule.anyActive(FaultKind::kSensorSpike, "power", 1e307));
    EXPECT_FALSE(
        schedule.anyActive(FaultKind::kActuationDelay, "power", 5e-300));
}

}  // namespace
}  // namespace pupil::faults
