/** @file Allocation regression test for the simulator hot path.
 *
 *  Replaces global operator new/delete with counting shims and asserts
 *  that once a Platform is warm (solve cache populated, trace buffers
 *  reserved, metrics registered) the steady-state tick path performs
 *  ZERO heap allocations -- including across cached configuration
 *  changes, where every solve is a memoized hit. This is the property
 *  the SolveScratch arenas, the cache's recycling eviction, and
 *  Platform::reserveTraces exist to provide; any new allocation on the
 *  tick path shows up here as a counted regression, not a profile blip.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "machine/config.h"
#include "sched/scheduler.h"
#include "sim/platform.h"
#include "workload/catalog.h"

namespace {

/** Armed windows count allocations; everything else passes through. */
std::atomic<bool> gArmed{false};
std::atomic<uint64_t> gAllocations{0};

void*
countedAlloc(std::size_t size)
{
    if (gArmed.load(std::memory_order_relaxed))
        gAllocations.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    void* p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void*
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    if (gArmed.load(std::memory_order_relaxed))
        gAllocations.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) != 0)
        throw std::bad_alloc();
    return p;
}

}  // namespace

// Global replacements: every form forwards to the counting shims so no
// allocation on the measured path can slip past the tally.
void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, std::size_t(align));
}
void* operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, std::size_t(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace pupil {
namespace {

/** RAII measurement window; stop() disarms before any EXPECT runs so
 *  gtest's own message allocations never pollute the tally. */
class AllocWindow
{
  public:
    AllocWindow()
    {
        gAllocations.store(0, std::memory_order_relaxed);
        gArmed.store(true, std::memory_order_relaxed);
    }
    uint64_t stop()
    {
        gArmed.store(false, std::memory_order_relaxed);
        return gAllocations.load(std::memory_order_relaxed);
    }
    ~AllocWindow() { gArmed.store(false, std::memory_order_relaxed); }
};

std::vector<sched::AppDemand>
twoApps()
{
    return {
        {&workload::findBenchmark("x264"), 8},
        {&workload::findBenchmark("blackscholes"), 8},
    };
}

TEST(AllocRegression, CountersSeeOrdinaryAllocations)
{
    // Sanity-check the shims themselves: the tally must actually count.
    AllocWindow window;
    std::vector<int>* v = new std::vector<int>(100);
    delete v;
    EXPECT_GE(window.stop(), 1u);
}

TEST(AllocRegression, SteadyStateTicksAreAllocationFree)
{
    sim::PlatformOptions options;  // defaults: 1 ms ticks, cache on
    sim::Platform platform(options, twoApps());
    platform.warmStart(machine::maximalConfig());
    // Pre-arm the trace buffers for the whole horizon, then warm up:
    // first solves, metric registrations, lag filters.
    platform.reserveTraces(5.0);
    platform.run(2.0);

    AllocWindow window;
    platform.run(3.0);  // 1000 steady-state ticks
    const uint64_t allocations = window.stop();
    EXPECT_EQ(allocations, 0u)
        << allocations << " heap allocations leaked onto the steady tick "
        << "path (expected zero after warm-up)";
    EXPECT_GE(platform.now(), 3.0 - 1e-9);
}

TEST(AllocRegression, CachedConfigChangesAreAllocationFree)
{
    sim::PlatformOptions options;
    sim::Platform platform(options, twoApps());
    const machine::MachineConfig fast = machine::maximalConfig();
    machine::MachineConfig slow = fast;
    slow.setUniformPState(4);
    platform.warmStart(fast);
    platform.reserveTraces(6.0);
    // Warm both configurations into the solve cache (the first visit to
    // each is a miss and may allocate; that is the point of warm-up).
    platform.run(0.5);
    platform.machine().requestConfig(slow, platform.now());
    platform.run(1.5);
    platform.machine().requestConfig(fast, platform.now());
    platform.run(2.5);

    const auto statsBefore = platform.solveCache().stats();
    AllocWindow window;
    // Ten cached config flips, 100 ticks apart: every re-solve after an
    // effective-config change must be a memoized hit, and the whole
    // window must stay off the heap.
    for (int flip = 0; flip < 10; ++flip) {
        platform.machine().requestConfig(flip % 2 == 0 ? slow : fast,
                                         platform.now());
        platform.run(2.5 + 0.1 * (flip + 1));
    }
    const uint64_t allocations = window.stop();
    const auto statsAfter = platform.solveCache().stats();
    EXPECT_EQ(allocations, 0u)
        << allocations << " heap allocations on the cached config-flip "
        << "path (expected zero: solves are memoized hits)";
    EXPECT_GT(statsAfter.hits, statsBefore.hits);
    EXPECT_EQ(statsAfter.misses, statsBefore.misses)
        << "config flips missed the solve cache; key instability?";
}

}  // namespace
}  // namespace pupil
