/** @file Tests for the structured trace layer and the metrics registry:
 *  ring semantics, exporters, determinism (tracing never changes a
 *  result; same seed renders to the same bytes), and the per-job
 *  accounting reset in the harness. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "cluster/power_shifter.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "telemetry/metrics.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace pupil {
namespace {

using trace::Event;
using trace::EventKind;
using trace::Recorder;
using trace::Subsystem;

TEST(Recorder, EmptyByDefault)
{
    Recorder recorder;
    EXPECT_TRUE(recorder.empty());
    EXPECT_EQ(recorder.size(), 0u);
    EXPECT_EQ(recorder.dropped(), 0u);
    EXPECT_EQ(recorder.capacity(), Recorder::kDefaultCapacity);
    EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(Recorder, KeepsEverythingUnderCapacity)
{
    Recorder recorder(8);
    for (int i = 0; i < 5; ++i)
        recorder.emit(double(i), EventKind::kLimitWrite, 100.0 + i, 0.0, i);
    EXPECT_EQ(recorder.size(), 5u);
    EXPECT_EQ(recorder.dropped(), 0u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(events[i].timeSec, double(i));
        EXPECT_EQ(events[i].i0, i);
        EXPECT_DOUBLE_EQ(events[i].a, 100.0 + i);
    }
}

TEST(Recorder, OverwritesOldestWhenFull)
{
    Recorder recorder(4);
    for (int i = 0; i < 7; ++i)
        recorder.emit(double(i), EventKind::kWalkStep, 0.0, 0.0, i);
    EXPECT_EQ(recorder.size(), 4u);
    EXPECT_EQ(recorder.dropped(), 3u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Flight-recorder semantics: the most recent four survive, in order.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].i0, i + 3);
}

TEST(Recorder, ClearKeepsCapacity)
{
    Recorder recorder(16);
    for (int i = 0; i < 20; ++i)
        recorder.emit(double(i), EventKind::kWalkStep);
    recorder.clear();
    EXPECT_TRUE(recorder.empty());
    EXPECT_EQ(recorder.dropped(), 0u);
    EXPECT_EQ(recorder.capacity(), 16u);
    recorder.emit(1.0, EventKind::kWalkStart);
    EXPECT_EQ(recorder.size(), 1u);
}

TEST(Recorder, NullSafeEmitHelperIsANoOp)
{
    trace::emit(nullptr, 1.0, EventKind::kClampChange, 0.5, 120.0, 0, 7);
    Recorder recorder;
    trace::emit(&recorder, 1.0, EventKind::kClampChange, 0.5, 120.0, 0, 7);
    EXPECT_EQ(recorder.size(), 1u);
}

TEST(Recorder, SubsystemCountsBucketByCategory)
{
    Recorder recorder;
    recorder.emit(0.0, EventKind::kWalkStart);
    recorder.emit(0.1, EventKind::kConfigTry);
    recorder.emit(0.2, EventKind::kLimitWrite);
    recorder.emit(0.3, EventKind::kModeDegraded);
    recorder.emit(0.4, EventKind::kAllocApplied);
    recorder.emit(0.5, EventKind::kFaultActivated);
    recorder.emit(0.6, EventKind::kRebalance);
    recorder.emit(0.7, EventKind::kExperimentStart);
    const auto counts = recorder.subsystemCounts();
    EXPECT_EQ(counts[size_t(Subsystem::kDecision)], 2u);
    EXPECT_EQ(counts[size_t(Subsystem::kRapl)], 1u);
    EXPECT_EQ(counts[size_t(Subsystem::kCore)], 1u);
    EXPECT_EQ(counts[size_t(Subsystem::kSched)], 1u);
    EXPECT_EQ(counts[size_t(Subsystem::kFaults)], 1u);
    EXPECT_EQ(counts[size_t(Subsystem::kCluster)], 1u);
    EXPECT_EQ(counts[size_t(Subsystem::kHarness)], 1u);
}

TEST(Recorder, EveryKindHasANameAndSubsystem)
{
    for (int k = 0; k <= int(EventKind::kSloViolation); ++k) {
        const auto kind = EventKind(k);
        EXPECT_STRNE(trace::kindName(kind), "?") << k;
        const Subsystem subsystem = trace::kindSubsystem(kind);
        EXPECT_GE(int(subsystem), 0);
        EXPECT_LT(int(subsystem), trace::kSubsystemCount);
        EXPECT_STRNE(trace::subsystemName(subsystem), "?") << k;
    }
}

TEST(Export, FormatDoubleIsShortestRoundTrip)
{
    EXPECT_EQ(trace::formatDouble(0.0), "0");
    EXPECT_EQ(trace::formatDouble(137.5), "137.5");
    EXPECT_EQ(trace::formatDouble(-2.25), "-2.25");
    const double value = 0.1 + 0.2;
    EXPECT_DOUBLE_EQ(std::strtod(trace::formatDouble(value).c_str(), nullptr),
                     value);
}

TEST(Export, ChromeJsonHasTraceEventShape)
{
    Recorder recorder;
    recorder.emit(1.5, EventKind::kLimitWrite, 70.0, 0.0, 1, 1);
    const std::string json = trace::toChromeJson(recorder);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"limit-write\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"rapl\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // 1.5 simulated seconds render as 1.5e6 Chrome microseconds.
    EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
    EXPECT_NE(json.find("\"a\":70"), std::string::npos);
}

TEST(Export, CsvHasHeaderAndOneLinePerEvent)
{
    Recorder recorder;
    recorder.emit(0.25, EventKind::kCapSplit, 80.0, 60.0);
    recorder.emit(0.5, EventKind::kNodeLoss, 0.0, 0.0, 2);
    const std::string csv = trace::toCsv(recorder);
    EXPECT_EQ(csv.find("time_sec,subsystem,event,a,b,i0,i1\n"), 0u);
    EXPECT_NE(csv.find("0.25,core,cap-split,80,60,0,0\n"), std::string::npos);
    EXPECT_NE(csv.find("0.5,cluster,node-loss,0,0,2,0\n"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

harness::ExperimentOptions
shortOptions()
{
    harness::ExperimentOptions options;
    options.capWatts = 140.0;
    options.durationSec = 20.0;
    options.statsWindowSec = 10.0;
    options.seed = 42;
    return options;
}

TEST(TraceDeterminism, SameSeedRendersToIdenticalBytes)
{
    const auto apps = harness::singleApp("x264");
    Recorder first, second;
    harness::ExperimentOptions options = shortOptions();
    options.trace = &first;
    harness::runExperiment(harness::GovernorKind::kPupil, apps, options);
    options.trace = &second;
    harness::runExperiment(harness::GovernorKind::kPupil, apps, options);
    ASSERT_GT(first.size(), 0u);
    EXPECT_EQ(trace::toChromeJson(first), trace::toChromeJson(second));
    EXPECT_EQ(trace::toCsv(first), trace::toCsv(second));
}

TEST(TraceDeterminism, TracingChangesNoResult)
{
    const auto apps = harness::singleApp("x264");
    harness::ExperimentOptions options = shortOptions();
    const auto untraced = harness::runExperiment(
        harness::GovernorKind::kPupil, apps, options);
    Recorder recorder;
    options.trace = &recorder;
    const auto traced = harness::runExperiment(
        harness::GovernorKind::kPupil, apps, options);
    ASSERT_GT(recorder.size(), 0u);
    // Bitwise equality: instrumentation draws from no RNG stream and
    // perturbs no control decision.
    EXPECT_EQ(traced.aggregatePerf, untraced.aggregatePerf);
    EXPECT_EQ(traced.meanPowerWatts, untraced.meanPowerWatts);
    EXPECT_EQ(traced.perfPerJoule, untraced.perfPerJoule);
    EXPECT_EQ(traced.settlingTimeSec, untraced.settlingTimeSec);
    EXPECT_EQ(traced.capViolationSec, untraced.capViolationSec);
    EXPECT_EQ(traced.gips, untraced.gips);
    ASSERT_EQ(traced.powerTrace.size(), untraced.powerTrace.size());
    for (size_t i = 0; i < traced.powerTrace.size(); ++i)
        EXPECT_EQ(traced.powerTrace[i].value, untraced.powerTrace[i].value);
    ASSERT_EQ(traced.metrics.size(), untraced.metrics.size());
    for (size_t i = 0; i < traced.metrics.size(); ++i) {
        EXPECT_EQ(traced.metrics[i].first, untraced.metrics[i].first);
        EXPECT_EQ(traced.metrics[i].second, untraced.metrics[i].second);
    }
}

TEST(TraceDeterminism, FullStackRunCoversAtLeastFiveSubsystems)
{
    Recorder recorder(1 << 17);
    harness::ExperimentOptions options = shortOptions();
    options.durationSec = 40.0;
    options.statsWindowSec = 20.0;
    options.platform.faultSpec = "sensor-dropout,power,10,20";
    options.trace = &recorder;
    harness::runExperiment(harness::GovernorKind::kPupil,
                           harness::singleApp("x264"), options);

    cluster::PowerShifter::Options copts;
    cluster::PowerShifter shifter(copts);
    shifter.attachTrace(&recorder);
    shifter.addNode("n0", harness::singleApp("x264", 16));
    shifter.addNode("n1", harness::singleApp("kmeans", 16));
    const faults::FaultSchedule schedule =
        faults::FaultSchedule::parse("node-loss,n1,4,10");
    shifter.setFaultSchedule(&schedule);
    shifter.run(16.0);

    const auto counts = recorder.subsystemCounts();
    int covered = 0;
    for (int s = 0; s < trace::kSubsystemCount; ++s)
        covered += counts[s] > 0 ? 1 : 0;
    EXPECT_GE(covered, 5)
        << "decision=" << counts[size_t(Subsystem::kDecision)]
        << " core=" << counts[size_t(Subsystem::kCore)]
        << " rapl=" << counts[size_t(Subsystem::kRapl)]
        << " sched=" << counts[size_t(Subsystem::kSched)]
        << " faults=" << counts[size_t(Subsystem::kFaults)]
        << " cluster=" << counts[size_t(Subsystem::kCluster)]
        << " harness=" << counts[size_t(Subsystem::kHarness)];
    EXPECT_GT(counts[size_t(Subsystem::kDecision)], 0u);
    EXPECT_GT(counts[size_t(Subsystem::kRapl)], 0u);
    EXPECT_GT(counts[size_t(Subsystem::kSched)], 0u);
    EXPECT_GT(counts[size_t(Subsystem::kFaults)], 0u);
    EXPECT_GT(counts[size_t(Subsystem::kCluster)], 0u);
}

TEST(MetricsRegistry, CountersAccumulate)
{
    telemetry::MetricsRegistry metrics;
    EXPECT_TRUE(metrics.empty());
    metrics.addCounter("rapl.limit_writes");
    metrics.addCounter("rapl.limit_writes", 3);
    EXPECT_DOUBLE_EQ(metrics.value("rapl.limit_writes"), 4.0);
    ASSERT_NE(metrics.find("rapl.limit_writes"), nullptr);
    EXPECT_EQ(metrics.find("rapl.limit_writes")->type,
              telemetry::MetricsRegistry::Type::kCounter);
}

TEST(MetricsRegistry, GaugesKeepLastValue)
{
    telemetry::MetricsRegistry metrics;
    metrics.setGauge("decision.steps", 3.0);
    metrics.setGauge("decision.steps", 7.0);
    EXPECT_DOUBLE_EQ(metrics.value("decision.steps"), 7.0);
}

TEST(MetricsRegistry, HistogramsSummarize)
{
    telemetry::MetricsRegistry metrics;
    metrics.observe("platform.power_watts", 100.0);
    metrics.observe("platform.power_watts", 140.0);
    metrics.observe("platform.power_watts", 120.0);
    const auto* metric = metrics.find("platform.power_watts");
    ASSERT_NE(metric, nullptr);
    EXPECT_EQ(metric->count, 3u);
    EXPECT_DOUBLE_EQ(metric->min, 100.0);
    EXPECT_DOUBLE_EQ(metric->max, 140.0);
    EXPECT_DOUBLE_EQ(metrics.value("platform.power_watts"), 120.0);
}

TEST(MetricsRegistry, SnapshotFlattensSorted)
{
    telemetry::MetricsRegistry metrics;
    metrics.observe("b.hist", 2.0);
    metrics.observe("b.hist", 4.0);
    metrics.addCounter("a.count", 5);
    metrics.setGauge("c.gauge", -1.5);
    const auto snapshot = metrics.snapshot();
    ASSERT_EQ(snapshot.size(), 6u);
    EXPECT_EQ(snapshot[0].first, "a.count");
    EXPECT_DOUBLE_EQ(snapshot[0].second, 5.0);
    EXPECT_EQ(snapshot[1].first, "b.hist.count");
    EXPECT_DOUBLE_EQ(telemetry::metricOr(snapshot, "b.hist.mean", -1.0), 3.0);
    EXPECT_DOUBLE_EQ(telemetry::metricOr(snapshot, "b.hist.min", -1.0), 2.0);
    EXPECT_DOUBLE_EQ(telemetry::metricOr(snapshot, "b.hist.max", -1.0), 4.0);
    EXPECT_DOUBLE_EQ(telemetry::metricOr(snapshot, "c.gauge", 0.0), -1.5);
    EXPECT_DOUBLE_EQ(telemetry::metricOr(snapshot, "missing", 9.0), 9.0);
}

TEST(MetricsRegistry, ResetDropsEverything)
{
    telemetry::MetricsRegistry metrics;
    metrics.addCounter("x");
    metrics.reset();
    EXPECT_TRUE(metrics.empty());
    EXPECT_EQ(metrics.find("x"), nullptr);
}

TEST(Harness, ResultCarriesMetricsSnapshot)
{
    const auto result = harness::runExperiment(
        harness::GovernorKind::kPupil, harness::singleApp("x264"),
        shortOptions());
    ASSERT_FALSE(result.metrics.empty());
    EXPECT_DOUBLE_EQ(
        telemetry::metricOr(result.metrics, "counters.gips", -1.0),
        result.gips);
    EXPECT_DOUBLE_EQ(
        telemetry::metricOr(result.metrics, "faults.injected", -1.0),
        double(result.faultsInjected));
    EXPECT_GT(telemetry::metricOr(result.metrics, "rapl.limit_writes"), 0.0);
    EXPECT_GT(telemetry::metricOr(result.metrics, "pupil.cap_splits"), 0.0);
    EXPECT_GT(
        telemetry::metricOr(result.metrics, "platform.power_watts.count"),
        0.0);
}

TEST(Harness, SweepJobsDoNotLeakCountersBetweenRuns)
{
    // Regression: a faulty job followed by a clean job on the same worker
    // must leave the clean job's resilience accounting at zero. The
    // harness resets per-job accounting explicitly, so even a platform
    // reused across jobs could not leak.
    harness::SweepRunner::Options ropts;
    ropts.threads = 1;
    ropts.progress = [](const harness::SweepProgress&) {};
    harness::SweepRunner runner(ropts);

    harness::SweepJob faulty;
    faulty.kind = harness::GovernorKind::kPupil;
    faulty.apps = harness::singleApp("x264");
    faulty.options = shortOptions();
    faulty.options.durationSec = 30.0;
    faulty.options.platform.faultSpec = "sensor-dropout,power,5,15";
    faulty.label = "faulty";

    harness::SweepJob clean = faulty;
    clean.options.platform.faultSpec.clear();
    clean.label = "clean";

    const auto outcomes = runner.run({faulty, clean});
    ASSERT_EQ(outcomes.size(), 2u);
    ASSERT_TRUE(outcomes[0].ok);
    ASSERT_TRUE(outcomes[1].ok);
    EXPECT_GT(outcomes[0].result.faultsInjected, 0u);
    EXPECT_GT(outcomes[0].result.degradedSec, 0.0);
    EXPECT_EQ(outcomes[1].result.faultsInjected, 0u);
    EXPECT_EQ(outcomes[1].result.faultsDetected, 0u);
    EXPECT_DOUBLE_EQ(outcomes[1].result.degradedSec, 0.0);
    EXPECT_DOUBLE_EQ(
        telemetry::metricOr(outcomes[1].result.metrics, "faults.injected",
                            -1.0),
        0.0);
}

}  // namespace
}  // namespace pupil
