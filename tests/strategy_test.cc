/** @file Tests for the decision-strategy zoo: the strategy seam itself,
 *  the accept/reject bookkeeping fixes on the binary search, convergence
 *  of every strategy under software-checked caps, and seed determinism of
 *  the stochastic baseline. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/decision.h"
#include "core/ordering.h"
#include "core/strategy.h"
#include "core/strategy_binary.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "trace/trace.h"
#include "workload/catalog.h"

namespace pupil::core {
namespace {

using machine::MachineConfig;

TEST(StrategyKinds, NamesParseBackToTheirKinds)
{
    for (const StrategyKind kind : allStrategyKinds()) {
        StrategyKind parsed = StrategyKind::kBinarySearch;
        EXPECT_TRUE(parseStrategyKind(strategyName(kind), &parsed))
            << strategyName(kind);
        EXPECT_EQ(parsed, kind) << strategyName(kind);
    }
    StrategyKind parsed = StrategyKind::kBinarySearch;
    EXPECT_FALSE(parseStrategyKind("simulated-annealing", &parsed));
    EXPECT_FALSE(parseStrategyKind("", &parsed));
}

TEST(StrategyKinds, FactoryHonoursEveryKind)
{
    for (const StrategyKind kind : allStrategyKinds()) {
        StrategyOptions options;
        options.kind = kind;
        const auto strategy = makeStrategy(options);
        ASSERT_NE(strategy, nullptr);
        EXPECT_STREQ(strategy->name(), strategyName(kind));
    }
}

/**
 * A recording StrategyHost over an arbitrary resource order: applies
 * mutations to a plain configuration (no settle windows, no filters) and
 * logs every try/accept/reject, so strategy state machines can be driven
 * and inspected step by step without a walker or a platform.
 */
class FakeHost : public StrategyHost
{
  public:
    FakeHost(std::vector<Resource> order, MachineConfig initial, double cap,
             bool checkPower)
        : order_(std::move(order)), cfg_(initial), cap_(cap),
          checkPower_(checkPower)
    {
    }

    const std::vector<Resource>& order() const override { return order_; }
    const MachineConfig& config() const override { return cfg_; }
    double capWatts() const override { return cap_; }
    bool checkPower() const override { return checkPower_; }
    double perfEpsilon() const override { return -0.01; }

    void
    setResource(size_t resourceIdx, int settingIndex, double) override
    {
        const Resource& r = order_[resourceIdx];
        if (r.setting(cfg_) == settingIndex)
            return;
        r.apply(cfg_, settingIndex);
        tries.push_back({int32_t(resourceIdx), settingIndex});
    }

    void
    applyTarget(const MachineConfig& target, double now) override
    {
        for (size_t i = 0; i < order_.size(); ++i)
            setResource(i, order_[i].setting(target), now);
    }

    void
    emitAccept(double, double powerWatts, int32_t i0, int32_t i1,
               double) override
    {
        accepts.push_back({i0, i1});
        acceptPowers.push_back(powerWatts);
    }

    void
    emitReject(double, double, int32_t i0, int32_t i1, double) override
    {
        rejects.push_back({i0, i1});
    }

    struct Event
    {
        int32_t i0;
        int32_t i1;
    };
    std::vector<Event> tries;
    std::vector<Event> accepts;
    std::vector<Event> rejects;
    std::vector<double> acceptPowers;

  private:
    std::vector<Resource> order_;
    MachineConfig cfg_;
    double cap_;
    bool checkPower_;
};

std::vector<Resource>
calibratedOrder(bool includeDvfs)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    return calibrateOrdering(scheduler, pm, workload::calibrationApp())
        .orderedResources(includeDvfs);
}

// --- Satellite: the degenerate over-cap revert must read as a reject ----

TEST(BinarySearchStrategy, DegenerateOverCapRevertEmitsReject)
{
    // The branch is unreachable through a real walk (the baseline step
    // skips resources already at their highest setting), so force the
    // after-set comparison directly: the resource was "saved" at its top
    // setting, the re-measurement improved performance but blew the cap,
    // and no settings exist between baseline and top to binary-search.
    // Reverting to the baseline setting is a rejected raise, and the trace
    // must say so -- the pre-zoo walker mislabelled it kConfigAccept.
    std::vector<Resource> order = {Resource(Resource::Kind::kSockets)};
    const int top = order[0].settings() - 1;
    MachineConfig cfg = machine::minimalConfig();
    order[0].apply(cfg, top);
    FakeHost host(order, cfg, 100.0, /*checkPower=*/true);

    BinarySearchStrategy strategy;
    strategy.begin(host, 0.0);
    strategy.forceAfterSetForTest(0, top, /*perfOld=*/1.0);
    // Improved (2.0 > 1.0) and over the cap (150 > 100).
    const bool done = strategy.step(host, 2.0, 150.0, 1.0);

    EXPECT_TRUE(done);  // single-resource order: the walk is over
    EXPECT_TRUE(host.accepts.empty())
        << "degenerate revert mislabelled as an accept";
    ASSERT_EQ(host.rejects.size(), 1u);
    EXPECT_EQ(host.rejects[0].i0, 0);
    EXPECT_EQ(host.rejects[0].i1, top);
    EXPECT_EQ(order[0].setting(host.config()), top);  // nothing to undo
}

TEST(BinarySearchStrategy, DegenerateRevertRestoresTheSavedSetting)
{
    // Same branch, but the configuration has drifted from the saved
    // setting (only reachable by force): the revert must write the saved
    // setting back and reject it.
    std::vector<Resource> order = {Resource(Resource::Kind::kCoresPerSocket)};
    const int top = order[0].settings() - 1;
    MachineConfig cfg = machine::minimalConfig();
    order[0].apply(cfg, 3);
    FakeHost host(order, cfg, 100.0, /*checkPower=*/true);

    BinarySearchStrategy strategy;
    strategy.begin(host, 0.0);
    strategy.forceAfterSetForTest(0, top, /*perfOld=*/1.0);
    const bool done = strategy.step(host, 2.0, 150.0, 1.0);

    EXPECT_TRUE(done);
    EXPECT_TRUE(host.accepts.empty());
    ASSERT_EQ(host.rejects.size(), 1u);
    EXPECT_EQ(host.rejects[0].i1, top);
    EXPECT_EQ(order[0].setting(host.config()), top);
}

// --- Satellite: empty-order walks are not convergences -------------------

TEST(DecisionWalker, EmptyOrderWalkMonitorsWithoutCountingConvergence)
{
    DecisionWalker::Options options;
    options.windowSamples = 5;
    options.checkPower = true;
    DecisionWalker walker({}, options);
    trace::Recorder recorder;
    walker.attachTrace(&recorder);
    walker.start(machine::minimalConfig(), 140.0, 0.0);

    // The walker monitors the initial configuration...
    EXPECT_TRUE(walker.converged());
    EXPECT_EQ(walker.walkCount(), 1);
    // ...but a walk that never took a decision step did not *converge*.
    EXPECT_EQ(walker.convergedCount(), 0);
    int walkConvergedEvents = 0;
    for (const auto& event : recorder.snapshot())
        if (event.kind == trace::EventKind::kWalkConverged)
            ++walkConvergedEvents;
    EXPECT_EQ(walkConvergedEvents, 0);
}

TEST(DecisionWalker, RealWalksStillCountConvergences)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const auto order = calibratedOrder(true);
    DecisionWalker::Options options;
    options.windowSamples = 5;
    options.checkPower = true;
    DecisionWalker walker(order, options);
    trace::Recorder recorder;
    walker.attachTrace(&recorder);
    walker.start(machine::minimalConfig(), 140.0, 0.0);
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};
    double now = 0.0;
    while (!walker.converged() && now < 600.0) {
        now += 0.1;
        const auto out = scheduler.solve(walker.config(), {1.0, 1.0}, apps);
        walker.addSample(out.apps[0].itemsPerSec / 1e6,
                         pm.totalPower(walker.config(), out.loads), now);
    }
    ASSERT_TRUE(walker.converged());
    EXPECT_EQ(walker.convergedCount(), 1);
    EXPECT_GT(walker.lastWalkDurationSec(), 0.0);
    int walkConvergedEvents = 0;
    for (const auto& event : recorder.snapshot())
        if (event.kind == trace::EventKind::kWalkConverged)
            ++walkConvergedEvents;
    EXPECT_EQ(walkConvergedEvents, 1);
}

// --- Satellite: the binary-search lower bound stays measured-under-cap ---

TEST(BinarySearchStrategy, LowerBoundIsAlwaysASettingMeasuredUnderTheCap)
{
    // Scripted single-resource walk against a monotone synthetic response:
    // perf and power both rise with the setting, and the cap cuts the
    // range in the middle. Every measurement is logged; the setting the
    // search commits to must have been measured under the cap *before*
    // being accepted -- the search never commits to an extrapolation.
    std::vector<Resource> order = {Resource(Resource::Kind::kCoresPerSocket)};
    const int settings = order[0].settings();
    for (int capSetting = 0; capSetting < settings; ++capSetting) {
        // Highest feasible setting is capSetting: power(s) = 10*(s+1),
        // cap sits half a step above it.
        const double cap = 10.0 * (capSetting + 1) + 5.0;
        FakeHost host(order, machine::minimalConfig(), cap,
                      /*checkPower=*/true);
        BinarySearchStrategy strategy;
        strategy.begin(host, 0.0);
        std::vector<bool> measuredUnderCap(size_t(settings), false);
        bool done = false;
        double now = 0.0;
        for (int step = 0; step < 64 && !done; ++step) {
            const int s = order[0].setting(host.config());
            const double perf = 1.0 + s;
            const double power = 10.0 * (s + 1);
            if (power <= cap)
                measuredUnderCap[size_t(s)] = true;
            now += 1.0;
            done = strategy.step(host, perf, power, now);
        }
        ASSERT_TRUE(done) << "cap=" << cap;
        const int final = order[0].setting(host.config());
        EXPECT_EQ(final, capSetting) << "cap=" << cap;
        EXPECT_TRUE(measuredUnderCap[size_t(final)])
            << "committed to setting " << final
            << " without measuring it under cap=" << cap;
        // Exactly one committed decision per walk. (Its event records the
        // power of the measurement that *ended* the search -- possibly an
        // over-cap probe -- so the invariant lives in measuredUnderCap.)
        ASSERT_EQ(host.accepts.size(), 1u) << "cap=" << cap;
        EXPECT_EQ(host.accepts[0].i1, capSetting) << "cap=" << cap;
    }
}

// --- The zoo: every strategy converges and respects a software cap ------

class StrategyConvergence
    : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(StrategyConvergence, WalkerConvergesUnderCapOnNoiselessFeedback)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const auto order = calibratedOrder(true);
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("blackscholes"), 32}};
    for (const double cap : {80.0, 140.0}) {
        DecisionWalker::Options options;
        options.windowSamples = 5;
        options.checkPower = true;
        options.strategy.kind = GetParam();
        options.strategy.seed = 1234;
        DecisionWalker walker(order, options);
        EXPECT_STREQ(walker.strategyName(), strategyName(GetParam()));
        walker.start(machine::minimalConfig(), cap, 0.0);
        double now = 0.0;
        while (!walker.converged() && now < 900.0) {
            now += 0.1;
            const auto out =
                scheduler.solve(walker.config(), {1.0, 1.0}, apps);
            walker.addSample(out.apps[0].itemsPerSec / 1e6,
                             pm.totalPower(walker.config(), out.loads), now);
        }
        ASSERT_TRUE(walker.converged())
            << strategyName(GetParam()) << " cap=" << cap << " stuck in "
            << walker.phaseName();
        const auto out = scheduler.solve(walker.config(), {1.0, 1.0}, apps);
        const double power = pm.totalPower(walker.config(), out.loads);
        EXPECT_LE(power, cap + 1e-6)
            << strategyName(GetParam()) << " converged over cap " << cap
            << " at " << walker.config().toString();
        // Converging on the minimal configuration at a generous cap would
        // be vacuous: every discipline must have claimed some resources.
        const auto minimal =
            scheduler.solve(machine::minimalConfig(), {1.0, 1.0}, apps);
        EXPECT_GT(out.apps[0].itemsPerSec,
                  minimal.apps[0].itemsPerSec * 1.2)
            << strategyName(GetParam()) << " cap=" << cap;
    }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyConvergence,
                         ::testing::ValuesIn(allStrategyKinds()),
                         [](const auto& info) {
                             std::string name = strategyName(info.param);
                             std::replace(name.begin(), name.end(), '-', '_');
                             return name;
                         });

// --- Seed determinism of the stochastic baseline -------------------------

TEST(RandomRestartStrategy, SameSeedSameWalkDifferentSeedUsuallyDiffers)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const auto order = calibratedOrder(true);
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 32}};

    const auto runWalk = [&](uint64_t seed) {
        DecisionWalker::Options options;
        options.windowSamples = 5;
        options.checkPower = true;
        options.strategy.kind = StrategyKind::kRandomRestart;
        options.strategy.seed = seed;
        DecisionWalker walker(order, options);
        trace::Recorder recorder;
        walker.attachTrace(&recorder);
        walker.start(machine::minimalConfig(), 120.0, 0.0);
        double now = 0.0;
        while (!walker.converged() && now < 900.0) {
            now += 0.1;
            const auto out =
                scheduler.solve(walker.config(), {1.0, 1.0}, apps);
            walker.addSample(out.apps[0].itemsPerSec / 1e6,
                             pm.totalPower(walker.config(), out.loads), now);
        }
        EXPECT_TRUE(walker.converged());
        std::vector<std::pair<int32_t, int32_t>> tries;
        for (const auto& event : recorder.snapshot())
            if (event.kind == trace::EventKind::kConfigTry)
                tries.push_back({event.i0, event.i1});
        return std::make_pair(walker.config(), tries);
    };

    const auto [cfgA, triesA] = runWalk(99);
    const auto [cfgB, triesB] = runWalk(99);
    EXPECT_EQ(cfgA, cfgB);
    EXPECT_EQ(triesA, triesB) << "same seed must replay the same walk";

    const auto [cfgC, triesC] = runWalk(100);
    EXPECT_NE(triesA, triesC)
        << "different seeds should explore different starts";
}

}  // namespace
}  // namespace pupil::core
