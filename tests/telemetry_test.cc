/** @file Tests for the telemetry library: filter, sensors, settling, energy. */
#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/counters.h"
#include "telemetry/energy.h"
#include "telemetry/filter.h"
#include "telemetry/sensor.h"
#include "telemetry/settling.h"
#include "util/rng.h"
#include "util/stats.h"

namespace pupil::telemetry {
namespace {

TEST(SigmaFilter, EmptyAndSingle)
{
    SigmaFilter filter(10);
    EXPECT_EQ(filter.filtered(), 0.0);
    filter.add(5.0);
    EXPECT_DOUBLE_EQ(filter.filtered(), 5.0);
}

TEST(SigmaFilter, WindowSlides)
{
    SigmaFilter filter(3);
    for (double x : {1.0, 2.0, 3.0, 4.0})
        filter.add(x);
    EXPECT_EQ(filter.count(), 3u);
    EXPECT_DOUBLE_EQ(filter.rawMean(), 3.0);
}

TEST(SigmaFilter, RejectsTransientOutlier)
{
    // The paper's scenario: a page-fault-like dip must not leak into the
    // feedback the decision framework acts on (Eqs. 1-4).
    SigmaFilter filter(20);
    util::Rng rng(5);
    for (int i = 0; i < 19; ++i)
        filter.add(rng.gaussian(100.0, 0.5));
    filter.add(30.0);  // transient outlier
    EXPECT_NEAR(filter.filtered(), 100.0, 1.0);
    EXPECT_LT(filter.filtered(), filter.rawMean() + 5.0);
    EXPECT_LT(std::fabs(filter.filtered() - 100.0),
              std::fabs(filter.rawMean() - 100.0));
}

TEST(SigmaFilter, TracksPersistentChange)
{
    // A real phase change shifts every sample; the filter must follow.
    SigmaFilter filter(10);
    for (int i = 0; i < 10; ++i)
        filter.add(100.0);
    for (int i = 0; i < 10; ++i)
        filter.add(50.0);
    EXPECT_NEAR(filter.filtered(), 50.0, 1e-9);
}

TEST(SigmaFilter, ConstantSignalPassesThrough)
{
    SigmaFilter filter(8);
    for (int i = 0; i < 8; ++i)
        filter.add(42.0);
    EXPECT_DOUBLE_EQ(filter.filtered(), 42.0);
    EXPECT_DOUBLE_EQ(filter.rawStddev(), 0.0);
}

TEST(SigmaFilter, KeepsSampleExactlyOnSigmaBound)
{
    // Regression: the bound is inclusive. Nine 0.0s and one 10.0 give
    // mu = 1, sigma = 3 exactly, so |10 - mu| == 3 sigma == 9: the outlier
    // lies exactly on the boundary and must be kept (a strict < silently
    // dropped it, biasing the filtered mean to 0).
    SigmaFilter filter(10);
    for (int i = 0; i < 9; ++i)
        filter.add(0.0);
    filter.add(10.0);
    EXPECT_DOUBLE_EQ(filter.rawMean(), 1.0);
    EXPECT_DOUBLE_EQ(filter.rawStddev(), 3.0);
    EXPECT_DOUBLE_EQ(filter.filtered(), 1.0);
}

TEST(SigmaFilter, ResetClears)
{
    SigmaFilter filter(4);
    filter.add(1.0);
    filter.reset();
    EXPECT_EQ(filter.count(), 0u);
    EXPECT_FALSE(filter.full());
}

TEST(NoisySensor, UnbiasedOnAverage)
{
    NoisySensor sensor({0.02, 0.0, 1.0}, util::Rng(3));
    util::OnlineStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(sensor.sample(100.0));
    EXPECT_NEAR(stats.mean(), 100.0, 0.5);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.2);
}

TEST(NoisySensor, InjectsOutliers)
{
    NoisySensor sensor({0.0, 0.05, 0.3}, util::Rng(9));
    int outliers = 0;
    for (int i = 0; i < 10000; ++i)
        outliers += sensor.sample(100.0) < 50.0;
    EXPECT_NEAR(outliers / 10000.0, 0.05, 0.01);
}

TEST(FirstOrderLag, ConvergesExponentially)
{
    FirstOrderLag lag(0.1);
    lag.reset(0.0);
    lag.step(1.0, 0.1);  // one time constant
    EXPECT_NEAR(lag.value(), 1.0 - std::exp(-1.0), 1e-9);
    for (int i = 0; i < 100; ++i)
        lag.step(1.0, 0.1);
    EXPECT_NEAR(lag.value(), 1.0, 1e-4);
}

TEST(FirstOrderLag, FirstStepInitializes)
{
    FirstOrderLag lag(0.5);
    EXPECT_DOUBLE_EQ(lag.step(7.0, 0.01), 7.0);
}

std::vector<TracePoint>
stepTrace(double before, double after, double switchAt, double end)
{
    std::vector<TracePoint> trace;
    for (double t = 0.0; t < end; t += 0.01)
        trace.push_back({t, t < switchAt ? before : after});
    return trace;
}

TEST(Settling, CapNeverViolatedIsZero)
{
    const auto trace = stepTrace(100.0, 100.0, 0.0, 30.0);
    EXPECT_NEAR(settlingTime(trace, 140.0), 0.0, 0.2);
}

TEST(Settling, MeasuresLastViolation)
{
    // Power starts above the cap and is clamped at t = 2 s.
    const auto trace = stepTrace(200.0, 130.0, 2.0, 30.0);
    EXPECT_NEAR(settlingTime(trace, 140.0), 2.0, 0.2);
}

TEST(Settling, ToleranceAllowsSmallOvershoot)
{
    const auto trace = stepTrace(141.0, 141.0, 0.0, 30.0);
    // 141 W is within the 2% tolerance band of a 140 W cap.
    EXPECT_NEAR(settlingTime(trace, 140.0), 0.0, 0.2);
}

TEST(Settling, ConvergenceTimeSeesBelowCapWandering)
{
    // A software walker that roams below the cap settles per the
    // convergence metric even though it never violates.
    auto trace = stepTrace(40.0, 120.0, 10.0, 40.0);
    EXPECT_NEAR(settlingTime(trace, 140.0), 0.0, 0.2);
    EXPECT_NEAR(convergenceTime(trace), 10.0, 0.3);
}

TEST(Settling, NeverSettledReportsFullDuration)
{
    // Regression: a trace that still violates the cap at its end must
    // report the full trace duration, not 0 -- "never settled" and
    // "settled immediately" are opposite outcomes.
    const auto trace = stepTrace(200.0, 200.0, 0.0, 30.0);
    EXPECT_NEAR(settlingTime(trace, 140.0), 30.0, 0.2);
}

TEST(Settling, NeverConvergedReportsFullDuration)
{
    // A signal still ramping at the trace end never entered its
    // steady-state band: convergence time is the full duration.
    std::vector<TracePoint> trace;
    for (double t = 0.0; t < 30.0; t += 0.01)
        trace.push_back({t, 10.0 * t});
    EXPECT_NEAR(convergenceTime(trace), 30.0, 0.2);
}

TEST(Settling, SmoothingSuppressesSingleSpike)
{
    auto trace = stepTrace(100.0, 100.0, 0.0, 30.0);
    trace[500].value = 250.0;  // one 10 ms spike at t = 5 s
    // The 100 ms boxcar dilutes the spike to ~115 W < cap + tol... but a
    // genuine sustained violation is still caught.
    EXPECT_LT(settlingTime(trace, 140.0), 5.2);
    for (int i = 500; i < 550; ++i)
        trace[i].value = 250.0;  // 500 ms violation
    EXPECT_NEAR(settlingTime(trace, 140.0), 5.5, 0.2);
}

TEST(Energy, IntegratesPowerAndWork)
{
    EnergyAccount account;
    account.add(100.0, 10.0, 2.0);
    account.add(50.0, 20.0, 2.0);
    EXPECT_DOUBLE_EQ(account.joules(), 300.0);
    EXPECT_DOUBLE_EQ(account.items(), 60.0);
    EXPECT_DOUBLE_EQ(account.meanPower(), 75.0);
    EXPECT_DOUBLE_EQ(account.meanItemsPerSec(), 15.0);
    EXPECT_DOUBLE_EQ(account.itemsPerJoule(), 0.2);
    account.reset();
    EXPECT_EQ(account.joules(), 0.0);
    EXPECT_EQ(account.itemsPerJoule(), 0.0);
}

TEST(Counters, ComputesRatesAndSpinPercent)
{
    Counters counters;
    counters.add(30e9, 20e9, 4.0, 16.0, 10.0);
    EXPECT_DOUBLE_EQ(counters.gips(), 30.0);
    EXPECT_DOUBLE_EQ(counters.bandwidthGBs(), 20.0);
    EXPECT_DOUBLE_EQ(counters.spinPercent(), 25.0);
    counters.reset();
    EXPECT_EQ(counters.gips(), 0.0);
}

// Property sweep: the filter's output is always within the window's range.
class FilterBounded : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FilterBounded, OutputWithinSampleRange)
{
    util::Rng rng(GetParam());
    SigmaFilter filter(20);
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(0.0, 100.0);
        filter.add(x);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        const double f = filter.filtered();
        EXPECT_GE(f, lo - 1e-9);
        EXPECT_LE(f, hi + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterBounded,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pupil::telemetry
