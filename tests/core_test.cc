/** @file Tests for the decision framework: resources, ordering, walker,
 *  power distribution. */
#include <gtest/gtest.h>

#include "capping/oracle.h"
#include "core/decision.h"
#include "core/ordering.h"
#include "core/power_dist.h"
#include "core/resource.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/catalog.h"

namespace pupil::core {
namespace {

using machine::MachineConfig;

TEST(Resource, ApplyAndReadBackEverySetting)
{
    MachineConfig cfg = machine::minimalConfig();
    for (const Resource& r : platformResources(true)) {
        for (int i = 0; i < r.settings(); ++i) {
            r.apply(cfg, i);
            EXPECT_EQ(r.setting(cfg), i) << r.name();
            EXPECT_TRUE(cfg.valid()) << r.name();
        }
    }
}

TEST(Resource, PlatformSetIncludesDvfsOnlyWhenAsked)
{
    EXPECT_EQ(platformResources(true).size(), 5u);
    EXPECT_EQ(platformResources(false).size(), 4u);
    for (const Resource& r : platformResources(false))
        EXPECT_NE(r.kind(), Resource::Kind::kDvfs);
}

TEST(Resource, SettingCountsMatchTable1)
{
    for (const Resource& r : platformResources(true)) {
        switch (r.kind()) {
          case Resource::Kind::kCoresPerSocket:
            EXPECT_EQ(r.settings(), 8);
            break;
          case Resource::Kind::kSockets:
          case Resource::Kind::kHyperThreading:
          case Resource::Kind::kMemControllers:
            EXPECT_EQ(r.settings(), 2);
            break;
          case Resource::Kind::kDvfs:
            EXPECT_EQ(r.settings(), 16);
            break;
        }
    }
}

TEST(Ordering, ReproducesTable2Order)
{
    // Algorithm 2 on the calibration benchmark must yield the paper's
    // Table 2 precedence: cores > sockets > hyperthreading > memory
    // controllers, with DVFS pinned last.
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const OrderingReport report =
        calibrateOrdering(scheduler, pm, workload::calibrationApp());
    ASSERT_EQ(report.entries.size(), 5u);
    EXPECT_EQ(report.entries[0].resource.kind(),
              Resource::Kind::kCoresPerSocket);
    EXPECT_EQ(report.entries[1].resource.kind(), Resource::Kind::kSockets);
    EXPECT_EQ(report.entries[2].resource.kind(),
              Resource::Kind::kHyperThreading);
    EXPECT_EQ(report.entries[3].resource.kind(),
              Resource::Kind::kMemControllers);
    EXPECT_EQ(report.entries[4].resource.kind(), Resource::Kind::kDvfs);
}

TEST(Ordering, SpeedupsInPaperBallpark)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const OrderingReport report =
        calibrateOrdering(scheduler, pm, workload::calibrationApp());
    // Paper Table 2: 7.9 / 2.0 / 1.9 / 1.8 / 3.2.
    EXPECT_NEAR(report.entries[0].maxSpeedup, 7.9, 0.4);
    EXPECT_NEAR(report.entries[1].maxSpeedup, 2.0, 0.2);
    EXPECT_NEAR(report.entries[2].maxSpeedup, 1.9, 0.15);
    EXPECT_NEAR(report.entries[3].maxSpeedup, 1.8, 0.15);
    EXPECT_NEAR(report.entries[4].maxSpeedup, 3.2, 0.3);
    for (const OrderingEntry& e : report.entries)
        EXPECT_GT(e.maxPowerup, 1.0) << e.resource.name();
}

TEST(Ordering, OrderedResourcesRespectDvfsFlag)
{
    const sched::Scheduler scheduler;
    const machine::PowerModel pm;
    const OrderingReport report =
        calibrateOrdering(scheduler, pm, workload::calibrationApp());
    EXPECT_EQ(report.orderedResources(true).size(), 5u);
    EXPECT_EQ(report.orderedResources(false).size(), 4u);
}

/**
 * Drives a DecisionWalker against the analytic steady-state model,
 * emulating a noiseless platform whose power/perf respond instantly.
 * This exercises Algorithm 1's decision logic in isolation.
 */
class WalkerHarness
{
  public:
    WalkerHarness(const workload::AppParams& app, double cap,
                  DecisionWalker::Options options)
        : app_(app), cap_(cap),
          walker_(orderedResources(options.checkPower), options)
    {
        options_ = options;
    }

    static std::vector<Resource>
    orderedResources(bool includeDvfs)
    {
        const sched::Scheduler scheduler;
        const machine::PowerModel pm;
        return calibrateOrdering(scheduler, pm, workload::calibrationApp())
            .orderedResources(includeDvfs);
    }

    /** Run the walker to convergence; returns the final configuration. */
    MachineConfig
    run(const MachineConfig& initial)
    {
        walker_.start(initial, cap_, 0.0);
        double now = 0.0;
        while (!walker_.converged() && now < 600.0) {
            now += 0.1;
            double perf = 0.0;
            double power = 0.0;
            evaluate(walker_.config(), perf, power);
            walker_.addSample(perf, power, now);
        }
        return walker_.config();
    }

    void
    evaluate(const MachineConfig& cfg, double& perf, double& power) const
    {
        const sched::Scheduler scheduler;
        const machine::PowerModel pm;
        const std::vector<sched::AppDemand> apps = {{&app_, 32}};
        MachineConfig effective = cfg;
        if (!options_.checkPower) {
            // Hybrid mode: emulate RAPL trimming the p-state to the cap.
            for (int p = machine::DvfsTable::kTurboPState; p >= 0; --p) {
                effective.setUniformPState(p);
                const auto out =
                    scheduler.solve(effective, {1.0, 1.0}, apps);
                if (pm.totalPower(effective, out.loads) <= cap_)
                    break;
            }
        }
        const auto out = scheduler.solve(effective, {1.0, 1.0}, apps);
        perf = out.apps[0].itemsPerSec / 1e6;
        power = pm.totalPower(effective, out.loads);
    }

    const DecisionWalker& walker() const { return walker_; }

  private:
    const workload::AppParams& app_;
    double cap_;
    DecisionWalker::Options options_;
    DecisionWalker walker_;
};

DecisionWalker::Options
softOptions()
{
    DecisionWalker::Options options;
    options.windowSamples = 5;  // fast, noiseless harness
    options.checkPower = true;
    return options;
}

DecisionWalker::Options
hybridOptions()
{
    DecisionWalker::Options options;
    options.windowSamples = 5;
    options.checkPower = false;
    return options;
}

TEST(DecisionWalker, ConvergesAndRespectsCapInSoftwareMode)
{
    WalkerHarness harness(workload::findBenchmark("blackscholes"), 140.0,
                          softOptions());
    const MachineConfig final = harness.run(machine::minimalConfig());
    EXPECT_TRUE(harness.walker().converged());
    double perf = 0.0;
    double power = 0.0;
    harness.evaluate(final, perf, power);
    EXPECT_LE(power, 140.0 + 1.0);
    // Far better than the minimal start.
    double basePerf = 0.0;
    double basePower = 0.0;
    harness.evaluate(machine::minimalConfig(), basePerf, basePower);
    EXPECT_GT(perf, basePerf * 4.0);
}

TEST(DecisionWalker, RejectsHyperthreadingForX264)
{
    // The Section 2 story: the framework must discover that hyperthreads
    // hurt x264 and leave them off while raising clock speed.
    WalkerHarness harness(workload::findBenchmark("x264"), 140.0,
                          softOptions());
    const MachineConfig final = harness.run(machine::minimalConfig());
    EXPECT_FALSE(final.hyperthreading);
    EXPECT_GT(final.pstate[0], 8);
}

TEST(DecisionWalker, RestrictsKmeansToOneSocket)
{
    // Section 5.2: the framework must keep kmeans off the second socket
    // and spend the budget on clock speed instead.
    WalkerHarness harness(workload::findBenchmark("kmeans"), 140.0,
                          softOptions());
    const MachineConfig final = harness.run(machine::minimalConfig());
    EXPECT_EQ(final.sockets, 1);
    EXPECT_EQ(final.coresPerSocket, 8);
}

TEST(DecisionWalker, HybridModeNeverTouchesDvfs)
{
    WalkerHarness harness(workload::findBenchmark("swaptions"), 100.0,
                          hybridOptions());
    MachineConfig initial = machine::minimalConfig();
    initial.setUniformPState(machine::DvfsTable::kTurboPState);
    const MachineConfig final = harness.run(initial);
    // The OS p-state request is untouched (hardware owns V/f).
    EXPECT_EQ(final.pstate[0], machine::DvfsTable::kTurboPState);
    EXPECT_TRUE(harness.walker().converged());
}

TEST(DecisionWalker, BinarySearchFindsHighestSettingUnderCap)
{
    // At 60 W the DVFS binary search must stop below the top p-state.
    WalkerHarness harness(workload::findBenchmark("blackscholes"), 60.0,
                          softOptions());
    const MachineConfig final = harness.run(machine::minimalConfig());
    double perf = 0.0;
    double power = 0.0;
    harness.evaluate(final, perf, power);
    EXPECT_LE(power, 61.0);
    EXPECT_LT(final.pstate[0], machine::DvfsTable::kTurboPState);
    // One p-state higher would exceed the cap.
    MachineConfig bumped = final;
    bumped.setUniformPState(final.pstate[0] + 1);
    harness.evaluate(bumped, perf, power);
    EXPECT_GT(power, 60.0);
}

TEST(DecisionWalker, ConfigDirtyFlagIsConsumed)
{
    DecisionWalker walker(WalkerHarness::orderedResources(true),
                          softOptions());
    walker.start(machine::minimalConfig(), 140.0, 0.0);
    EXPECT_TRUE(walker.takeConfigDirty());
    EXPECT_FALSE(walker.takeConfigDirty());
}

TEST(DecisionWalker, WalkCountTracksRestarts)
{
    DecisionWalker walker(WalkerHarness::orderedResources(true),
                          softOptions());
    walker.start(machine::minimalConfig(), 140.0, 0.0);
    EXPECT_EQ(walker.walkCount(), 1);
    walker.start(machine::minimalConfig(), 140.0, 10.0);
    EXPECT_EQ(walker.walkCount(), 2);
}

TEST(PowerDist, EvenSplitIsHalfEach)
{
    const machine::PowerModel pm;
    const auto caps = splitCap(pm, machine::maximalConfig(), 140.0,
                               PowerDistPolicy::kEvenSplit);
    EXPECT_DOUBLE_EQ(caps[0], 70.0);
    EXPECT_DOUBLE_EQ(caps[1], 70.0);
}

TEST(PowerDist, CoreProportionalSumsToCap)
{
    const machine::PowerModel pm;
    for (int cores = 1; cores <= 8; ++cores) {
        for (int sockets = 1; sockets <= 2; ++sockets) {
            MachineConfig cfg;
            cfg.coresPerSocket = cores;
            cfg.sockets = sockets;
            const auto caps = splitCap(pm, cfg, 140.0,
                                       PowerDistPolicy::kCoreProportional);
            EXPECT_NEAR(caps[0] + caps[1], 140.0, 1e-9)
                << cores << "c x " << sockets << "s";
        }
    }
}

TEST(PowerDist, AsymmetricConfigConcentratesBudget)
{
    // One active socket: it gets everything except the idle socket's keep.
    const machine::PowerModel pm;
    MachineConfig cfg;
    cfg.coresPerSocket = 8;
    cfg.sockets = 1;
    const auto caps =
        splitCap(pm, cfg, 140.0, PowerDistPolicy::kCoreProportional);
    EXPECT_GT(caps[0], 125.0);
    EXPECT_LT(caps[1], 10.0);
    EXPECT_NEAR(caps[1], pm.staticSocketPower(cfg, 1), 1e-9);
}

TEST(PowerDist, TinyCapShrinksProportionally)
{
    const machine::PowerModel pm;
    const auto caps = splitCap(pm, machine::maximalConfig(), 10.0,
                               PowerDistPolicy::kCoreProportional);
    EXPECT_NEAR(caps[0] + caps[1], 10.0, 1e-9);
    EXPECT_GT(caps[0], 0.0);
    EXPECT_GT(caps[1], 0.0);
}

TEST(PowerDist, SingleSocketTightCapKeepsIdleFloor)
{
    // Regression: under a cap too tight to cover even the active socket's
    // static power, the idle socket must still receive exactly its
    // package-sleep floor -- it physically cannot go lower, and scaling it
    // down used to strand the difference as an unenforceable share.
    const machine::PowerModel pm;
    MachineConfig cfg;
    cfg.coresPerSocket = 8;
    cfg.sockets = 1;
    const double idle = pm.staticSocketPower(cfg, 1);
    const double active = pm.staticSocketPower(cfg, 0);
    const double tightCap = 0.8 * (active + idle);
    ASSERT_LT(tightCap - idle, active);  // genuinely tight
    const auto caps =
        splitCap(pm, cfg, tightCap, PowerDistPolicy::kCoreProportional);
    EXPECT_DOUBLE_EQ(caps[1], idle);
    EXPECT_DOUBLE_EQ(caps[0], tightCap - idle);
    EXPECT_NEAR(caps[0] + caps[1], tightCap, 1e-9);
}

TEST(PowerDist, CapBelowIdleFloorsStillSumsToCap)
{
    // Even the fully degenerate case (cap below the combined idle floors)
    // must hand out shares that sum to the cap.
    const machine::PowerModel pm;
    MachineConfig cfg;
    cfg.coresPerSocket = 8;
    cfg.sockets = 1;
    const double cap = 0.5 * pm.staticSocketPower(cfg, 1);
    const auto caps =
        splitCap(pm, cfg, cap, PowerDistPolicy::kCoreProportional);
    EXPECT_NEAR(caps[0] + caps[1], cap, 1e-9);
    EXPECT_GE(caps[0], 0.0);
    EXPECT_GE(caps[1], 0.0);
}

// Property sweep: in software mode the walker's final configuration
// respects every paper cap for representative apps.
class WalkerCapSweep
    : public ::testing::TestWithParam<std::tuple<double, const char*>>
{
};

TEST_P(WalkerCapSweep, FinalConfigRespectsCap)
{
    const auto [cap, name] = GetParam();
    WalkerHarness harness(workload::findBenchmark(name), cap, softOptions());
    const MachineConfig final = harness.run(machine::minimalConfig());
    double perf = 0.0;
    double power = 0.0;
    harness.evaluate(final, perf, power);
    EXPECT_LE(power, cap + 1.0) << final.toString();
    EXPECT_TRUE(harness.walker().converged());
}

INSTANTIATE_TEST_SUITE_P(
    CapsTimesApps, WalkerCapSweep,
    ::testing::Combine(::testing::Values(60.0, 100.0, 140.0, 220.0),
                       ::testing::Values("blackscholes", "x264", "kmeans",
                                         "STREAM", "dijkstra")));

}  // namespace
}  // namespace pupil::core
