/** @file Unit tests for the open-loop tenant traffic subsystem
 *  (src/load/): arrival-generator determinism (including byte-identical
 *  streams across SweepRunner thread counts), admission-queue FIFO and
 *  shedding semantics, SLO scoring, the end-to-end LoadDriver path under
 *  a governor, and the zero-cost-when-off guarantee (a run with the load
 *  options present but disabled is byte-identical to a run without
 *  them, trace included). */
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/sweep.h"
#include "load/admission.h"
#include "load/cap_arbiter.h"
#include "load/load_driver.h"
#include "load/slo_tracker.h"
#include "load/traffic.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workload/catalog.h"

namespace pupil {
namespace {

/** FNV-1a 64-bit over a byte string (the golden-trace digest). */
uint64_t
fnv1a(const std::string& content)
{
    uint64_t hash = 14695981039346656037ULL;
    for (const unsigned char c : content) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    return hash;
}

/**
 * Byte-exact digest of the first @p jobs jobs of a generator stream:
 * every field is rendered with %.17g so two digests agree iff the
 * streams are bit-identical.
 */
uint64_t
streamDigest(const load::TrafficSpec& spec, uint64_t seed, int jobs)
{
    load::ArrivalGenerator gen(spec, seed);
    std::string bytes;
    char buf[160];
    for (int i = 0; i < jobs; ++i) {
        const load::TenantJob job = gen.next();
        std::snprintf(buf, sizeof buf, "%.17g|%s|%d|%.17g|%d|%.17g\n",
                      job.arriveSec, job.params->name.c_str(), job.threads,
                      job.workItems, int(job.tier), job.sloSec);
        bytes += buf;
    }
    return fnv1a(bytes);
}

TEST(ArrivalGenerator, SameSpecAndSeedEmitByteIdenticalStreams)
{
    for (const load::ArrivalKind kind : load::allArrivalKinds()) {
        load::TrafficSpec spec;
        spec.kind = kind;
        spec.ratePerSec = 1.5;
        EXPECT_EQ(streamDigest(spec, 0xfeedULL, 200),
                  streamDigest(spec, 0xfeedULL, 200))
            << load::arrivalKindName(kind);
        EXPECT_NE(streamDigest(spec, 0xfeedULL, 200),
                  streamDigest(spec, 0xbeefULL, 200))
            << load::arrivalKindName(kind);
    }
}

TEST(ArrivalGenerator, ArrivalTimesStrictlyIncrease)
{
    for (const load::ArrivalKind kind : load::allArrivalKinds()) {
        load::TrafficSpec spec;
        spec.kind = kind;
        spec.ratePerSec = 2.0;
        load::ArrivalGenerator gen(spec, 7);
        double last = -1.0;
        for (int i = 0; i < 500; ++i) {
            const load::TenantJob job = gen.next();
            EXPECT_GT(job.arriveSec, last) << load::arrivalKindName(kind)
                                           << " job " << i;
            last = job.arriveSec;
        }
        EXPECT_EQ(gen.emitted(), 500u);
    }
}

TEST(ArrivalGenerator, JobsCarryTierConsistentSlosAndBoundedWork)
{
    load::TrafficSpec spec;
    spec.ratePerSec = 3.0;
    load::ArrivalGenerator gen(spec, 11);
    std::array<int, load::kTierCount> seen = {};
    for (int i = 0; i < 600; ++i) {
        const load::TenantJob job = gen.next();
        ASSERT_NE(job.params, nullptr);
        EXPECT_EQ(job.threads, spec.threadsPerJob);
        EXPECT_GE(job.workItems, spec.minWorkItems);
        EXPECT_EQ(job.sloSec, spec.tierSloSec[size_t(job.tier)]);
        ++seen[size_t(job.tier)];
    }
    // With shares {0.2, 0.3, 0.5} over 600 draws every tier appears.
    for (int t = 0; t < load::kTierCount; ++t)
        EXPECT_GT(seen[size_t(t)], 0) << load::tierName(load::Tier(t));
}

TEST(ArrivalGenerator, RateShapesModulateTheBaseRate)
{
    load::TrafficSpec spec;
    spec.ratePerSec = 1.0;

    spec.kind = load::ArrivalKind::kPoisson;
    const load::ArrivalGenerator flat(spec, 1);
    EXPECT_DOUBLE_EQ(flat.rateAt(0.0), 1.0);
    EXPECT_DOUBLE_EQ(flat.rateAt(500.0), 1.0);

    spec.kind = load::ArrivalKind::kDiurnal;
    const load::ArrivalGenerator diurnal(spec, 1);
    const double peak = diurnal.rateAt(spec.diurnalPeriodSec / 4.0);
    const double trough = diurnal.rateAt(3.0 * spec.diurnalPeriodSec / 4.0);
    EXPECT_GT(peak, 1.5);
    EXPECT_LT(trough, 0.5);
    EXPECT_GT(trough, 0.0);

    spec.kind = load::ArrivalKind::kFlashCrowd;
    const load::ArrivalGenerator flash(spec, 1);
    EXPECT_DOUBLE_EQ(flash.rateAt(spec.flashStartSec - 1.0), 1.0);
    EXPECT_DOUBLE_EQ(
        flash.rateAt(spec.flashStartSec + spec.flashDurationSec / 2.0),
        spec.flashMultiplier);
    EXPECT_DOUBLE_EQ(
        flash.rateAt(spec.flashStartSec + spec.flashDurationSec + 1.0), 1.0);
}

/**
 * The sweep-cell discipline: per-stream seeds derived with
 * SweepRunner::deriveSeed, digests computed under a parallel pool and
 * serially, byte-identical results. This is exactly how slo_frontier
 * seeds its cells, so this test pins the bench's determinism claim at
 * the generator level.
 */
TEST(ArrivalGenerator, PooledAndSerialSweepsProduceIdenticalStreams)
{
    constexpr size_t kStreams = 24;
    constexpr uint64_t kBase = 42;
    const auto digestAll = [&](int threads) {
        harness::SweepRunner::Options opts;
        opts.threads = threads;
        harness::SweepRunner runner(opts);
        std::vector<uint64_t> digests(kStreams);
        const auto errors = runner.forEach(kStreams, [&](size_t i) {
            load::TrafficSpec spec;
            spec.kind =
                load::allArrivalKinds()[i % load::allArrivalKinds().size()];
            spec.ratePerSec = 0.5 + 0.25 * double(i % 5);
            digests[i] = streamDigest(
                spec, harness::SweepRunner::deriveSeed(kBase, i), 100);
        });
        for (const std::string& err : errors)
            EXPECT_TRUE(err.empty()) << err;
        return digests;
    };
    const std::vector<uint64_t> serial = digestAll(1);
    const std::vector<uint64_t> pooled = digestAll(4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], pooled[i]) << "stream " << i;
}

load::TenantJob
jobOf(load::Tier tier, double work, double arriveSec = 0.0)
{
    load::TenantJob job;
    job.arriveSec = arriveSec;
    job.params = &workload::calibrationApp();
    job.threads = 4;
    job.workItems = work;
    job.tier = tier;
    job.sloSec = 60.0;
    return job;
}

TEST(AdmissionQueue, FifoPerTierAndDemandAccounting)
{
    load::AdmissionQueue queue(4);
    EXPECT_TRUE(queue.empty());
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kGold, 3.0, 1.0)));
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kGold, 5.0, 2.0)));
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kBronze, 7.0, 3.0)));

    EXPECT_EQ(queue.depth(load::Tier::kGold), 2u);
    EXPECT_EQ(queue.depth(load::Tier::kSilver), 0u);
    EXPECT_EQ(queue.totalDepth(), 3u);
    EXPECT_DOUBLE_EQ(queue.queuedWork(load::Tier::kGold), 8.0);
    EXPECT_DOUBLE_EQ(queue.queuedWork(load::Tier::kBronze), 7.0);

    EXPECT_DOUBLE_EQ(queue.front(load::Tier::kGold).arriveSec, 1.0);
    load::TenantJob out;
    ASSERT_TRUE(queue.pop(load::Tier::kGold, out));
    EXPECT_DOUBLE_EQ(out.arriveSec, 1.0);
    ASSERT_TRUE(queue.pop(load::Tier::kGold, out));
    EXPECT_DOUBLE_EQ(out.arriveSec, 2.0);
    EXPECT_FALSE(queue.pop(load::Tier::kGold, out));
    EXPECT_DOUBLE_EQ(queue.queuedWork(load::Tier::kGold), 0.0);
}

TEST(AdmissionQueue, FullTierShedsWithoutBlockingOtherTiers)
{
    load::AdmissionQueue queue(2);
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kSilver, 1.0)));
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kSilver, 1.0)));
    EXPECT_FALSE(queue.push(jobOf(load::Tier::kSilver, 1.0)));
    EXPECT_TRUE(queue.push(jobOf(load::Tier::kGold, 1.0)));

    EXPECT_EQ(queue.dropped(load::Tier::kSilver), 1u);
    EXPECT_EQ(queue.droppedTotal(), 1u);
    EXPECT_EQ(queue.pushed(), 3u);
    EXPECT_EQ(queue.depth(load::Tier::kSilver), queue.capacityPerTier());
}

TEST(AdmissionQueue, RingWrapsPastCapacityManyTimes)
{
    load::AdmissionQueue queue(3);
    load::TenantJob out;
    for (int round = 0; round < 50; ++round) {
        ASSERT_TRUE(queue.push(jobOf(load::Tier::kBronze, 1.0, round)));
        ASSERT_TRUE(queue.pop(load::Tier::kBronze, out));
        EXPECT_DOUBLE_EQ(out.arriveSec, double(round));
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.droppedTotal(), 0u);
}

TEST(SloTracker, ScoresCompletionsDropsAndAbandonments)
{
    load::SloTracker tracker;
    tracker.onArrive(load::Tier::kGold);
    tracker.onArrive(load::Tier::kGold);
    tracker.onArrive(load::Tier::kGold);
    tracker.onArrive(load::Tier::kGold);

    tracker.onAdmit(load::Tier::kGold, 2.0);
    EXPECT_FALSE(tracker.onComplete(load::Tier::kGold, 10.0, 40.0));
    tracker.onAdmit(load::Tier::kGold, 30.0);
    EXPECT_TRUE(tracker.onComplete(load::Tier::kGold, 55.0, 40.0));
    tracker.onDrop(load::Tier::kGold);
    tracker.onAbandon(load::Tier::kGold, 90.0);

    EXPECT_EQ(tracker.arrivals(load::Tier::kGold), 4u);
    EXPECT_EQ(tracker.completions(load::Tier::kGold), 2u);
    EXPECT_EQ(tracker.drops(load::Tier::kGold), 1u);
    // One late completion + one drop + one abandonment = 3 violations
    // over 4 scored jobs.
    EXPECT_EQ(tracker.violations(load::Tier::kGold), 3u);
    EXPECT_EQ(tracker.totalScored(), 4u);
    EXPECT_DOUBLE_EQ(tracker.violationRate(), 0.75);
    EXPECT_DOUBLE_EQ(tracker.meanQueueWaitSec(load::Tier::kGold), 16.0);

    // p99 reads from geometric buckets: exact to one bucket width.
    const double p99 = tracker.p99LatencySec(load::Tier::kGold);
    EXPECT_GT(p99, 90.0 / 1.125);
    EXPECT_LT(p99, 90.0 * 1.125);
    EXPECT_DOUBLE_EQ(tracker.p99LatencySec(), p99);
}

TEST(SloTracker, EmptyTrackerReadsZeroEverywhere)
{
    const load::SloTracker tracker;
    EXPECT_EQ(tracker.totalArrivals(), 0u);
    EXPECT_EQ(tracker.totalScored(), 0u);
    EXPECT_DOUBLE_EQ(tracker.violationRate(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.p99LatencySec(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.meanLatencySec(load::Tier::kGold), 0.0);
}

/** End-to-end: a hot stream under PUPiL serves and scores tenant jobs. */
TEST(LoadDriver, ServesTrafficUnderAGovernor)
{
    harness::ExperimentOptions options;
    options.capWatts = 100.0;
    options.durationSec = 40.0;
    options.statsWindowSec = 15.0;
    options.seed = 42;
    options.load.enabled = true;
    options.load.spec.ratePerSec = 1.0;
    options.load.spec.meanWorkItems = 3.0;
    options.load.spec.minWorkItems = 1.0;

    const harness::ExperimentResult result = harness::runExperiment(
        harness::GovernorKind::kPupil, {}, options);

    EXPECT_GT(result.jobsArrived, 0u);
    EXPECT_GT(result.jobsCompleted, 0u);
    EXPECT_LE(result.jobsCompleted + result.jobsDropped, result.jobsArrived);
    EXPECT_LE(result.sloViolations,
              result.jobsCompleted + result.jobsDropped +
                  (result.jobsArrived - result.jobsCompleted -
                   result.jobsDropped));
    EXPECT_GE(result.sloViolationRate, 0.0);
    EXPECT_LE(result.sloViolationRate, 1.0);

    bool sawLoadMetrics = false;
    for (const auto& [name, value] : result.metrics) {
        if (name == "load.arrivals") {
            sawLoadMetrics = true;
            EXPECT_DOUBLE_EQ(value, double(result.jobsArrived));
        }
    }
    EXPECT_TRUE(sawLoadMetrics);
}

/** Same seed, same spec: the whole experiment is byte-reproducible. */
TEST(LoadDriver, ExperimentsAreSeedDeterministic)
{
    harness::ExperimentOptions options;
    options.capWatts = 80.0;
    options.durationSec = 30.0;
    options.statsWindowSec = 10.0;
    options.seed = 7;
    options.load.enabled = true;
    options.load.spec.ratePerSec = 1.5;
    options.load.spec.meanWorkItems = 2.0;
    options.load.spec.minWorkItems = 1.0;

    const auto a = harness::runExperiment(harness::GovernorKind::kRapl, {},
                                          options);
    const auto b = harness::runExperiment(harness::GovernorKind::kRapl, {},
                                          options);
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_EQ(a.jobsDropped, b.jobsDropped);
    EXPECT_EQ(a.sloViolations, b.sloViolations);
    EXPECT_EQ(a.p99LatencySec, b.p99LatencySec);
    EXPECT_EQ(a.meanPowerWatts, b.meanPowerWatts);
    EXPECT_EQ(a.aggregatePerf, b.aggregatePerf);
}

/**
 * The zero-cost-when-off guarantee: options.load present but disabled
 * (with every other load field deliberately perturbed) must produce a
 * run byte-identical to the defaults -- results, metrics, and the full
 * trace export. This is what keeps the pinned tests/golden/ digests
 * valid after the subsystem landed.
 */
TEST(LoadDriver, DisabledLoadOptionsAreByteInvisible)
{
    const auto runOnce = [](bool touchLoadOptions, std::string& csvOut) {
        trace::Recorder recorder(1 << 16);
        harness::ExperimentOptions options;
        options.capWatts = 140.0;
        options.durationSec = 10.0;
        options.statsWindowSec = 5.0;
        options.seed = 42;
        options.trace = &recorder;
        if (touchLoadOptions) {
            options.load.enabled = false;  // the master switch stays off
            options.load.spec.ratePerSec = 9.0;
            options.load.spec.kind = load::ArrivalKind::kFlashCrowd;
            options.load.slots = 32;
            options.load.arbiterPeriodSec = 0.25;
            options.load.seed = 0xabcdef;
        }
        const auto result = harness::runExperiment(
            harness::GovernorKind::kPupil, harness::singleApp("x264"),
            options);
        csvOut = trace::toCsv(recorder);
        return result;
    };

    std::string csvBare, csvTouched;
    const auto bare = runOnce(false, csvBare);
    const auto touched = runOnce(true, csvTouched);

    EXPECT_EQ(bare.aggregatePerf, touched.aggregatePerf);
    EXPECT_EQ(bare.meanPowerWatts, touched.meanPowerWatts);
    EXPECT_EQ(bare.perfPerJoule, touched.perfPerJoule);
    EXPECT_EQ(bare.settlingTimeSec, touched.settlingTimeSec);
    EXPECT_EQ(touched.jobsArrived, 0u);
    EXPECT_EQ(touched.sloViolations, 0u);
    ASSERT_EQ(bare.metrics.size(), touched.metrics.size());
    for (size_t i = 0; i < bare.metrics.size(); ++i) {
        EXPECT_EQ(bare.metrics[i].first, touched.metrics[i].first);
        EXPECT_EQ(bare.metrics[i].second, touched.metrics[i].second) << i;
    }
    EXPECT_EQ(fnv1a(csvBare), fnv1a(csvTouched))
        << "disabled load options changed the trace stream";
}

/** The three load trace kinds render stable names and map to kLoad. */
TEST(LoadTrace, KindsAreRegistered)
{
    using trace::EventKind;
    using trace::Subsystem;
    EXPECT_STREQ(trace::kindName(EventKind::kJobArrive), "job-arrive");
    EXPECT_STREQ(trace::kindName(EventKind::kJobComplete), "job-complete");
    EXPECT_STREQ(trace::kindName(EventKind::kSloViolation),
                 "slo-violation");
    EXPECT_EQ(trace::kindSubsystem(EventKind::kJobArrive),
              Subsystem::kLoad);
    EXPECT_EQ(trace::kindSubsystem(EventKind::kJobComplete),
              Subsystem::kLoad);
    EXPECT_EQ(trace::kindSubsystem(EventKind::kSloViolation),
              Subsystem::kLoad);
    EXPECT_STREQ(trace::subsystemName(Subsystem::kLoad), "load");
}

}  // namespace
}  // namespace pupil
