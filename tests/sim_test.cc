/** @file Tests for the simulation platform. */
#include <gtest/gtest.h>

#include "sim/platform.h"
#include "util/stats.h"
#include "workload/catalog.h"

namespace pupil::sim {
namespace {

std::vector<sched::AppDemand>
soloApp(const char* name, int threads = 32)
{
    return {{&workload::findBenchmark(name), threads}};
}

PlatformOptions
quietOptions(uint64_t seed = 42)
{
    PlatformOptions options;
    options.seed = seed;
    return options;
}

TEST(Platform, StartsInMinimalConfig)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    EXPECT_EQ(platform.machine().osConfig(0.0), machine::minimalConfig());
    EXPECT_LT(platform.truePower(), 20.0);
}

TEST(Platform, WarmStartJumpsToSteadyState)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    EXPECT_GT(platform.truePower(), 180.0);
    EXPECT_GT(platform.trueAppRate(0), 0.0);
}

TEST(Platform, PowerLagsTowardNewTarget)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::minimalConfig());
    const double before = platform.truePower();
    platform.machine().requestConfig(machine::maximalConfig(), 0.0);
    platform.run(0.3);  // migration (150 ms) + some lag
    EXPECT_GT(platform.truePower(), before + 20.0);
    platform.run(2.0);
    EXPECT_GT(platform.truePower(), 180.0);
}

TEST(Platform, SensorsAreNoisyButCentered)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    platform.run(1.0);
    util::OnlineStats stats;
    for (int i = 0; i < 300; ++i)
        stats.add(platform.readPower());
    EXPECT_NEAR(stats.mean(), platform.truePower(),
                platform.truePower() * 0.01);
    EXPECT_GT(stats.stddev(), 0.0);
}

TEST(Platform, DeterministicAcrossRuns)
{
    // The physics are noise-free; the sensor channels carry the seeded
    // randomness. Same seed => identical samples; different seed differs.
    auto run = [](uint64_t seed) {
        Platform platform(quietOptions(seed), soloApp("x264"));
        platform.warmStart(machine::maximalConfig());
        platform.run(1.0);
        double sum = 0.0;
        for (int i = 0; i < 50; ++i)
            sum += platform.readPower();
        return sum;
    };
    EXPECT_DOUBLE_EQ(run(7), run(7));
    EXPECT_NE(run(7), run(8));
}

TEST(Platform, EnergyIntegationMatchesPowerTimesTime)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    platform.run(5.0);
    EXPECT_NEAR(platform.energy().joules(),
                platform.energy().meanPower() * platform.statsWindowSec(),
                1.0);
}

TEST(Platform, TracesRecordedAtConfiguredResolution)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.run(1.0);
    // 10 ms buckets over 1 s.
    EXPECT_NEAR(double(platform.powerTrace().size()), 100.0, 2.0);
    EXPECT_EQ(platform.powerTrace().size(), platform.perfTrace().size());
}

TEST(Platform, ActorsTickAtTheirPeriod)
{
    struct CountingActor : Actor
    {
        int ticks = 0;
        void onTick(Platform&, double) override { ++ticks; }
        double periodSec() const override { return 0.05; }
    };
    CountingActor actor;
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.addActor(&actor);
    platform.run(1.0);
    EXPECT_NEAR(actor.ticks, 20, 2);
}

TEST(Platform, ThreadChangeTakesEffect)
{
    Platform platform(quietOptions(), soloApp("vips"));
    platform.warmStart(machine::maximalConfig());
    platform.run(1.0);
    const double before = platform.trueAppRate(0);
    platform.setAppThreads(0, 1);
    platform.run(3.0);
    EXPECT_LT(platform.trueAppRate(0), before * 0.5);
}

TEST(Platform, FiniteWorkAppCompletesAndExits)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    platform.run(0.5);
    const double rate = platform.trueAppRate(0);
    platform.setAppWorkItems(0, rate * 2.0);  // ~2 seconds of work
    EXPECT_FALSE(platform.allComplete());
    platform.run(6.0);
    EXPECT_TRUE(platform.allComplete());
    const double done = platform.completionTime(0);
    EXPECT_GT(done, 1.0);
    EXPECT_LT(done, 4.0);
    // Threads released; power collapses toward idle.
    EXPECT_LT(platform.truePower(), 40.0);
}

TEST(Platform, StatsWindowResetIsolatesTail)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    platform.run(2.0);
    platform.resetStatsWindow();
    platform.run(5.0);  // run() takes absolute simulation time
    EXPECT_NEAR(platform.statsWindowSec(), 3.0, 0.01);
}

TEST(Platform, CapViolationAccounting)
{
    Platform platform(quietOptions(), soloApp("swaptions"));
    platform.warmStart(machine::maximalConfig());
    platform.run(2.0);  // uncapped at ~230 W
    EXPECT_NEAR(platform.capViolationSec(140.0), 2.0, 0.2);
    EXPECT_NEAR(platform.capViolationSec(500.0), 0.0, 0.05);
}

TEST(Platform, AggregatePerformanceIsNormalizedPerApp)
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 16},
        {&workload::findBenchmark("blackscholes"), 16}};
    Platform platform(quietOptions(), apps);
    platform.warmStart(machine::maximalConfig());
    platform.run(2.0);
    // Two co-running apps each achieve a fraction of their solo rate; the
    // aggregate is the sum of those fractions (about 1.0-1.4 for two
    // scalable apps sharing the machine).
    const double aggregate = platform.energy().meanItemsPerSec();
    EXPECT_GT(aggregate, 0.5);
    EXPECT_LT(aggregate, 2.0);
}

}  // namespace
}  // namespace pupil::sim
