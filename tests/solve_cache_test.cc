/** @file Differential tests for the scheduler solve cache.
 *
 *  The cache's contract is decision-invariance: memoized and unmemoized
 *  solves -- and whole traced experiment runs -- must be byte-identical.
 *  These tests pin that contract over ~200 fixed-seed random
 *  (config, duty, apps) tuples and over full traced runs, and pin the
 *  LRU mechanics (eviction order, capacity bound, kill switches). */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "machine/config.h"
#include "sched/scheduler.h"
#include "sched/solve_cache.h"
#include "sim/platform.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/mixes.h"

namespace pupil {
namespace {

using machine::MachineConfig;
using sched::AppDemand;
using sched::Scheduler;
using sched::SolveCache;
using sched::SolveScratch;
using sched::SystemOutcome;

MachineConfig
randomConfig(util::Rng& rng)
{
    MachineConfig cfg;
    cfg.coresPerSocket = 1 + int(rng.uniformInt(8));
    cfg.sockets = 1 + int(rng.uniformInt(2));
    cfg.hyperthreading = rng.bernoulli(0.5);
    cfg.memControllers = 1 + int(rng.uniformInt(2));
    cfg.pstate = {int(rng.uniformInt(16)), int(rng.uniformInt(16))};
    return cfg;
}

std::array<double, 2>
randomDuty(util::Rng& rng)
{
    // Mostly the always-on duty the governors use, sometimes an arbitrary
    // RAPL-style throttle; exact values on purpose -- the key must not
    // quantize them.
    if (rng.bernoulli(0.5))
        return {1.0, 1.0};
    return {0.3 + 0.7 * rng.uniform(), 0.3 + 0.7 * rng.uniform()};
}

std::vector<AppDemand>
randomApps(util::Rng& rng)
{
    const auto& catalog = workload::benchmarkCatalog();
    std::vector<AppDemand> apps(rng.uniformInt(4));  // 0..3 apps
    for (AppDemand& app : apps) {
        app.params = &catalog[rng.uniformInt(catalog.size())];
        app.threads = 1 + int(rng.uniformInt(64));
    }
    return apps;
}

/** Exact equality on every SystemOutcome field (no tolerances). */
void
expectOutcomeIdentical(const SystemOutcome& a, const SystemOutcome& b)
{
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].itemsPerSec, b.apps[i].itemsPerSec);
        EXPECT_EQ(a.apps[i].usefulIps, b.apps[i].usefulIps);
        EXPECT_EQ(a.apps[i].bytesPerSec, b.apps[i].bytesPerSec);
        EXPECT_EQ(a.apps[i].spinCtx, b.apps[i].spinCtx);
        EXPECT_EQ(a.apps[i].shareCtx, b.apps[i].shareCtx);
        EXPECT_EQ(a.apps[i].bwRetention, b.apps[i].bwRetention);
    }
    for (int s = 0; s < 2; ++s) {
        EXPECT_EQ(a.loads[s].busyPrimary, b.loads[s].busyPrimary);
        EXPECT_EQ(a.loads[s].busySibling, b.loads[s].busySibling);
        EXPECT_EQ(a.loads[s].activity, b.loads[s].activity);
    }
    EXPECT_EQ(a.totalIps, b.totalIps);
    EXPECT_EQ(a.totalBytesPerSec, b.totalBytesPerSec);
    EXPECT_EQ(a.spinFraction, b.spinFraction);
}

TEST(SolveCache, DifferentialOverRandomTuples)
{
    Scheduler scheduler;
    SolveCache cache(64);
    SolveScratch cachedScratch, plainScratch;
    SystemOutcome cached, plain;
    util::Rng rng(0x5CA1E);
    int hits = 0;
    for (int iter = 0; iter < 200; ++iter) {
        const MachineConfig cfg = randomConfig(rng);
        const std::array<double, 2> duty = randomDuty(rng);
        const std::vector<AppDemand> apps = randomApps(rng);
        scheduler.solve(cfg, duty, apps, plainScratch, plain);
        // Miss-then-hit: both paths must reproduce the plain solve
        // exactly, and the second lookup must actually be a hit.
        const bool first =
            cache.solve(scheduler, cfg, duty, apps, cachedScratch, cached);
        expectOutcomeIdentical(plain, cached);
        cached = SystemOutcome{};  // poison, so a hit must fully rewrite it
        const bool second =
            cache.solve(scheduler, cfg, duty, apps, cachedScratch, cached);
        EXPECT_TRUE(second);
        expectOutcomeIdentical(plain, cached);
        hits += first;
    }
    // A 64-entry cache over 200 random tuples sees few spontaneous
    // first-lookup hits; the deliberate second lookups all hit.
    EXPECT_EQ(cache.stats().hits, uint64_t(200 + hits));
    EXPECT_EQ(cache.stats().misses, uint64_t(200 - hits));
}

TEST(SolveCache, LegacyAndScratchSolveAgree)
{
    Scheduler scheduler;
    SolveScratch scratch;
    SystemOutcome viaScratch;
    util::Rng rng(0xBEEF);
    for (int iter = 0; iter < 50; ++iter) {
        const MachineConfig cfg = randomConfig(rng);
        const std::array<double, 2> duty = randomDuty(rng);
        const std::vector<AppDemand> apps = randomApps(rng);
        const SystemOutcome legacy = scheduler.solve(cfg, duty, apps);
        scheduler.solve(cfg, duty, apps, scratch, viaScratch);
        expectOutcomeIdentical(legacy, viaScratch);
    }
}

TEST(SolveCache, DutyIsKeyedExactly)
{
    // Two duty vectors one ulp apart must occupy distinct entries: any
    // quantization in the key would alias them and break bit-identity.
    Scheduler scheduler;
    SolveCache cache(8);
    SolveScratch scratch;
    SystemOutcome out;
    const MachineConfig cfg = machine::maximalConfig();
    const std::vector<AppDemand> apps = harness::singleApp("x264", 8);
    const std::array<double, 2> dutyA = {0.7, 1.0};
    const std::array<double, 2> dutyB = {
        std::nextafter(0.7, 1.0), 1.0};
    cache.solve(scheduler, cfg, dutyA, apps, scratch, out);
    EXPECT_FALSE(cache.contains(cfg, dutyB, apps));
    cache.solve(scheduler, cfg, dutyB, apps, scratch, out);
    EXPECT_TRUE(cache.contains(cfg, dutyA, apps));
    EXPECT_TRUE(cache.contains(cfg, dutyB, apps));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, EvictsLeastRecentlyUsed)
{
    Scheduler scheduler;
    SolveCache cache(3);
    SolveScratch scratch;
    SystemOutcome out;
    const std::vector<AppDemand> apps = harness::singleApp("x264", 8);
    std::vector<MachineConfig> cfgs;
    for (int p = 0; p < 4; ++p) {
        MachineConfig cfg = machine::maximalConfig();
        cfg.setUniformPState(p);
        cfgs.push_back(cfg);
    }
    const std::array<double, 2> duty = {1.0, 1.0};
    // Fill with A, B, C; touch A so B becomes least recently used.
    for (int i = 0; i < 3; ++i)
        cache.solve(scheduler, cfgs[i], duty, apps, scratch, out);
    EXPECT_TRUE(cache.solve(scheduler, cfgs[0], duty, apps, scratch, out));
    // Inserting D must evict B, and only B.
    cache.solve(scheduler, cfgs[3], duty, apps, scratch, out);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_TRUE(cache.contains(cfgs[0], duty, apps));
    EXPECT_FALSE(cache.contains(cfgs[1], duty, apps));
    EXPECT_TRUE(cache.contains(cfgs[2], duty, apps));
    EXPECT_TRUE(cache.contains(cfgs[3], duty, apps));
    EXPECT_EQ(cache.stats().evictions, 1u);
    // The recycled entry must still serve exact results.
    SystemOutcome plain = scheduler.solve(cfgs[3], duty, apps);
    EXPECT_TRUE(cache.solve(scheduler, cfgs[3], duty, apps, scratch, out));
    expectOutcomeIdentical(plain, out);
}

TEST(SolveCache, SizeNeverExceedsCapacity)
{
    Scheduler scheduler;
    SolveCache cache(4);
    SolveScratch scratch;
    SystemOutcome out;
    const std::vector<AppDemand> apps = harness::singleApp("blackscholes", 4);
    const auto space = machine::enumerateUserConfigs();
    for (size_t i = 0; i < 50; ++i) {
        cache.solve(scheduler, space[i * 7 % space.size()], {1.0, 1.0}, apps,
                    scratch, out);
        EXPECT_LE(cache.size(), 4u);
    }
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_EQ(cache.stats().evictions,
              cache.stats().insertions - cache.size());
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains(space[0], {1.0, 1.0}, apps));
}

TEST(SolveCache, CapacityZeroIsPassThrough)
{
    Scheduler scheduler;
    SolveCache cache(0);
    SolveScratch scratch;
    SystemOutcome out;
    const MachineConfig cfg = machine::maximalConfig();
    const std::vector<AppDemand> apps = harness::singleApp("x264", 8);
    EXPECT_FALSE(cache.enabled());
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cache.solve(scheduler, cfg, {1.0, 1.0}, apps, scratch,
                                 out));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    expectOutcomeIdentical(scheduler.solve(cfg, {1.0, 1.0}, apps), out);
}

TEST(SolveCache, EnvKillSwitchDisablesPlatformCache)
{
    const std::vector<AppDemand> apps = harness::singleApp("x264", 8);
    ASSERT_EQ(setenv("PUPIL_NO_SOLVE_CACHE", "1", 1), 0);
    EXPECT_TRUE(SolveCache::envDisabled());
    {
        sim::Platform platform(sim::PlatformOptions{}, apps);
        EXPECT_FALSE(platform.solveCache().enabled());
    }
    ASSERT_EQ(unsetenv("PUPIL_NO_SOLVE_CACHE"), 0);
    EXPECT_FALSE(SolveCache::envDisabled());
    {
        sim::Platform platform(sim::PlatformOptions{}, apps);
        EXPECT_TRUE(platform.solveCache().enabled());
        EXPECT_EQ(platform.solveCache().capacity(),
                  SolveCache::kDefaultCapacity);
    }
}

// ----- full traced runs ----------------------------------------------------

/** Metrics snapshot minus the cache's own activity counters, which are
 *  the one legitimate difference between cached and uncached runs. */
std::vector<std::pair<std::string, double>>
metricsSansCacheCounters(const harness::ExperimentResult& result)
{
    std::vector<std::pair<std::string, double>> out;
    for (const auto& entry : result.metrics) {
        if (entry.first.rfind("sched.solve_cache.", 0) != 0)
            out.push_back(entry);
    }
    return out;
}

void
expectRunsByteIdentical(harness::GovernorKind kind,
                        const std::vector<AppDemand>& apps)
{
    harness::ExperimentOptions options;
    options.capWatts = 140.0;
    options.durationSec = 12.0;
    options.statsWindowSec = 6.0;
    options.seed = 42;

    trace::Recorder cachedTrace(1 << 16), uncachedTrace(1 << 16);
    options.trace = &cachedTrace;
    // Default options: memoization on.
    const harness::ExperimentResult cached =
        harness::runExperiment(kind, apps, options);
    EXPECT_GT(cached.metrics.size(), 0u);

    options.trace = &uncachedTrace;
    options.platform.solveCacheCapacity = 0;
    const harness::ExperimentResult uncached =
        harness::runExperiment(kind, apps, options);

    // Structured traces: byte-identical in both export formats.
    EXPECT_EQ(trace::toCsv(cachedTrace), trace::toCsv(uncachedTrace));
    EXPECT_EQ(trace::toChromeJson(cachedTrace),
              trace::toChromeJson(uncachedTrace));

    // Headline metrics: exact, not approximate.
    EXPECT_EQ(cached.aggregatePerf, uncached.aggregatePerf);
    EXPECT_EQ(cached.meanPowerWatts, uncached.meanPowerWatts);
    EXPECT_EQ(cached.perfPerJoule, uncached.perfPerJoule);
    EXPECT_EQ(cached.settlingTimeSec, uncached.settlingTimeSec);
    EXPECT_EQ(cached.capViolationSec, uncached.capViolationSec);
    EXPECT_EQ(cached.gips, uncached.gips);
    EXPECT_EQ(cached.appItemsPerSec, uncached.appItemsPerSec);

    // Dense traces: every bucket equal.
    ASSERT_EQ(cached.powerTrace.size(), uncached.powerTrace.size());
    for (size_t i = 0; i < cached.powerTrace.size(); ++i) {
        EXPECT_EQ(cached.powerTrace[i].timeSec,
                  uncached.powerTrace[i].timeSec);
        EXPECT_EQ(cached.powerTrace[i].value, uncached.powerTrace[i].value);
    }
    ASSERT_EQ(cached.perfTrace.size(), uncached.perfTrace.size());
    for (size_t i = 0; i < cached.perfTrace.size(); ++i)
        EXPECT_EQ(cached.perfTrace[i].value, uncached.perfTrace[i].value);

    // Full metrics registry, minus the cache's own hit/miss counters.
    EXPECT_EQ(metricsSansCacheCounters(cached),
              metricsSansCacheCounters(uncached));
}

TEST(SolveCacheDifferential, PupilTracedRunIsByteIdentical)
{
    expectRunsByteIdentical(harness::GovernorKind::kPupil,
                            harness::singleApp("x264"));
}

TEST(SolveCacheDifferential, SoftModelingMixRunIsByteIdentical)
{
    // Soft-Modeling drives Platform::solveCached directly during its
    // profiling sweep, so it exercises the memoized path hardest.
    expectRunsByteIdentical(
        harness::GovernorKind::kSoftModeling,
        harness::mixApps(workload::findMix("mix9"),
                         workload::Scenario::kCooperative));
}

}  // namespace
}  // namespace pupil
