/** @file Tests for the comparison governors and the optimal oracle. */
#include <gtest/gtest.h>

#include "capping/oracle.h"
#include "capping/regression.h"
#include "harness/experiment.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/catalog.h"

namespace pupil::capping {
namespace {

TEST(Regression, FitsLinearFunctionOfKnobs)
{
    // Target constructed to be exactly linear in the features.
    const auto space = machine::enumerateUserConfigs();
    std::vector<double> target;
    target.reserve(space.size());
    for (const auto& cfg : space) {
        const auto x = ConfigRegression::features(cfg);
        double y = 1.0;
        for (size_t i = 0; i < x.size(); ++i)
            y += double(i) * x[i];
        target.push_back(y);
    }
    const ConfigRegression model = ConfigRegression::fit(space, target);
    for (size_t k = 0; k < space.size(); k += 97)
        EXPECT_NEAR(model.predict(space[k]), target[k], 1e-5);
}

TEST(Regression, UnderPredictsPowerAtHighClock)
{
    // The key failure mode behind Soft-Modeling's cap violations: true
    // power is super-linear in frequency (V^2 f), a linear model misses
    // the curvature at the top of the range.
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const auto space = machine::enumerateUserConfigs();
    const workload::AppParams& cal = workload::calibrationApp();
    std::vector<double> power;
    for (const auto& cfg : space) {
        const auto out = sched.solve(cfg, {1.0, 1.0}, {{&cal, 32}});
        power.push_back(pm.totalPower(cfg, out.loads));
    }
    const ConfigRegression model = ConfigRegression::fit(space, power);
    machine::MachineConfig top = machine::maximalConfig();
    const auto out = sched.solve(top, {1.0, 1.0}, {{&cal, 32}});
    const double truth = pm.totalPower(top, out.loads);
    EXPECT_LT(model.predict(top), truth);
}

TEST(Regression, EmptyFitPredictsZero)
{
    ConfigRegression model;
    EXPECT_EQ(model.predict(machine::maximalConfig()), 0.0);
}

TEST(Oracle, RespectsCapAndBeatsNaiveConfigs)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};
    const OracleResult best = searchOptimal(sched, pm, apps, 140.0);
    EXPECT_LE(best.powerWatts, 140.0);
    EXPECT_GT(best.aggregatePerf, 0.0);

    // No user-space configuration under the cap beats it.
    const auto refs = soloReferenceRates(sched, apps);
    for (const auto& cfg : machine::enumerateUserConfigs()) {
        const auto out = sched.solve(cfg, {1.0, 1.0}, apps);
        if (pm.totalPower(cfg, out.loads) > 140.0)
            continue;
        EXPECT_LE(out.apps[0].itemsPerSec / refs[0],
                  best.aggregatePerf + 1e-9)
            << cfg.toString();
    }
}

TEST(Oracle, TighterCapNeverHelps)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("cfd"), 32}};
    double prev = 0.0;
    for (double cap : {60.0, 100.0, 140.0, 180.0, 220.0}) {
        const OracleResult best = searchOptimal(sched, pm, apps, cap);
        EXPECT_GE(best.aggregatePerf, prev);
        prev = best.aggregatePerf;
    }
}

TEST(Oracle, KmeansOptimumIsSingleSocket)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("kmeans"), 32}};
    const OracleResult best = searchOptimal(sched, pm, apps, 140.0);
    EXPECT_EQ(best.config.sockets, 1);
}

TEST(Oracle, X264OptimumAvoidsHyperthreads)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    const std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("x264"), 32}};
    const OracleResult best = searchOptimal(sched, pm, apps, 140.0);
    EXPECT_FALSE(best.config.hyperthreading);
}

TEST(Governors, FactoryProducesAllFive)
{
    for (auto kind : harness::allGovernors()) {
        auto governor = harness::makeGovernor(kind);
        ASSERT_NE(governor, nullptr);
        EXPECT_EQ(governor->name(), harness::governorName(kind));
    }
}

TEST(SoftDvfs, MeetsModerateCap)
{
    auto options = harness::ExperimentOptions{};
    options.capWatts = 140.0;
    options.durationSec = 60.0;
    options.statsWindowSec = 20.0;
    const auto result = harness::runExperiment(
        harness::GovernorKind::kSoftDvfs,
        harness::singleApp("blackscholes"), options);
    EXPECT_TRUE(result.capFeasible);
    EXPECT_LE(result.meanPowerWatts, 143.0);
    EXPECT_TRUE(result.converged);
    // Settles in seconds -- slower than hardware, faster than the full
    // decision framework (paper Fig. 4).
    EXPECT_GT(result.settlingTimeSec, 0.5);
    EXPECT_LT(result.settlingTimeSec, 20.0);
}

TEST(SoftDvfs, SixtyWattCapIsInfeasible)
{
    // Paper Section 5.1: "even the lowest p-state exceeds the 60 W power
    // cap when using all cores and hyperthreads".
    auto options = harness::ExperimentOptions{};
    options.capWatts = 60.0;
    options.durationSec = 60.0;
    options.statsWindowSec = 20.0;
    const auto result = harness::runExperiment(
        harness::GovernorKind::kSoftDvfs, harness::singleApp("swaptions"),
        options);
    EXPECT_FALSE(result.capFeasible);
}

TEST(SoftModeling, PicksConfigAndNeverAdapts)
{
    auto options = harness::ExperimentOptions{};
    options.capWatts = 140.0;
    options.durationSec = 40.0;
    options.statsWindowSec = 20.0;
    const auto result = harness::runExperiment(
        harness::GovernorKind::kSoftModeling, harness::singleApp("HOP"),
        options);
    // Offline approach: converged by construction, and the power trace is
    // flat after the initial configuration (no runtime feedback).
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.aggregatePerf, 0.0);
}

TEST(SoftModeling, CanViolateTightCaps)
{
    // The approach's defining weakness (paper Section 5.1): with no
    // feedback, model error at tight caps turns into sustained violations
    // for at least some applications.
    double violations = 0.0;
    for (const char* name : {"swaptions", "blackscholes", "STREAM"}) {
        auto options = harness::ExperimentOptions{};
        options.capWatts = 60.0;
        options.durationSec = 30.0;
        options.statsWindowSec = 10.0;
        const auto result = harness::runExperiment(
            harness::GovernorKind::kSoftModeling, harness::singleApp(name),
            options);
        violations += result.capViolationSec;
    }
    EXPECT_GT(violations, 5.0);
}

}  // namespace
}  // namespace pupil::capping
