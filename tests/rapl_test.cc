/** @file Tests for the emulated MSR file and the RAPL firmware controller. */
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "rapl/msr.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "workload/catalog.h"

namespace pupil::rapl {
namespace {

TEST(Msr, PowerUnitRegisterMatchesSandyBridge)
{
    MsrFile msr;
    const uint64_t units = msr.read(kMsrRaplPowerUnit);
    EXPECT_EQ(units & 0xf, 3u);           // power: 1/8 W
    EXPECT_EQ((units >> 8) & 0x1f, 16u);  // energy: 2^-16 J
}

TEST(Msr, PowerLimitRoundTrips)
{
    MsrFile msr;
    PowerLimit limit;
    limit.powerWatts = 70.0;
    limit.windowSec = 0.25;
    limit.enabled = true;
    msr.setPowerLimit(limit);
    const PowerLimit decoded = msr.powerLimit();
    EXPECT_NEAR(decoded.powerWatts, 70.0, 0.125);
    EXPECT_NEAR(decoded.windowSec, 0.25, 1.0 / 1024.0);
    EXPECT_TRUE(decoded.enabled);
}

TEST(Msr, DisabledByDefault)
{
    MsrFile msr;
    EXPECT_FALSE(msr.powerLimit().enabled);
}

TEST(Msr, EnergyCounterAccumulatesSubUnitAmounts)
{
    MsrFile msr;
    // 1000 increments of 100 uJ = 0.1 J total; each increment is below
    // one energy unit (15.3 uJ resolution must not lose the remainder).
    for (int i = 0; i < 1000; ++i)
        msr.addEnergy(100e-6);
    EXPECT_NEAR(msr.energyJoules(), 0.1, 1e-3);
}

TEST(Msr, ReadOnlyRegistersIgnoreWrites)
{
    MsrFile msr;
    const uint64_t units = msr.read(kMsrRaplPowerUnit);
    msr.write(kMsrRaplPowerUnit, 0xdead);
    EXPECT_EQ(msr.read(kMsrRaplPowerUnit), units);
    msr.write(kMsrPkgEnergyStatus, 0xbeef);
    EXPECT_EQ(msr.read(kMsrPkgEnergyStatus), 0u);
}

TEST(Msr, UnknownRegisterReadsZero)
{
    MsrFile msr;
    EXPECT_EQ(msr.read(0x123), 0u);
}

class RaplControlTest : public ::testing::Test
{
  protected:
    sim::PlatformOptions
    options()
    {
        sim::PlatformOptions opts;
        opts.seed = 99;
        return opts;
    }
};

TEST_F(RaplControlTest, EnforcesCapWithinMilliseconds)
{
    // The paper's headline hardware property: caps are enforced within a
    // few hundred milliseconds, orders of magnitude faster than software.
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(140.0);
    platform.addActor(&rapl);
    platform.run(5.0);

    // Steady state: at the cap (within tolerance), not wildly below.
    EXPECT_LE(platform.truePower(), 143.0);
    EXPECT_GE(platform.truePower(), 120.0);
    const double settle =
        telemetry::settlingTime(platform.powerTrace(), 140.0);
    EXPECT_LT(settle, 1.0);
    EXPECT_GT(settle, 0.01);
}

TEST_F(RaplControlTest, DeepCapFallsBackToDutyCycling)
{
    // 60 W is below the full machine's lowest p-state power; hardware must
    // engage T-state modulation (Soft-DVFS cannot do this).
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("blackscholes"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(60.0);
    platform.addActor(&rapl);
    platform.run(8.0);

    EXPECT_LE(platform.truePower(), 63.0);
    const ZoneStatus zone = rapl.zoneStatus(0);
    EXPECT_EQ(zone.clampPState, 0);
    EXPECT_LT(zone.dutyCycle, 1.0);
}

TEST_F(RaplControlTest, LooseCapLeavesTurboUnclamped)
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swish++"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(220.0);
    platform.addActor(&rapl);
    platform.run(5.0);
    EXPECT_EQ(rapl.zoneStatus(0).clampPState,
              machine::DvfsTable::kTurboPState);
    EXPECT_DOUBLE_EQ(rapl.zoneStatus(0).dutyCycle, 1.0);
}

TEST_F(RaplControlTest, DisabledZoneDoesNotClamp)
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;  // caps never programmed
    platform.addActor(&rapl);
    platform.run(2.0);
    EXPECT_GT(platform.truePower(), 200.0);
}

TEST_F(RaplControlTest, AsymmetricSocketCaps)
{
    // PUPiL's power distribution relies on per-socket zones acting
    // independently.
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setSocketCap(0, 100.0, true);
    rapl.setSocketCap(1, 40.0, true);
    platform.addActor(&rapl);
    platform.run(6.0);
    EXPECT_LE(platform.trueSocketPower(0), 103.0);
    EXPECT_LE(platform.trueSocketPower(1), 42.5);
    // Socket 0 should be running meaningfully faster than socket 1.
    const auto eff = platform.machine().effectiveConfig(platform.now());
    EXPECT_GT(eff.pstate[0], eff.pstate[1]);
}

TEST_F(RaplControlTest, EnergyStatusTracksConsumption)
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("swaptions"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(140.0);
    platform.addActor(&rapl);
    platform.run(10.0);
    // ~70 W per socket for ~10 s => ~700 J per package counter.
    const double joules = rapl.msr(0).energyJoules();
    EXPECT_GT(joules, 500.0);
    EXPECT_LT(joules, 1000.0);
}

TEST_F(RaplControlTest, CapChangeAtRuntimeIsFollowed)
{
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark("blackscholes"), 32}};
    sim::Platform platform(options(), apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(180.0);
    platform.addActor(&rapl);
    platform.run(4.0);
    EXPECT_LE(platform.truePower(), 184.0);
    rapl.setTotalCapEvenSplit(100.0);
    platform.run(8.0);
    EXPECT_LE(platform.truePower(), 103.0);
    EXPECT_GE(platform.truePower(), 85.0);
}

// Property sweep: RAPL respects every paper cap for a range of workloads.
class RaplCapSweep
    : public ::testing::TestWithParam<std::tuple<double, const char*>>
{
};

TEST_P(RaplCapSweep, SteadyPowerWithinTolerance)
{
    const auto [cap, appName] = GetParam();
    std::vector<sched::AppDemand> apps = {
        {&workload::findBenchmark(appName), 32}};
    sim::PlatformOptions opts;
    opts.seed = 7;
    sim::Platform platform(opts, apps);
    platform.warmStart(machine::maximalConfig());
    RaplController rapl;
    rapl.setTotalCapEvenSplit(cap);
    platform.addActor(&rapl);
    platform.run(6.0);
    EXPECT_LE(platform.truePower(), cap + std::max(0.02 * cap, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    CapsTimesApps, RaplCapSweep,
    ::testing::Combine(::testing::Values(60.0, 100.0, 140.0, 180.0, 220.0),
                       ::testing::Values("swaptions", "STREAM", "dijkstra",
                                         "x264")));

}  // namespace
}  // namespace pupil::rapl
