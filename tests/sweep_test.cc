/**
 * @file
 * Tests of the harness SweepRunner: determinism across thread counts,
 * failure isolation, submission-order results, seed derivation, and the
 * PUPIL_SWEEP_THREADS / explicit-thread resolution rules.
 */
#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/sweep.h"

namespace pupil::harness {
namespace {

/** Short jobs: 2 apps x 2 governors, 8 simulated seconds each. */
std::vector<SweepJob>
shortJobs()
{
    std::vector<SweepJob> jobs;
    for (const char* name : {"swaptions", "kmeans"}) {
        for (GovernorKind kind :
             {GovernorKind::kRapl, GovernorKind::kPupil}) {
            SweepJob job;
            job.kind = kind;
            job.apps = singleApp(name);
            job.options.capWatts = 140.0;
            job.options.durationSec = 8.0;
            job.options.statsWindowSec = 4.0;
            job.label = name;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

TEST(SweepRunner, ResultsIdenticalAcrossThreadCounts)
{
    const std::vector<SweepJob> jobs = shortJobs();

    SweepRunner::Options serial;
    serial.threads = 1;
    const auto a = SweepRunner(serial).run(jobs);

    SweepRunner::Options pooled;
    pooled.threads = 4;
    const auto b = SweepRunner(pooled).run(jobs);

    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_EQ(a[i].result.aggregatePerf, b[i].result.aggregatePerf);
        EXPECT_EQ(a[i].result.meanPowerWatts, b[i].result.meanPowerWatts);
        EXPECT_EQ(a[i].result.perfPerJoule, b[i].result.perfPerJoule);
        EXPECT_EQ(a[i].result.settlingTimeSec,
                  b[i].result.settlingTimeSec);
        EXPECT_EQ(a[i].result.appItemsPerSec, b[i].result.appItemsPerSec);
        ASSERT_EQ(a[i].result.powerTrace.size(),
                  b[i].result.powerTrace.size());
        for (size_t t = 0; t < a[i].result.powerTrace.size(); ++t) {
            EXPECT_EQ(a[i].result.powerTrace[t].value,
                      b[i].result.powerTrace[t].value);
        }
    }
}

TEST(SweepRunner, FailedJobDoesNotKillSweep)
{
    std::vector<SweepJob> jobs = shortJobs();
    jobs.resize(2);
    SweepJob bad;  // no applications -> run() throws inside the worker
    bad.label = "bad";
    jobs.insert(jobs.begin() + 1, std::move(bad));

    SweepRunner::Options options;
    options.threads = 2;
    const auto outcomes = SweepRunner(options).run(jobs);

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_EQ(outcomes[1].label, "bad");
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;
}

TEST(SweepRunner, ResultsInSubmissionOrder)
{
    const std::vector<SweepJob> jobs = shortJobs();
    SweepRunner::Options options;
    options.threads = 4;
    const auto outcomes = SweepRunner(options).run(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(outcomes[i].jobIndex, i);
        EXPECT_EQ(outcomes[i].label, jobs[i].label);
    }
}

TEST(SweepRunner, KeepTracesFalseDropsTraces)
{
    std::vector<SweepJob> jobs = shortJobs();
    jobs.resize(1);
    SweepRunner::Options options;
    options.threads = 1;
    options.keepTraces = false;
    const auto outcomes = SweepRunner(options).run(jobs);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(outcomes[0].result.powerTrace.empty());
    EXPECT_TRUE(outcomes[0].result.perfTrace.empty());
}

TEST(SweepRunner, ProgressCallbackSeesEveryJob)
{
    const std::vector<SweepJob> jobs = shortJobs();
    std::atomic<size_t> calls{0};
    size_t lastDone = 0;
    SweepRunner::Options options;
    options.threads = 2;
    options.progress = [&](const SweepProgress& progress) {
        ++calls;
        lastDone = progress.done;  // serialized, no race
        EXPECT_EQ(progress.total, jobs.size());
    };
    SweepRunner(options).run(jobs);
    EXPECT_EQ(calls.load(), jobs.size());
    EXPECT_EQ(lastDone, jobs.size());
}

TEST(SweepRunner, EnvThreadOverride)
{
    ASSERT_EQ(setenv("PUPIL_SWEEP_THREADS", "1", 1), 0);
    EXPECT_EQ(SweepRunner::resolveThreads(0), 1);
    ASSERT_EQ(setenv("PUPIL_SWEEP_THREADS", "8", 1), 0);
    EXPECT_EQ(SweepRunner::resolveThreads(0), 8);
    // Explicit request beats the environment.
    EXPECT_EQ(SweepRunner::resolveThreads(2), 2);
    // Junk falls back to a positive automatic count.
    ASSERT_EQ(setenv("PUPIL_SWEEP_THREADS", "zero", 1), 0);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1);
    ASSERT_EQ(setenv("PUPIL_SWEEP_THREADS", "-3", 1), 0);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1);
    ASSERT_EQ(unsetenv("PUPIL_SWEEP_THREADS"), 0);
    EXPECT_GE(SweepRunner::resolveThreads(0), 1);
}

TEST(SweepRunner, DeriveSeedIsStablePerIndex)
{
    const uint64_t s0 = SweepRunner::deriveSeed(42, 0);
    // Documented-stable values: recorded sweep results must stay
    // reproducible across releases.
    EXPECT_EQ(s0, SweepRunner::deriveSeed(42, 0));
    EXPECT_NE(s0, SweepRunner::deriveSeed(42, 1));
    EXPECT_NE(s0, SweepRunner::deriveSeed(43, 0));
    // Derivation must not collide trivially across a long sweep.
    std::vector<uint64_t> seeds;
    for (size_t i = 0; i < 500; ++i)
        seeds.push_back(SweepRunner::deriveSeed(42, i));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(SweepRunner, ForEachReportsPerIndexErrors)
{
    SweepRunner::Options options;
    options.threads = 2;
    SweepRunner runner(options);
    std::atomic<int> ran{0};
    const auto errors = runner.forEach(5, [&](size_t i) {
        if (i == 2)
            throw std::runtime_error("boom");
        ++ran;
    });
    ASSERT_EQ(errors.size(), 5u);
    EXPECT_EQ(ran.load(), 4);
    for (size_t i = 0; i < errors.size(); ++i) {
        if (i == 2)
            EXPECT_NE(errors[i].find("boom"), std::string::npos);
        else
            EXPECT_TRUE(errors[i].empty()) << errors[i];
    }
}

}  // namespace
}  // namespace pupil::harness
