/** @file Protocol battery for the budget-tree control plane's wire seam:
 *  codec round-trips for every message kind, a fuzz-style decoder test
 *  (mutated and random frames must reject cleanly, never crash), and
 *  LocalTransport delivery semantics -- FIFO order, one-hop flushes,
 *  fault-plane drop/delay/dup/reorder/partition verdicts, and replay
 *  determinism from (spec, seed). */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "faults/schedule.h"
#include "net/fault_plane.h"
#include "net/message.h"
#include "net/transport.h"
#include "util/rng.h"

namespace pupil::net {
namespace {

Message
sampleMessage(MsgKind kind)
{
    Message m;
    m.kind = kind;
    m.seq = 0xdeadbeefu;
    m.rack = 7;
    m.node = kind == MsgKind::kCapGrant ? -1 : 3;
    m.timeSec = 123.375;
    m.valueWatts = 217.25;
    return m;
}

TEST(NetCodec, RoundTripsEveryMessageKind)
{
    const MsgKind kinds[] = {MsgKind::kDemandReport, MsgKind::kCapGrant,
                             MsgKind::kNodeLeave,    MsgKind::kNodeJoin,
                             MsgKind::kRackDark,     MsgKind::kRackBright};
    for (const MsgKind kind : kinds) {
        const Message sent = sampleMessage(kind);
        const Frame frame = encode(sent);
        const auto got = decode(frame);
        ASSERT_TRUE(got.has_value()) << kindName(kind);
        EXPECT_EQ(got->kind, sent.kind);
        EXPECT_EQ(got->seq, sent.seq);
        EXPECT_EQ(got->rack, sent.rack);
        EXPECT_EQ(got->node, sent.node);
        EXPECT_EQ(got->timeSec, sent.timeSec);
        EXPECT_EQ(got->valueWatts, sent.valueWatts);
    }
}

TEST(NetCodec, FrameLayoutIsStable)
{
    const Frame frame = encode(sampleMessage(MsgKind::kCapGrant));
    EXPECT_EQ(frame.size(), kFrameBytes);
    EXPECT_EQ(frame[0], 'P');
    EXPECT_EQ(frame[1], 'B');
    EXPECT_EQ(frame[2], kWireVersion);
    EXPECT_EQ(frame[3], uint8_t(MsgKind::kCapGrant));
}

TEST(NetCodec, NegativeMeterNoiseSurvivesTheWire)
{
    // Demand reports carry raw meter readings; gaussian sensor noise can
    // dip below zero and the receiving policy (not the codec) owns the
    // implausible-reading call.
    Message m = sampleMessage(MsgKind::kDemandReport);
    m.valueWatts = -0.75;
    const auto got = decode(encode(m));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->valueWatts, -0.75);
}

TEST(NetCodec, RejectsTruncatedAndOversizedBuffers)
{
    const Frame frame = encode(sampleMessage(MsgKind::kDemandReport));
    for (size_t len = 0; len < kFrameBytes; ++len)
        EXPECT_FALSE(decode(frame.data(), len).has_value()) << len;
    std::vector<uint8_t> big(frame.begin(), frame.end());
    big.push_back(0);
    EXPECT_FALSE(decode(big.data(), big.size()).has_value());
    EXPECT_FALSE(decode(nullptr, kFrameBytes).has_value());
}

TEST(NetCodec, RejectsBadMagicVersionAndKind)
{
    const Frame good = encode(sampleMessage(MsgKind::kDemandReport));
    Frame bad = good;
    bad[0] = 'X';
    EXPECT_FALSE(decode(bad).has_value());
    bad = good;
    bad[2] = kWireVersion + 1;
    EXPECT_FALSE(decode(bad).has_value());
    bad = good;
    bad[3] = 0;
    EXPECT_FALSE(decode(bad).has_value());
    bad = good;
    bad[3] = uint8_t(MsgKind::kRackBright) + 1;
    EXPECT_FALSE(decode(bad).has_value());
    EXPECT_FALSE(knownKind(0));
    EXPECT_FALSE(knownKind(255));
}

TEST(NetCodec, RejectsNonFiniteAndOutOfRangeFields)
{
    Message m = sampleMessage(MsgKind::kDemandReport);
    m.timeSec = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(decode(encode(m)).has_value());
    m = sampleMessage(MsgKind::kDemandReport);
    m.valueWatts = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(decode(encode(m)).has_value());
    m = sampleMessage(MsgKind::kDemandReport);
    m.timeSec = -1.0;
    EXPECT_FALSE(decode(encode(m)).has_value());
    m = sampleMessage(MsgKind::kDemandReport);
    m.rack = -2;
    EXPECT_FALSE(decode(encode(m)).has_value());
    m = sampleMessage(MsgKind::kDemandReport);
    m.node = -2;
    EXPECT_FALSE(decode(encode(m)).has_value());
}

TEST(NetCodec, FuzzedSingleByteMutationsAreRejectedCleanly)
{
    // Every drawn single-byte corruption of a valid frame must be caught:
    // header bytes by the field gates, payload bytes by the checksum, the
    // checksum bytes by the recompute. Fixed seed, so a (astronomically
    // unlikely) truncated-FNV collision would fail loudly here rather
    // than flake.
    util::Rng rng(0xfadedbed);
    const Frame good = encode(sampleMessage(MsgKind::kCapGrant));
    for (int trial = 0; trial < 4000; ++trial) {
        Frame bad = good;
        const size_t at = size_t(rng.uniformInt(kFrameBytes));
        const uint8_t flip = uint8_t(1 + rng.uniformInt(255));
        bad[at] = uint8_t(bad[at] ^ flip);
        EXPECT_FALSE(decode(bad).has_value())
            << "byte " << at << " ^ " << int(flip) << " decoded anyway";
    }
}

TEST(NetCodec, FuzzedRandomBuffersNeverCrashTheDecoder)
{
    // Pure garbage at every length up to a few frames: the decoder must
    // return nullopt or a fully-populated message, never crash or read
    // out of bounds (this is the test ASan/UBSan sweeps lean on).
    util::Rng rng(0x900dfeed);
    int accepted = 0;
    for (int trial = 0; trial < 4000; ++trial) {
        const size_t len = size_t(rng.uniformInt(3 * kFrameBytes + 1));
        std::vector<uint8_t> buffer(len);
        for (auto& byte : buffer)
            byte = uint8_t(rng.uniformInt(256));
        if (decode(buffer.data(), buffer.size()).has_value())
            ++accepted;
    }
    // 36 random bytes passing magic + version + kind + checksum would be
    // a miracle; flag it if the gates ever loosen.
    EXPECT_EQ(accepted, 0);
}

// ---------------------------------------------------------------------------
// LocalTransport delivery semantics.
// ---------------------------------------------------------------------------

struct Seen
{
    std::vector<Message> messages;
    Transport::Handler handler()
    {
        return [this](const Message& m) { messages.push_back(m); };
    }
};

TEST(LocalTransport, DeliversInSendOrderThroughTheCodec)
{
    LocalTransport transport;
    Seen rack;
    transport.bind({0, -1}, rack.handler());
    for (uint32_t i = 1; i <= 5; ++i) {
        Message m = sampleMessage(MsgKind::kDemandReport);
        m.seq = i;
        m.rack = 0;
        transport.send({0, int32_t(i % 3)}, {0, -1}, m, 1.0);
    }
    EXPECT_EQ(transport.pending(), 5u);
    transport.deliver(1.0);
    ASSERT_EQ(rack.messages.size(), 5u);
    for (uint32_t i = 0; i < 5; ++i)
        EXPECT_EQ(rack.messages[i].seq, i + 1);
    EXPECT_EQ(transport.stats().sent, 5u);
    EXPECT_EQ(transport.stats().delivered, 5u);
    EXPECT_EQ(transport.pending(), 0u);
}

TEST(LocalTransport, MessagesSentDuringDeliveryWaitForTheNextHop)
{
    LocalTransport transport;
    Seen root;
    transport.bind({-1, -1}, root.handler());
    transport.bind({0, -1}, [&](const Message& m) {
        Message up = m;
        up.node = -1;
        transport.send({0, -1}, {-1, -1}, up, 2.0);
    });
    Message m = sampleMessage(MsgKind::kDemandReport);
    m.rack = 0;
    transport.send({0, 1}, {0, -1}, m, 2.0);
    transport.deliver(2.0);
    EXPECT_TRUE(root.messages.empty()) << "forward crossed two hops at once";
    transport.deliver(2.0);
    ASSERT_EQ(root.messages.size(), 1u);
    EXPECT_EQ(root.messages[0].node, -1);
}

TEST(LocalTransport, UnboundDestinationCountsAsUnrouted)
{
    LocalTransport transport;
    transport.send({0, 0}, {5, -1}, sampleMessage(MsgKind::kNodeJoin), 0.0);
    transport.deliver(0.0);
    EXPECT_EQ(transport.stats().unrouted, 1u);
    EXPECT_EQ(transport.stats().delivered, 0u);
}

MessageFaultPlane::Topology
twoRackTopology()
{
    MessageFaultPlane::Topology topo;
    topo.rackNames = {"rack0", "rack1"};
    topo.nodeNames = {{"r0n0", "r0n1"}, {"r1n0", "r1n1"}};
    return topo;
}

TEST(LocalTransport, DropFaultLosesMatchingMessages)
{
    const auto schedule = faults::FaultSchedule::parse("msg-drop,r0n0,0,10");
    MessageFaultPlane plane(&schedule, 1, twoRackTopology());
    LocalTransport transport(&plane);
    Seen rack;
    transport.bind({0, -1}, rack.handler());
    Message m = sampleMessage(MsgKind::kDemandReport);
    m.rack = 0;
    m.node = 0;
    transport.send({0, 0}, {0, -1}, m, 1.0);  // in window, named node
    m.node = 1;
    transport.send({0, 1}, {0, -1}, m, 1.0);  // other node: untouched
    m.node = 0;
    transport.send({0, 0}, {0, -1}, m, 11.0);  // window over
    transport.deliver(11.0);
    EXPECT_EQ(rack.messages.size(), 2u);
    EXPECT_EQ(transport.stats().dropped, 1u);
    EXPECT_EQ(transport.stats().partitionDrops, 0u);
}

TEST(LocalTransport, DelayedMessageArrivesWhenDue)
{
    const auto schedule =
        faults::FaultSchedule::parse("msg-delay,*,0,10,2.5");
    MessageFaultPlane plane(&schedule, 1, twoRackTopology());
    LocalTransport transport(&plane);
    Seen rack;
    transport.bind({0, -1}, rack.handler());
    Message m = sampleMessage(MsgKind::kDemandReport);
    m.rack = 0;
    m.node = 0;
    transport.send({0, 0}, {0, -1}, m, 1.0);
    transport.deliver(1.0);
    EXPECT_TRUE(rack.messages.empty());
    transport.deliver(3.0);
    EXPECT_TRUE(rack.messages.empty());
    transport.deliver(3.5);  // due = 1.0 + 2.5
    EXPECT_EQ(rack.messages.size(), 1u);
    EXPECT_EQ(transport.stats().delayed, 1u);
}

TEST(LocalTransport, DuplicateFaultDeliversTwiceInOrder)
{
    const auto schedule = faults::FaultSchedule::parse("msg-dup,*,0,10");
    MessageFaultPlane plane(&schedule, 1, twoRackTopology());
    LocalTransport transport(&plane);
    Seen rack;
    transport.bind({0, -1}, rack.handler());
    Message m = sampleMessage(MsgKind::kCapGrant);
    m.seq = 9;
    transport.send({-1, -1}, {0, -1}, m, 0.0);
    transport.deliver(0.0);
    ASSERT_EQ(rack.messages.size(), 2u);
    EXPECT_EQ(rack.messages[0].seq, 9u);
    EXPECT_EQ(rack.messages[1].seq, 9u);
    EXPECT_EQ(transport.stats().duplicated, 1u);
}

TEST(LocalTransport, PartitionCutsOnlyTheRootUplink)
{
    const auto schedule =
        faults::FaultSchedule::parse("partition,rack0,0,10");
    MessageFaultPlane plane(&schedule, 1, twoRackTopology());
    LocalTransport transport(&plane);
    Seen root;
    Seen rack0;
    Seen node;
    transport.bind({-1, -1}, root.handler());
    transport.bind({0, -1}, rack0.handler());
    transport.bind({0, 0}, node.handler());
    // Uplink both ways: cut.
    transport.send({0, -1}, {-1, -1}, sampleMessage(MsgKind::kRackBright),
                   1.0);
    transport.send({-1, -1}, {0, -1}, sampleMessage(MsgKind::kCapGrant),
                   1.0);
    // Intra-rack traffic and the other rack's uplink: unaffected.
    transport.send({0, 0}, {0, -1}, sampleMessage(MsgKind::kDemandReport),
                   1.0);
    transport.send({0, -1}, {0, 0}, sampleMessage(MsgKind::kCapGrant), 1.0);
    transport.send({1, -1}, {-1, -1}, sampleMessage(MsgKind::kRackBright),
                   1.0);
    transport.deliver(1.0);
    EXPECT_EQ(transport.stats().partitionDrops, 2u);
    EXPECT_EQ(root.messages.size(), 1u);  // rack1's report only
    EXPECT_EQ(rack0.messages.size(), 1u);
    EXPECT_EQ(node.messages.size(), 1u);
    EXPECT_TRUE(plane.partitionActive(0, 5.0));
    EXPECT_FALSE(plane.partitionActive(0, 10.0));
    EXPECT_FALSE(plane.partitionActive(1, 5.0));
}

TEST(LocalTransport, ReorderShufflesWithinOneFlushDeterministically)
{
    const auto run = [](uint64_t seed) {
        const auto schedule =
            faults::FaultSchedule::parse("msg-reorder,*,0,10");
        MessageFaultPlane plane(&schedule, seed, twoRackTopology());
        LocalTransport transport(&plane);
        Seen rack;
        transport.bind({0, -1}, rack.handler());
        for (uint32_t i = 1; i <= 8; ++i) {
            Message m = sampleMessage(MsgKind::kDemandReport);
            m.seq = i;
            transport.send({0, 0}, {0, -1}, m, 1.0);
        }
        transport.deliver(1.0);
        std::vector<uint32_t> order;
        for (const Message& m : rack.messages)
            order.push_back(m.seq);
        return order;
    };
    const auto a = run(17);
    const auto b = run(17);
    const auto c = run(18);
    ASSERT_EQ(a.size(), 8u);
    EXPECT_EQ(a, b) << "same seed must replay the same shuffle";
    auto sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6, 7, 8}))
        << "reorder must permute, not lose or invent";
    EXPECT_TRUE(a != c || b != c)
        << "different seeds virtually never agree on an 8-frame shuffle";
}

TEST(LocalTransport, ProbabilisticDropsReplayBitForBitFromSeed)
{
    const auto run = [](uint64_t seed) {
        const auto schedule =
            faults::FaultSchedule::parse("msg-drop,*,0,100,0,0.5");
        MessageFaultPlane plane(&schedule, seed, twoRackTopology());
        LocalTransport transport(&plane);
        Seen rack;
        transport.bind({0, -1}, rack.handler());
        for (uint32_t i = 1; i <= 64; ++i) {
            Message m = sampleMessage(MsgKind::kDemandReport);
            m.seq = i;
            transport.send({0, 0}, {0, -1}, m, double(i));
            transport.deliver(double(i));
        }
        std::vector<uint32_t> seen;
        for (const Message& m : rack.messages)
            seen.push_back(m.seq);
        return seen;
    };
    const auto a = run(5);
    const auto b = run(5);
    EXPECT_EQ(a, b);
    EXPECT_GT(a.size(), 0u);
    EXPECT_LT(a.size(), 64u) << "a 0.5 drop rate that loses nothing in 64 "
                                "sends means the Bernoulli gate is dead";
}

}  // namespace
}  // namespace pupil::net
