/** @file Tests for the extension features: application phase schedules,
 *  the PhaseDriver, drift-triggered re-walks, and the Pack&Cap governor. */
#include <gtest/gtest.h>

#include "capping/pack_and_cap.h"
#include "capping/soft_dvfs.h"
#include "harness/experiment.h"
#include "core/pupil.h"
#include "rapl/rapl.h"
#include "sim/phase_driver.h"
#include "sim/platform.h"
#include "workload/catalog.h"
#include "workload/phase.h"

namespace pupil {
namespace {

using workload::AppParams;
using workload::PhaseSchedule;

TEST(PhaseSchedule, CyclesThroughPhases)
{
    AppParams a = workload::findBenchmark("x264");
    AppParams b = PhaseSchedule::memoryPhaseOf(a);
    const PhaseSchedule schedule = PhaseSchedule::alternating(a, b, 10.0);
    EXPECT_EQ(schedule.phaseCount(), 2u);
    EXPECT_DOUBLE_EQ(schedule.cycleSec(), 20.0);
    EXPECT_EQ(schedule.phaseIndexAt(0.0), 0u);
    EXPECT_EQ(schedule.phaseIndexAt(9.9), 0u);
    EXPECT_EQ(schedule.phaseIndexAt(10.1), 1u);
    EXPECT_EQ(schedule.phaseIndexAt(20.1), 0u);  // wraps
    EXPECT_EQ(schedule.phaseIndexAt(30.1), 1u);
}

TEST(PhaseSchedule, SinglePhaseIsConstant)
{
    const PhaseSchedule schedule(
        {{workload::findBenchmark("cfd"), 5.0}});
    EXPECT_EQ(schedule.phaseIndexAt(0.0), 0u);
    EXPECT_EQ(schedule.phaseIndexAt(1234.5), 0u);
}

TEST(PhaseSchedule, DerivedPhasesChangeTheRightKnobs)
{
    const AppParams base = workload::findBenchmark("blackscholes");
    const AppParams mem = PhaseSchedule::memoryPhaseOf(base);
    EXPECT_GT(mem.bytesPerInstr, base.bytesPerInstr * 2.0);
    EXPECT_LT(mem.ipc, base.ipc);
    const AppParams serial = PhaseSchedule::serialPhaseOf(base);
    EXPECT_GT(serial.serialFrac, base.serialFrac);
    EXPECT_LT(serial.maxUsefulThreads, base.maxUsefulThreads);
}

TEST(PhaseDriver, SwapsParametersAtBoundaries)
{
    const AppParams compute = workload::findBenchmark("swaptions");
    const AppParams memory = PhaseSchedule::memoryPhaseOf(compute);
    sim::PhaseDriver driver(
        0, PhaseSchedule::alternating(compute, memory, 5.0));

    sim::PlatformOptions options;
    options.seed = 3;
    sim::Platform platform(options, {{driver.params(), 32}});
    platform.warmStart(machine::maximalConfig());
    platform.addActor(&driver);

    platform.run(4.0);
    const double computeRate = platform.trueAppRate(0);
    EXPECT_EQ(driver.transitions(), 0);
    platform.run(9.0);  // well inside the memory phase
    EXPECT_EQ(driver.currentPhase(), 1u);
    EXPECT_GE(driver.transitions(), 1);
    // The memory phase is slower (lower IPC, bandwidth-capped).
    EXPECT_LT(platform.trueAppRate(0), computeRate * 0.9);
    platform.run(14.0);  // back in the compute phase
    EXPECT_EQ(driver.currentPhase(), 0u);
    EXPECT_NEAR(platform.trueAppRate(0), computeRate, computeRate * 0.1);
}

TEST(PhaseDriver, PupilReWalksOnLargePhaseChange)
{
    // A drastic, persistent phase change must re-trigger the decision walk
    // (the paper's continually-repeating observe-decide-act loop).
    const AppParams parallel = workload::findBenchmark("blackscholes");
    const AppParams serial = PhaseSchedule::serialPhaseOf(parallel);
    sim::PhaseDriver driver(
        0, PhaseSchedule({{parallel, 120.0}, {serial, 120.0}}));

    sim::PlatformOptions options;
    options.seed = 11;
    sim::Platform platform(options, {{driver.params(), 32}});
    platform.warmStart(machine::maximalConfig());
    rapl::RaplController rapl;
    core::Pupil pupil;
    pupil.attachRapl(&rapl);
    pupil.setCap(140.0);
    platform.addActor(&driver);
    platform.addActor(&rapl);
    platform.addActor(&pupil);

    platform.run(110.0);
    ASSERT_TRUE(pupil.converged());
    const int walksBefore = pupil.walker()->walkCount();
    platform.run(220.0);  // deep into the serial phase
    EXPECT_GT(pupil.walker()->walkCount(), walksBefore);
}

TEST(PackAndCap, ConfigForPacksGreedily)
{
    using capping::PackAndCap;
    const auto one = PackAndCap::configFor(1, 5);
    EXPECT_EQ(one.totalContexts(), 1);
    EXPECT_EQ(one.sockets, 1);
    const auto eight = PackAndCap::configFor(8, 5);
    EXPECT_EQ(eight.totalContexts(), 8);
    EXPECT_EQ(eight.sockets, 1);
    const auto twelve = PackAndCap::configFor(12, 5);
    EXPECT_EQ(twelve.sockets, 2);
    EXPECT_FALSE(twelve.hyperthreading);
    const auto thirty = PackAndCap::configFor(30, 5);
    EXPECT_TRUE(thirty.hyperthreading);
    EXPECT_EQ(thirty.totalContexts(), 32);
    for (int k = 1; k <= 32; ++k)
        EXPECT_TRUE(PackAndCap::configFor(k, 0).valid()) << k;
}

TEST(PackAndCap, MeetsCapAndBeatsDvfsOnlyOnKmeans)
{
    // Pack & Cap's whole point: thread packing plus DVFS beats DVFS alone
    // for applications that dislike wide allocations.
    const auto apps = harness::singleApp("kmeans");
    sim::PlatformOptions options;
    options.seed = 17;

    auto run = [&](capping::Governor& governor) {
        sim::Platform platform(options, apps);
        platform.warmStart(machine::maximalConfig());
        rapl::RaplController rapl;
        governor.attachRapl(&rapl);
        governor.setCap(140.0);
        platform.addActor(&rapl);
        platform.addActor(&governor);
        platform.run(120.0);
        platform.resetStatsWindow();
        platform.run(180.0);
        return std::pair<double, double>(
            platform.energy().meanItemsPerSec(),
            platform.energy().meanPower());
    };

    capping::PackAndCap packAndCap;
    const auto [packPerf, packPower] = run(packAndCap);
    capping::SoftDvfs softDvfs;
    const auto [dvfsPerf, dvfsPower] = run(softDvfs);

    EXPECT_LE(packPower, 143.0);
    EXPECT_GT(packPerf, dvfsPerf * 1.3);
}

}  // namespace
}  // namespace pupil
