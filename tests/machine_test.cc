/** @file Unit and property tests for the machine model. */
#include <gtest/gtest.h>

#include <set>

#include "machine/config.h"
#include "machine/dvfs.h"
#include "machine/machine.h"
#include "machine/power_model.h"

namespace pupil::machine {
namespace {

TEST(Topology, PaperPlatformCounts)
{
    const Topology& topo = defaultTopology();
    EXPECT_EQ(topo.totalCores(), 16);
    EXPECT_EQ(topo.totalContexts(), 32);
    EXPECT_EQ(topo.socketTdpWatts, 135.0);
}

TEST(Dvfs, FrequencyRangeMatchesXeonE5_2690)
{
    EXPECT_DOUBLE_EQ(DvfsTable::frequencyGHz(0, 1), 1.2);
    EXPECT_DOUBLE_EQ(DvfsTable::frequencyGHz(14, 1), 2.9);
    EXPECT_GT(DvfsTable::frequencyGHz(DvfsTable::kTurboPState, 1), 2.9);
}

TEST(Dvfs, TurboDegradesWithActiveCores)
{
    const double oneCore = DvfsTable::frequencyGHz(15, 1);
    const double eightCores = DvfsTable::frequencyGHz(15, 8);
    EXPECT_GT(oneCore, eightCores);
    EXPECT_GT(eightCores, DvfsTable::kMaxNominalGHz);
}

TEST(Dvfs, FrequencyMonotonicInPState)
{
    for (int p = 1; p < DvfsTable::kNumPStates; ++p) {
        EXPECT_GT(DvfsTable::frequencyGHz(p, 4),
                  DvfsTable::frequencyGHz(p - 1, 4))
            << "p-state " << p;
    }
}

TEST(Dvfs, VoltageMonotonicInFrequency)
{
    double prev = 0.0;
    for (double f = 1.2; f <= 3.8; f += 0.1) {
        const double v = DvfsTable::voltage(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Dvfs, PStateForFrequencyRoundsDown)
{
    EXPECT_EQ(DvfsTable::pstateForFrequency(1.0), 0);
    EXPECT_EQ(DvfsTable::pstateForFrequency(2.9), 14);
    EXPECT_EQ(DvfsTable::pstateForFrequency(10.0), DvfsTable::kTurboPState);
    // Just below a step lands on the previous one.
    const double f5 = DvfsTable::frequencyGHz(5, 1);
    EXPECT_EQ(DvfsTable::pstateForFrequency(f5 - 1e-6), 4);
}

TEST(Config, UserSpaceHas1024Points)
{
    // Paper Section 4.2: "the system supports 1024 user-accessible
    // configurations".
    EXPECT_EQ(enumerateUserConfigs().size(), 1024u);
}

TEST(Config, UserSpaceConfigsAllValidAndUnique)
{
    std::set<std::string> seen;
    for (const MachineConfig& cfg : enumerateUserConfigs()) {
        EXPECT_TRUE(cfg.valid());
        EXPECT_TRUE(seen.insert(cfg.toString()).second) << cfg.toString();
    }
}

TEST(Config, ExtendedSpaceIsSuperset)
{
    EXPECT_GT(enumerateExtendedConfigs().size(),
              enumerateUserConfigs().size());
    for (const MachineConfig& cfg : enumerateExtendedConfigs())
        EXPECT_TRUE(cfg.valid());
}

TEST(Config, ContextsAccounting)
{
    MachineConfig cfg;
    cfg.coresPerSocket = 4;
    cfg.sockets = 2;
    cfg.hyperthreading = true;
    EXPECT_EQ(cfg.totalCores(), 8);
    EXPECT_EQ(cfg.totalContexts(), 16);
    EXPECT_EQ(cfg.contexts(1), 8);
    cfg.sockets = 1;
    EXPECT_EQ(cfg.contexts(1), 0);
}

TEST(Config, MinimalAndMaximalAreExtremes)
{
    EXPECT_EQ(minimalConfig().totalContexts(), 1);
    EXPECT_EQ(maximalConfig().totalContexts(), 32);
    EXPECT_TRUE(minimalConfig().valid());
    EXPECT_TRUE(maximalConfig().valid());
}

TEST(Config, InvalidRangesRejected)
{
    MachineConfig cfg;
    cfg.coresPerSocket = 9;
    EXPECT_FALSE(cfg.valid());
    cfg = MachineConfig{};
    cfg.sockets = 3;
    EXPECT_FALSE(cfg.valid());
    cfg = MachineConfig{};
    cfg.pstate[0] = 16;
    EXPECT_FALSE(cfg.valid());
}

class PowerModelTest : public ::testing::Test
{
  protected:
    PowerModel pm_;

    double
    fullLoadPower(const MachineConfig& cfg) const
    {
        std::array<SocketLoad, 2> loads{};
        for (int s = 0; s < 2; ++s) {
            loads[s].busyPrimary = cfg.activeCores(s);
            loads[s].busySibling =
                cfg.hyperthreading ? cfg.activeCores(s) : 0.0;
            loads[s].activity = 0.85;
        }
        return pm_.totalPower(cfg, loads);
    }
};

TEST_F(PowerModelTest, EnvelopeMatchesPaperOperatingRange)
{
    // Minimal config idles low; the full machine at the lowest p-state
    // draws more than 60 W (Soft-DVFS cannot meet the 60 W cap); an
    // unconstrained compute-heavy run draws well above the largest cap.
    MachineConfig low = maximalConfig();
    low.setUniformPState(0);
    EXPECT_GT(fullLoadPower(low), 60.0);
    EXPECT_GT(fullLoadPower(maximalConfig()), 220.0);

    std::array<SocketLoad, 2> idle{};
    idle[0] = {1.0, 0.0, 0.85};
    EXPECT_LT(pm_.totalPower(minimalConfig(), idle), 25.0);
}

TEST_F(PowerModelTest, SocketNearTdpOnlyAtPeak)
{
    // TDP is a sustained-average rating; a fully hyperthreaded turbo
    // excursion may briefly exceed it (the dark-silicon premise), but not
    // by much, and realistic activity keeps it below.
    std::array<SocketLoad, 2> loads{};
    loads[0] = {8.0, 8.0, 0.85};
    EXPECT_LT(pm_.socketPower(maximalConfig(), 0, loads[0]),
              defaultTopology().socketTdpWatts * 1.05);
    loads[0].activity = 0.75;
    EXPECT_LT(pm_.socketPower(maximalConfig(), 0, loads[0]),
              defaultTopology().socketTdpWatts);
}

TEST_F(PowerModelTest, MonotonicInPState)
{
    double prev = 0.0;
    for (int p = 0; p < DvfsTable::kNumPStates; ++p) {
        MachineConfig cfg = maximalConfig();
        cfg.setUniformPState(p);
        const double power = fullLoadPower(cfg);
        EXPECT_GT(power, prev) << "p-state " << p;
        prev = power;
    }
}

TEST_F(PowerModelTest, MonotonicInCores)
{
    double prev = 0.0;
    for (int cores = 1; cores <= 8; ++cores) {
        MachineConfig cfg;
        cfg.coresPerSocket = cores;
        cfg.setUniformPState(10);
        std::array<SocketLoad, 2> loads{};
        loads[0] = {double(cores), 0.0, 0.85};
        const double power = pm_.totalPower(cfg, loads);
        EXPECT_GT(power, prev) << cores << " cores";
        prev = power;
    }
}

TEST_F(PowerModelTest, DutyCycleScalesOnlyDynamicPower)
{
    MachineConfig cfg = maximalConfig();
    std::array<SocketLoad, 2> loads{};
    loads[0] = loads[1] = {8.0, 8.0, 0.85};
    const double full = pm_.totalPower(cfg, loads, {1.0, 1.0});
    const double half = pm_.totalPower(cfg, loads, {0.5, 0.5});
    const double staticPower =
        pm_.staticSocketPower(cfg, 0) + pm_.staticSocketPower(cfg, 1);
    EXPECT_NEAR(half - staticPower, (full - staticPower) * 0.5, 1e-9);
}

TEST_F(PowerModelTest, HyperthreadSiblingsCostLessThanCores)
{
    MachineConfig ht = maximalConfig();
    MachineConfig noHt = maximalConfig();
    noHt.hyperthreading = false;
    std::array<SocketLoad, 2> htLoads{};
    htLoads[0] = htLoads[1] = {8.0, 8.0, 0.85};
    std::array<SocketLoad, 2> noHtLoads{};
    noHtLoads[0] = noHtLoads[1] = {8.0, 0.0, 0.85};
    const double withHt = pm_.totalPower(ht, htLoads);
    const double without = pm_.totalPower(noHt, noHtLoads);
    EXPECT_GT(withHt, without);
    EXPECT_LT(withHt, without * 1.6);  // sibling adds less than a full core
}

TEST_F(PowerModelTest, InactiveSocketDrawsIdlePower)
{
    MachineConfig cfg = minimalConfig();
    const double idle = pm_.staticSocketPower(cfg, 1);
    EXPECT_GT(idle, 0.0);
    EXPECT_LT(idle, 10.0);
}

TEST(MachineState, ConfigChangeHasMigrationLatency)
{
    Machine machine;
    const MachineConfig target = maximalConfig();
    machine.requestConfig(target, 1.0);
    EXPECT_NE(machine.osConfig(1.0), target);
    EXPECT_TRUE(machine.configChangePending(1.0));
    EXPECT_EQ(machine.osConfig(1.0 + Machine::kMigrationLatencySec + 1e-6),
              target);
}

TEST(MachineState, DvfsOnlyChangeIsFaster)
{
    Machine machine;
    MachineConfig cfg = machine.osConfig(0.0);
    cfg.setUniformPState(10);
    machine.requestConfig(cfg, 1.0);
    EXPECT_EQ(machine.osConfig(1.0 + Machine::kDvfsLatencySec + 1e-6), cfg);
}

TEST(MachineState, RaplClampLimitsPState)
{
    Machine machine;
    machine.requestConfig(maximalConfig(), 0.0);
    machine.requestRaplClamp(0, 5, 1.0, 1.0);
    const MachineConfig eff = machine.effectiveConfig(1.1);
    EXPECT_EQ(eff.pstate[0], 5);
    EXPECT_EQ(eff.pstate[1], DvfsTable::kTurboPState);
    machine.clearRaplClamp(0, 2.0);
    EXPECT_EQ(machine.effectiveConfig(2.1).pstate[0],
              DvfsTable::kTurboPState);
}

TEST(MachineState, ClampDoesNotRaiseOsPState)
{
    Machine machine;
    MachineConfig cfg = minimalConfig();  // p-state 0
    machine.requestConfig(cfg, 0.0);
    machine.requestRaplClamp(0, 12, 1.0, 1.0);
    EXPECT_EQ(machine.effectiveConfig(1.5).pstate[0], 0);
}

TEST(MachineState, DutyCycleApplies)
{
    Machine machine;
    machine.requestRaplClamp(0, 0, 0.25, 0.0);
    EXPECT_DOUBLE_EQ(machine.dutyCycle(0, 0.5), 0.25);
    EXPECT_DOUBLE_EQ(machine.dutyCycle(1, 0.5), 1.0);
}

// Property sweep: power is monotone in p-state for every core/socket/HT/MC
// combination.
class PowerMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>>
{
};

TEST_P(PowerMonotonicity, PowerRisesWithPState)
{
    const auto [cores, sockets, ht, mc] = GetParam();
    PowerModel pm;
    double prev = -1.0;
    for (int p = 0; p < DvfsTable::kNumPStates; ++p) {
        MachineConfig cfg;
        cfg.coresPerSocket = cores;
        cfg.sockets = sockets;
        cfg.hyperthreading = ht;
        cfg.memControllers = mc;
        cfg.setUniformPState(p);
        std::array<SocketLoad, 2> loads{};
        for (int s = 0; s < sockets; ++s)
            loads[s] = {double(cores), ht ? double(cores) : 0.0, 0.8};
        const double power = pm.totalPower(cfg, loads);
        EXPECT_GT(power, prev);
        prev = power;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobs, PowerMonotonicity,
    ::testing::Combine(::testing::Values(1, 4, 8), ::testing::Values(1, 2),
                       ::testing::Bool(), ::testing::Values(1, 2)));

}  // namespace
}  // namespace pupil::machine
