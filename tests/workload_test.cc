/** @file Tests for the benchmark catalog and application model. */
#include <gtest/gtest.h>

#include <set>

#include "workload/app_model.h"
#include "workload/catalog.h"
#include "workload/mixes.h"

namespace pupil::workload {
namespace {

TEST(Catalog, TwentyBenchmarks)
{
    // Paper Section 4.1: 20 benchmark applications.
    EXPECT_EQ(benchmarkCatalog().size(), 20u);
}

TEST(Catalog, NamesUniqueAndLookupsWork)
{
    std::set<std::string> names;
    for (const AppParams& app : benchmarkCatalog()) {
        EXPECT_TRUE(names.insert(app.name).second) << app.name;
        EXPECT_TRUE(hasBenchmark(app.name));
        EXPECT_EQ(&findBenchmark(app.name), &app);
    }
    EXPECT_FALSE(hasBenchmark("not-a-benchmark"));
}

TEST(Catalog, ParametersInSaneRanges)
{
    for (const AppParams& app : benchmarkCatalog()) {
        EXPECT_GT(app.serialFrac, 0.0) << app.name;
        EXPECT_LT(app.serialFrac, 0.5) << app.name;
        EXPECT_LE(app.spinSerialFrac, app.serialFrac) << app.name;
        EXPECT_GE(app.htYield, -0.15) << app.name;
        EXPECT_LE(app.htYield, 0.9) << app.name;
        EXPECT_GT(app.ipc, 0.0) << app.name;
        EXPECT_GT(app.bytesPerInstr, 0.0) << app.name;
        EXPECT_GE(app.mcBoost, 1.0) << app.name;
        EXPECT_GE(app.maxUsefulThreads, 1) << app.name;
        EXPECT_LE(app.maxUsefulThreads, 32) << app.name;
        EXPECT_GT(app.workPerItem, 0.0) << app.name;
        EXPECT_GT(app.activity, 0.0) << app.name;
        EXPECT_LE(app.activity, 1.0) << app.name;
        if (app.spinSerialFrac > 0.0) {
            EXPECT_EQ(app.sync, SyncKind::kSpin) << app.name;
        }
    }
}

TEST(Catalog, RedBlueSetsPartitionTheSuite)
{
    // The mix construction (Table 4) relies on a clean partition.
    std::set<std::string> all;
    for (const std::string& name : raplFriendlySet()) {
        EXPECT_TRUE(hasBenchmark(name)) << name;
        EXPECT_TRUE(all.insert(name).second) << name;
    }
    for (const std::string& name : raplUnfriendlySet()) {
        EXPECT_TRUE(hasBenchmark(name)) << name;
        EXPECT_TRUE(all.insert(name).second) << name;
    }
    EXPECT_EQ(all.size(), benchmarkCatalog().size());
}

TEST(Catalog, CalibrationAppIsEmbarrassinglyParallel)
{
    // Algorithm 2 requires "a calibration benchmark without inter-thread
    // communication".
    const AppParams& cal = calibrationApp();
    EXPECT_EQ(cal.sync, SyncKind::kNone);
    EXPECT_LT(cal.serialFrac, 0.01);
    EXPECT_LT(cal.commOverhead, 0.001);
    EXPECT_EQ(cal.maxUsefulThreads, 32);
}

TEST(Catalog, PaperSpecificCharacteristics)
{
    // x264 loses throughput on hyperthreads (Section 2).
    EXPECT_LT(findBenchmark("x264").htYield, 0.0);
    // kmeans bottlenecks on inter-socket communication (Section 5.2).
    EXPECT_GE(findBenchmark("kmeans").crossSocketPenalty, 0.4);
    // kmeans uses polling synchronization (Section 5.4.3).
    EXPECT_EQ(findBenchmark("kmeans").sync, SyncKind::kSpin);
    // STREAM is the most memory-intense benchmark (Fig. 5).
    for (const AppParams& app : benchmarkCatalog()) {
        if (app.name != "STREAM") {
            EXPECT_LT(app.bytesPerInstr,
                      findBenchmark("STREAM").bytesPerInstr);
        }
    }
    // dijkstra has very limited parallelism.
    EXPECT_LE(findBenchmark("dijkstra").maxUsefulThreads, 4);
}

TEST(AppModel, SpeedupIsOneAtOneCore)
{
    for (const AppParams& app : benchmarkCatalog())
        EXPECT_NEAR(app.speedup(1.0), 1.0, app.commOverhead + 1e-9)
            << app.name;
}

TEST(AppModel, SpeedupCapsAtMaxUsefulThreads)
{
    const AppParams& hop = findBenchmark("HOP");
    EXPECT_NEAR(hop.speedup(hop.maxUsefulThreads),
                hop.speedup(hop.maxUsefulThreads + 5), 0.2);
}

TEST(AppModel, FractionalAllocationDegradesGracefully)
{
    const AppParams& app = findBenchmark("blackscholes");
    EXPECT_LT(app.speedup(0.5), 1.0);
    EXPECT_GT(app.speedup(0.5), 0.4);
}

TEST(Mixes, TwelveMixesOfFourApps)
{
    // Table 4: 12 mixes, four applications each.
    ASSERT_EQ(multiAppMixes().size(), 12u);
    for (const Mix& mix : multiAppMixes()) {
        EXPECT_EQ(mix.apps.size(), 4u) << mix.name;
        for (const std::string& app : mix.apps)
            EXPECT_TRUE(hasBenchmark(app)) << mix.name << "/" << app;
    }
}

TEST(Mixes, CompositionFollowsRedBlueRule)
{
    // Mixes 1-4 all RAPL-friendly, 5-8 all unfriendly, 9-12 two of each.
    auto contains = [](const std::vector<std::string>& set,
                       const std::string& name) {
        for (const std::string& s : set)
            if (s == name)
                return true;
        return false;
    };
    const auto& mixes = multiAppMixes();
    for (int m = 0; m < 12; ++m) {
        int friendly = 0;
        for (const std::string& app : mixes[m].apps)
            friendly += contains(raplFriendlySet(), app);
        if (m < 4)
            EXPECT_EQ(friendly, 4) << mixes[m].name;
        else if (m < 8)
            EXPECT_EQ(friendly, 0) << mixes[m].name;
        else
            EXPECT_EQ(friendly, 2) << mixes[m].name;
    }
}

TEST(Mixes, ScenarioThreadCounts)
{
    // Cooperative: 4 x 8 = 32 threads; oblivious: 4 x 32 = 128 threads.
    EXPECT_EQ(threadsPerApp(Scenario::kCooperative), 8);
    EXPECT_EQ(threadsPerApp(Scenario::kOblivious), 32);
}

// Property sweep: the speedup curve is unimodal (a single peak) in core
// count for every catalog entry -- the paper relies on this ("resources
// tend to have a single peak", Section 3.1.2) for its per-resource binary
// search to be sound.
class SpeedupUnimodal : public ::testing::TestWithParam<int>
{
};

TEST_P(SpeedupUnimodal, SinglePeakInAllocation)
{
    const AppParams& app = benchmarkCatalog()[size_t(GetParam())];
    bool declining = false;
    double prev = 0.0;
    for (int e = 1; e <= 32; ++e) {
        const double s = app.speedup(e);
        if (declining) {
            EXPECT_LE(s, prev * 1.001) << app.name << " at " << e;
        } else if (s < prev * 0.999) {
            declining = true;
        }
        prev = s;
    }
    // And it must rise initially.
    EXPECT_GT(app.speedup(2), app.speedup(1)) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Catalog, SpeedupUnimodal, ::testing::Range(0, 20));

}  // namespace
}  // namespace pupil::workload
