/** @file Tests for the hierarchical datacenter -> rack -> node budget
 *  tree: conservation at every level and every period, byte-identical
 *  serial vs parallel stepping, rack-dark handling, and the pure
 *  budget-policy arithmetic it is built from. */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/budget_policy.h"
#include "cluster/budget_tree.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "trace/trace.h"

namespace pupil::cluster {
namespace {

/** A small 3-rack x 3-node mixed-workload tree with distinct seeds. */
BudgetTree
makeTree(const BudgetTree::Options& options)
{
    const char* apps[9] = {"x264",    "swaptions", "kmeans",
                           "btree",   "swish++",   "blackscholes",
                           "cfd",     "dijkstra",  "x264"};
    BudgetTree tree(options);
    for (int r = 0; r < 3; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < 3; ++n) {
            const int id = r * 3 + n;
            tree.addNode(rack, "r" + std::to_string(r) + "n" +
                                   std::to_string(n),
                         harness::singleApp(apps[id], 16),
                         harness::GovernorKind::kPupil,
                         uint64_t(100 + id * 13));
        }
    }
    return tree;
}

TEST(BudgetPolicy, RebalancePreservesTheSumAndClampsToCeilings)
{
    std::vector<ChildBudget> children(3);
    for (auto& child : children) {
        child.capWatts = 100.0;
        child.maxCapWatts = 120.0;
        child.minShareWatts = 20.0;
    }
    children[0].powerWatts = 20.0;   // big headroom: donor
    children[1].powerWatts = 99.0;   // constrained
    children[2].powerWatts = 98.0;   // constrained
    const BudgetPolicy policy;
    const double moved = rebalanceBudgets(children, policy);
    EXPECT_GT(moved, 0.0);
    EXPECT_NEAR(onlineCapSum(children), 300.0, 1e-9);
    for (const auto& child : children) {
        EXPECT_LE(child.capWatts, 120.0 + 1e-9);
        EXPECT_GE(child.capWatts, 20.0 - 1e-9);
    }
}

TEST(BudgetPolicy, ImplausibleReadingNeitherDonatesNorLosesGrants)
{
    std::vector<ChildBudget> children(3);
    for (auto& child : children) {
        child.capWatts = 100.0;
        child.minShareWatts = 20.0;
    }
    children[0].powerWatts = 0.0;    // dead meter: must be held
    children[1].powerWatts = 30.0;   // real headroom: donor
    children[2].powerWatts = 99.0;   // constrained
    const BudgetPolicy policy;
    rebalanceBudgets(children, policy);
    EXPECT_GE(children[0].capWatts, 100.0);  // never drained, may gain
    EXPECT_LT(children[1].capWatts, 100.0);  // the donor paid
    EXPECT_NEAR(onlineCapSum(children), 300.0, 1e-9);
}

TEST(BudgetPolicy, UnplaceableWattsAreReportedNotInvented)
{
    std::vector<ChildBudget> children(2);
    for (auto& child : children) {
        child.capWatts = 300.0;
        child.maxCapWatts = 270.0;
    }
    const double unplaced = clampToCeilings(children);
    EXPECT_NEAR(unplaced, 60.0, 1e-9);
    EXPECT_NEAR(onlineCapSum(children), 540.0, 1e-9);
    // Conservation is judged against the grantable budget.
    EXPECT_NEAR(conservationError(children, 600.0), 0.0, 1e-9);
}

TEST(BudgetTree, ConservesTheBudgetAtEveryLevelEveryPeriod)
{
    BudgetTree::Options options;
    options.globalBudgetWatts = 1200.0;
    options.threads = 1;
    BudgetTree tree = makeTree(options);
    for (int period = 0; period < 30; ++period) {
        tree.run(double(period + 1));
        EXPECT_LT(tree.budgetErrorWatts(), 1e-6) << "period=" << period;
        EXPECT_NEAR(tree.totalGrantWatts(), 1200.0, 1e-6)
            << "period=" << period;
        EXPECT_NEAR(tree.totalCapWatts(), 1200.0, 1e-6)
            << "period=" << period;
        for (size_t r = 0; r < tree.rackCount(); ++r) {
            for (size_t n = 0; n < tree.nodeCount(r); ++n) {
                EXPECT_GE(tree.node(r, n).capWatts,
                          options.minNodeCapWatts - 1e-9);
                EXPECT_LE(tree.node(r, n).capWatts,
                          options.nodeTdpWatts + 1e-9);
            }
        }
    }
    EXPECT_GT(tree.shifts(), 0);
    EXPECT_GT(tree.aggregatePerformance(), 0.0);
    EXPECT_NEAR(tree.metrics().value("cluster.budget_error"), 0.0, 1e-6);
    EXPECT_EQ(tree.metrics().value("cluster.nodes_online"), 9.0);
}

TEST(BudgetTree, SerialAndParallelSteppingAreByteIdentical)
{
    // Node platforms share no mutable state and all cross-node reads
    // happen serially after the stepping barrier, so the thread count is
    // a pure speed knob: the full deterministic state digest must match
    // bit for bit, faults and all.
    const auto schedule = faults::FaultSchedule::parse(
        "node-loss,r0n1,4,9;node-loss,r2n0,6,12");
    BudgetTree::Options serialOpts;
    serialOpts.globalBudgetWatts = 1100.0;
    serialOpts.threads = 1;
    BudgetTree serial = makeTree(serialOpts);
    serial.setFaultSchedule(&schedule);

    BudgetTree::Options parallelOpts = serialOpts;
    parallelOpts.threads = 4;
    BudgetTree parallel = makeTree(parallelOpts);
    parallel.setFaultSchedule(&schedule);

    for (double t = 5.0; t <= 20.0; t += 5.0) {
        serial.run(t);
        parallel.run(t);
        EXPECT_EQ(serial.stateDigest(), parallel.stateDigest())
            << "t=" << t;
    }
    EXPECT_EQ(serial.shifts(), parallel.shifts());
    EXPECT_EQ(serial.lossEvents(), parallel.lossEvents());
    EXPECT_DOUBLE_EQ(serial.aggregatePerformance(),
                     parallel.aggregatePerformance());
}

TEST(BudgetTree, DarkRackReturnsItsGrantAndRejoins)
{
    // Both nodes of rack1 drop at t = 5 and return at t = 15: the rack
    // goes dark, its whole grant flows to the other racks through the
    // root, and the rejoin folds it back in -- conservation holding at
    // every boundary in between.
    const auto schedule = faults::FaultSchedule::parse(
        "node-loss,r1n0,5,15;node-loss,r1n1,5,15;node-loss,r1n2,5,15");
    BudgetTree::Options options;
    options.globalBudgetWatts = 1000.0;
    options.threads = 1;
    BudgetTree tree = makeTree(options);
    tree.setFaultSchedule(&schedule);
    trace::Recorder recorder;
    tree.attachTrace(&recorder);

    for (int period = 0; period < 25; ++period) {
        tree.run(double(period + 1));
        EXPECT_LT(tree.budgetErrorWatts(), 1e-6) << "period=" << period;
        const double t = double(period + 1);
        if (t > 5.5 && t < 15.0) {
            EXPECT_FALSE(tree.rack(1).online) << "t=" << t;
            EXPECT_DOUBLE_EQ(tree.rack(1).grantWatts, 0.0) << "t=" << t;
            // Survivor racks hold the full budget between them.
            EXPECT_NEAR(tree.rack(0).grantWatts + tree.rack(2).grantWatts,
                        1000.0, 1e-6)
                << "t=" << t;
        }
    }
    EXPECT_TRUE(tree.rack(1).online);
    EXPECT_GT(tree.rack(1).grantWatts, 0.0);
    EXPECT_EQ(tree.lossEvents(), 3);
    EXPECT_EQ(tree.rejoinEvents(), 3);

    // The rack-level timeline made it into the trace.
    int rackGrants = 0;
    int rackRebalances = 0;
    for (const auto& event : recorder.snapshot()) {
        if (event.kind == trace::EventKind::kRackGrant)
            ++rackGrants;
        if (event.kind == trace::EventKind::kRackRebalance)
            ++rackRebalances;
    }
    EXPECT_GT(rackGrants, 0);
    EXPECT_GT(rackRebalances, 0);
}

TEST(BudgetTree, PartitionedRackRidesThroughOnItsLastGrant)
{
    // Cut rack1's uplink for a six-second window. The rack must keep
    // enforcing -- and internally rebalancing -- the last grant that was
    // actually delivered to it: every member stays capped inside
    // [floor, TDP], the member caps keep summing to the rack's own grant
    // view, and per-view conservation holds throughout. The partition's
    // begin/heal must also land in the trace timeline.
    BudgetTree::Options options;
    options.globalBudgetWatts = 1200.0;
    options.threads = 1;
    BudgetTree tree = makeTree(options);
    trace::Recorder recorder;
    tree.attachTrace(&recorder);
    const auto schedule =
        faults::FaultSchedule::parse("partition,rack1,3,9");
    tree.setFaultSchedule(&schedule);

    tree.run(2.0);
    const uint64_t dropsBefore = tree.transportStats().partitionDrops;
    tree.run(8.0);
    // Mid-partition: the uplink is actually cut ...
    EXPECT_GT(tree.transportStats().partitionDrops, dropsBefore);
    // ... but the root never declares the rack dark (it is enforcing,
    // just unreachable), and the rack conserves against its own view.
    EXPECT_TRUE(tree.rack(1).online);
    double rackCaps = 0.0;
    for (size_t n = 0; n < tree.nodeCount(1); ++n) {
        const Node& node = tree.node(1, n);
        EXPECT_TRUE(node.online) << n;
        EXPECT_GE(node.capWatts, options.minNodeCapWatts - 1e-9) << n;
        EXPECT_LE(node.capWatts, options.nodeTdpWatts + 1e-9) << n;
        rackCaps += node.capWatts;
    }
    EXPECT_GT(tree.rackGrantViewWatts(1), 0.0);
    EXPECT_NEAR(rackCaps, tree.rackGrantViewWatts(1), 1e-6);
    EXPECT_LT(tree.budgetErrorWatts(),
              1e-6 * options.globalBudgetWatts + 1e-9);

    tree.run(14.0);
    EXPECT_LT(tree.budgetErrorWatts(),
              1e-6 * options.globalBudgetWatts + 1e-9);
    int cuts = 0;
    int heals = 0;
    for (const auto& event : recorder.snapshot()) {
        if (event.kind != trace::EventKind::kPartition)
            continue;
        EXPECT_EQ(event.i0, 1);
        if (event.i1 == 1)
            ++cuts;
        else
            ++heals;
    }
    EXPECT_EQ(cuts, 1);
    EXPECT_EQ(heals, 1);
}

TEST(BudgetTree, RunRejectsSchedulesTargetingUnknownNames)
{
    // A schedule naming a rack or node that is not in the topology is a
    // configuration bug (typo'd scenario), not a no-op: run() refuses it
    // before the first period.
    BudgetTree::Options options;
    options.threads = 1;
    BudgetTree tree = makeTree(options);
    const auto schedule =
        faults::FaultSchedule::parse("partition,rack7,0,5");
    tree.setFaultSchedule(&schedule);
    EXPECT_THROW(tree.run(1.0), std::invalid_argument);
    // Detaching (or fixing) the schedule unblocks the run.
    tree.setFaultSchedule(nullptr);
    tree.run(1.0);
    EXPECT_EQ(tree.periods(), 1);
}

TEST(BudgetTree, MessageFaultStormStaysDeterministicFromSeed)
{
    // A storm mixing every message-fault kind must replay bit-for-bit
    // from (spec, seed): the fault plane draws from one dedicated RNG
    // stream and the transport's delivery order is fully determined.
    const char* storm =
        "msg-drop,*,1,12,0,0.3;msg-delay,rack0,2,10,1.5,0.5;"
        "msg-dup,*,3,11,0,0.4;msg-reorder,rack2,1,12,0,0.8;"
        "partition,rack1,4,7";
    const auto run = [&] {
        const auto schedule = faults::FaultSchedule::parse(storm);
        BudgetTree::Options options;
        options.globalBudgetWatts = 1100.0;
        options.threads = 1;
        BudgetTree tree = makeTree(options);
        tree.setFaultSchedule(&schedule);
        tree.run(14.0);
        EXPECT_LT(tree.budgetErrorWatts(),
                  1e-6 * options.globalBudgetWatts + 1e-9);
        return tree.stateDigest();
    };
    const uint64_t a = run();
    const uint64_t b = run();
    EXPECT_EQ(a, b);
}

TEST(BudgetTree, HardwareIsArmedFromTheFirstPeriod)
{
    // Same first-period guarantee as the flat shifter: the initial
    // division reaches every node's RAPL firmware before any node steps,
    // so even software-only governors are backstopped from t = 0.
    BudgetTree::Options options;
    options.globalBudgetWatts = 400.0;
    options.threads = 1;
    BudgetTree tree(options);
    const size_t rack = tree.addRack("rack0");
    tree.addNode(rack, "a", harness::singleApp("swaptions"),
                 harness::GovernorKind::kSoftDvfs, 50);
    tree.addNode(rack, "b", harness::singleApp("x264"),
                 harness::GovernorKind::kSoftDvfs, 51);
    tree.run(0.5);  // inside the first period
    for (size_t n = 0; n < tree.nodeCount(rack); ++n) {
        const Node& node = tree.node(rack, n);
        EXPECT_TRUE(node.rapl->zoneStatus(0).enabled) << n;
        EXPECT_TRUE(node.rapl->zoneStatus(1).enabled) << n;
        EXPECT_LE(node.platform->truePower(), node.capWatts * 1.10) << n;
    }
}

}  // namespace
}  // namespace pupil::cluster
