/** @file Golden-trace regression test: a fixed-seed single-app PUPiL run
 *  must render to byte-identical trace exports forever. The full exports
 *  are pinned by FNV-1a digests; a human-readable excerpt of the CSV is
 *  stored alongside so a digest mismatch reports the first diverging
 *  event instead of just "hash changed". Regenerate intentionally
 *  changed goldens with --update-golden (or PUPIL_UPDATE_GOLDEN=1). */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/budget_tree.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "harness/sweep.h"
#include "trace/export.h"
#include "trace/trace.h"
#include "workload/catalog.h"

#ifndef PUPIL_TESTS_GOLDEN_DIR
#error "PUPIL_TESTS_GOLDEN_DIR must point at tests/golden"
#endif

static bool gUpdateGolden = false;

namespace pupil {
namespace {

constexpr int kExcerptLines = 200;

std::string
goldenPath(const std::string& file)
{
    return std::string(PUPIL_TESTS_GOLDEN_DIR) + "/" + file;
}

/** FNV-1a 64-bit digest rendered as 16 hex digits. */
std::string
fnv1a(const std::string& content)
{
    uint64_t hash = 14695981039346656037ULL;
    for (const unsigned char c : content) {
        hash ^= c;
        hash *= 1099511628211ULL;
    }
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  (unsigned long long)hash);
    return buffer;
}

std::string
readFileOrEmpty(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
writeFileOrDie(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    return bool(out);
}

std::vector<std::string>
splitLines(const std::string& content)
{
    std::vector<std::string> lines;
    std::string line;
    std::istringstream in(content);
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::string
excerptOf(const std::string& csv)
{
    const auto lines = splitLines(csv);
    std::string excerpt;
    for (int i = 0; i < kExcerptLines && i < int(lines.size()); ++i) {
        excerpt += lines[size_t(i)];
        excerpt += '\n';
    }
    return excerpt;
}

/**
 * The pinned scenario: PUPiL on x264 under a 140 W cap, seed 42, 30
 * simulated seconds. Everything downstream of the seed is deterministic,
 * so the exports must be stable to the byte across platforms and
 * refactors -- any diff is a behaviour change, intended or not.
 */
struct GoldenRun
{
    std::string csv;
    std::string json;
    size_t events = 0;
};

const GoldenRun&
goldenRun()
{
    static const GoldenRun run = [] {
        trace::Recorder recorder(1 << 17);
        harness::ExperimentOptions options;
        options.capWatts = 140.0;
        options.durationSec = 30.0;
        options.statsWindowSec = 15.0;
        options.seed = 42;
        options.trace = &recorder;
        harness::runExperiment(harness::GovernorKind::kPupil,
                               harness::singleApp("x264"), options);
        GoldenRun result;
        result.csv = trace::toCsv(recorder);
        result.json = trace::toChromeJson(recorder);
        result.events = recorder.size();
        return result;
    }();
    return run;
}

std::map<std::string, std::string>
parseDigestFile(const std::string& content)
{
    std::map<std::string, std::string> fields;
    for (const std::string& line : splitLines(content)) {
        const size_t space = line.find(' ');
        if (space != std::string::npos)
            fields[line.substr(0, space)] = line.substr(space + 1);
    }
    return fields;
}

std::string
renderDigestFile(const GoldenRun& run)
{
    std::string out;
    out += "csv " + fnv1a(run.csv) + "\n";
    out += "json " + fnv1a(run.json) + "\n";
    out += "events " + std::to_string(run.events) + "\n";
    return out;
}

/** First line where current and golden differ, with both sides. */
std::string
firstDivergence(const std::string& current, const std::string& golden)
{
    const auto currentLines = splitLines(current);
    const auto goldenLines = splitLines(golden);
    const size_t n = std::min(currentLines.size(), goldenLines.size());
    for (size_t i = 0; i < n; ++i) {
        if (currentLines[i] != goldenLines[i]) {
            return "first divergence at line " + std::to_string(i + 1) +
                   ":\n  golden:  " + goldenLines[i] +
                   "\n  current: " + currentLines[i];
        }
    }
    if (currentLines.size() != goldenLines.size()) {
        return "traces diverge in length at line " + std::to_string(n + 1) +
               " (golden " + std::to_string(goldenLines.size()) +
               " lines, current " + std::to_string(currentLines.size()) +
               " lines)";
    }
    return "no divergence within the excerpt (diff is beyond the first " +
           std::to_string(kExcerptLines) + " events)";
}

TEST(GoldenTrace, DigestsMatchPinnedRun)
{
    const GoldenRun& run = goldenRun();
    ASSERT_GT(run.events, 0u);
    const std::string digestPath = goldenPath("pupil_x264_140w.digest");
    if (gUpdateGolden) {
        ASSERT_TRUE(writeFileOrDie(digestPath, renderDigestFile(run)));
        GTEST_SKIP() << "golden digests regenerated at " << digestPath;
    }
    const std::string stored = readFileOrEmpty(digestPath);
    ASSERT_FALSE(stored.empty())
        << "missing " << digestPath
        << "; run golden_trace_test --update-golden to create it";
    const auto fields = parseDigestFile(stored);
    const std::string goldenExcerpt =
        readFileOrEmpty(goldenPath("pupil_x264_140w.head.csv"));
    EXPECT_EQ(fnv1a(run.csv), fields.at("csv"))
        << firstDivergence(run.csv, goldenExcerpt);
    EXPECT_EQ(fnv1a(run.json), fields.at("json"))
        << "Chrome JSON export diverged from the pinned run";
    EXPECT_EQ(std::to_string(run.events), fields.at("events"));
}

TEST(GoldenTrace, ExcerptMatchesPinnedRun)
{
    const GoldenRun& run = goldenRun();
    const std::string excerptPath = goldenPath("pupil_x264_140w.head.csv");
    const std::string excerpt = excerptOf(run.csv);
    if (gUpdateGolden) {
        ASSERT_TRUE(writeFileOrDie(excerptPath, excerpt));
        GTEST_SKIP() << "golden excerpt regenerated at " << excerptPath;
    }
    const std::string stored = readFileOrEmpty(excerptPath);
    ASSERT_FALSE(stored.empty())
        << "missing " << excerptPath
        << "; run golden_trace_test --update-golden to create it";
    EXPECT_EQ(excerpt, stored) << firstDivergence(excerpt, stored);
}

// ---------------------------------------------------------------------------
// BudgetTree control-plane pins. These digests were captured from the
// direct-call implementation immediately before the control plane moved
// onto net::LocalTransport; they are pinned in code -- deliberately with
// no --update-golden escape hatch -- because the transport extraction is
// required to be byte-transparent with faults off. If one of these
// fails, the message rounds changed the arithmetic, the ordering, or an
// RNG draw count somewhere; fix the protocol, don't re-pin.
// ---------------------------------------------------------------------------

constexpr uint64_t kBudgetTreeFaultFreeDigest = 0xd97bbf6f551f03c3ull;
constexpr uint64_t kBudgetTreeNodeLossDigest = 0xb08faadb91748608ull;

cluster::BudgetTree
makeBudgetTree(const cluster::BudgetTree::Options& options)
{
    const char* apps[9] = {"x264",  "swaptions", "kmeans",
                           "btree", "swish++",   "blackscholes",
                           "cfd",   "dijkstra",  "x264"};
    cluster::BudgetTree tree(options);
    for (int r = 0; r < 3; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < 3; ++n) {
            const int id = r * 3 + n;
            tree.addNode(rack,
                         "r" + std::to_string(r) + "n" + std::to_string(n),
                         harness::singleApp(apps[id], 16),
                         harness::GovernorKind::kPupil,
                         uint64_t(100 + id * 13));
        }
    }
    return tree;
}

TEST(GoldenTrace, BudgetTreeFaultFreeDigestIsPreExtraction)
{
    cluster::BudgetTree::Options options;
    options.globalBudgetWatts = 1200.0;
    options.threads = 1;
    cluster::BudgetTree tree = makeBudgetTree(options);
    tree.run(20.0);
    EXPECT_EQ(tree.stateDigest(), kBudgetTreeFaultFreeDigest)
        << "the transport extraction is no longer byte-transparent on "
           "the fault-free pinned run";
}

TEST(GoldenTrace, BudgetTreeNodeLossDigestIsPreExtraction)
{
    const auto schedule = faults::FaultSchedule::parse(
        "node-loss,r0n1,4,9;node-loss,r2n0,6,12");
    cluster::BudgetTree::Options options;
    options.globalBudgetWatts = 1100.0;
    options.threads = 1;
    cluster::BudgetTree tree = makeBudgetTree(options);
    tree.setFaultSchedule(&schedule);
    tree.run(20.0);
    EXPECT_EQ(tree.stateDigest(), kBudgetTreeNodeLossDigest)
        << "the transport extraction is no longer byte-transparent on "
           "the node-loss pinned run";
}

// ---------------------------------------------------------------------------
// 512-node full-stack pin, hysteresis off. Captured from the per-child
// struct (AoS) implementation immediately before the policy math moved
// into the struct-of-arrays BudgetPool kernels and the leaves moved
// behind the LeafModel seam. Like the pins above it has no re-pin path:
// with hysteresisWatts at its 0.0 default the event-driven machinery
// must be completely inert, the SoA kernels must reproduce the AoS
// arithmetic bit for bit, and FullStackLeaf must forward exactly the
// calls the tree used to make inline -- at datacenter scale, under
// node-loss churn in every rack, across both governor kinds.
// ---------------------------------------------------------------------------

constexpr uint64_t kBudgetTree512Digest = 0x6b878a9ad025fcd9ull;

TEST(GoldenTrace, BudgetTree512NodeDigestIsPreSoa)
{
    constexpr int kNodes = 512;
    constexpr int kNodesPerRack = 8;
    cluster::BudgetTree::Options options;
    options.globalBudgetWatts = 150.0 * kNodes;
    options.threads = 0;  // digest is thread-count independent
    cluster::BudgetTree tree(options);
    const auto& catalog = workload::benchmarkCatalog();
    int id = 0;
    for (int r = 0; r < kNodes / kNodesPerRack; ++r) {
        const size_t rack = tree.addRack("rack" + std::to_string(r));
        for (int n = 0; n < kNodesPerRack; ++n, ++id) {
            const auto& app = catalog[size_t(id * 7) % catalog.size()];
            const auto kind = (id % 4 == 3) ? harness::GovernorKind::kRapl
                                            : harness::GovernorKind::kPupil;
            tree.addNode(rack,
                         "r" + std::to_string(r) + "n" + std::to_string(n),
                         harness::singleApp(app.name, 16), kind,
                         harness::SweepRunner::deriveSeed(42, size_t(id)));
        }
    }
    std::string spec;
    for (int r = 0; r < kNodes / kNodesPerRack; ++r) {
        const double start = 4.0 + double(r % 5);
        const double end = start + 6.0;
        if (!spec.empty())
            spec += ';';
        spec += "node-loss,r" + std::to_string(r) + "n" +
                std::to_string(r % kNodesPerRack) + ',' +
                trace::formatDouble(start) + ',' + trace::formatDouble(end);
    }
    const auto schedule = faults::FaultSchedule::parse(spec);
    tree.setFaultSchedule(&schedule);
    tree.run(12.0);
    EXPECT_EQ(tree.stateDigest(), kBudgetTree512Digest)
        << "the SoA/LeafModel refactor is no longer byte-transparent on "
           "the 512-node pinned run";
    EXPECT_EQ(tree.lossEvents(), 64);
    EXPECT_EQ(tree.rejoinEvents(), 26);
    EXPECT_EQ(tree.shifts(), 780);
    // With the band at 0.0 the event gates must never fire.
    EXPECT_EQ(tree.reportsSuppressed(), 0u);
    EXPECT_EQ(tree.rebalancesSuppressed(), 0u);
}

}  // namespace
}  // namespace pupil

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden")
            gUpdateGolden = true;
    }
    if (std::getenv("PUPIL_UPDATE_GOLDEN") != nullptr)
        gUpdateGolden = true;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
