/** @file End-to-end integration tests: the paper's headline claims must
 *  hold on the simulated platform. */
#include <gtest/gtest.h>

#include "capping/oracle.h"
#include "harness/experiment.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/catalog.h"

namespace pupil {
namespace {

using harness::ExperimentOptions;
using harness::GovernorKind;
using harness::runExperiment;
using harness::singleApp;

ExperimentOptions
options(double cap, double duration = 150.0, double window = 60.0)
{
    ExperimentOptions opts;
    opts.capWatts = cap;
    opts.durationSec = duration;
    opts.statsWindowSec = window;
    return opts;
}

TEST(Integration, EveryGovernorRespectsTheCapInSteadyState)
{
    for (auto kind : harness::allGovernors()) {
        if (kind == GovernorKind::kSoftModeling)
            continue;  // no feedback: exempt by design (see paper 5.1)
        const auto result = runExperiment(kind, singleApp("bodytrack"),
                                          options(140.0, 90.0, 30.0));
        EXPECT_LE(result.meanPowerWatts, 143.0) << result.governor;
    }
}

TEST(Integration, TimelinessOrderingMatchesFig4)
{
    // RAPL ~ PUPiL << Soft-DVFS << Soft-Decision (paper Section 5.3).
    const auto opts = options(140.0, 120.0, 30.0);
    const auto rapl =
        runExperiment(GovernorKind::kRapl, singleApp("x264"), opts);
    const auto pupil =
        runExperiment(GovernorKind::kPupil, singleApp("x264"), opts);
    const auto dvfs =
        runExperiment(GovernorKind::kSoftDvfs, singleApp("x264"), opts);
    const auto decision =
        runExperiment(GovernorKind::kSoftDecision, singleApp("x264"), opts);

    EXPECT_LT(rapl.settlingTimeSec, 1.0);
    EXPECT_LT(pupil.settlingTimeSec, rapl.settlingTimeSec * 3.0 + 0.5);
    EXPECT_GT(dvfs.settlingTimeSec, rapl.settlingTimeSec * 2.0);
    EXPECT_GT(decision.settlingTimeSec, dvfs.settlingTimeSec * 2.0);
}

TEST(Integration, PupilBeatsRaplOnX264At140W)
{
    // The Section 2 motivational example: ~20% more throughput once the
    // multi-resource approach figures out hyperthreads hurt x264.
    const auto opts = options(140.0, 200.0, 80.0);
    const auto rapl =
        runExperiment(GovernorKind::kRapl, singleApp("x264"), opts);
    const auto pupil =
        runExperiment(GovernorKind::kPupil, singleApp("x264"), opts);
    EXPECT_GT(pupil.aggregatePerf, rapl.aggregatePerf * 1.05);
}

TEST(Integration, PupilMoreThanDoublesKmeans)
{
    // Section 5.2: for kmeans and dijkstra "the gains can be over 2x".
    const auto opts = options(140.0, 200.0, 80.0);
    const auto rapl =
        runExperiment(GovernorKind::kRapl, singleApp("kmeans"), opts);
    const auto pupil =
        runExperiment(GovernorKind::kPupil, singleApp("kmeans"), opts);
    EXPECT_GT(pupil.aggregatePerf, rapl.aggregatePerf * 2.0);
}

TEST(Integration, RaplNearOptimalForScalableApps)
{
    // Blue applications: RAPL within ~10% of optimal at 140 W (Fig. 5).
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    for (const char* name : {"blackscholes", "swaptions", "btree"}) {
        const auto apps = singleApp(name);
        const auto oracle = capping::searchOptimal(sched, pm, apps, 140.0);
        const auto rapl = runExperiment(GovernorKind::kRapl, apps,
                                        options(140.0, 90.0, 40.0));
        EXPECT_GT(rapl.aggregatePerf / oracle.aggregatePerf, 0.85) << name;
    }
}

TEST(Integration, RaplFarFromOptimalForProblemApps)
{
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    for (const char* name : {"kmeans", "dijkstra", "ScalParC"}) {
        const auto apps = singleApp(name);
        const auto oracle = capping::searchOptimal(sched, pm, apps, 140.0);
        const auto rapl = runExperiment(GovernorKind::kRapl, apps,
                                        options(140.0, 90.0, 40.0));
        EXPECT_LT(rapl.aggregatePerf / oracle.aggregatePerf, 0.80) << name;
    }
}

TEST(Integration, PupilNeverLosesBadlyToRapl)
{
    // Across a spread of apps and caps, PUPiL's converged throughput is at
    // least RAPL's (within noise) -- the hybrid inherits software's
    // flexibility without hardware's blind spots.
    for (const char* name : {"jacobi", "cfd", "vips", "swish++"}) {
        const auto opts = options(100.0, 200.0, 80.0);
        const auto rapl = runExperiment(GovernorKind::kRapl,
                                        singleApp(name), opts);
        const auto pupil = runExperiment(GovernorKind::kPupil,
                                         singleApp(name), opts);
        EXPECT_GT(pupil.aggregatePerf, rapl.aggregatePerf * 0.95) << name;
    }
}

TEST(Integration, ObliviousMixShowsSpinPathologyUnderRapl)
{
    // Table 6: under RAPL the oblivious spin mixes burn a large share of
    // cycles spinning; PUPiL's resource throttling plus earlier
    // completions keep both spin and runtime lower.
    const auto& mix = workload::findMix("mix8");
    const auto apps =
        harness::mixApps(mix, workload::Scenario::kOblivious);
    const machine::PowerModel pm;
    const sched::Scheduler sched;
    ExperimentOptions opts;
    opts.capWatts = 140.0;
    for (const auto& app : apps) {
        const auto oracle = capping::searchOptimal(sched, pm, {app}, 140.0);
        opts.workItems.push_back(oracle.appItemsPerSec[0] * 120.0);
    }
    const auto rapl = runExperiment(GovernorKind::kRapl, apps, opts);
    const auto pupil = runExperiment(GovernorKind::kPupil, apps, opts);

    EXPECT_GT(rapl.spinPercent, 25.0);
    // Weighted speedup: PUPiL completes the mix meaningfully faster.
    double wsRapl = 0.0;
    double wsPupil = 0.0;
    for (size_t i = 0; i < apps.size(); ++i) {
        wsRapl += 120.0 / rapl.completionTimes[i];
        wsPupil += 120.0 / pupil.completionTimes[i];
    }
    EXPECT_GT(wsPupil, wsRapl * 1.15);
}

TEST(Integration, EnergyEfficiencyFollowsPerformance)
{
    // Section 5.5: by raising performance under the same cap, PUPiL also
    // delivers more work per joule than RAPL.
    const auto opts = options(140.0, 200.0, 80.0);
    const auto rapl =
        runExperiment(GovernorKind::kRapl, singleApp("kmeans"), opts);
    const auto pupil =
        runExperiment(GovernorKind::kPupil, singleApp("kmeans"), opts);
    EXPECT_GT(pupil.perfPerJoule, rapl.perfPerJoule * 1.05);
}

TEST(Integration, DynamicCapDropIsReEnforced)
{
    // A power emergency: the cap drops mid-run; hardware re-clamps within
    // a second under PUPiL.
    std::vector<sched::AppDemand> apps = singleApp("swaptions");
    sim::PlatformOptions popts;
    popts.seed = 31;
    sim::Platform platform(popts, apps);
    platform.warmStart(machine::maximalConfig());
    rapl::RaplController rapl;
    auto pupil = harness::makeGovernor(GovernorKind::kPupil);
    pupil->attachRapl(&rapl);
    pupil->setCap(180.0);
    platform.addActor(&rapl);
    platform.addActor(pupil.get());
    platform.run(60.0);
    EXPECT_LE(platform.truePower(), 184.0);
    // Emergency: drop to 100 W through the hardware interface.
    rapl.setTotalCapEvenSplit(100.0);
    platform.run(62.0);
    EXPECT_LE(platform.truePower(), 103.0);
}

}  // namespace
}  // namespace pupil
