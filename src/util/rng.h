#ifndef PUPIL_UTIL_RNG_H_
#define PUPIL_UTIL_RNG_H_

#include <cstdint>

namespace pupil::util {

/**
 * Deterministic pseudo-random number generator (xoshiro256** seeded by
 * SplitMix64).
 *
 * All stochastic behaviour in the simulator (sensor noise, transient
 * outliers, random mix selection) flows from instances of this class so
 * every experiment is reproducible bit-for-bit from its seed.
 */
class Rng
{
  public:
    /** Construct a generator from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached second variate). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Split off an independent generator (for per-component streams). */
    Rng split();

  private:
    uint64_t state_[4];
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

}  // namespace pupil::util

#endif  // PUPIL_UTIL_RNG_H_
