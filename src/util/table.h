#ifndef PUPIL_UTIL_TABLE_H_
#define PUPIL_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace pupil::util {

/**
 * ASCII table formatter used by the bench binaries to print the paper's
 * tables and figure series in a readable, diffable layout.
 *
 * Columns are sized to fit the widest cell; numeric cells are produced by
 * the caller (use cell() helpers for consistent precision).
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line before the next row. */
    void addSeparator();

    /** Render the table to a stream. */
    void print(std::ostream& os) const;

    /** Render the table to a string. */
    std::string toString() const;

    /** Format a double with the given number of decimals. */
    static std::string cell(double v, int decimals = 2);

    /** Format an integer cell. */
    static std::string cell(long long v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace pupil::util

#endif  // PUPIL_UTIL_TABLE_H_
