#ifndef PUPIL_UTIL_CSV_H_
#define PUPIL_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace pupil::util {

/**
 * Small CSV writer for experiment traces (e.g. Fig. 1 time series).
 *
 * Values containing commas, quotes, or newlines are quoted per RFC 4180.
 * The file is flushed and closed on destruction (RAII).
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing and emit the header row.
     * ok() reports whether the file opened successfully.
     */
    CsvWriter(const std::string& path, std::vector<std::string> header);

    /** Whether the output file is open and healthy. */
    bool ok() const { return static_cast<bool>(out_); }

    /** Write one row of string cells. */
    void row(const std::vector<std::string>& cells);

    /** Write one row of numeric cells. */
    void row(const std::vector<double>& cells);

  private:
    static std::string escape(const std::string& cell);

    std::ofstream out_;
    size_t columns_;
};

}  // namespace pupil::util

#endif  // PUPIL_UTIL_CSV_H_
