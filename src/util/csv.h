#ifndef PUPIL_UTIL_CSV_H_
#define PUPIL_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace pupil::util {

/**
 * RFC 4180 field escaping, shared by every CSV producer in the tree
 * (CsvWriter, the trace exporter): a field containing a comma, double
 * quote, newline, or carriage return is wrapped in double quotes with
 * embedded quotes doubled; anything else passes through unchanged.
 */
std::string csvEscape(std::string_view field);

/**
 * Inverse of csvEscape over one logical record: split @p record into its
 * fields, honoring quoted fields (embedded commas, doubled quotes, and
 * newlines inside quotes). @p record is the full text of one record --
 * which may span multiple physical lines -- without its terminating
 * newline. Malformed quoting is tolerated leniently (bytes are kept), so
 * the parse never fails; round-tripping csvEscape'd fields is exact.
 */
std::vector<std::string> csvSplitRecord(std::string_view record);

/**
 * Small CSV writer for experiment traces (e.g. Fig. 1 time series).
 *
 * Values containing commas, quotes, or newlines are quoted per RFC 4180.
 * The file is flushed and closed on destruction (RAII).
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing and emit the header row.
     * ok() reports whether the file opened successfully.
     */
    CsvWriter(const std::string& path, std::vector<std::string> header);

    /** Whether the output file is open and healthy. */
    bool ok() const { return static_cast<bool>(out_); }

    /** Write one row of string cells. */
    void row(const std::vector<std::string>& cells);

    /** Write one row of numeric cells. */
    void row(const std::vector<double>& cells);

  private:
    std::ofstream out_;
    size_t columns_;
};

}  // namespace pupil::util

#endif  // PUPIL_UTIL_CSV_H_
