#ifndef PUPIL_UTIL_STATS_H_
#define PUPIL_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace pupil::util {

/**
 * Streaming mean/variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long runs; used by sensors and the settling-time
 * detector to summarize measurement windows.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Remove all observations. */
    void reset();

    /** Number of observations so far. */
    size_t count() const { return count_; }

    /** Arithmetic mean; 0 if empty. */
    double mean() const { return count_ > 0 ? mean_ : 0.0; }

    /** Population variance; 0 if fewer than 2 observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf if empty. */
    double min() const { return min_; }

    /** Largest observation; -inf if empty. */
    double max() const { return max_; }

  private:
    size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;
};

/** Arithmetic mean of a vector; 0 if empty. */
double mean(const std::vector<double>& xs);

/** Population standard deviation of a vector; 0 if empty. */
double stddev(const std::vector<double>& xs);

/**
 * Harmonic mean of a vector; 0 if empty or if any element is <= 0.
 *
 * This is the summary statistic the paper uses for Table 3 ("Comparison of
 * Harmonic Mean Performance").
 */
double harmonicMean(const std::vector<double>& xs);

/** Geometric mean of a vector of positive values; 0 if empty. */
double geometricMean(const std::vector<double>& xs);

/**
 * Linear-interpolated percentile, p in [0, 100]. Sorts a copy of the input.
 * Returns 0 if empty.
 */
double percentile(std::vector<double> xs, double p);

}  // namespace pupil::util

#endif  // PUPIL_UTIL_STATS_H_
