#include "rng.h"

#include <cmath>

namespace pupil::util {

namespace {

/** SplitMix64 step, used to expand seeds into full generator state. */
uint64_t
splitMix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& word : state_)
        word = splitMix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // Use the top 53 bits for a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % n;
    }
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(theta);
    hasCachedGaussian_ = true;
    return radius * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

}  // namespace pupil::util
