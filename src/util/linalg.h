#ifndef PUPIL_UTIL_LINALG_H_
#define PUPIL_UTIL_LINALG_H_

#include <cstddef>
#include <vector>

namespace pupil::util {

/**
 * Minimal dense row-major matrix of doubles.
 *
 * Only the operations needed by the Soft-Modeling regression baseline are
 * provided: construction, element access, transpose-products, and a linear
 * solver. This is intentionally tiny; it is not a general linear-algebra
 * library.
 */
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix of zeros. */
    Matrix(size_t rows, size_t cols);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** A^T * A (cols x cols). */
    Matrix gram() const;

    /** A^T * y for a vector y with rows() entries. */
    std::vector<double> transposeTimes(const std::vector<double>& y) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve the square system A x = b with Gaussian elimination and partial
 * pivoting. Returns false (and leaves x unspecified) if A is singular to
 * working precision.
 */
bool solveLinearSystem(Matrix a, std::vector<double> b,
                       std::vector<double>& x);

/**
 * Ordinary least squares with optional ridge regularization:
 * minimizes ||X beta - y||^2 + lambda ||beta||^2.
 *
 * @param x      design matrix (n samples x d features)
 * @param y      targets (n entries)
 * @param lambda ridge coefficient (0 for plain OLS)
 * @param beta   output coefficients (d entries)
 * @return false if the normal equations are singular.
 */
bool leastSquares(const Matrix& x, const std::vector<double>& y,
                  double lambda, std::vector<double>& beta);

}  // namespace pupil::util

#endif  // PUPIL_UTIL_LINALG_H_
