#ifndef PUPIL_UTIL_LOG_H_
#define PUPIL_UTIL_LOG_H_

#include <sstream>
#include <string>

namespace pupil::util {

/** Severity levels for the simulator's diagnostic log. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/**
 * Process-wide minimum level; messages below it are dropped.
 * Defaults to kWarn so library users see only problems unless they opt in.
 */
void setLogLevel(LogLevel level);

/** Current minimum level. */
LogLevel logLevel();

/** Emit a message at @p level to stderr (if enabled). */
void logMessage(LogLevel level, const std::string& message);

/**
 * Stream-style log statement: Log(LogLevel::kInfo) << "x=" << x;
 * The message is emitted when the temporary is destroyed.
 */
class Log
{
  public:
    explicit Log(LogLevel level) : level_(level) {}

    Log(const Log&) = delete;
    Log& operator=(const Log&) = delete;

    ~Log() { logMessage(level_, stream_.str()); }

    template <typename T>
    Log&
    operator<<(const T& value)
    {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream stream_;
};

}  // namespace pupil::util

#endif  // PUPIL_UTIL_LOG_H_
