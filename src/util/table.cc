#include "table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace pupil::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

void
Table::print(std::ostream& os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto printSeparator = [&] {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto printRow = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : "";
            os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
               << text << ' ';
        }
        os << "|\n";
    };

    printSeparator();
    printRow(headers_);
    printSeparator();
    for (const auto& row : rows_) {
        if (row.empty())
            printSeparator();
        else
            printRow(row);
    }
    printSeparator();
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
Table::cell(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
Table::cell(long long v)
{
    return std::to_string(v);
}

}  // namespace pupil::util
