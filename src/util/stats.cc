#include "stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pupil::util {

void
OnlineStats::add(double x)
{
    if (count_ == 0) {
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::reset()
{
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    const double mu = mean(xs);
    double sum = 0.0;
    for (double x : xs)
        sum += (x - mu) * (x - mu);
    return std::sqrt(sum / static_cast<double>(xs.size()));
}

double
harmonicMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / sum;
}

double
geometricMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank =
        (p / 100.0) * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(rank));
    const size_t hi = static_cast<size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace pupil::util
