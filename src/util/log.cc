#include "log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pupil::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string& message)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    // Compose first and emit under a lock so messages from concurrent
    // sweep workers land on stderr as whole lines.
    std::string line;
    line.reserve(message.size() + 16);
    line.append("[pupil ").append(levelName(level)).append("] ");
    line.append(message).push_back('\n');
    static std::mutex sinkMutex;
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::cerr << line;
}

}  // namespace pupil::util
