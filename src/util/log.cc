#include "log.h"

#include <atomic>
#include <iostream>

namespace pupil::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string& message)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::cerr << "[pupil " << levelName(level) << "] " << message << '\n';
}

}  // namespace pupil::util
