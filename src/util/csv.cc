#include "csv.h"

#include <cassert>
#include <sstream>

namespace pupil::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size())
{
    if (out_)
        row(header);
}

void
CsvWriter::row(const std::vector<std::string>& cells)
{
    assert(cells.size() == columns_);
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::row(const std::vector<double>& cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream oss;
        oss << v;
        text.push_back(oss.str());
    }
    row(text);
}

std::string
CsvWriter::escape(const std::string& cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

}  // namespace pupil::util
