#include "csv.h"

#include <cassert>
#include <sstream>

namespace pupil::util {

std::string
csvEscape(std::string_view field)
{
    if (field.find_first_of(",\"\n\r") == std::string_view::npos)
        return std::string(field);
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

std::vector<std::string>
csvSplitRecord(std::string_view record)
{
    std::vector<std::string> fields;
    std::string current;
    bool inQuotes = false;
    for (size_t i = 0; i < record.size(); ++i) {
        const char c = record[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < record.size() && record[i + 1] == '"') {
                    current += '"';  // doubled quote inside a quoted field
                    ++i;
                } else {
                    inQuotes = false;
                }
            } else {
                current += c;
            }
        } else if (c == '"' && current.empty()) {
            // Opening quote (only significant at the start of a field;
            // a stray quote mid-field is kept as data, leniently).
            inQuotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += c;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size())
{
    if (out_)
        row(header);
}

void
CsvWriter::row(const std::vector<std::string>& cells)
{
    assert(cells.size() == columns_);
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out_ << ',';
        out_ << csvEscape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::row(const std::vector<double>& cells)
{
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream oss;
        oss << v;
        text.push_back(oss.str());
    }
    row(text);
}

}  // namespace pupil::util
