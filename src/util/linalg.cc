#include "linalg.h"

#include <cassert>
#include <cmath>

namespace pupil::util {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::gram() const
{
    Matrix g(cols_, cols_);
    for (size_t i = 0; i < cols_; ++i) {
        for (size_t j = i; j < cols_; ++j) {
            double sum = 0.0;
            for (size_t r = 0; r < rows_; ++r)
                sum += at(r, i) * at(r, j);
            g.at(i, j) = sum;
            g.at(j, i) = sum;
        }
    }
    return g;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double>& y) const
{
    assert(y.size() == rows_);
    std::vector<double> out(cols_, 0.0);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out[c] += at(r, c) * y[r];
    return out;
}

bool
solveLinearSystem(Matrix a, std::vector<double> b, std::vector<double>& x)
{
    const size_t n = a.rows();
    if (n == 0 || a.cols() != n || b.size() != n)
        return false;

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting: find the largest remaining entry in this column.
        size_t pivot = col;
        double best = std::fabs(a.at(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a.at(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-12)
            return false;
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a.at(col, c), a.at(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) / a.at(col, col);
            if (factor == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a.at(r, c) -= factor * a.at(col, c);
            b[r] -= factor * b[col];
        }
    }

    // Back substitution.
    x.assign(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double sum = b[i];
        for (size_t c = i + 1; c < n; ++c)
            sum -= a.at(i, c) * x[c];
        x[i] = sum / a.at(i, i);
    }
    return true;
}

bool
leastSquares(const Matrix& x, const std::vector<double>& y, double lambda,
             std::vector<double>& beta)
{
    Matrix gram = x.gram();
    for (size_t i = 0; i < gram.rows(); ++i)
        gram.at(i, i) += lambda;
    return solveLinearSystem(std::move(gram), x.transposeTimes(y), beta);
}

}  // namespace pupil::util
