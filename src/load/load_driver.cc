#include "load_driver.h"

#include <algorithm>
#include <cassert>

#include "sim/platform.h"
#include "trace/trace.h"

namespace pupil::load {

LoadDriver::LoadDriver(const Options& options, size_t firstSlot,
                       uint64_t seed)
    : options_(options),
      firstSlot_(firstSlot),
      generator_(options.spec, seed),
      queue_(options.queueCapacityPerTier),
      arbiter_(options.arbiter)
{
    options_.slots = std::max<size_t>(options_.slots, 1);
    options_.driverPeriodSec = std::max(options_.driverPeriodSec, 1e-3);
    options_.arbiterPeriodSec =
        std::max(options_.arbiterPeriodSec, options_.driverPeriodSec);
    slots_.resize(options_.slots);
    // Until the first arbitration every tier may use the whole block.
    limit_.fill(int(options_.slots));
}

int
LoadDriver::runningJobs() const
{
    int running = 0;
    for (const Slot& slot : slots_)
        running += slot.busy ? 1 : 0;
    return running;
}

int
LoadDriver::freeSlot() const
{
    for (size_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].busy)
            return int(s);
    }
    return -1;
}

void
LoadDriver::onStart(sim::Platform& platform)
{
    (void)platform;
    assert(governor_ != nullptr &&
           "attachGovernor must be called before the run");
    nextArbiterSec_ = 0.0;
}

void
LoadDriver::reapCompletions(sim::Platform& platform, double now)
{
    for (size_t s = 0; s < slots_.size(); ++s) {
        Slot& slot = slots_[s];
        if (!slot.busy)
            continue;
        const size_t app = firstSlot_ + s;
        const double doneAt = platform.completionTime(app);
        if (doneAt < 0.0)
            continue;
        const double latency = doneAt - slot.job.arriveSec;
        const bool violated =
            tracker_.onComplete(slot.job.tier, latency, slot.job.sloSec);
        trace::emit(platform.trace(), now, trace::EventKind::kJobComplete,
                    latency, slot.job.sloSec, int32_t(slot.job.tier),
                    violated ? 1 : 0);
        platform.metrics().addCounter("load.jobs_completed");
        platform.metrics().observe("load.latency_sec", latency);
        if (violated) {
            trace::emit(platform.trace(), now,
                        trace::EventKind::kSloViolation, latency,
                        slot.job.sloSec, int32_t(slot.job.tier),
                        int32_t(app));
            platform.metrics().addCounter("load.slo_violations");
        }
        const size_t tier = size_t(slot.job.tier);
        running_[tier] = std::max(0, running_[tier] - 1);
        runningWork_[tier] =
            std::max(0.0, runningWork_[tier] - slot.job.workItems);
        platform.releaseAppSlot(app);
        slot.busy = false;
    }
}

void
LoadDriver::ingestArrivals(sim::Platform& platform, double now)
{
    while (generator_.peekArriveSec() <= now) {
        const TenantJob job = generator_.next();
        tracker_.onArrive(job.tier);
        platform.metrics().addCounter("load.jobs_arrived");
        const bool queued = queue_.push(job);
        trace::emit(platform.trace(), now, trace::EventKind::kJobArrive,
                    job.workItems, job.sloSec, int32_t(job.tier),
                    int32_t(queue_.depth(job.tier)));
        if (!queued) {
            // Open-loop shedding: a full tier ring drops the arrival,
            // which scores as a violation (the tenant was not served).
            tracker_.onDrop(job.tier);
            platform.metrics().addCounter("load.jobs_dropped");
            trace::emit(platform.trace(), now,
                        trace::EventKind::kSloViolation, 0.0, job.sloSec,
                        int32_t(job.tier), -1);
            platform.metrics().addCounter("load.slo_violations");
        }
    }
}

void
LoadDriver::arbitrate(sim::Platform& platform, double now)
{
    if (now + 1e-12 < nextArbiterSec_)
        return;
    nextArbiterSec_ = now + options_.arbiterPeriodSec;

    std::array<double, kTierCount> demand;
    for (int t = 0; t < kTierCount; ++t)
        demand[size_t(t)] =
            queue_.queuedWork(Tier(t)) + runningWork_[size_t(t)];
    grants_ = arbiter_.split(governor_->cap(), demand);

    // Grants -> per-tier concurrency limits over the slot block, by
    // largest remainder so the limits sum to the block size exactly.
    double grantSum = 0.0;
    for (const double g : grants_)
        grantSum += g;
    if (grantSum <= 0.0) {
        limit_.fill(int(options_.slots));
    } else {
        std::array<double, kTierCount> frac;
        int assigned = 0;
        for (int t = 0; t < kTierCount; ++t) {
            const double ideal =
                double(options_.slots) * grants_[size_t(t)] / grantSum;
            limit_[size_t(t)] = int(ideal);
            frac[size_t(t)] = ideal - double(limit_[size_t(t)]);
            assigned += limit_[size_t(t)];
        }
        // Leftover slots go to the largest fractional share; ties break
        // toward the higher-priority (lower-index) tier.
        while (assigned < int(options_.slots)) {
            int best = 0;
            for (int t = 1; t < kTierCount; ++t) {
                if (frac[size_t(t)] > frac[size_t(best)] + 1e-12)
                    best = t;
            }
            frac[size_t(best)] = -1.0;
            ++limit_[size_t(best)];
            ++assigned;
        }
        // A granted tier is never limited to zero slots: the floor
        // guarantee must survive quantization.
        for (int t = 0; t < kTierCount; ++t) {
            if (grants_[size_t(t)] > 0.0)
                limit_[size_t(t)] = std::max(limit_[size_t(t)], 1);
        }
    }
    telemetry::MetricsRegistry& metrics = platform.metrics();
    metrics.setGauge("load.grant.gold", grants_[0]);
    metrics.setGauge("load.grant.silver", grants_[1]);
    metrics.setGauge("load.grant.bronze", grants_[2]);
    metrics.setGauge("load.queue_depth", double(queue_.totalDepth()));
}

bool
LoadDriver::bindNext(sim::Platform& platform, double now, Tier tier)
{
    const int s = freeSlot();
    if (s < 0)
        return false;
    TenantJob job;
    if (!queue_.pop(tier, job))
        return false;
    Slot& slot = slots_[size_t(s)];
    slot.busy = true;
    slot.job = job;
    slot.startSec = now;
    platform.bindAppSlot(firstSlot_ + size_t(s), job.params, job.threads,
                         job.workItems);
    tracker_.onAdmit(tier, now - job.arriveSec);
    ++running_[size_t(tier)];
    runningWork_[size_t(tier)] += job.workItems;
    return true;
}

void
LoadDriver::admit(sim::Platform& platform, double now)
{
    // Strict pass: per-tier concurrency limits from the arbiter grants,
    // highest priority first -- under contention gold's floor translates
    // into guaranteed slots.
    for (int t = 0; t < kTierCount; ++t) {
        const Tier tier = Tier(t);
        while (running_[size_t(t)] < limit_[size_t(t)] &&
               queue_.depth(tier) > 0) {
            if (!bindNext(platform, now, tier))
                return;
        }
    }
    // Work-conserving pass: spare slots are never left idle while work
    // is queued (the limits only bite when tiers actually contend).
    for (int t = 0; t < kTierCount; ++t) {
        const Tier tier = Tier(t);
        while (queue_.depth(tier) > 0) {
            if (!bindNext(platform, now, tier))
                return;
        }
    }
}

void
LoadDriver::onTick(sim::Platform& platform, double now)
{
    reapCompletions(platform, now);
    ingestArrivals(platform, now);
    arbitrate(platform, now);
    admit(platform, now);
}

void
LoadDriver::finish(sim::Platform& platform)
{
    assert(!finished_ && "finish() must run exactly once");
    finished_ = true;
    const double now = platform.now();
    // Completions that landed between the last driver tick and the end
    // of the run still count as completions, not abandonments.
    reapCompletions(platform, now);

    // In-flight and queued jobs already past their SLO can never meet
    // it: score them as abandoned violations with their right-censored
    // latency. Jobs still inside their SLO window are left unscored (an
    // open-loop run always truncates some tail work).
    for (Slot& slot : slots_) {
        if (!slot.busy)
            continue;
        const double age = now - slot.job.arriveSec;
        if (age > slot.job.sloSec) {
            tracker_.onAbandon(slot.job.tier, age);
            trace::emit(platform.trace(), now,
                        trace::EventKind::kSloViolation, age,
                        slot.job.sloSec, int32_t(slot.job.tier), -2);
            platform.metrics().addCounter("load.slo_violations");
        }
    }
    for (int t = 0; t < kTierCount; ++t) {
        const Tier tier = Tier(t);
        TenantJob job;
        while (queue_.depth(tier) > 0 &&
               now - queue_.front(tier).arriveSec >
                   queue_.front(tier).sloSec) {
            queue_.pop(tier, job);
            tracker_.onAbandon(tier, now - job.arriveSec);
            trace::emit(platform.trace(), now,
                        trace::EventKind::kSloViolation,
                        now - job.arriveSec, job.sloSec, int32_t(tier),
                        -3);
            platform.metrics().addCounter("load.slo_violations");
        }
    }
    tracker_.publish(platform.metrics());
}

}  // namespace pupil::load
