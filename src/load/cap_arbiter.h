#ifndef PUPIL_LOAD_CAP_ARBITER_H_
#define PUPIL_LOAD_CAP_ARBITER_H_

#include <array>

#include "load/traffic.h"

namespace pupil::slo {

/**
 * SLO-aware cap arbitration: splits one node's power cap across tenant
 * tiers, FastCap-style -- demand-weighted fair shares with protected
 * floors for high-priority tiers -- instead of the pure max-throughput
 * objective the governors optimize below it.
 *
 * Invariants (pinned by the ~100-case property suite):
 *  - conservation: the grants sum to exactly the cap while any tier has
 *    demand, and never exceed it;
 *  - no starvation: a tier with nonzero demand is never granted less
 *    than its floor (floorFrac * cap), unless the active floors alone
 *    oversubscribe the cap, in which case every floor is scaled by the
 *    same factor (the relative protection ordering survives);
 *  - no stranding: tiers with zero demand are granted nothing; their
 *    watts flow to the active tiers.
 *
 * Above the floors, the residual cap is divided in proportion to
 * priority weight x demand -- FastCap's insight that fair allocation
 * should follow *demand*, not a static split, carried from per-core
 * frequency budgets up to per-tenant power budgets.
 *
 * The arbiter is pure arithmetic over plain arrays (no allocation, no
 * RNG): LoadDriver runs it every arbiter period against the live cap of
 * the node's governor, so cluster-level grant changes (BudgetTree cap
 * pushes) propagate into tenant scheduling within one period.
 */
class CapArbiter
{
  public:
    struct Options
    {
        /** Priority weight of each tier's demand above the floors. */
        std::array<double, load::kTierCount> weight = {4.0, 2.0, 1.0};
        /**
         * Protected floor of a nonzero-demand tier, as a fraction of
         * the cap. Zero-demand tiers forfeit their floor entirely.
         */
        std::array<double, load::kTierCount> floorFrac = {0.25, 0.10, 0.05};
    };

    CapArbiter() : CapArbiter(Options()) {}
    explicit CapArbiter(const Options& options);

    /**
     * Split @p capWatts across the tiers given their demand signals
     * (any nonnegative units -- queued + running work items here; only
     * ratios and zero/nonzero matter).
     */
    std::array<double, load::kTierCount> split(
        double capWatts,
        const std::array<double, load::kTierCount>& demand) const;

    const Options& options() const { return options_; }

  private:
    Options options_;
};

}  // namespace pupil::slo

#endif  // PUPIL_LOAD_CAP_ARBITER_H_
