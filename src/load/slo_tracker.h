#ifndef PUPIL_LOAD_SLO_TRACKER_H_
#define PUPIL_LOAD_SLO_TRACKER_H_

#include <array>
#include <cstdint>

#include "load/traffic.h"
#include "telemetry/metrics.h"

namespace pupil::load {

/**
 * Per-tenant-tier SLO accounting: arrivals, admissions, completions,
 * drops, and latency distributions, scored against each job's latency
 * target.
 *
 * Latencies are recorded into fixed geometric-bucket histograms (one per
 * tier plus a pooled one), allocated at construction, so recording is a
 * couple of stores on the tick path. Tail quantiles (p99) are read from
 * the buckets -- deterministic, allocation-free, and precise to one
 * bucket width (~12% geometric spacing).
 *
 * A job is *scored* when its outcome is known: it completed, it was
 * dropped by a full admission queue, or the run ended with the job
 * overdue (abandoned). The violation rate is violations / scored, where
 * late completions, drops, and overdue abandonments all violate --
 * open-loop load shed at the queue is a miss, not a free pass.
 */
class SloTracker
{
  public:
    SloTracker();

    void onArrive(Tier tier);
    /** Admission after @p waitSec in the queue. */
    void onAdmit(Tier tier, double waitSec);
    /** Completion at @p latencySec against @p sloSec; true = violated. */
    bool onComplete(Tier tier, double latencySec, double sloSec);
    /** Arrival shed because the admission queue was full. */
    void onDrop(Tier tier);
    /**
     * Run ended with the job unfinished and already past its SLO; its
     * (right-censored) latency still enters the histogram.
     */
    void onAbandon(Tier tier, double latencySec);

    uint64_t arrivals(Tier tier) const { return tiers_[size_t(tier)].arrivals; }
    uint64_t admitted(Tier tier) const { return tiers_[size_t(tier)].admitted; }
    uint64_t completions(Tier tier) const
    {
        return tiers_[size_t(tier)].completions;
    }
    uint64_t violations(Tier tier) const
    {
        return tiers_[size_t(tier)].violations;
    }
    uint64_t drops(Tier tier) const { return tiers_[size_t(tier)].drops; }

    uint64_t totalArrivals() const;
    uint64_t totalCompletions() const;
    uint64_t totalViolations() const;
    uint64_t totalDrops() const;
    /** Jobs with a known outcome (completed + dropped + abandoned). */
    uint64_t totalScored() const;

    /** p99 latency of @p tier (seconds; 0 with no samples). */
    double p99LatencySec(Tier tier) const;
    /** Pooled p99 latency across every tier. */
    double p99LatencySec() const;
    double meanLatencySec(Tier tier) const;
    double meanQueueWaitSec(Tier tier) const;

    double violationRate(Tier tier) const;
    /** violations / scored across all tiers (0 when nothing scored). */
    double violationRate() const;

    /**
     * Publish the accounting as load.* gauges/histogram summaries into
     * @p metrics (load.arrivals, load.violation_rate, load.gold.p99_sec,
     * ...). Called once at end of run by LoadDriver::finish.
     */
    void publish(telemetry::MetricsRegistry& metrics) const;

  private:
    /** Geometric latency buckets: kLatMin * kLatGrowth^i, i < kBuckets. */
    static constexpr int kBuckets = 96;
    static constexpr double kLatMinSec = 0.01;
    static constexpr double kLatGrowth = 1.125;

    struct Histogram
    {
        std::array<uint64_t, kBuckets> counts = {};
        uint64_t total = 0;
        double sum = 0.0;
        void record(double latencySec);
        double p99() const;
        double mean() const { return total > 0 ? sum / double(total) : 0.0; }
    };

    struct TierStats
    {
        uint64_t arrivals = 0;
        uint64_t admitted = 0;
        uint64_t completions = 0;
        uint64_t violations = 0;
        uint64_t drops = 0;
        uint64_t abandoned = 0;
        double waitSum = 0.0;
        Histogram latency;
    };

    std::array<TierStats, kTierCount> tiers_;
    Histogram pooled_;
};

}  // namespace pupil::load

#endif  // PUPIL_LOAD_SLO_TRACKER_H_
