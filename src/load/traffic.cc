#include "traffic.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workload/catalog.h"

namespace pupil::load {

const char*
tierName(Tier tier)
{
    switch (tier) {
      case Tier::kGold: return "gold";
      case Tier::kSilver: return "silver";
      case Tier::kBronze: return "bronze";
    }
    return "?";
}

const char*
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::kPoisson: return "poisson";
      case ArrivalKind::kDiurnal: return "diurnal";
      case ArrivalKind::kFlashCrowd: return "flash-crowd";
    }
    return "?";
}

const std::vector<ArrivalKind>&
allArrivalKinds()
{
    static const std::vector<ArrivalKind> kinds = {
        ArrivalKind::kPoisson, ArrivalKind::kDiurnal,
        ArrivalKind::kFlashCrowd,
    };
    return kinds;
}

ArrivalGenerator::ArrivalGenerator(const TrafficSpec& spec, uint64_t seed)
    : spec_(spec), rng_(seed)
{
    spec_.ratePerSec = std::max(spec_.ratePerSec, 1e-6);
    spec_.diurnalDepth = std::clamp(spec_.diurnalDepth, 0.0, 0.95);
    spec_.flashMultiplier = std::max(spec_.flashMultiplier, 1.0);
    spec_.meanWorkItems = std::max(spec_.meanWorkItems, spec_.minWorkItems);

    const std::vector<std::string>& names =
        spec_.apps.empty() ? workload::raplUnfriendlySet() : spec_.apps;
    for (const std::string& name : names)
        apps_.push_back(&workload::findBenchmark(name));
    assert(!apps_.empty());

    double total = 0.0;
    for (const double share : spec_.tierShare)
        total += std::max(share, 0.0);
    double cum = 0.0;
    for (int t = 0; t < kTierCount; ++t) {
        cum += std::max(spec_.tierShare[t], 0.0);
        tierCdf_[t] = total > 0.0 ? cum / total : double(t + 1) / kTierCount;
    }
    tierCdf_[kTierCount - 1] = 1.0;

    switch (spec_.kind) {
      case ArrivalKind::kPoisson:
        peakRate_ = spec_.ratePerSec;
        break;
      case ArrivalKind::kDiurnal:
        peakRate_ = spec_.ratePerSec * (1.0 + spec_.diurnalDepth);
        break;
      case ArrivalKind::kFlashCrowd:
        peakRate_ = spec_.ratePerSec * spec_.flashMultiplier;
        break;
    }
    advance();
}

double
ArrivalGenerator::rateAt(double t) const
{
    switch (spec_.kind) {
      case ArrivalKind::kPoisson:
        return spec_.ratePerSec;
      case ArrivalKind::kDiurnal:
        return spec_.ratePerSec *
               (1.0 + spec_.diurnalDepth *
                          std::sin(2.0 * M_PI * t / spec_.diurnalPeriodSec));
      case ArrivalKind::kFlashCrowd: {
        const bool inFlash = t >= spec_.flashStartSec &&
                             t < spec_.flashStartSec + spec_.flashDurationSec;
        return spec_.ratePerSec * (inFlash ? spec_.flashMultiplier : 1.0);
      }
    }
    return spec_.ratePerSec;
}

void
ArrivalGenerator::advance()
{
    // Thinning (Lewis & Shedler): homogeneous candidates at the peak
    // rate, accepted with probability rate(t)/peak. The acceptance draw
    // happens for every candidate, accepted or not, so the stream is a
    // pure function of (spec, seed).
    for (;;) {
        clock_ += -std::log(1.0 - rng_.uniform()) / peakRate_;
        const double accept = rng_.uniform();
        if (accept * peakRate_ > rateAt(clock_))
            continue;

        TenantJob job;
        job.arriveSec = clock_;
        const double tierDraw = rng_.uniform();
        int tier = 0;
        while (tier < kTierCount - 1 && tierDraw >= tierCdf_[tier])
            ++tier;
        job.tier = Tier(tier);
        job.sloSec = spec_.tierSloSec[tier];
        job.params = apps_[rng_.uniformInt(apps_.size())];
        job.threads = spec_.threadsPerJob;
        const double extra = spec_.meanWorkItems - spec_.minWorkItems;
        job.workItems =
            spec_.minWorkItems - std::log(1.0 - rng_.uniform()) * extra;
        pending_ = job;
        return;
    }
}

TenantJob
ArrivalGenerator::next()
{
    const TenantJob job = pending_;
    ++emitted_;
    advance();
    return job;
}

}  // namespace pupil::load
