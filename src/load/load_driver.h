#ifndef PUPIL_LOAD_LOAD_DRIVER_H_
#define PUPIL_LOAD_LOAD_DRIVER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "capping/governor.h"
#include "load/admission.h"
#include "load/cap_arbiter.h"
#include "load/slo_tracker.h"
#include "load/traffic.h"
#include "sim/actor.h"

namespace pupil::load {

/**
 * The open-loop tenant traffic actor: pulls jobs from a seed-
 * deterministic ArrivalGenerator, queues them in the AdmissionQueue,
 * binds them to a block of platform app slots, reaps completions, and
 * scores every outcome against its SLO in the SloTracker.
 *
 * Tier scheduling: every arbiterPeriodSec the slo::CapArbiter splits the
 * governor's *current* cap across tiers by live demand (queued + running
 * work). The grants become per-tier concurrency limits over the slot
 * block -- a tier granted 40% of the cap runs at most ~40% of the slots
 * -- enforced strictly first (floors protect gold under contention), then
 * relaxed work-conserving: a free slot is never left idle while any tier
 * has queued work. Governors are not bypassed: they keep enforcing the
 * total cap and optimizing the machine configuration; churn reaches them
 * as workload drift, which the walker-based governors answer with
 * Monitor-phase re-walks.
 *
 * Determinism and cost: all randomness flows from the driver seed
 * (derive it with SweepRunner::deriveSeed for sweeps), and the steady
 * tick path allocates nothing -- fixed slot array, ring-buffered queue,
 * fixed histograms, trace emission into the pre-allocated ring. With
 * Options::enabled false no driver is constructed anywhere in the stack
 * and every run is byte-identical to a build without this subsystem.
 */
class LoadDriver : public sim::Actor
{
  public:
    struct Options
    {
        /** Master switch; false = no driver, no slots, zero cost. */
        bool enabled = false;
        TrafficSpec spec;
        /** Concurrent job slots appended to the platform's app vector. */
        size_t slots = 8;
        size_t queueCapacityPerTier = AdmissionQueue::kDefaultCapacity;
        slo::CapArbiter::Options arbiter;
        /** Cap re-arbitration period (s). */
        double arbiterPeriodSec = 1.0;
        /** Arrival/reap/admission period (s). */
        double driverPeriodSec = 0.05;
        /**
         * Traffic seed. 0 = derive from the experiment/node seed (one
         * SplitMix64 stream, the SweepRunner discipline), so sweep cells
         * stay byte-identical at any thread count.
         */
        uint64_t seed = 0;
    };

    /**
     * @param firstSlot index of the first platform app slot this driver
     *        owns; it owns [firstSlot, firstSlot + options.slots).
     * @param seed resolved traffic seed (never 0 here; the caller
     *        applies the Options::seed derivation rule).
     */
    LoadDriver(const Options& options, size_t firstSlot, uint64_t seed);

    /** Cap source for the arbiter (not owned; call before the run). */
    void attachGovernor(const capping::Governor* governor)
    {
        governor_ = governor;
    }

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return options_.driverPeriodSec; }

    /**
     * End-of-run bookkeeping: reap any completions landed after the last
     * tick, score overdue in-flight and overdue queued jobs as abandoned
     * violations, and publish the load.* metrics into the platform
     * registry. Call exactly once, after Platform::run returns.
     */
    void finish(sim::Platform& platform);

    const SloTracker& tracker() const { return tracker_; }
    const AdmissionQueue& queue() const { return queue_; }
    const ArrivalGenerator& generator() const { return generator_; }
    /** Most recent per-tier cap grants (W). */
    const std::array<double, kTierCount>& grants() const { return grants_; }
    /** Jobs currently bound to slots. */
    int runningJobs() const;

    const Options& options() const { return options_; }

  private:
    struct Slot
    {
        bool busy = false;
        TenantJob job;
        double startSec = 0.0;
    };

    void reapCompletions(sim::Platform& platform, double now);
    void ingestArrivals(sim::Platform& platform, double now);
    void arbitrate(sim::Platform& platform, double now);
    void admit(sim::Platform& platform, double now);
    bool bindNext(sim::Platform& platform, double now, Tier tier);
    int freeSlot() const;

    Options options_;
    size_t firstSlot_;
    ArrivalGenerator generator_;
    AdmissionQueue queue_;
    SloTracker tracker_;
    slo::CapArbiter arbiter_;
    const capping::Governor* governor_ = nullptr;
    std::vector<Slot> slots_;
    std::array<int, kTierCount> running_ = {};
    std::array<double, kTierCount> runningWork_ = {};
    std::array<int, kTierCount> limit_ = {};
    std::array<double, kTierCount> grants_ = {};
    double nextArbiterSec_ = 0.0;
    bool finished_ = false;
};

}  // namespace pupil::load

#endif  // PUPIL_LOAD_LOAD_DRIVER_H_
