#include "admission.h"

#include <algorithm>
#include <cassert>

namespace pupil::load {

AdmissionQueue::AdmissionQueue(size_t capacityPerTier)
    : capacity_(std::max<size_t>(capacityPerTier, 1))
{
    for (Ring& ring : rings_)
        ring.slots.resize(capacity_);
}

bool
AdmissionQueue::push(const TenantJob& job)
{
    Ring& ring = rings_[size_t(job.tier)];
    if (ring.count == capacity_) {
        ++ring.dropped;
        return false;
    }
    ring.slots[(ring.head + ring.count) % capacity_] = job;
    ++ring.count;
    ring.workSum += job.workItems;
    ++pushed_;
    return true;
}

bool
AdmissionQueue::pop(Tier tier, TenantJob& out)
{
    Ring& ring = rings_[size_t(tier)];
    if (ring.count == 0)
        return false;
    out = ring.slots[ring.head];
    ring.head = (ring.head + 1) % capacity_;
    --ring.count;
    ring.workSum = std::max(0.0, ring.workSum - out.workItems);
    return true;
}

const TenantJob&
AdmissionQueue::front(Tier tier) const
{
    const Ring& ring = rings_[size_t(tier)];
    assert(ring.count > 0);
    return ring.slots[ring.head];
}

size_t
AdmissionQueue::totalDepth() const
{
    size_t total = 0;
    for (const Ring& ring : rings_)
        total += ring.count;
    return total;
}

uint64_t
AdmissionQueue::droppedTotal() const
{
    uint64_t total = 0;
    for (const Ring& ring : rings_)
        total += ring.dropped;
    return total;
}

}  // namespace pupil::load
