#include "slo_tracker.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pupil::load {

void
SloTracker::Histogram::record(double latencySec)
{
    const double clamped = std::max(latencySec, 0.0);
    int bucket = 0;
    if (clamped > kLatMinSec) {
        bucket = int(std::log(clamped / kLatMinSec) /
                     std::log(kLatGrowth)) +
                 1;
        bucket = std::min(bucket, kBuckets - 1);
    }
    ++counts[size_t(bucket)];
    ++total;
    sum += clamped;
}

double
SloTracker::Histogram::p99() const
{
    if (total == 0)
        return 0.0;
    // Smallest bucket whose cumulative count covers the 99th percentile;
    // report its upper edge (pessimistic by at most one bucket width).
    const uint64_t target =
        uint64_t(std::ceil(0.99 * double(total)));
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        seen += counts[size_t(i)];
        if (seen >= target)
            return kLatMinSec * std::pow(kLatGrowth, i);
    }
    return kLatMinSec * std::pow(kLatGrowth, kBuckets - 1);
}

SloTracker::SloTracker() = default;

void
SloTracker::onArrive(Tier tier)
{
    ++tiers_[size_t(tier)].arrivals;
}

void
SloTracker::onAdmit(Tier tier, double waitSec)
{
    TierStats& stats = tiers_[size_t(tier)];
    ++stats.admitted;
    stats.waitSum += std::max(waitSec, 0.0);
}

bool
SloTracker::onComplete(Tier tier, double latencySec, double sloSec)
{
    TierStats& stats = tiers_[size_t(tier)];
    ++stats.completions;
    stats.latency.record(latencySec);
    pooled_.record(latencySec);
    const bool violated = latencySec > sloSec;
    if (violated)
        ++stats.violations;
    return violated;
}

void
SloTracker::onDrop(Tier tier)
{
    TierStats& stats = tiers_[size_t(tier)];
    ++stats.drops;
    ++stats.violations;
}

void
SloTracker::onAbandon(Tier tier, double latencySec)
{
    TierStats& stats = tiers_[size_t(tier)];
    ++stats.abandoned;
    ++stats.violations;
    stats.latency.record(latencySec);
    pooled_.record(latencySec);
}

uint64_t
SloTracker::totalArrivals() const
{
    uint64_t total = 0;
    for (const TierStats& stats : tiers_)
        total += stats.arrivals;
    return total;
}

uint64_t
SloTracker::totalCompletions() const
{
    uint64_t total = 0;
    for (const TierStats& stats : tiers_)
        total += stats.completions;
    return total;
}

uint64_t
SloTracker::totalViolations() const
{
    uint64_t total = 0;
    for (const TierStats& stats : tiers_)
        total += stats.violations;
    return total;
}

uint64_t
SloTracker::totalDrops() const
{
    uint64_t total = 0;
    for (const TierStats& stats : tiers_)
        total += stats.drops;
    return total;
}

uint64_t
SloTracker::totalScored() const
{
    uint64_t total = 0;
    for (const TierStats& stats : tiers_)
        total += stats.completions + stats.drops + stats.abandoned;
    return total;
}

double
SloTracker::p99LatencySec(Tier tier) const
{
    return tiers_[size_t(tier)].latency.p99();
}

double
SloTracker::p99LatencySec() const
{
    return pooled_.p99();
}

double
SloTracker::meanLatencySec(Tier tier) const
{
    return tiers_[size_t(tier)].latency.mean();
}

double
SloTracker::meanQueueWaitSec(Tier tier) const
{
    const TierStats& stats = tiers_[size_t(tier)];
    return stats.admitted > 0 ? stats.waitSum / double(stats.admitted) : 0.0;
}

double
SloTracker::violationRate(Tier tier) const
{
    const TierStats& stats = tiers_[size_t(tier)];
    const uint64_t scored =
        stats.completions + stats.drops + stats.abandoned;
    return scored > 0 ? double(stats.violations) / double(scored) : 0.0;
}

double
SloTracker::violationRate() const
{
    const uint64_t scored = totalScored();
    return scored > 0 ? double(totalViolations()) / double(scored) : 0.0;
}

void
SloTracker::publish(telemetry::MetricsRegistry& metrics) const
{
    metrics.setGauge("load.arrivals", double(totalArrivals()));
    metrics.setGauge("load.completions", double(totalCompletions()));
    metrics.setGauge("load.violations", double(totalViolations()));
    metrics.setGauge("load.drops", double(totalDrops()));
    metrics.setGauge("load.scored", double(totalScored()));
    metrics.setGauge("load.violation_rate", violationRate());
    metrics.setGauge("load.p99_latency_sec", p99LatencySec());
    for (int t = 0; t < kTierCount; ++t) {
        const Tier tier = Tier(t);
        const std::string prefix = std::string("load.") + tierName(tier);
        metrics.setGauge(prefix + ".arrivals", double(arrivals(tier)));
        metrics.setGauge(prefix + ".completions",
                         double(completions(tier)));
        metrics.setGauge(prefix + ".violations", double(violations(tier)));
        metrics.setGauge(prefix + ".drops", double(drops(tier)));
        metrics.setGauge(prefix + ".violation_rate", violationRate(tier));
        metrics.setGauge(prefix + ".p99_sec", p99LatencySec(tier));
        metrics.setGauge(prefix + ".mean_latency_sec",
                         meanLatencySec(tier));
        metrics.setGauge(prefix + ".mean_wait_sec",
                         meanQueueWaitSec(tier));
    }
}

}  // namespace pupil::load
