#include "cap_arbiter.h"

#include <algorithm>

namespace pupil::slo {

CapArbiter::CapArbiter(const Options& options) : options_(options) {}

std::array<double, load::kTierCount>
CapArbiter::split(double capWatts,
                  const std::array<double, load::kTierCount>& demand) const
{
    std::array<double, load::kTierCount> grants = {};
    const double cap = std::max(capWatts, 0.0);
    if (cap <= 0.0)
        return grants;

    // Floors for active (nonzero-demand) tiers, scaled down uniformly if
    // they alone oversubscribe the cap.
    double floorSum = 0.0;
    std::array<double, load::kTierCount> floors = {};
    bool anyActive = false;
    for (int t = 0; t < load::kTierCount; ++t) {
        if (demand[t] <= 0.0)
            continue;
        anyActive = true;
        floors[t] = std::max(options_.floorFrac[t], 0.0) * cap;
        floorSum += floors[t];
    }
    if (!anyActive)
        return grants;
    if (floorSum > cap) {
        const double scale = cap / floorSum;
        for (double& f : floors)
            f *= scale;
        floorSum = cap;
    }

    // Residual divided in proportion to priority weight x demand.
    const double residual = cap - floorSum;
    double weightSum = 0.0;
    for (int t = 0; t < load::kTierCount; ++t) {
        if (demand[t] > 0.0)
            weightSum += std::max(options_.weight[t], 0.0) * demand[t];
    }
    for (int t = 0; t < load::kTierCount; ++t) {
        if (demand[t] <= 0.0)
            continue;
        const double w = std::max(options_.weight[t], 0.0) * demand[t];
        grants[t] = floors[t] +
                    (weightSum > 0.0 ? residual * w / weightSum : 0.0);
    }
    // Degenerate all-zero-weight case: hand the residual out by floor
    // proportion (or evenly when every floor is zero) so the cap is
    // never stranded while demand exists.
    if (weightSum <= 0.0 && residual > 0.0) {
        int active = 0;
        for (int t = 0; t < load::kTierCount; ++t)
            active += demand[t] > 0.0 ? 1 : 0;
        for (int t = 0; t < load::kTierCount; ++t) {
            if (demand[t] <= 0.0)
                continue;
            grants[t] += floorSum > 0.0
                             ? residual * floors[t] / floorSum
                             : residual / double(active);
        }
    }
    return grants;
}

}  // namespace pupil::slo
