#ifndef PUPIL_LOAD_ADMISSION_H_
#define PUPIL_LOAD_ADMISSION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "load/traffic.h"

namespace pupil::load {

/**
 * Bounded admission queue for tenant jobs: one fixed-capacity FIFO ring
 * per tier, allocated once at construction. push() and pop() are a few
 * stores -- no heap traffic on the tick path, the same flight-recorder
 * discipline as trace::Recorder. A job arriving to a full tier ring is
 * dropped and counted (an open-loop system sheds load; it never blocks
 * the arrival process).
 *
 * The queue also maintains the per-tier demand signals the cap arbiter
 * consumes: queued job count and queued work (sum of work items).
 */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(size_t capacityPerTier = kDefaultCapacity);

    static constexpr size_t kDefaultCapacity = 256;

    /** Enqueue @p job; false (and a drop count) when its tier is full. */
    bool push(const TenantJob& job);

    /** Dequeue the oldest job of @p tier into @p out; false when empty. */
    bool pop(Tier tier, TenantJob& out);

    /** Oldest job of @p tier without dequeuing (requires depth > 0). */
    const TenantJob& front(Tier tier) const;

    size_t capacityPerTier() const { return capacity_; }
    size_t depth(Tier tier) const { return rings_[size_t(tier)].count; }
    size_t totalDepth() const;
    bool empty() const { return totalDepth() == 0; }

    /** Sum of queued work items in @p tier (arbiter demand signal). */
    double queuedWork(Tier tier) const
    {
        return rings_[size_t(tier)].workSum;
    }

    uint64_t pushed() const { return pushed_; }
    uint64_t dropped(Tier tier) const { return rings_[size_t(tier)].dropped; }
    uint64_t droppedTotal() const;

  private:
    struct Ring
    {
        std::vector<TenantJob> slots;
        size_t head = 0;   ///< oldest element
        size_t count = 0;
        double workSum = 0.0;
        uint64_t dropped = 0;
    };

    std::array<Ring, kTierCount> rings_;
    size_t capacity_;
    uint64_t pushed_ = 0;
};

}  // namespace pupil::load

#endif  // PUPIL_LOAD_ADMISSION_H_
