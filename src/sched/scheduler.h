#ifndef PUPIL_SCHED_SCHEDULER_H_
#define PUPIL_SCHED_SCHEDULER_H_

#include <array>
#include <vector>

#include "machine/config.h"
#include "machine/power_model.h"
#include "workload/app_model.h"

namespace pupil::sched {

/** One application competing for the machine. */
struct AppDemand
{
    const workload::AppParams* params = nullptr;
    int threads = 0;
};

/** Steady-state outcome for one application. */
struct AppOutcome
{
    double itemsPerSec = 0.0;   ///< heartbeat rate (work items per second)
    double usefulIps = 0.0;     ///< useful instructions per second
    double bytesPerSec = 0.0;   ///< achieved memory traffic
    double spinCtx = 0.0;       ///< context-seconds/s burned busy-waiting
    double shareCtx = 0.0;      ///< busy context-seconds/s allocated
    double bwRetention = 1.0;   ///< fraction of ideal rate kept after
                                ///< bandwidth contention (theta)
};

/** Steady-state outcome for the whole system. */
struct SystemOutcome
{
    std::vector<AppOutcome> apps;
    std::array<machine::SocketLoad, 2> loads = {};
    double totalIps = 0.0;
    double totalBytesPerSec = 0.0;
    /** Spin cycles as a fraction of all busy cycles (paper Table 6). */
    double spinFraction = 0.0;
};

namespace detail {

/**
 * Per-app working state of one solve. Lives in a caller-owned scratch
 * arena (SolveScratch) so the hot loop never touches the heap; the
 * contents are transient and fully rewritten by every solve.
 */
struct SolveWork
{
    const workload::AppParams* p = nullptr;
    int threads = 0;
    double runnablePar = 0.0;   ///< runnable threads during parallel phase
    double runnable = 0.0;      ///< time-averaged runnable threads
    std::array<double, 2> share = {0.0, 0.0};  ///< ctx-sec/s per socket
    double shareCtx = 0.0;      ///< total allocated contexts
    double shareEquiv = 0.0;    ///< core-equivalents (HT-adjusted)
    double freq = 0.0;          ///< share-weighted effective GHz
    bool spans = false;
    double speedup = 0.0;       ///< effective speedup incl. serial stretch
    double serialSpeed = 1.0;   ///< progress speed of a serial section
    double spinTime = 0.0;      ///< wall-time fraction spent spin-waiting
    double idealIps = 0.0;
    double demandBytes = 0.0;
};

}  // namespace detail

/**
 * Caller-owned scratch arenas for Scheduler::solve. The vectors are
 * resized (never shrunk) per call, so a scratch reused across solves of
 * the same app count performs zero heap allocations after the first call.
 * One scratch belongs to one solving thread; sharing across threads is a
 * data race.
 */
struct SolveScratch
{
    std::vector<detail::SolveWork> work;
    std::vector<double> thrashWeight;
    std::vector<size_t> order;
};

/**
 * Analytic model of the OS scheduler and shared-resource contention.
 *
 * Given a machine configuration (with per-socket effective frequencies and
 * duty cycles) and a set of applications, computes the steady-state
 * throughput of each application and the load the power model needs. The
 * model captures the phenomena the paper's evaluation hinges on:
 *
 *  - CFS-like proportional CPU sharing with per-thread fairness, so
 *    oversubscription (the oblivious scenario's 128 threads on 32 contexts)
 *    shrinks every application's share;
 *  - serial-phase amplification: a serial section executes on one thread
 *    at that thread's *share* of a context, so contention stretches serial
 *    time (and with polling synchronization, the stretched section burns
 *    the app's whole share spinning -- Table 6's pathology);
 *  - hyperthread pairing: when busy contexts exceed physical cores, paired
 *    contexts contribute (1 + htYield)/2 core-equivalents each;
 *  - cross-socket penalty when an application's threads span sockets;
 *  - memory-bandwidth max-min fair sharing across the interleaved
 *    controllers (light consumers are insulated; heavy ones split the
 *    residue).
 *
 * The solve is closed-form (no iteration beyond the bandwidth water-fill)
 * and deterministic; sensor noise is layered on elsewhere.
 */
class Scheduler
{
  public:
    /** @param mcBandwidthGBs peak bandwidth of one memory controller. */
    explicit Scheduler(double mcBandwidthGBs = 40.0);

    /** Bandwidth of one controller in bytes/s. */
    double mcBandwidth() const { return mcBandwidthBytes_; }

    /**
     * Compute the steady state for @p apps on @p cfg.
     * @p duty per-socket duty cycles from RAPL T-state throttling.
     */
    SystemOutcome solve(const machine::MachineConfig& cfg,
                        const std::array<double, 2>& duty,
                        const std::vector<AppDemand>& apps) const;

    /**
     * Allocation-free form: solve into @p out using @p scratch arenas.
     * Produces bit-identical results to the returning overload; @p out is
     * fully overwritten (its vector keeps its capacity, so reusing the
     * same outcome across calls stays off the heap). This is the form the
     * simulation tick and the solve cache use on their hot paths.
     */
    void solve(const machine::MachineConfig& cfg,
               const std::array<double, 2>& duty,
               const std::vector<AppDemand>& apps, SolveScratch& scratch,
               SystemOutcome& out) const;

  private:
    double mcBandwidthBytes_;
};

}  // namespace pupil::sched

#endif  // PUPIL_SCHED_SCHEDULER_H_
