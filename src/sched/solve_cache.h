#ifndef PUPIL_SCHED_SOLVE_CACHE_H_
#define PUPIL_SCHED_SOLVE_CACHE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace pupil::sched {

/**
 * Bounded LRU memoization of Scheduler::solve.
 *
 * The decision walker re-measures every configuration it tries for a full
 * filter window (30 samples in the production PUPiL governor), its binary
 * search revisits settings, and a monitoring governor re-solves the same
 * steady state for minutes at a time -- the paper's "software exploration
 * cost". The solve is a pure function of (MachineConfig, duty, AppDemand
 * set), so those repeats can be answered from memory.
 *
 * Keying is *exact*: the key is a canonical byte encoding of every input
 * the solve reads -- the configuration knobs and app count packed into
 * one word, the two duty cycles (bit-pattern, never quantized), and per
 * app the thread count plus the AppParams *identity* (pointer) under an
 * owner-supplied invalidation epoch (setAppsEpoch). A hit therefore
 * returns bit-identical results to recomputing, which is what keeps
 * cached and uncached experiment runs byte-identical (the differential
 * tests pin this).
 *
 * The identity-keying contract: an AppParams object reached through the
 * cache must not be mutated in place, and its storage must not be reused
 * for different parameters, without bumping the epoch. The Platform
 * upholds this for free -- it already versions its app set (appsVersion_,
 * bumped by touchApps() on PhaseDriver mutations and by completions) and
 * forwards that version as the epoch. Standalone users (benches, tests)
 * that solve immutable catalog entries never need to touch the epoch.
 * Keying by identity instead of by value is what keeps the hit path
 * cheaper than the solve it memoizes: a 4-app key is 96 bytes, not 450.
 *
 * The structure is built for a hit path that undercuts even the cheap
 * single-app solve: entries live in a fixed slab addressed by index, the
 * LRU is an intrusive doubly-linked list of those indices (no per-node
 * heap traffic), and the index is an open-addressed, linear-probed table
 * at <= 25% load with backward-shift deletion -- no std::unordered_map
 * division-based bucketing, no std::list splice pointer chasing. Keys
 * hash two 64-bit lanes at a time (they are multiples of 8 bytes by
 * construction). Everything is sized at construction; once every slab
 * entry's key string has been through one insertion, hits, evictions,
 * and re-insertions perform zero heap allocations.
 *
 * One cache belongs to one solving thread (same ownership discipline as
 * the Platform it usually lives in); there is no internal locking.
 *
 * Capacity 0 disables memoization entirely: solve() degenerates to a
 * plain pass-through with no key building. The PUPIL_NO_SOLVE_CACHE
 * environment variable (any non-empty value) requests that mode globally
 * for debugging; honoring it is the owner's choice at construction time
 * (see envDisabled()).
 */
class SolveCache
{
  public:
    /** Default entry bound; ~1024 user configs exist, so this holds the
     *  walker's whole working set with room for duty-cycle variants. */
    static constexpr size_t kDefaultCapacity = 512;

    explicit SolveCache(size_t capacity = kDefaultCapacity);

    /** Cumulative cache activity since construction (never reset). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    /** Whether memoization is active (capacity > 0). */
    bool enabled() const { return capacity_ > 0; }

    size_t capacity() const { return capacity_; }

    /** Entries currently held (always <= capacity()). */
    size_t size() const { return entries_.size(); }

    const Stats& stats() const { return stats_; }

    /** True when the PUPIL_NO_SOLVE_CACHE kill switch is set. */
    static bool envDisabled();

    /**
     * Declare the app-set version the next solves belong to. Entries
     * keyed under other epochs can no longer hit (they age out of the
     * LRU); bump this whenever an AppParams object that existing entries
     * were keyed on may have been mutated in place.
     */
    void setAppsEpoch(uint64_t epoch) { appsEpoch_ = epoch; }

    /**
     * Memoized solve: bit-identical to
     * scheduler.solve(cfg, duty, apps, scratch, out) in all cases.
     * Returns true when the result came from the cache.
     */
    bool solve(const Scheduler& scheduler, const machine::MachineConfig& cfg,
               const std::array<double, 2>& duty,
               const std::vector<AppDemand>& apps, SolveScratch& scratch,
               SystemOutcome& out);

    /**
     * Copy-free variant for hot read-only consumers (the walker bench,
     * model-driven search loops): returns a pointer to the cached
     * outcome, valid only until the next call on this cache. Sets
     * @p hit when non-null.
     */
    const SystemOutcome* solveRef(const Scheduler& scheduler,
                                  const machine::MachineConfig& cfg,
                                  const std::array<double, 2>& duty,
                                  const std::vector<AppDemand>& apps,
                                  SolveScratch& scratch,
                                  bool* hit = nullptr);

    /**
     * Whether the cache currently holds an entry for the tuple (testing
     * and diagnostics; does not touch recency or stats).
     */
    bool contains(const machine::MachineConfig& cfg,
                  const std::array<double, 2>& duty,
                  const std::vector<AppDemand>& apps);

    /** Drop every entry (stats are retained). */
    void clear();

  private:
    static constexpr int32_t kEmpty = -1;

    /** Slab entry; LRU links are slab indices, not pointers. */
    struct Entry
    {
        std::string key;
        SystemOutcome value;
        uint64_t hash = 0;
        int32_t prev = kEmpty;
        int32_t next = kEmpty;
    };

    /** Open-addressing slot: hash memoized for cheap probe rejection. */
    struct Slot
    {
        uint64_t hash = 0;
        int32_t entry = kEmpty;
    };

    void buildKey(const machine::MachineConfig& cfg,
                  const std::array<double, 2>& duty,
                  const std::vector<AppDemand>& apps);
    int32_t lookup() const;
    void unlink(int32_t idx);
    void linkFront(int32_t idx);
    void moveToFront(int32_t idx);
    /** Claim an entry (new or evicted LRU) for keyScratch_/keyHash_. */
    Entry& insertKeyed();
    void tableInsert(uint64_t hash, int32_t idx);
    void tableErase(const Entry& victim);
    static void copyOutcome(const SystemOutcome& from, SystemOutcome& to);

    size_t capacity_;
    std::vector<Entry> entries_;  ///< slab, reserved to capacity_
    int32_t head_ = kEmpty;       ///< most recently used
    int32_t tail_ = kEmpty;       ///< least recently used
    std::vector<Slot> table_;     ///< power-of-2, load factor <= 25%
    uint64_t tableMask_ = 0;
    std::string keyScratch_;
    uint64_t keyHash_ = 0;
    uint64_t appsEpoch_ = 0;
    SystemOutcome passThrough_;   ///< solveRef storage when disabled
    Stats stats_;
};

}  // namespace pupil::sched

#endif  // PUPIL_SCHED_SOLVE_CACHE_H_
