#include "solve_cache.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace pupil::sched {

namespace {

/** Writes object representations through a bump cursor. Doubles are keyed
 *  by bit pattern so distinct values never collide and -0.0 != 0.0 keeps
 *  exactness (a spurious distinction is harmless; a merge would not be). */
class BitWriter
{
  public:
    explicit BitWriter(char* cursor) : cursor_(cursor) {}

    template <typename T>
    void put(T value)
    {
        std::memcpy(cursor_, &value, sizeof(T));
        cursor_ += sizeof(T);
    }

  private:
    char* cursor_;
};

// Key layout: one packed word for the config knobs and app count, the two
// duty-cycle bit patterns, the invalidation epoch, then (params pointer,
// threads) per app. Every section is a multiple of 8 bytes so the hash
// consumes whole words.
constexpr size_t kKeyHeaderBytes = sizeof(uint64_t) + 2 * sizeof(double) +
                                   sizeof(uint64_t);
constexpr size_t kKeyPerAppBytes = sizeof(uint64_t) + 2 * sizeof(int32_t);
static_assert(kKeyHeaderBytes % 8 == 0 && kKeyPerAppBytes % 8 == 0);

/** The config fields each span a handful of bits; packing them into one
 *  word keeps the key (and the hash over it) short. Range-checked by the
 *  shifts: every field is < 2^8 for any valid Topology, and the app count
 *  occupies the upper 16 bits. */
uint64_t
packConfig(const machine::MachineConfig& cfg, size_t appCount)
{
    return uint64_t(uint8_t(cfg.coresPerSocket)) |
           uint64_t(uint8_t(cfg.sockets)) << 8 |
           uint64_t(cfg.hyperthreading ? 1 : 0) << 16 |
           uint64_t(uint8_t(cfg.memControllers)) << 24 |
           uint64_t(uint8_t(cfg.pstate[0])) << 32 |
           uint64_t(uint8_t(cfg.pstate[1])) << 40 |
           uint64_t(uint16_t(appCount)) << 48;
}

/** Two-lane word-at-a-time mix. libstdc++'s default byte-wise string
 *  hashing costs more than the lookup it guards at our ~50-100 key
 *  bytes; two independent multiply lanes break the serial dependency so
 *  the whole key hashes in a few nanoseconds. Keys are a multiple of 8
 *  bytes by construction (static_assert above). */
uint64_t
hashKey(const char* data, size_t size)
{
    uint64_t h1 = 0x9E3779B97F4A7C15ULL ^ size;
    uint64_t h2 = 0xC2B2AE3D27D4EB4FULL;
    size_t i = 0;
    for (; i + 16 <= size; i += 16) {
        uint64_t a, b;
        std::memcpy(&a, data + i, 8);
        std::memcpy(&b, data + i + 8, 8);
        h1 = (h1 ^ a) * 0xBF58476D1CE4E5B9ULL;
        h1 ^= h1 >> 29;
        h2 = (h2 ^ b) * 0x94D049BB133111EBULL;
        h2 ^= h2 >> 31;
    }
    for (; i + 8 <= size; i += 8) {
        uint64_t a;
        std::memcpy(&a, data + i, 8);
        h1 = (h1 ^ a) * 0xBF58476D1CE4E5B9ULL;
        h1 ^= h1 >> 29;
    }
    uint64_t h = h1 ^ (h2 * 0xD6E8FEB86659FD93ULL);
    h ^= h >> 32;
    return h;
}

size_t
tableSizeFor(size_t capacity)
{
    // <= 25% load keeps linear-probe chains near length 1.
    size_t size = 16;
    while (size < capacity * 4)
        size <<= 1;
    return size;
}

}  // namespace

SolveCache::SolveCache(size_t capacity) : capacity_(capacity)
{
    if (capacity_ > 0) {
        entries_.reserve(capacity_);
        table_.assign(tableSizeFor(capacity_), Slot{});
        tableMask_ = table_.size() - 1;
    }
}

bool
SolveCache::envDisabled()
{
    const char* value = std::getenv("PUPIL_NO_SOLVE_CACHE");
    return value != nullptr && *value != '\0';
}

void
SolveCache::buildKey(const machine::MachineConfig& cfg,
                     const std::array<double, 2>& duty,
                     const std::vector<AppDemand>& apps)
{
    const size_t total = kKeyHeaderBytes + apps.size() * kKeyPerAppBytes;
    keyScratch_.resize(total);  // reuses capacity once warm
    BitWriter key(keyScratch_.data());
    key.put(packConfig(cfg, apps.size()));
    key.put(duty[0]);
    key.put(duty[1]);
    key.put(appsEpoch_);
    for (const AppDemand& app : apps) {
        // Identity + epoch, not content: see the class comment for the
        // stability contract that makes this exact.
        key.put(uint64_t(reinterpret_cast<uintptr_t>(app.params)));
        key.put(int32_t(app.threads));
        key.put(int32_t(0));  // pad to an 8-byte boundary for hashKey
    }
    keyHash_ = hashKey(keyScratch_.data(), total);
}

int32_t
SolveCache::lookup() const
{
    size_t i = keyHash_ & tableMask_;
    while (table_[i].entry != kEmpty) {
        if (table_[i].hash == keyHash_ &&
            entries_[size_t(table_[i].entry)].key == keyScratch_)
            return table_[i].entry;
        i = (i + 1) & tableMask_;
    }
    return kEmpty;
}

void
SolveCache::unlink(int32_t idx)
{
    Entry& entry = entries_[size_t(idx)];
    if (entry.prev != kEmpty)
        entries_[size_t(entry.prev)].next = entry.next;
    else
        head_ = entry.next;
    if (entry.next != kEmpty)
        entries_[size_t(entry.next)].prev = entry.prev;
    else
        tail_ = entry.prev;
}

void
SolveCache::linkFront(int32_t idx)
{
    Entry& entry = entries_[size_t(idx)];
    entry.prev = kEmpty;
    entry.next = head_;
    if (head_ != kEmpty)
        entries_[size_t(head_)].prev = idx;
    head_ = idx;
    if (tail_ == kEmpty)
        tail_ = idx;
}

void
SolveCache::moveToFront(int32_t idx)
{
    if (head_ == idx)
        return;
    unlink(idx);
    linkFront(idx);
}

void
SolveCache::tableInsert(uint64_t hash, int32_t idx)
{
    size_t i = hash & tableMask_;
    while (table_[i].entry != kEmpty)
        i = (i + 1) & tableMask_;
    table_[i] = {hash, idx};
}

void
SolveCache::tableErase(const Entry& victim)
{
    size_t i = victim.hash & tableMask_;
    while (!(table_[i].hash == victim.hash && table_[i].entry != kEmpty &&
             entries_[size_t(table_[i].entry)].key == victim.key))
        i = (i + 1) & tableMask_;
    // Backward-shift deletion: pull each displaced follower into the hole
    // so linear probing never needs tombstones.
    size_t j = i;
    while (true) {
        table_[i].entry = kEmpty;
        while (true) {
            j = (j + 1) & tableMask_;
            if (table_[j].entry == kEmpty)
                return;
            const size_t home = table_[j].hash & tableMask_;
            // Move j into the hole unless its home lies strictly inside
            // (i, j] -- in that case probing for it never visits i.
            if (((j - home) & tableMask_) >= ((j - i) & tableMask_))
                break;
        }
        table_[i] = table_[j];
        i = j;
    }
}

SolveCache::Entry&
SolveCache::insertKeyed()
{
    ++stats_.insertions;
    int32_t idx;
    if (entries_.size() < capacity_) {
        idx = int32_t(entries_.size());
        entries_.emplace_back();  // slab reserved: never reallocates
    } else {
        // Recycle the least-recently-used entry in place: its key string
        // and outcome vector keep their storage.
        idx = tail_;
        Entry& victim = entries_[size_t(idx)];
        tableErase(victim);
        unlink(idx);
        ++stats_.evictions;
    }
    Entry& entry = entries_[size_t(idx)];
    entry.key.assign(keyScratch_);
    entry.hash = keyHash_;
    linkFront(idx);
    tableInsert(keyHash_, idx);
    return entry;
}

void
SolveCache::copyOutcome(const SystemOutcome& from, SystemOutcome& to)
{
    // assign() reuses the destination's capacity, so copying into a
    // long-lived outcome (the platform's steady state) stays off the heap.
    to.apps.assign(from.apps.begin(), from.apps.end());
    to.loads = from.loads;
    to.totalIps = from.totalIps;
    to.totalBytesPerSec = from.totalBytesPerSec;
    to.spinFraction = from.spinFraction;
}

bool
SolveCache::solve(const Scheduler& scheduler,
                  const machine::MachineConfig& cfg,
                  const std::array<double, 2>& duty,
                  const std::vector<AppDemand>& apps, SolveScratch& scratch,
                  SystemOutcome& out)
{
    if (capacity_ == 0) {
        scheduler.solve(cfg, duty, apps, scratch, out);
        return false;
    }
    buildKey(cfg, duty, apps);
    const int32_t idx = lookup();
    if (idx != kEmpty) {
        moveToFront(idx);
        copyOutcome(entries_[size_t(idx)].value, out);
        ++stats_.hits;
        return true;
    }
    ++stats_.misses;
    scheduler.solve(cfg, duty, apps, scratch, out);
    copyOutcome(out, insertKeyed().value);
    return false;
}

const SystemOutcome*
SolveCache::solveRef(const Scheduler& scheduler,
                     const machine::MachineConfig& cfg,
                     const std::array<double, 2>& duty,
                     const std::vector<AppDemand>& apps,
                     SolveScratch& scratch, bool* hit)
{
    if (capacity_ == 0) {
        scheduler.solve(cfg, duty, apps, scratch, passThrough_);
        if (hit != nullptr)
            *hit = false;
        return &passThrough_;
    }
    buildKey(cfg, duty, apps);
    const int32_t idx = lookup();
    if (idx != kEmpty) {
        moveToFront(idx);
        ++stats_.hits;
        if (hit != nullptr)
            *hit = true;
        return &entries_[size_t(idx)].value;
    }
    ++stats_.misses;
    // Claim the slab entry first, then solve straight into it: the miss
    // path pays one solve and zero outcome copies.
    Entry& entry = insertKeyed();
    scheduler.solve(cfg, duty, apps, scratch, entry.value);
    if (hit != nullptr)
        *hit = false;
    return &entry.value;
}

bool
SolveCache::contains(const machine::MachineConfig& cfg,
                     const std::array<double, 2>& duty,
                     const std::vector<AppDemand>& apps)
{
    if (capacity_ == 0)
        return false;
    buildKey(cfg, duty, apps);
    return lookup() != kEmpty;
}

void
SolveCache::clear()
{
    entries_.clear();
    if (capacity_ > 0)
        table_.assign(table_.size(), Slot{});
    head_ = tail_ = kEmpty;
}

}  // namespace pupil::sched
