#include "scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "machine/dvfs.h"

namespace pupil::sched {

namespace {

using machine::MachineConfig;
using workload::AppParams;
using workload::SyncKind;

using Work = detail::SolveWork;

}  // namespace

Scheduler::Scheduler(double mcBandwidthGBs)
    : mcBandwidthBytes_(mcBandwidthGBs * 1e9)
{
}

SystemOutcome
Scheduler::solve(const MachineConfig& cfg, const std::array<double, 2>& duty,
                 const std::vector<AppDemand>& apps) const
{
    SolveScratch scratch;
    SystemOutcome out;
    solve(cfg, duty, apps, scratch, out);
    return out;
}

void
Scheduler::solve(const MachineConfig& cfg, const std::array<double, 2>& duty,
                 const std::vector<AppDemand>& apps, SolveScratch& scratch,
                 SystemOutcome& out) const
{
    out.apps.assign(apps.size(), AppOutcome{});
    out.loads = {};
    out.totalIps = 0.0;
    out.totalBytesPerSec = 0.0;
    out.spinFraction = 0.0;

    const std::array<double, 2> ctx = {double(cfg.contexts(0)),
                                       double(cfg.contexts(1))};
    const double totalCtx = ctx[0] + ctx[1];
    if (totalCtx <= 0.0)
        return;

    std::array<double, 2> freq = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
        if (cfg.socketActive(s)) {
            freq[s] = machine::DvfsTable::frequencyGHz(cfg.pstate[s],
                                                       cfg.activeCores(s)) *
                      std::clamp(duty[s], 0.0, 1.0);
        }
    }

    // ---- 1. Runnable thread counts.
    //
    // During parallel phases condvar apps keep only their useful threads
    // runnable (extras block on work queues); spin and EP apps keep all of
    // them busy. During serial phases one thread runs; spin apps keep the
    // rest polling, condvar/EP apps put them to sleep.
    std::vector<Work>& work = scratch.work;
    work.assign(apps.size(), Work{});
    for (size_t i = 0; i < apps.size(); ++i) {
        Work& w = work[i];
        w.p = apps[i].params;
        w.threads = apps[i].threads;
        if (w.threads <= 0 || w.p == nullptr)
            continue;
        const double t = w.threads;
        w.runnablePar = w.p->sync == SyncKind::kCondVar
                            ? std::min(t, double(w.p->maxUsefulThreads))
                            : t;
        const double s = w.p->serialFrac;
        const double serialRunnable = w.p->sync == SyncKind::kSpin ? t : 1.0;
        w.runnable = (1.0 - s) * w.runnablePar + s * serialRunnable;
    }

    // ---- 2. CFS-like proportional shares per socket.
    //
    // Each app's threads are spread across active sockets in proportion to
    // context counts; per-socket capacity is divided in proportion to
    // runnable thread counts, capped at each app's own demand.
    double totalRunnable = 0.0;
    for (const Work& w : work)
        totalRunnable += w.runnable;
    for (int s = 0; s < 2; ++s) {
        if (ctx[s] <= 0.0)
            continue;
        const double socketDemand = totalRunnable * ctx[s] / totalCtx;
        const double scale =
            socketDemand > ctx[s] ? ctx[s] / socketDemand : 1.0;
        for (Work& w : work) {
            const double demand = w.runnable * ctx[s] / totalCtx;
            w.share[s] = demand * scale;
        }
    }
    for (Work& w : work)
        w.shareCtx = w.share[0] + w.share[1];

    // ---- 3. Hyperthread pairing.
    //
    // On a socket where busy contexts exceed physical cores, the excess
    // pairs up on cores; a paired context contributes (1 + htYield)/2
    // core-equivalents for its app.
    std::array<double, 2> busyCtx = {0.0, 0.0};
    for (const Work& w : work) {
        busyCtx[0] += w.share[0];
        busyCtx[1] += w.share[1];
    }
    std::array<double, 2> pairedFrac = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
        const double cores = cfg.activeCores(s);
        if (busyCtx[s] > cores && busyCtx[s] > 0.0)
            pairedFrac[s] = 2.0 * (busyCtx[s] - cores) / busyCtx[s];
    }
    for (Work& w : work) {
        if (w.threads <= 0 || w.shareCtx <= 0.0)
            continue;
        double equiv = 0.0;
        double freqSum = 0.0;
        for (int s = 0; s < 2; ++s) {
            const double factor = (1.0 - pairedFrac[s]) +
                                  pairedFrac[s] * (1.0 + w.p->htYield) / 2.0;
            equiv += w.share[s] * factor;
            freqSum += w.share[s] * freq[s];
        }
        w.shareEquiv = equiv;
        w.freq = freqSum / w.shareCtx;
        w.spans = w.threads > 1 && w.share[0] > 1e-9 && w.share[1] > 1e-9;
    }

    // ---- 4. Effective speedup with serial-phase amplification.
    //
    // Timesharing overhead: context switches and cache/TLB pollution from
    // *other* applications' working threads tax an app's useful
    // throughput (threads of the same address space are cheap to switch
    // between). Spin-pool surplus threads pollute less (tight polling
    // loops) and count at half weight.
    std::vector<double>& thrashWeight = scratch.thrashWeight;
    thrashWeight.assign(work.size(), 0.0);
    double thrashLoad = 0.0;
    for (size_t i = 0; i < work.size(); ++i) {
        const Work& w = work[i];
        if (w.threads <= 0)
            continue;
        const double useful =
            std::min(w.runnablePar, double(w.p->maxUsefulThreads));
        const double surplus = std::max(0.0, w.runnablePar - useful);
        thrashWeight[i] = useful + 0.5 * surplus;
        thrashLoad += thrashWeight[i];
    }
    const double totalCores = std::max(1, cfg.totalCores());

    for (Work& w : work) {
        if (w.threads <= 0 || w.shareCtx <= 0.0)
            continue;
        const AppParams& p = *w.p;
        // Parallel-phase core-equivalents: the time-averaged share scaled
        // back up to the parallel phase's runnable count.
        const double parEquiv =
            w.runnable > 0.0 ? w.shareEquiv * w.runnablePar / w.runnable
                             : 0.0;
        const double eAlloc = std::max(parEquiv, 1e-9);
        const double eUseful =
            std::min(eAlloc, double(p.maxUsefulThreads));
        // Serial sections run one thread at that thread's fair share of a
        // context. During app i's serial phase its own parallel threads
        // either sleep (condvar/EP) or spin on *other* cores while the OS
        // keeps the progressing thread on its own core, so the serial
        // thread contends only with other applications' runnable threads.
        const double serialTotal = totalRunnable - w.runnable + 1.0;
        w.serialSpeed =
            std::min(1.0, totalCtx / std::max(serialTotal, 1.0));
        // If the machine is busy enough that the serial thread shares its
        // physical core with a sibling hyperthread (other apps' threads,
        // or the app's own spinners), it runs at the paired-context rate.
        const double busyNow = busyCtx[0] + busyCtx[1];
        const double serialBusy =
            busyNow - w.shareCtx +
            (p.sync == SyncKind::kSpin
                 ? std::min(double(w.threads), totalCtx)
                 : 1.0);
        if (serialBusy > double(cfg.totalCores()))
            w.serialSpeed *= (1.0 + p.htYield) / 2.0;
        const double inv = p.serialFrac / std::max(w.serialSpeed, 1e-9) +
                           (1.0 - p.serialFrac) / eUseful +
                           p.commOverhead * std::max(0.0, eAlloc - 1.0);
        double speedup = 1.0 / inv;
        if (w.spans)
            speedup *= 1.0 - p.crossSocketPenalty;
        if (cfg.memControllers >= 2)
            speedup *= p.mcBoost;
        const double foreign =
            thrashLoad - thrashWeight[size_t(&w - work.data())];
        const double oversub = std::max(0.0, foreign / totalCores - 0.5);
        speedup *= 1.0 / (1.0 + 0.12 * oversub);
        w.speedup = speedup;
        // Wall-time fraction inside spin-synchronized serial sections
        // (bandwidth throttling stretches serial and parallel phases alike,
        // so time fractions follow from the unthrottled speedup).
        w.spinTime = std::min(
            1.0, p.spinSerialFrac * speedup / std::max(w.serialSpeed, 1e-9));
        w.idealIps = w.freq * 1e9 * p.ipc * speedup;
        w.demandBytes = w.idealIps * p.bytesPerInstr;
    }

    // ---- 5. Memory bandwidth: max-min fair sharing.
    //
    // Sibling hyperthread contexts issue interleaved miss streams that
    // defeat row-buffer locality, so the effective controller bandwidth
    // degrades with the fraction of busy contexts that are HT-paired (one
    // of the reasons DVFS-only capping is poor for bandwidth-bound apps).
    const double busyTotal = busyCtx[0] + busyCtx[1];
    double siblingBusy = 0.0;
    for (int s = 0; s < 2; ++s)
        siblingBusy += std::max(0.0, std::min(busyCtx[s], ctx[s]) -
                                         cfg.activeCores(s));
    const double htEfficiency =
        busyTotal > 0.0 ? 1.0 - 0.4 * (siblingBusy / busyTotal) : 1.0;
    // Spin-synchronized apps whose threads span both sockets bounce their
    // lock/flag cachelines across the inter-socket link; the resulting
    // coherence storms steal memory bandwidth from the whole system (the
    // paper's Section 5.4.2/5.4.3 bottleneck). Confining such apps to one
    // socket -- which only a multi-resource capper can do -- removes it.
    double spanningSpinCtx = 0.0;
    for (const Work& w : work) {
        if (w.threads <= 0 || w.p == nullptr ||
            w.p->sync != SyncKind::kSpin || !w.spans) {
            continue;
        }
        double spinCtx =
            w.spinTime * std::max(0.0, w.shareCtx - w.serialSpeed);
        if (w.threads > w.p->maxUsefulThreads) {
            const double surplusFrac =
                double(w.threads - w.p->maxUsefulThreads) / double(w.threads);
            spinCtx += (1.0 - w.spinTime) * w.shareCtx * surplusFrac;
        }
        spanningSpinCtx += spinCtx;
    }
    const double coherenceEff = 1.0 / (1.0 + 0.15 * spanningSpinCtx);
    const double availBytes = cfg.memControllers * mcBandwidthBytes_ *
                              htEfficiency * coherenceEff;
    std::vector<size_t>& order = scratch.order;
    order.resize(apps.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return work[a].demandBytes < work[b].demandBytes;
    });
    double remaining = availBytes;
    size_t left = 0;
    for (size_t k = 0; k < order.size(); ++k) {
        if (work[order[k]].demandBytes > 0.0) {
            left = order.size() - k;
            break;
        }
    }
    for (size_t k = 0; k < order.size(); ++k) {
        Work& w = work[order[k]];
        AppOutcome& o = out.apps[order[k]];
        if (w.threads <= 0 || w.shareCtx <= 0.0)
            continue;
        if (w.demandBytes <= 0.0) {
            o.bwRetention = 1.0;
            continue;
        }
        const double fair = remaining / double(std::max<size_t>(left, 1));
        const double grant = std::min(w.demandBytes, fair);
        o.bwRetention = grant / w.demandBytes;
        o.bytesPerSec = grant;
        remaining -= grant;
        --left;
    }

    // ---- 6. Final per-app outcomes and spin accounting.
    double totalSpin = 0.0;
    for (size_t i = 0; i < apps.size(); ++i) {
        Work& w = work[i];
        AppOutcome& o = out.apps[i];
        if (w.threads <= 0 || w.shareCtx <= 0.0)
            continue;
        const AppParams& p = *w.p;
        o.usefulIps = w.idealIps * o.bwRetention;
        o.itemsPerSec = o.usefulIps / p.workPerItem;
        o.shareCtx = w.shareCtx;
        // Fraction of wall time inside spin-synchronized serial sections,
        // stretched by the serial thread's reduced speed.
        const double spinTime = w.spinTime;
        // During a spin-synchronized serial section the app keeps all its
        // threads runnable; everything beyond the one progressing thread
        // burns CPU without progress.
        const double serialTotal =
            totalRunnable - w.runnable + double(w.threads);
        const double serialPhaseShare = std::min(
            double(w.threads), totalCtx * double(w.threads) / serialTotal);
        o.spinCtx =
            spinTime * std::max(0.0, serialPhaseShare - w.serialSpeed);
        // Spin-pool apps also poll outside serial sections: threads beyond
        // the app's useful parallelism busy-wait for work that never
        // arrives, holding their quanta the whole run (the oblivious-mode
        // pathology behind the paper's Table 6).
        if (p.sync == SyncKind::kSpin && w.threads > p.maxUsefulThreads) {
            const double surplusFrac =
                double(w.threads - p.maxUsefulThreads) / double(w.threads);
            o.spinCtx += (1.0 - spinTime) * w.shareCtx * surplusFrac;
        }
        totalSpin += o.spinCtx;
        out.totalIps += o.usefulIps;
        out.totalBytesPerSec += o.bytesPerSec;
    }

    // ---- 7. Socket loads for the power model.
    double totalBusy = 0.0;
    for (int s = 0; s < 2; ++s) {
        machine::SocketLoad& load = out.loads[s];
        const double cores = cfg.activeCores(s);
        const double busy = std::min(busyCtx[s], ctx[s]);
        load.busyPrimary = std::min(busy, cores);
        load.busySibling = std::max(0.0, busy - cores);
        totalBusy += busy;
        // Activity: share-weighted app activity, discounted where memory
        // throttling stalls the pipeline.
        double actSum = 0.0;
        for (size_t i = 0; i < apps.size(); ++i) {
            const Work& w = work[i];
            if (w.threads <= 0 || w.share[s] <= 0.0)
                continue;
            const double theta = out.apps[i].bwRetention;
            const double act =
                w.p->activity * (theta + (1.0 - theta) * 0.5);
            actSum += w.share[s] * act;
        }
        load.activity = busy > 0.0 ? actSum / busyCtx[s] : 0.0;
    }
    out.spinFraction = totalBusy > 0.0 ? totalSpin / totalBusy : 0.0;
}

}  // namespace pupil::sched
