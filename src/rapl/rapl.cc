#include "rapl.h"

#include <algorithm>
#include <cmath>

#include "machine/dvfs.h"
#include "machine/power_model.h"
#include "sim/platform.h"

namespace pupil::rapl {

using machine::DvfsTable;
using machine::MachineConfig;

RaplController::RaplController() = default;

void
RaplController::setSocketCap(int s, double watts, bool enabled)
{
    PowerLimit limit;
    limit.powerWatts = watts;
    limit.windowSec = 0.25;
    limit.enabled = enabled;
    msr_[s].setPowerLimit(limit);
    // Software programming the limit register. setSocketCap carries no
    // timestamp (it mirrors an MSR write), so the event is stamped with
    // the last firmware control-interval time.
    trace::emit(trace_, lastNow_, trace::EventKind::kLimitWrite, watts, 0.0,
                s, enabled ? 1 : 0);
    if (metrics_ != nullptr)
        metrics_->addCounter("rapl.limit_writes");
}

void
RaplController::setTotalCapEvenSplit(double totalWatts)
{
    for (int s = 0; s < 2; ++s)
        setSocketCap(s, totalWatts / 2.0, true);
}

ZoneStatus
RaplController::zoneStatus(int s) const
{
    const PowerLimit limit = msr_[s].powerLimit();
    ZoneStatus status;
    status.enabled = limit.enabled;
    status.capWatts = limit.powerWatts;
    status.clampPState = zones_[s].clampPState;
    status.dutyCycle = zones_[s].duty;
    status.windowAvgWatts = zones_[s].lastAvg;
    return status;
}

void
RaplController::onStart(sim::Platform& platform)
{
    for (int s = 0; s < 2; ++s)
        msr_[s].attachFaults(platform.faults(), s);
    for (Zone& zone : zones_) {
        zone.window.clear();
        zone.windowSum = 0.0;
        zone.clampPState = DvfsTable::kTurboPState;
        zone.duty = 1.0;
        zone.overBudget = false;
    }
    trace_ = platform.trace();
    metrics_ = &platform.metrics();
    lastNow_ = platform.now();
}

void
RaplController::onTick(sim::Platform& platform, double now)
{
    lastNow_ = now;
    for (int s = 0; s < 2; ++s)
        controlZone(platform, s, now);
}

void
RaplController::controlZone(sim::Platform& platform, int s, double now)
{
    const double dt = periodSec();
    Zone& zone = zones_[s];
    const PowerLimit limit = msr_[s].powerLimit();

    const double est = platform.readSocketPowerEstimate(s);
    msr_[s].addEnergy(est * dt);

    // Sliding window of per-interval power estimates.
    const size_t windowLen =
        std::max<size_t>(1, size_t(std::llround(limit.windowSec / dt)));
    zone.window.push_back(est);
    zone.windowSum += est;
    while (zone.window.size() > windowLen) {
        zone.windowSum -= zone.window.front();
        zone.window.pop_front();
    }
    const double avg = zone.windowSum / double(zone.window.size());
    zone.lastAvg = avg;

    // Budget-window state edges: record when the sliding-window average
    // first exceeds the programmed cap and when repayment brings it back
    // under, so a trace shows exactly when hardware was clamping and why.
    if (limit.enabled) {
        const bool over = avg > limit.powerWatts;
        if (over != zone.overBudget) {
            zone.overBudget = over;
            trace::emit(trace_, now, trace::EventKind::kBudgetWindow, avg,
                        limit.powerWatts, s, over ? 1 : 0);
        }
    } else {
        zone.overBudget = false;
    }

    if (!limit.enabled) {
        if (zone.clampPState != DvfsTable::kTurboPState || zone.duty != 1.0) {
            zone.clampPState = DvfsTable::kTurboPState;
            zone.duty = 1.0;
            platform.machine().clearRaplClamp(s, now);
        }
        return;
    }

    // Budget repayment: if the window average overshot the cap, target
    // under the cap for the next interval (and vice versa). The upside is
    // clamped tightly -- PL1 is a sustained limit, and banking a cold
    // window into a burst (real RAPL routes that through PL2) would
    // violate the cap semantics this repo studies.
    const double cap = limit.powerWatts;
    const double target =
        std::clamp(cap + (cap - avg), 0.4 * cap, 1.05 * cap);

    const machine::PowerModel& pm = platform.powerModel();
    const MachineConfig osCfg = platform.machine().osConfig(now);
    if (!osCfg.socketActive(s)) {
        // No cores to throttle; leave the socket unclamped.
        if (zone.clampPState != DvfsTable::kTurboPState || zone.duty != 1.0) {
            zone.clampPState = DvfsTable::kTurboPState;
            zone.duty = 1.0;
            platform.machine().clearRaplClamp(s, now);
        }
        return;
    }

    // Estimate the dynamic power at the current operating point, then
    // predict power for every candidate p-state via the V^2*f scaling law.
    const MachineConfig effCfg = platform.machine().effectiveConfig(now);
    const int cores = effCfg.activeCores(s);
    const double fNow = DvfsTable::frequencyGHz(effCfg.pstate[s], cores);
    const double vNow = DvfsTable::voltage(fNow);
    const double dutyNow = platform.machine().dutyCycle(s, now);
    const double staticNow = pm.staticSocketPower(effCfg, s);
    const double dynAtFull =
        std::max(0.0, est - staticNow) / std::max(dutyNow, 0.05);
    const double scaleNow = vNow * vNow * fNow;

    const int maxPState = osCfg.pstate[s];
    int chosen = -1;
    for (int p = maxPState; p >= 0; --p) {
        MachineConfig candidate = effCfg;
        candidate.pstate[s] = p;
        const double f = DvfsTable::frequencyGHz(p, cores);
        const double v = DvfsTable::voltage(f);
        const double predicted =
            pm.staticSocketPower(candidate, s) +
            dynAtFull * (v * v * f) / std::max(scaleNow, 1e-9);
        if (predicted <= target) {
            chosen = p;
            break;
        }
    }

    int newPState = chosen;
    double newDuty = 1.0;
    if (chosen < 0) {
        // Even the lowest p-state is too hot: duty-cycle the clock.
        newPState = 0;
        MachineConfig candidate = effCfg;
        candidate.pstate[s] = 0;
        const double f0 = DvfsTable::frequencyGHz(0, cores);
        const double v0 = DvfsTable::voltage(f0);
        const double static0 = pm.staticSocketPower(candidate, s);
        const double dyn0 =
            dynAtFull * (v0 * v0 * f0) / std::max(scaleNow, 1e-9);
        newDuty = std::clamp((target - static0) / std::max(dyn0, 1e-9),
                             0.05, 1.0);
    } else if (chosen >= maxPState) {
        // Unconstrained: remove the clamp entirely.
        newPState = DvfsTable::kTurboPState;
    }

    // Slew limit when raising the clamp: coming out of a deep clamp the
    // dynamic-power estimate is tiny and every state looks affordable, so
    // an instant jump to turbo would overshoot. Climb at most two p-states
    // per control interval (still ~10 ms to traverse the whole table) and
    // let the fresh estimate after each step rein the climb in.
    if (newPState > zone.clampPState)
        newPState = std::min(newPState, zone.clampPState + 2);

    const bool changed = newPState != zone.clampPState ||
                         std::fabs(newDuty - zone.duty) > 0.02;
    if (changed) {
        zone.clampPState = newPState;
        zone.duty = newDuty;
        platform.machine().requestRaplClamp(s, newPState, newDuty, now);
        trace::emit(trace_, now, trace::EventKind::kClampChange, newDuty,
                    avg, s, newPState);
        if (metrics_ != nullptr) {
            metrics_->addCounter("rapl.clamp_changes");
            metrics_->observe("rapl.clamp_pstate", double(newPState));
        }
    }
}

}  // namespace pupil::rapl
