#ifndef PUPIL_RAPL_RAPL_H_
#define PUPIL_RAPL_RAPL_H_

#include <array>
#include <deque>

#include "rapl/msr.h"
#include "sim/actor.h"
#include "telemetry/metrics.h"
#include "trace/trace.h"

namespace pupil::rapl {

/** Introspection snapshot of one RAPL zone (one socket). */
struct ZoneStatus
{
    bool enabled = false;
    double capWatts = 0.0;
    int clampPState = 15;
    double dutyCycle = 1.0;
    double windowAvgWatts = 0.0;
};

/**
 * The hardware power-capping firmware (paper Section 3.2).
 *
 * One zone per socket. Every millisecond control interval the firmware:
 *  1. reads its power estimate (derived from low-level event counts in
 *     real hardware; here a low-noise sensor channel);
 *  2. advances the package energy-status MSR;
 *  3. computes the energy budget remaining in the sliding averaging
 *     window and from it a target power for the next interval
 *     (over-budget windows are repaid by under-shooting, and vice versa);
 *  4. decides the fastest V/f operating point whose predicted power fits
 *     the target -- falling back to duty-cycle (T-state) modulation when
 *     even the lowest p-state is too hot -- and actuates it.
 *
 * RAPL observes *only power*; it has no notion of application performance
 * and manipulates only voltage/frequency -- the precise limitation PUPiL's
 * hybrid design addresses.
 */
class RaplController : public sim::Actor
{
  public:
    RaplController();

    /** MSR file of socket @p s (software writes caps here). */
    MsrFile& msr(int s) { return msr_[s]; }
    const MsrFile& msr(int s) const { return msr_[s]; }

    /**
     * Convenience used by governors: program a per-socket cap (PL1) with
     * the default 0.25 s window, or disable capping for the socket.
     */
    void setSocketCap(int s, double watts, bool enabled = true);

    /** Split @p totalWatts evenly across both sockets (RAPL default). */
    void setTotalCapEvenSplit(double totalWatts);

    ZoneStatus zoneStatus(int s) const;

    // sim::Actor
    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.001; }

  private:
    struct Zone
    {
        std::deque<double> window;   ///< per-interval power estimates (W)
        double windowSum = 0.0;
        int clampPState = 15;
        double duty = 1.0;
        double lastAvg = 0.0;
        bool overBudget = false;     ///< window average above the cap
    };

    void controlZone(sim::Platform& platform, int s, double now);

    std::array<MsrFile, 2> msr_;
    std::array<Zone, 2> zones_;

    // Observability (attached from the platform at onStart; both null /
    // inactive until then, so pre-run cap programming is never recorded).
    trace::Recorder* trace_ = nullptr;
    telemetry::MetricsRegistry* metrics_ = nullptr;
    double lastNow_ = 0.0;
};

}  // namespace pupil::rapl

#endif  // PUPIL_RAPL_RAPL_H_
