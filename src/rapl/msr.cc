#include "msr.h"

#include <algorithm>
#include <cmath>

#include "faults/injector.h"

namespace pupil::rapl {

namespace {

// MSR_PKG_POWER_LIMIT bit fields (PL1 only; PL2 is not modelled).
constexpr uint64_t kPowerMask = 0x7fff;        // bits 14:0, in power units
constexpr int kEnableShift = 15;               // bit 15
constexpr int kTimeShift = 17;                 // bits 26:17 (simplified:
                                               // window in time units)
constexpr uint64_t kTimeMask = 0x3ff;

// MSR_RAPL_POWER_UNIT encoding: power unit 2^-3 W, energy 2^-16 J,
// time 2^-10 s.
constexpr uint64_t kPowerUnitRaw = 3;
constexpr uint64_t kEnergyUnitRaw = 16;
constexpr uint64_t kTimeUnitRaw = 10;

}  // namespace

MsrFile::MsrFile()
{
    regs_[kMsrRaplPowerUnit] =
        kPowerUnitRaw | (kEnergyUnitRaw << 8) | (kTimeUnitRaw << 16);
    regs_[kMsrPkgPowerLimit] = 0;
    regs_[kMsrPkgEnergyStatus] = 0;
}

uint64_t
MsrFile::read(uint32_t addr) const
{
    auto it = regs_.find(addr);
    return it != regs_.end() ? it->second : 0;
}

void
MsrFile::attachFaults(faults::FaultInjector* faults, int socket)
{
    faults_ = faults;
    socket_ = socket;
}

void
MsrFile::write(uint32_t addr, uint64_t value)
{
    if (addr == kMsrRaplPowerUnit || addr == kMsrPkgEnergyStatus)
        return;  // read-only
    if (faults_ != nullptr && addr == kMsrPkgPowerLimit &&
        faults_->msrWriteIgnored(socket_))
        return;  // the cap write never reached the register
    regs_[addr] = value;
}

PowerLimit
MsrFile::powerLimit() const
{
    const uint64_t raw = read(kMsrPkgPowerLimit);
    PowerLimit limit;
    limit.powerWatts = double(raw & kPowerMask) * units_.powerUnitWatts;
    limit.enabled = ((raw >> kEnableShift) & 1) != 0;
    const uint64_t timeRaw = (raw >> kTimeShift) & kTimeMask;
    limit.windowSec = std::max(1.0, double(timeRaw)) * units_.timeUnitSec;
    return limit;
}

void
MsrFile::setPowerLimit(const PowerLimit& limit)
{
    const uint64_t powerRaw = std::min<uint64_t>(
        kPowerMask,
        uint64_t(std::llround(limit.powerWatts / units_.powerUnitWatts)));
    const uint64_t timeRaw = std::clamp<uint64_t>(
        uint64_t(std::llround(limit.windowSec / units_.timeUnitSec)), 1,
        kTimeMask);
    uint64_t raw = powerRaw | (timeRaw << kTimeShift);
    if (limit.enabled)
        raw |= uint64_t{1} << kEnableShift;
    write(kMsrPkgPowerLimit, raw);
}

void
MsrFile::addEnergy(double joules)
{
    if (faults_ != nullptr && faults_->msrEnergyStale(socket_))
        return;  // counter frozen: readers see a stale energy value
    energyRemainder_ += joules / units_.energyUnitJoules;
    const auto whole = uint64_t(energyRemainder_);
    energyRemainder_ -= double(whole);
    // 32-bit wrap-around, as on real hardware.
    regs_[kMsrPkgEnergyStatus] =
        (regs_[kMsrPkgEnergyStatus] + whole) & 0xffffffffULL;
}

double
MsrFile::energyJoules() const
{
    return double(read(kMsrPkgEnergyStatus)) * units_.energyUnitJoules;
}

}  // namespace pupil::rapl
