#ifndef PUPIL_RAPL_MSR_H_
#define PUPIL_RAPL_MSR_H_

#include <cstdint>
#include <unordered_map>

namespace pupil::faults {
class FaultInjector;
}

namespace pupil::rapl {

/**
 * Model-specific register addresses implemented by the emulated RAPL
 * interface (matching the Intel SDM addresses the paper's msr-module-based
 * tooling uses).
 */
enum MsrAddress : uint32_t {
    kMsrRaplPowerUnit = 0x606,   ///< unit definitions (read-only)
    kMsrPkgPowerLimit = 0x610,   ///< package power-limit control
    kMsrPkgEnergyStatus = 0x611, ///< cumulative energy counter (read-only)
};

/**
 * Fixed-point units advertised in MSR_RAPL_POWER_UNIT, as on SandyBridge:
 * power in 1/8 W, energy in ~15.3 uJ, time in ~976 us.
 */
struct RaplUnits
{
    double powerUnitWatts = 0.125;
    double energyUnitJoules = 1.0 / 65536.0;
    double timeUnitSec = 1.0 / 1024.0;
};

/** Decoded contents of MSR_PKG_POWER_LIMIT. */
struct PowerLimit
{
    double powerWatts = 0.0;
    double windowSec = 0.25;
    bool enabled = false;
};

/**
 * Per-package emulated MSR file.
 *
 * Software (PUPiL, or the thin RAPL-only governor) programs power caps by
 * writing MSR_PKG_POWER_LIMIT exactly as the real msr kernel module would;
 * the firmware controller decodes the register every control interval.
 * The energy-status counter is advanced by the firmware and wraps at 32
 * bits like real hardware.
 */
class MsrFile
{
  public:
    MsrFile();

    /**
     * Interpose the fault injector: a write-ignored fault drops cap
     * writes (a wedged msr module), a stale-energy fault freezes the
     * energy counter. @p socket selects which schedule targets apply.
     */
    void attachFaults(faults::FaultInjector* faults, int socket);

    /** Raw register read; unknown addresses read as 0. */
    uint64_t read(uint32_t addr) const;

    /** Raw register write. Writes to read-only registers are ignored. */
    void write(uint32_t addr, uint64_t value);

    const RaplUnits& units() const { return units_; }

    /** Decode the current package power limit. */
    PowerLimit powerLimit() const;

    /** Encode and write a package power limit (convenience for software). */
    void setPowerLimit(const PowerLimit& limit);

    /** Firmware-side: accumulate @p joules into the energy counter. */
    void addEnergy(double joules);

    /** Cumulative energy in joules (modulo the 32-bit counter wrap). */
    double energyJoules() const;

  private:
    RaplUnits units_;
    std::unordered_map<uint32_t, uint64_t> regs_;
    double energyRemainder_ = 0.0;  ///< sub-unit energy not yet counted
    faults::FaultInjector* faults_ = nullptr;
    int socket_ = 0;
};

}  // namespace pupil::rapl

#endif  // PUPIL_RAPL_MSR_H_
