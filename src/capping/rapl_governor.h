#ifndef PUPIL_CAPPING_RAPL_GOVERNOR_H_
#define PUPIL_CAPPING_RAPL_GOVERNOR_H_

#include "capping/governor.h"

namespace pupil::capping {

/**
 * The hardware-only point of comparison: leave the OS configuration at its
 * default (everything on -- all cores, sockets, hyperthreads, and memory
 * controllers, maximum p-state) and program the RAPL firmware with the cap
 * split evenly between the two sockets, which is optimal when no other
 * resource is managed (paper Section 5.1).
 *
 * All subsequent control happens in the firmware every millisecond; this
 * governor does nothing further at runtime.
 */
class RaplGovernor : public Governor
{
  public:
    std::string name() const override { return "RAPL"; }

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 1.0; }
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_RAPL_GOVERNOR_H_
