#include "regression.h"

#include "machine/dvfs.h"
#include "util/linalg.h"

namespace pupil::capping {

std::vector<double>
ConfigRegression::features(const machine::MachineConfig& cfg)
{
    const double cores = cfg.coresPerSocket;
    const double sockets = cfg.sockets;
    const double ht = cfg.hyperthreading ? 1.0 : 0.0;
    const double mc = cfg.memControllers;
    const double freq = machine::DvfsTable::frequencyGHz(
        cfg.pstate[0], cfg.activeCores(0));
    const double totalCores = cores * sockets;
    return {1.0, cores, sockets, ht, mc, freq, totalCores, totalCores * freq};
}

ConfigRegression
ConfigRegression::fit(const std::vector<machine::MachineConfig>& configs,
                      const std::vector<double>& targets)
{
    ConfigRegression model;
    if (configs.empty() || configs.size() != targets.size())
        return model;
    const size_t dim = features(configs[0]).size();
    util::Matrix design(configs.size(), dim);
    for (size_t r = 0; r < configs.size(); ++r) {
        const std::vector<double> x = features(configs[r]);
        for (size_t c = 0; c < dim; ++c)
            design.at(r, c) = x[c];
    }
    std::vector<double> beta;
    if (util::leastSquares(design, targets, 1e-6, beta))
        model.beta_ = std::move(beta);
    return model;
}

double
ConfigRegression::predict(const machine::MachineConfig& cfg) const
{
    if (beta_.empty())
        return 0.0;
    const std::vector<double> x = features(cfg);
    double y = 0.0;
    for (size_t i = 0; i < x.size() && i < beta_.size(); ++i)
        y += beta_[i] * x[i];
    return y;
}

}  // namespace pupil::capping
