#ifndef PUPIL_CAPPING_GOVERNOR_H_
#define PUPIL_CAPPING_GOVERNOR_H_

#include <string>

#include "rapl/rapl.h"
#include "sim/actor.h"

namespace pupil::capping {

/**
 * Base class of all power-capping control systems in this repo (RAPL-only,
 * Soft-DVFS, Soft-Modeling, Soft-Decision, PUPiL).
 *
 * A governor is a simulation actor that receives a power cap before the
 * platform runs, observes the platform through its noisy sensor channels,
 * and actuates machine configuration and/or hardware (RAPL) caps.
 */
class Governor : public sim::Actor
{
  public:
    /** Human-readable name used in benchmark tables. */
    virtual std::string name() const = 0;

    /** Set the power cap to enforce (Watts); call before the run starts. */
    virtual void setCap(double watts) { cap_ = watts; }

    double cap() const { return cap_; }

    /** Whether the control system considers itself converged. */
    virtual bool converged() const { return true; }

    /**
     * Whether the cap is achievable for this governor at all (Soft-DVFS
     * cannot reach 60 W with all cores and hyperthreads active).
     */
    virtual bool capFeasible() const { return true; }

    /** Give the governor access to the hardware capping firmware. */
    void attachRapl(rapl::RaplController* rapl) { rapl_ = rapl; }

  protected:
    double cap_ = 1e9;
    rapl::RaplController* rapl_ = nullptr;
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_GOVERNOR_H_
