#ifndef PUPIL_CAPPING_PACK_AND_CAP_H_
#define PUPIL_CAPPING_PACK_AND_CAP_H_

#include "capping/governor.h"
#include "machine/config.h"

namespace pupil::capping {

/**
 * Pack & Cap-style governor (after Cochran et al., "Pack & Cap: adaptive
 * DVFS and thread packing under power caps", MICRO 2011 -- reference [6]
 * of the paper): a software capper that manages exactly two knobs, thread
 * packing (how many hardware contexts the workload is packed onto) and
 * DVFS.
 *
 * This is an *extension* beyond the paper's four comparison points -- the
 * paper cites Pack & Cap as prior evidence that multi-knob software
 * capping beats DVFS-only capping. Like the original (which trains a
 * multinomial logistic regression classifier per application offline),
 * the pack count comes from an offline profile of the controlled
 * application: the profiled best (pack, p-state) under the cap is
 * selected at start, and an online deadband DVFS loop then tracks the cap
 * against measurement error and workload variation.
 *
 * Packing k contexts maps onto the machine greedily: fill one socket's
 * cores first, then the second socket, then hyperthreads; both memory
 * controllers stay interleaved.
 */
class PackAndCap : public Governor
{
  public:
    std::string name() const override { return "Pack&Cap"; }

    bool converged() const override { return stable_ >= 3; }

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.5; }

    /** Current pack count (active hardware contexts). */
    int packCount() const { return pack_; }

    /** The machine configuration for a pack of @p contexts. */
    static machine::MachineConfig configFor(int contexts, int pstate);

  private:
    void apply(sim::Platform& platform, double now);

    int pack_ = 32;
    int pstate_ = 15;
    int ceiling_ = 15;
    int stable_ = 0;
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_PACK_AND_CAP_H_
