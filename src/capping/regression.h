#ifndef PUPIL_CAPPING_REGRESSION_H_
#define PUPIL_CAPPING_REGRESSION_H_

#include <vector>

#include "machine/config.h"

namespace pupil::capping {

/**
 * Multiple linear regression over machine-configuration features, the
 * predictive core of the Soft-Modeling baseline (paper Section 4.4).
 *
 * Features are deliberately the "natural" knob values (cores, sockets,
 * hyperthreading, memory controllers, clock speed, and two interaction
 * terms). Real power is super-linear in frequency (V^2 * f), so a linear
 * model systematically under-predicts power at high clocks -- which is
 * exactly the failure mode the paper observes: without runtime feedback
 * the modelled configurations can exceed the cap.
 */
class ConfigRegression
{
  public:
    /** Feature vector for @p cfg (leading 1 for the intercept). */
    static std::vector<double> features(const machine::MachineConfig& cfg);

    /**
     * Fit by ridge-stabilized least squares on (configs, targets).
     * Returns a model with zero coefficients if the fit is singular.
     */
    static ConfigRegression fit(
        const std::vector<machine::MachineConfig>& configs,
        const std::vector<double>& targets);

    /** Predicted target value for @p cfg. */
    double predict(const machine::MachineConfig& cfg) const;

    const std::vector<double>& coefficients() const { return beta_; }

  private:
    std::vector<double> beta_;
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_REGRESSION_H_
