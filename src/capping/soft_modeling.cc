#include "soft_modeling.h"

#include <vector>

#include "sim/platform.h"
#include "workload/catalog.h"

namespace pupil::capping {

void
SoftModeling::onStart(sim::Platform& platform)
{
    // ---- Offline modelling pass: the approach profiles the *platform*
    // ahead of time -- one regression per target (power, performance) over
    // the machine's knobs, built from a generic calibration workload's
    // profile. The models are then applied to whatever runs later without
    // any runtime feedback. (On the real system the profile is a long
    // measurement campaign; here the steady-state model plays that role.)
    // Two error sources make this the paper's weakest baseline: the linear
    // form cannot express the V^2*f power curvature, and the profiled
    // workload is not the controlled one.
    const std::vector<machine::MachineConfig> space =
        machine::enumerateUserConfigs();
    const workload::AppParams& profiled = workload::calibrationApp();
    const std::vector<sched::AppDemand> profileApps = {
        {&profiled, machine::defaultTopology().totalContexts()}};

    std::vector<double> power(space.size());
    std::vector<double> perf(space.size());
    sched::SystemOutcome out;
    for (size_t k = 0; k < space.size(); ++k) {
        // Memoized through the platform's solve cache: a re-profiling
        // governor (or several model-driven ones sharing a platform)
        // answers repeated configuration probes from memory.
        platform.solveCached(space[k], {1.0, 1.0}, profileApps, out);
        power[k] = platform.powerModel().totalPower(space[k], out.loads);
        perf[k] = out.apps[0].itemsPerSec;
    }

    const ConfigRegression powerModel = ConfigRegression::fit(space, power);
    const ConfigRegression perfModel = ConfigRegression::fit(space, perf);

    // ---- Pick argmax predicted-performance s.t. predicted-power <= cap.
    double bestPerf = -1.0;
    chosen_ = machine::minimalConfig();
    predictedPower_ = powerModel.predict(chosen_);
    for (const machine::MachineConfig& cfg : space) {
        const double predictedPower = powerModel.predict(cfg);
        if (predictedPower > cap_)
            continue;
        const double predictedPerf = perfModel.predict(cfg);
        if (predictedPerf > bestPerf) {
            bestPerf = predictedPerf;
            chosen_ = cfg;
            predictedPower_ = predictedPower;
        }
    }

    platform.machine().requestConfig(chosen_, platform.now());
}

void
SoftModeling::onTick(sim::Platform& platform, double now)
{
    (void)platform;
    (void)now;
    // Deliberately no runtime feedback: the defining property (and flaw)
    // of the offline-modelling approach.
}

}  // namespace pupil::capping
