#include "oracle.h"

#include <algorithm>

namespace pupil::capping {

std::vector<double>
soloReferenceRates(const sched::Scheduler& scheduler,
                   const std::vector<sched::AppDemand>& apps)
{
    std::vector<double> refs(apps.size(), 1.0);
    const machine::MachineConfig maxCfg = machine::maximalConfig();
    for (size_t i = 0; i < apps.size(); ++i) {
        if (apps[i].threads <= 0 || apps[i].params == nullptr)
            continue;
        const sched::SystemOutcome solo =
            scheduler.solve(maxCfg, {1.0, 1.0}, {apps[i]});
        refs[i] = std::max(solo.apps[0].itemsPerSec, 1e-12);
    }
    return refs;
}

OracleResult
searchOptimal(const sched::Scheduler& scheduler,
              const machine::PowerModel& powerModel,
              const std::vector<sched::AppDemand>& apps, double capWatts,
              bool extendedSpace)
{
    const std::vector<double> refs = soloReferenceRates(scheduler, apps);
    const std::vector<machine::MachineConfig> space =
        extendedSpace ? machine::enumerateExtendedConfigs()
                      : machine::enumerateUserConfigs();

    OracleResult best;
    best.config = machine::minimalConfig();
    best.aggregatePerf = -1.0;
    for (const machine::MachineConfig& cfg : space) {
        const sched::SystemOutcome out =
            scheduler.solve(cfg, {1.0, 1.0}, apps);
        const double power = powerModel.totalPower(cfg, out.loads);
        if (power > capWatts)
            continue;
        double aggregate = 0.0;
        for (size_t i = 0; i < out.apps.size(); ++i)
            aggregate += out.apps[i].itemsPerSec / refs[i];
        if (aggregate > best.aggregatePerf) {
            best.config = cfg;
            best.aggregatePerf = aggregate;
            best.powerWatts = power;
            best.appItemsPerSec.clear();
            for (const auto& app : out.apps)
                best.appItemsPerSec.push_back(app.itemsPerSec);
        }
    }
    if (best.aggregatePerf < 0.0) {
        // No configuration fits the cap (should not happen for the caps the
        // paper studies); report the minimal configuration's outcome.
        const sched::SystemOutcome out =
            scheduler.solve(best.config, {1.0, 1.0}, apps);
        best.powerWatts = powerModel.totalPower(best.config, out.loads);
        best.aggregatePerf = 0.0;
        for (size_t i = 0; i < out.apps.size(); ++i) {
            best.aggregatePerf += out.apps[i].itemsPerSec / refs[i];
            best.appItemsPerSec.push_back(out.apps[i].itemsPerSec);
        }
    }
    return best;
}

}  // namespace pupil::capping
