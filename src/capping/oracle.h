#ifndef PUPIL_CAPPING_ORACLE_H_
#define PUPIL_CAPPING_ORACLE_H_

#include <vector>

#include "machine/config.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"

namespace pupil::capping {

/** Result of an exhaustive optimal-configuration search. */
struct OracleResult
{
    machine::MachineConfig config;
    /** Aggregate performance (sum of per-app rates normalized to solo). */
    double aggregatePerf = 0.0;
    /** Per-app item rates in the optimal configuration. */
    std::vector<double> appItemsPerSec;
    /** True steady-state power of the optimal configuration. */
    double powerWatts = 0.0;
};

/**
 * The paper's "Optimal" point of comparison (Section 4.4): run the workload
 * in every possible configuration, measure, and keep the best-performing
 * configuration that respects the power cap. Here the steady-state model
 * stands in for those measurement runs, making the search exact and noise
 * free.
 *
 * @param extendedSpace search per-socket-asymmetric p-states too, so that
 *        PUPiL's asymmetric socket power distribution cannot outscore
 *        "optimal" (normalized results stay <= 1).
 */
OracleResult searchOptimal(const sched::Scheduler& scheduler,
                           const machine::PowerModel& powerModel,
                           const std::vector<sched::AppDemand>& apps,
                           double capWatts, bool extendedSpace = true);

/**
 * Solo reference rates (each app alone in the maximal configuration),
 * the normalization basis shared with sim::Platform::readPerformance.
 */
std::vector<double> soloReferenceRates(
    const sched::Scheduler& scheduler,
    const std::vector<sched::AppDemand>& apps);

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_ORACLE_H_
