#ifndef PUPIL_CAPPING_SOFT_DVFS_H_
#define PUPIL_CAPPING_SOFT_DVFS_H_

#include "capping/governor.h"
#include "telemetry/filter.h"

namespace pupil::capping {

/**
 * Software DVFS-only power capping, modelled on Lefurgy et al.'s feedback
 * controller ("Power capping: a prelude to power shifting", Cluster
 * Computing 2008) -- the paper's Soft-DVFS baseline (Section 4.4).
 *
 * Every control period the governor samples the external power meter and
 * moves the (uniform, both-socket) p-state so that predicted power matches
 * the cap, using the CMOS V^2*f scaling relation, plus a one-step trim
 * when within a single p-state of the target. All other resources stay at
 * their defaults (everything on), so like RAPL it cannot exploit resource
 * tradeoffs -- and unlike RAPL it cannot duty-cycle below the lowest
 * p-state, which makes very low caps infeasible.
 */
class SoftDvfs : public Governor
{
  public:
    std::string name() const override { return "Soft-DVFS"; }

    bool converged() const override { return converged_; }
    bool capFeasible() const override { return feasible_; }

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.5; }

  private:
    int pstate_ = 15;
    int ceiling_ = 15;
    int stableCount_ = 0;
    bool converged_ = false;
    bool feasible_ = true;
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_SOFT_DVFS_H_
