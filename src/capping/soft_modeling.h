#ifndef PUPIL_CAPPING_SOFT_MODELING_H_
#define PUPIL_CAPPING_SOFT_MODELING_H_

#include "capping/governor.h"
#include "capping/regression.h"

namespace pupil::capping {

/**
 * The offline-modelling baseline (paper Section 4.4): profile the workload
 * across configurations ahead of time, fit multiple-regression models of
 * power and performance as a function of the assigned resources, and at
 * launch pick the configuration whose *predicted* performance is maximal
 * among those whose *predicted* power respects the cap.
 *
 * No feedback is used at runtime -- the configuration is set once and
 * never corrected, so model error translates directly into cap violations
 * (the paper reports ~70% of its data points violating the 60 W cap).
 */
class SoftModeling : public Governor
{
  public:
    std::string name() const override { return "Soft-Modeling"; }

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 1.0; }

    /** The configuration the models selected (valid after onStart). */
    const machine::MachineConfig& chosenConfig() const { return chosen_; }

    /** Predicted power of the chosen configuration. */
    double predictedPower() const { return predictedPower_; }

  private:
    machine::MachineConfig chosen_;
    double predictedPower_ = 0.0;
};

}  // namespace pupil::capping

#endif  // PUPIL_CAPPING_SOFT_MODELING_H_
