#include "soft_dvfs.h"

#include <algorithm>
#include <cmath>

#include "machine/dvfs.h"
#include "sim/platform.h"

namespace pupil::capping {

using machine::DvfsTable;

void
SoftDvfs::onStart(sim::Platform& platform)
{
    // Default OS configuration: everything on, full speed; capping is done
    // purely by walking p-states down from the top.
    pstate_ = DvfsTable::kTurboPState;
    ceiling_ = DvfsTable::kTurboPState;
    converged_ = false;
    feasible_ = true;
    stableCount_ = 0;
    platform.machine().requestConfig(machine::maximalConfig(),
                                     platform.now());
}

void
SoftDvfs::onTick(sim::Platform& platform, double now)
{
    const double power = platform.readPower();
    if (power <= 0.0)
        return;

    // Asymmetric deadband: step down whenever over the cap, step up only
    // when comfortably below it. The gap between the two thresholds
    // exceeds one p-state's power step, so the controller cannot
    // limit-cycle between adjacent states.
    const double ratio = cap_ / power;
    int next = pstate_;
    if (power > cap_) {
        // Jump toward the target using the P ~ V^2 f ~ f^2.5 relation
        // (voltage is roughly affine in frequency).
        const machine::MachineConfig cfg = platform.machine().osConfig(now);
        const double fNow =
            DvfsTable::frequencyGHz(pstate_, cfg.activeCores(0));
        const double fTarget = fNow * std::pow(ratio, 1.0 / 2.5);
        next = std::min(pstate_ - 1, DvfsTable::pstateForFrequency(fTarget));
        // Walk down gradually (two steps when far over, one when close),
        // as the integral controller in Lefurgy et al. does.
        next = std::clamp(next, pstate_ - (power > cap_ * 1.2 ? 2 : 1),
                          0x7fffffff);
        // Remember that this p-state violated the cap so the controller
        // never climbs back into it (prevents up/down limit cycles).
        ceiling_ = std::min(ceiling_, pstate_ - 1);
    } else if (power < cap_ * 0.90) {
        next = std::min(pstate_ + 1, ceiling_);
    }
    next = std::clamp(next, 0, DvfsTable::kTurboPState);

    feasible_ = !(pstate_ == 0 && power > cap_ * 1.02);

    if (next != pstate_) {
        pstate_ = next;
        machine::MachineConfig cfg = platform.machine().osConfig(now);
        cfg.setUniformPState(pstate_);
        platform.machine().requestConfig(cfg, now);
        stableCount_ = 0;
        converged_ = false;
    } else if (++stableCount_ >= 3) {
        converged_ = true;
    }
}

}  // namespace pupil::capping
