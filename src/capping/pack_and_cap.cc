#include "pack_and_cap.h"

#include <algorithm>
#include <cmath>

#include "machine/dvfs.h"
#include "sim/platform.h"

namespace pupil::capping {

using machine::DvfsTable;
using machine::MachineConfig;

MachineConfig
PackAndCap::configFor(int contexts, int pstate)
{
    const int k = std::clamp(contexts, 1, 32);
    MachineConfig cfg;
    cfg.memControllers = 2;
    if (k <= 8) {
        cfg.sockets = 1;
        cfg.coresPerSocket = k;
        cfg.hyperthreading = false;
    } else if (k <= 16) {
        cfg.sockets = 2;
        cfg.coresPerSocket = (k + 1) / 2;
        cfg.hyperthreading = false;
    } else {
        cfg.sockets = 2;
        cfg.coresPerSocket = 8;
        cfg.hyperthreading = true;
    }
    cfg.setUniformPState(pstate);
    return cfg;
}

void
PackAndCap::onStart(sim::Platform& platform)
{
    // Offline pack selection (the counterpart of the original's trained
    // classifier): profile the controlled workload over the pack x p-state
    // grid and choose the highest-performance point under the cap.
    std::vector<sched::AppDemand> apps;
    for (size_t i = 0; i < platform.appCount(); ++i)
        apps.push_back(platform.app(i));

    double bestPerf = -1.0;
    int bestPack = 32;
    int bestPState = 0;
    sched::SystemOutcome out;
    for (int k = 1; k <= 32; ++k) {
        for (int p = DvfsTable::kNumPStates - 1; p >= 0; --p) {
            const MachineConfig cfg = configFor(k, p);
            platform.solveCached(cfg, {1.0, 1.0}, apps, out);
            if (platform.powerModel().totalPower(cfg, out.loads) > cap_)
                continue;
            double aggregate = 0.0;
            for (size_t i = 0; i < out.apps.size(); ++i)
                aggregate += out.apps[i].itemsPerSec /
                             platform.soloReferenceRate(i);
            if (aggregate > bestPerf) {
                bestPerf = aggregate;
                bestPack = k;
                bestPState = p;
            }
            break;  // lower p-states for this pack are strictly slower
        }
    }

    pack_ = bestPack;
    pstate_ = bestPState;
    ceiling_ = DvfsTable::kTurboPState;
    stable_ = 0;
    apply(platform, platform.now());
}

void
PackAndCap::apply(sim::Platform& platform, double now)
{
    platform.machine().requestConfig(configFor(pack_, pstate_), now);
}

void
PackAndCap::onTick(sim::Platform& platform, double now)
{
    // Online correction: a deadband DVFS loop (as in Soft-DVFS) guards the
    // cap against model error and workload drift; the packing stays at its
    // offline-selected value.
    const double power = platform.readPower();
    if (power <= 0.0)
        return;
    int next = pstate_;
    if (power > cap_) {
        const double fNow = DvfsTable::frequencyGHz(
            pstate_, configFor(pack_, pstate_).activeCores(0));
        const double fTarget = fNow * std::pow(cap_ / power, 1.0 / 2.5);
        next = std::min(pstate_ - 1, DvfsTable::pstateForFrequency(fTarget));
        next = std::max(next, pstate_ - 2);
        ceiling_ = std::min(ceiling_, pstate_ - 1);
    } else if (power < cap_ * 0.90) {
        next = std::min(pstate_ + 1, ceiling_);
    }
    next = std::clamp(next, 0, DvfsTable::kTurboPState);
    if (next != pstate_) {
        pstate_ = next;
        stable_ = 0;
        apply(platform, now);
    } else if (stable_ < 3) {
        ++stable_;
    }
}

}  // namespace pupil::capping
