#include "rapl_governor.h"

#include <cassert>

#include "sim/platform.h"

namespace pupil::capping {

void
RaplGovernor::onStart(sim::Platform& platform)
{
    assert(rapl_ != nullptr);
    platform.machine().requestConfig(machine::maximalConfig(),
                                     platform.now());
    rapl_->setTotalCapEvenSplit(cap_);
}

void
RaplGovernor::onTick(sim::Platform& platform, double now)
{
    (void)platform;
    (void)now;
    // Hardware-only capping: nothing to do in software at runtime.
}

}  // namespace pupil::capping
