#include "schedule.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace pupil::faults {

namespace {

const struct
{
    FaultKind kind;
    const char* name;
} kKindNames[] = {
    {FaultKind::kSensorDropout, "sensor-dropout"},
    {FaultKind::kSensorStuck, "sensor-stuck"},
    {FaultKind::kSensorSpike, "sensor-spike"},
    {FaultKind::kMsrStaleEnergy, "msr-stale-energy"},
    {FaultKind::kMsrWriteIgnored, "msr-write-ignored"},
    {FaultKind::kAllocRefused, "alloc-refused"},
    {FaultKind::kDvfsRejected, "dvfs-rejected"},
    {FaultKind::kActuationDelay, "actuation-delay"},
    {FaultKind::kNodeLoss, "node-loss"},
    {FaultKind::kMsgDelay, "msg-delay"},
    {FaultKind::kMsgDrop, "msg-drop"},
    {FaultKind::kMsgReorder, "msg-reorder"},
    {FaultKind::kMsgDup, "msg-dup"},
    {FaultKind::kPartition, "partition"},
};

std::string
trim(const std::string& text)
{
    const size_t first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const size_t last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

std::vector<std::string>
splitOn(const std::string& text, char sep)
{
    std::vector<std::string> parts;
    size_t pos = 0;
    while (true) {
        const size_t next = text.find(sep, pos);
        if (next == std::string::npos) {
            parts.push_back(text.substr(pos));
            return parts;
        }
        parts.push_back(text.substr(pos, next - pos));
        pos = next + 1;
    }
}

double
parseNumber(const std::string& field, const std::string& entry)
{
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0')
        throw std::invalid_argument("fault spec: bad number '" + field +
                                    "' in entry '" + entry + "'");
    // strtod happily produces inf (overflowing literals, "inf") and nan;
    // a NaN window would defeat every subsequent range check (NaN
    // comparisons are false), so non-finite values are rejected here, once.
    if (!std::isfinite(value))
        throw std::invalid_argument("fault spec: non-finite number '" +
                                    field + "' in entry '" + entry + "'");
    return value;
}

FaultKind
parseKind(const std::string& name, const std::string& entry)
{
    for (const auto& entryKind : kKindNames) {
        if (name == entryKind.name)
            return entryKind.kind;
    }
    throw std::invalid_argument("fault spec: unknown kind '" + name +
                                "' in entry '" + entry + "'");
}

}  // namespace

bool
clusterScoped(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kNodeLoss:
      case FaultKind::kMsgDelay:
      case FaultKind::kMsgDrop:
      case FaultKind::kMsgReorder:
      case FaultKind::kMsgDup:
      case FaultKind::kPartition:
        return true;
      default:
        return false;
    }
}

const char*
kindName(FaultKind kind)
{
    for (const auto& entry : kKindNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    return "?";
}

FaultSchedule
FaultSchedule::parse(const std::string& spec)
{
    FaultSchedule schedule;
    std::string normalized = spec;
    for (char& c : normalized) {
        if (c == '\n')
            c = ';';
    }
    for (const std::string& rawEntry : splitOn(normalized, ';')) {
        std::string entry = rawEntry;
        const size_t comment = entry.find('#');
        if (comment != std::string::npos)
            entry = entry.substr(0, comment);
        entry = trim(entry);
        if (entry.empty())
            continue;
        const std::vector<std::string> fields = splitOn(entry, ',');
        if (fields.size() < 4 || fields.size() > 6)
            throw std::invalid_argument(
                "fault spec: expected kind,target,start,end[,param[,prob]]"
                " in entry '" + entry + "'");
        FaultEvent event;
        event.kind = parseKind(trim(fields[0]), entry);
        event.target = trim(fields[1]);
        if (event.target.empty())
            event.target = "*";
        event.startSec = parseNumber(trim(fields[2]), entry);
        event.endSec = parseNumber(trim(fields[3]), entry);
        if (event.startSec < 0.0)
            throw std::invalid_argument(
                "fault spec: window start must be >= 0 in entry '" + entry +
                "'");
        if (event.endSec <= event.startSec)
            throw std::invalid_argument(
                "fault spec: window must be non-empty in entry '" + entry +
                "'");
        if (fields.size() >= 5)
            event.param = parseNumber(trim(fields[4]), entry);
        if (fields.size() >= 6) {
            event.prob = parseNumber(trim(fields[5]), entry);
            if (event.prob < 0.0 || event.prob > 1.0)
                throw std::invalid_argument(
                    "fault spec: probability must be in [0, 1] in entry '" +
                    entry + "'");
        }
        schedule.events_.push_back(std::move(event));
    }
    return schedule;
}

bool
FaultSchedule::anyActive(FaultKind kind, const std::string& target,
                         double now) const
{
    return firstActive(kind, target, now) != nullptr;
}

const FaultEvent*
FaultSchedule::firstActive(FaultKind kind, const std::string& target,
                           double now) const
{
    for (const FaultEvent& event : events_) {
        if (event.kind == kind && event.active(now, target))
            return &event;
    }
    return nullptr;
}

namespace {

bool
contains(const std::vector<std::string>& names, const std::string& name)
{
    for (const std::string& candidate : names) {
        if (candidate == name)
            return true;
    }
    return false;
}

std::string
joinNames(const std::vector<std::string>& names)
{
    std::string joined;
    for (const std::string& name : names) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined.empty() ? "<none>" : joined;
}

}  // namespace

void
validateClusterTargets(const FaultSchedule& schedule,
                       const std::vector<std::string>& nodeNames,
                       const std::vector<std::string>& rackNames)
{
    for (const FaultEvent& event : schedule.events()) {
        if (!clusterScoped(event.kind) || event.target == "*")
            continue;
        const bool node = contains(nodeNames, event.target);
        const bool rack = contains(rackNames, event.target);
        bool ok = false;
        std::string wanted;
        switch (event.kind) {
          case FaultKind::kNodeLoss:
            ok = node;
            wanted = "node (" + joinNames(nodeNames) + ")";
            break;
          case FaultKind::kPartition:
            ok = rack;
            wanted = "rack (" + joinNames(rackNames) + ")";
            break;
          default:  // message kinds match either end of an edge
            ok = node || rack;
            wanted = "rack or node (" + joinNames(rackNames) + "; " +
                     joinNames(nodeNames) + ")";
            break;
        }
        if (!ok)
            throw std::invalid_argument(
                std::string("fault schedule: '") + kindName(event.kind) +
                "' targets unknown " + wanted + ": '" + event.target + "'");
    }
}

}  // namespace pupil::faults
