#ifndef PUPIL_FAULTS_INJECTOR_H_
#define PUPIL_FAULTS_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/schedule.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace pupil::faults {

/** Sensor channels the injector can corrupt. */
enum class SensorChannel { kPower = 0, kPerf = 1, kRaplSocket0 = 2,
                           kRaplSocket1 = 3 };

/** Spec-string target name of @p channel ("power", "perf", "rapl0", ...). */
const char* channelName(SensorChannel channel);

/**
 * Imposes a FaultSchedule at the simulator's component boundaries.
 *
 * One injector serves one platform. The consuming components hold a
 * pointer and query it at their existing seams -- sensor reads
 * (sim::Platform), OS actuation (machine::Machine), the MSR register file
 * (rapl::MsrFile) -- so a null pointer (no schedule) leaves every code
 * path and RNG stream untouched: with injection disabled the simulation
 * is byte-identical to a build without the subsystem.
 *
 * Determinism: the only randomness is the per-sample Bernoulli draw of
 * probabilistic spike events, taken from a dedicated RNG stream derived
 * from the platform seed, so a scenario replays bit-for-bit from
 * (spec, seed) regardless of sweep thread count.
 *
 * MSR queries have no time parameter at their call sites, so the platform
 * publishes the simulation clock through setNow() each tick; boundaries
 * that do know the time pass it explicitly.
 */
class FaultInjector
{
  public:
    FaultInjector(FaultSchedule schedule, uint64_t seed);

    const FaultSchedule& schedule() const { return schedule_; }

    /**
     * Attach a structured-event recorder (not owned, null detaches).
     * Each schedule event emits trace::EventKind::kFaultActivated once,
     * when the clock first enters its window.
     */
    void attachTrace(trace::Recorder* recorder) { trace_ = recorder; }

    /** Publish the simulation clock (called by the platform each tick). */
    void setNow(double now);
    double now() const { return now_; }

    // ----- sensor boundary ------------------------------------------------
    /**
     * Pass a measured sample through the active sensor faults for
     * @p channel and return what the governor actually sees.
     */
    double sensorSample(SensorChannel channel, double measured, double now);

    // ----- MSR boundary (timed via setNow) --------------------------------
    /** Whether a PKG_POWER_LIMIT write to @p socket should be dropped. */
    bool msrWriteIgnored(int socket);

    /** Whether @p socket's energy-status counter is frozen. */
    bool msrEnergyStale(int socket);

    // ----- OS actuation boundary ------------------------------------------
    /** Whether a core/socket/HT/MC reconfiguration is refused at @p now. */
    bool allocRefused(double now);

    /** Whether a p-state-only OS request is rejected at @p now. */
    bool dvfsRejected(double now);

    /** Extra OS actuation latency in force at @p now (0 when healthy). */
    double actuationExtraDelay(double now) const;

    // ----- accounting -----------------------------------------------------
    /** Schedule events whose window has been entered so far. */
    uint64_t eventsActivated() const { return activatedCount_; }

    /** Individual injections performed (corrupted samples, dropped
     *  writes, refused requests, frozen counter updates). */
    uint64_t injectionsPerformed() const { return injections_; }

  private:
    bool socketFaultActive(FaultKind kind, int socket, double now) const;

    FaultSchedule schedule_;
    util::Rng rng_;
    trace::Recorder* trace_ = nullptr;
    double now_ = 0.0;

    /** Last value each channel reported while unfrozen (for stuck-at). */
    std::array<double, 4> lastReported_ = {0.0, 0.0, 0.0, 0.0};
    std::array<bool, 4> hasReported_ = {false, false, false, false};

    std::vector<bool> activated_;
    uint64_t activatedCount_ = 0;
    uint64_t injections_ = 0;
};

}  // namespace pupil::faults

#endif  // PUPIL_FAULTS_INJECTOR_H_
