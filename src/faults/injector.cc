#include "injector.h"

#include <stdexcept>

namespace pupil::faults {

const char*
channelName(SensorChannel channel)
{
    switch (channel) {
      case SensorChannel::kPower: return "power";
      case SensorChannel::kPerf: return "perf";
      case SensorChannel::kRaplSocket0: return "rapl0";
      case SensorChannel::kRaplSocket1: return "rapl1";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultSchedule schedule, uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed),
      activated_(schedule_.events().size(), false)
{
    // A node-local injector cannot honor cluster-scoped events (node-loss,
    // partition, msg-*); accepting one would silently run a different
    // scenario than the spec describes. Those belong in the schedule handed
    // to BudgetTree::setFaultSchedule.
    for (const FaultEvent& event : schedule_.events()) {
        if (clusterScoped(event.kind))
            throw std::invalid_argument(
                std::string("fault spec: cluster-scoped kind '") +
                kindName(event.kind) +
                "' is not valid in a node-local fault spec");
    }
}

void
FaultInjector::setNow(double now)
{
    now_ = now;
    // Activation accounting: count each scheduled event once, when the
    // clock first enters its window.
    for (size_t i = 0; i < schedule_.events().size(); ++i) {
        const FaultEvent& event = schedule_.events()[i];
        if (!activated_[i] && now >= event.startSec && now < event.endSec) {
            activated_[i] = true;
            ++activatedCount_;
            trace::emit(trace_, now, trace::EventKind::kFaultActivated,
                        event.endSec - event.startSec, 0.0, int32_t(i),
                        int32_t(event.kind));
        }
    }
}

double
FaultInjector::sensorSample(SensorChannel channel, double measured,
                            double now)
{
    const std::string target = channelName(channel);
    const size_t idx = size_t(channel);
    double out = measured;
    bool stuck = false;
    for (const FaultEvent& event : schedule_.events()) {
        if (!event.active(now, target))
            continue;
        switch (event.kind) {
          case FaultKind::kSensorDropout:
            out = 0.0;
            ++injections_;
            break;
          case FaultKind::kSensorStuck:
            if (hasReported_[idx]) {
                out = lastReported_[idx];
                stuck = true;
                ++injections_;
            }
            break;
          case FaultKind::kSensorSpike:
            if (event.prob >= 1.0 || rng_.bernoulli(event.prob)) {
                out *= event.param;
                ++injections_;
            }
            break;
          default:
            break;
        }
    }
    if (!stuck) {
        lastReported_[idx] = out;
        hasReported_[idx] = true;
    }
    return out;
}

bool
FaultInjector::socketFaultActive(FaultKind kind, int socket, double now) const
{
    return schedule_.anyActive(kind, std::to_string(socket), now);
}

bool
FaultInjector::msrWriteIgnored(int socket)
{
    if (!socketFaultActive(FaultKind::kMsrWriteIgnored, socket, now_))
        return false;
    ++injections_;
    return true;
}

bool
FaultInjector::msrEnergyStale(int socket)
{
    if (!socketFaultActive(FaultKind::kMsrStaleEnergy, socket, now_))
        return false;
    ++injections_;
    return true;
}

bool
FaultInjector::allocRefused(double now)
{
    if (!schedule_.anyActive(FaultKind::kAllocRefused, "*", now))
        return false;
    ++injections_;
    return true;
}

bool
FaultInjector::dvfsRejected(double now)
{
    if (!schedule_.anyActive(FaultKind::kDvfsRejected, "*", now))
        return false;
    ++injections_;
    return true;
}

double
FaultInjector::actuationExtraDelay(double now) const
{
    const FaultEvent* event =
        schedule_.firstActive(FaultKind::kActuationDelay, "*", now);
    return event != nullptr ? event->param : 0.0;
}

}  // namespace pupil::faults
