#ifndef PUPIL_FAULTS_SCHEDULE_H_
#define PUPIL_FAULTS_SCHEDULE_H_

#include <string>
#include <vector>

namespace pupil::faults {

/**
 * The fault classes the injector can impose at the simulator's component
 * boundaries. Each targets one of the interposition points the paper's
 * robustness argument (Sections 3, 6) rests on: the governor-visible
 * sensors, the emulated RAPL MSR file, the OS actuation path, and cluster
 * membership.
 */
enum class FaultKind {
    kSensorDropout,   ///< "sensor-dropout": channel reads as 0 (meter offline)
    kSensorStuck,     ///< "sensor-stuck": channel frozen at its last reading
    kSensorSpike,     ///< "sensor-spike": reading multiplied by param
    kMsrStaleEnergy,  ///< "msr-stale-energy": energy counter stops advancing
    kMsrWriteIgnored, ///< "msr-write-ignored": PKG_POWER_LIMIT writes dropped
    kAllocRefused,    ///< "alloc-refused": core/socket/HT/MC changes refused
    kDvfsRejected,    ///< "dvfs-rejected": p-state-only OS requests refused
    kActuationDelay,  ///< "actuation-delay": extra param seconds of latency
    kNodeLoss,        ///< "node-loss": cluster node offline during the window
    kMsgDelay,        ///< "msg-delay": matching control messages arrive
                      ///< param seconds late
    kMsgDrop,         ///< "msg-drop": matching control messages lost
                      ///< (prob per message)
    kMsgReorder,      ///< "msg-reorder": matching messages shuffled within
                      ///< a delivery flush (prob selects the shuffled set)
    kMsgDup,          ///< "msg-dup": matching messages delivered twice
                      ///< (prob per message)
    kPartition,       ///< "partition": rack cut off from the root; intra-
                      ///< rack traffic is unaffected
};

/** Spec-string name of @p kind (e.g. "sensor-dropout"). */
const char* kindName(FaultKind kind);

/**
 * Whether @p kind acts on cluster topology (rack/node names) rather than
 * a node-local boundary. Cluster-scoped kinds are meaningless inside a
 * single platform's fault spec and are rejected there (injector.cc);
 * they belong in the schedule handed to BudgetTree::setFaultSchedule.
 */
bool clusterScoped(FaultKind kind);

/**
 * One scheduled fault: @p kind imposed on @p target over [start, end).
 *
 * @p target selects the victim: a sensor channel ("power", "perf",
 * "rapl0", "rapl1"), an MSR socket ("0", "1"), a cluster node name, or
 * "*" for every instance of the boundary. Actuator faults ignore it.
 *
 * @p param is kind-specific (spike multiplier, delay seconds); @p prob is
 * the per-sample injection probability for kSensorSpike (1 = every
 * sample), drawn from the injector's own deterministic RNG stream.
 */
struct FaultEvent
{
    FaultKind kind = FaultKind::kSensorDropout;
    std::string target = "*";
    double startSec = 0.0;
    double endSec = 0.0;
    double param = 0.0;
    double prob = 1.0;

    /** Whether the event is in force at @p now for @p target. */
    bool active(double now, const std::string& target_) const
    {
        return now >= startSec && now < endSec &&
               (target == "*" || target == target_);
    }
};

/**
 * A seed-deterministic, time-indexed fault scenario.
 *
 * Parsed from a small CSV spec so tests and benches share scenarios:
 * entries are separated by ';' or newlines, fields by ','; '#' starts a
 * comment. Each entry is
 *
 *     kind,target,start,end[,param[,prob]]
 *
 * e.g. "sensor-dropout,power,0,60" (the external meter is dead for the
 * first minute) or "sensor-spike,power,30,90,3.0,0.25" (a 3x spike on a
 * quarter of the samples). An empty spec parses to an empty schedule,
 * which disables injection entirely.
 */
class FaultSchedule
{
  public:
    FaultSchedule() = default;

    /**
     * Parse @p spec; throws std::invalid_argument on malformed entries:
     * unknown kinds, wrong field counts, unparseable or non-finite
     * numbers, windows with start < 0 or end <= start, and probabilities
     * outside [0, 1]. Rejection is the only failure mode -- the parser
     * never crashes on hostile input (fuzzed in faults_test.cc).
     */
    static FaultSchedule parse(const std::string& spec);

    const std::vector<FaultEvent>& events() const { return events_; }
    bool empty() const { return events_.empty(); }

    /** Whether any @p kind event targeting @p target is active at @p now. */
    bool anyActive(FaultKind kind, const std::string& target,
                   double now) const;

    /** First active @p kind event for @p target, or nullptr. */
    const FaultEvent* firstActive(FaultKind kind, const std::string& target,
                                  double now) const;

  private:
    std::vector<FaultEvent> events_;
};

/**
 * Check every cluster-scoped event in @p schedule against the actual
 * topology: "node-loss" must target a known node name (or "*"),
 * "partition" a known rack name (or "*"), and the message kinds either.
 * Throws std::invalid_argument naming the bad target and the names it was
 * checked against -- a typoed rack id silently matching nothing is a
 * scenario that tests believe ran but never did.
 */
void validateClusterTargets(const FaultSchedule& schedule,
                            const std::vector<std::string>& nodeNames,
                            const std::vector<std::string>& rackNames);

}  // namespace pupil::faults

#endif  // PUPIL_FAULTS_SCHEDULE_H_
