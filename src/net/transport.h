#ifndef PUPIL_NET_TRANSPORT_H_
#define PUPIL_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/fault_plane.h"
#include "net/message.h"
#include "trace/trace.h"

namespace pupil::net {

/**
 * The message-passing seam between budget-tree endpoints (root controller,
 * rack agents, node agents). Endpoints bind a handler for their address
 * and exchange Messages; they never touch each other's state directly.
 *
 * Delivery is pull-based and explicitly clocked: send() only enqueues,
 * deliver(now) hands every frame due by @p now to its destination handler.
 * Each deliver() call drains one hop -- messages sent *during* a delivery
 * (e.g. a rack agent forwarding a node's report) wait for the next call,
 * which is what makes multi-hop rounds deterministic and lets a future
 * socket transport drop in behind the same interface.
 */
class Transport
{
  public:
    using Handler = std::function<void(const Message&)>;

    /** Delivery accounting (all message counts since construction). */
    struct Stats
    {
        uint64_t sent = 0;           ///< send() calls
        uint64_t delivered = 0;      ///< handler invocations
        uint64_t dropped = 0;        ///< lost to msg-drop or partition
        uint64_t partitionDrops = 0; ///< the subset cut by a partition
        uint64_t duplicated = 0;     ///< extra copies enqueued by msg-dup
        uint64_t delayed = 0;        ///< deliveries postponed by msg-delay
        uint64_t reordered = 0;      ///< messages shuffled by msg-reorder
        uint64_t rejected = 0;       ///< frames the codec refused
        uint64_t unrouted = 0;       ///< no handler bound for the address
    };

    virtual ~Transport() = default;

    /** Register @p handler as the endpoint at @p id (replaces any prior). */
    virtual void bind(EndpointId id, Handler handler) = 0;

    /** Enqueue @p message from @p from to @p to at time @p now. */
    virtual void send(EndpointId from, EndpointId to, const Message& message,
                      double now) = 0;

    /** Deliver every frame due by @p now (one hop; see class comment). */
    virtual void deliver(double now) = 0;

    virtual const Stats& stats() const = 0;
};

/**
 * Deterministic in-process transport.
 *
 * Every message round-trips through the wire codec -- encoded at send(),
 * decoded at delivery -- so the in-process path exercises exactly the
 * bytes a socket transport would put on the network, and a frame the
 * codec rejects is dropped here too (counted in Stats::rejected).
 *
 * An optional MessageFaultPlane (not owned) supplies per-message
 * drop/delay/duplicate verdicts at send() and the reorder shuffle at
 * deliver(); without one, delivery is in-order, lossless, and draws no
 * randomness. Not thread safe: one transport belongs to one BudgetTree's
 * control thread, like every other per-run object.
 */
class LocalTransport : public Transport
{
  public:
    explicit LocalTransport(MessageFaultPlane* plane = nullptr);

    /** Attach a structured-event recorder (not owned, null detaches):
        every send emits kMsgSend, every loss kMsgDrop. */
    void attachTrace(trace::Recorder* recorder) { trace_ = recorder; }

    /** Attach or detach the fault plane (not owned). The owner builds the
        plane once it knows the topology, after the transport exists. */
    void setFaultPlane(MessageFaultPlane* plane) { plane_ = plane; }

    void bind(EndpointId id, Handler handler) override;
    void send(EndpointId from, EndpointId to, const Message& message,
              double now) override;
    void deliver(double now) override;
    const Stats& stats() const override { return stats_; }

    /** Frames enqueued but not yet due (delayed or undelivered). */
    size_t pending() const { return queue_.size(); }

  private:
    struct Pending
    {
        double dueSec = 0.0;
        uint64_t order = 0;  ///< send order, the FIFO tiebreak
        EndpointId from;
        EndpointId to;
        Frame frame{};
    };

    MessageFaultPlane* plane_;
    trace::Recorder* trace_ = nullptr;
    std::map<EndpointId, Handler> handlers_;
    std::vector<Pending> queue_;
    uint64_t nextOrder_ = 0;
    Stats stats_;
};

}  // namespace pupil::net

#endif  // PUPIL_NET_TRANSPORT_H_
