#include "message.h"

#include <cmath>
#include <cstring>

namespace pupil::net {

namespace {

constexpr uint8_t kMagic0 = 'P';
constexpr uint8_t kMagic1 = 'B';

void
putU32(uint8_t* out, uint32_t value)
{
    out[0] = uint8_t(value);
    out[1] = uint8_t(value >> 8);
    out[2] = uint8_t(value >> 16);
    out[3] = uint8_t(value >> 24);
}

uint32_t
getU32(const uint8_t* in)
{
    return uint32_t(in[0]) | uint32_t(in[1]) << 8 | uint32_t(in[2]) << 16 |
           uint32_t(in[3]) << 24;
}

void
putU64(uint8_t* out, uint64_t value)
{
    putU32(out, uint32_t(value));
    putU32(out + 4, uint32_t(value >> 32));
}

uint64_t
getU64(const uint8_t* in)
{
    return uint64_t(getU32(in)) | uint64_t(getU32(in + 4)) << 32;
}

uint64_t
doubleBits(double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

/** FNV-1a over the frame header + payload (bytes [0..31]). */
uint32_t
checksum(const uint8_t* data)
{
    uint64_t hash = 1469598103934665603ULL;
    for (size_t i = 0; i < kFrameBytes - 4; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ULL;
    }
    return uint32_t(hash ^ (hash >> 32));
}

}  // namespace

const char*
kindName(MsgKind kind)
{
    switch (kind) {
      case MsgKind::kDemandReport: return "demand-report";
      case MsgKind::kCapGrant: return "cap-grant";
      case MsgKind::kNodeLeave: return "node-leave";
      case MsgKind::kNodeJoin: return "node-join";
      case MsgKind::kRackDark: return "rack-dark";
      case MsgKind::kRackBright: return "rack-bright";
    }
    return "?";
}

bool
knownKind(uint8_t raw)
{
    return raw >= uint8_t(MsgKind::kDemandReport) &&
           raw <= uint8_t(MsgKind::kRackBright);
}

Frame
encode(const Message& message)
{
    Frame frame{};
    frame[0] = kMagic0;
    frame[1] = kMagic1;
    frame[2] = kWireVersion;
    frame[3] = uint8_t(message.kind);
    putU32(frame.data() + 4, message.seq);
    putU32(frame.data() + 8, uint32_t(message.rack));
    putU32(frame.data() + 12, uint32_t(message.node));
    putU64(frame.data() + 16, doubleBits(message.timeSec));
    putU64(frame.data() + 24, doubleBits(message.valueWatts));
    putU32(frame.data() + 32, checksum(frame.data()));
    return frame;
}

std::optional<Message>
decode(const uint8_t* data, size_t len)
{
    if (data == nullptr || len != kFrameBytes)
        return std::nullopt;
    if (data[0] != kMagic0 || data[1] != kMagic1)
        return std::nullopt;
    if (data[2] != kWireVersion)
        return std::nullopt;
    if (!knownKind(data[3]))
        return std::nullopt;
    if (getU32(data + 32) != checksum(data))
        return std::nullopt;
    Message message;
    message.kind = MsgKind(data[3]);
    message.seq = getU32(data + 4);
    message.rack = int32_t(getU32(data + 8));
    message.node = int32_t(getU32(data + 12));
    message.timeSec = bitsDouble(getU64(data + 16));
    message.valueWatts = bitsDouble(getU64(data + 24));
    // The checksum guards transport corruption, not hostile encoders; a
    // frame with non-finite or nonsensical fields is rejected outright so
    // no NaN ever reaches the budget arithmetic. valueWatts may be
    // slightly negative (noisy meter readings travel as measured).
    if (!std::isfinite(message.timeSec) || !std::isfinite(message.valueWatts))
        return std::nullopt;
    if (message.timeSec < 0.0 || message.rack < -1 || message.node < -1)
        return std::nullopt;
    return message;
}

std::optional<Message>
decode(const Frame& frame)
{
    return decode(frame.data(), frame.size());
}

}  // namespace pupil::net
