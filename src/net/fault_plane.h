#ifndef PUPIL_NET_FAULT_PLANE_H_
#define PUPIL_NET_FAULT_PLANE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "faults/schedule.h"
#include "net/message.h"
#include "util/rng.h"

namespace pupil::net {

/**
 * Imposes the message-fault kinds of a FaultSchedule on a transport's
 * edges: "msg-drop", "msg-delay", "msg-dup", "msg-reorder", and
 * "partition" (DESIGN.md section 14.4).
 *
 * Edge matching: an event applies to a message when its target is "*" or
 * names either endpoint of the edge -- the rack agent's name matches both
 * its uplink (root<->rack) and its downlinks (rack<->node); a node name
 * matches only that node's edges. "partition" is special: it cuts only
 * root<->rack uplinks (target = rack name), modelling a top-of-rack
 * switch losing its spine -- intra-rack traffic is unaffected.
 *
 * Determinism mirrors faults::FaultInjector: the only randomness is the
 * per-message Bernoulli draw for probabilistic events, from a dedicated
 * RNG stream, so a scenario replays bit-for-bit from (spec, seed). With a
 * null schedule every verdict is "deliver" and the RNG is never touched.
 */
class MessageFaultPlane
{
  public:
    /** Rack/node names, for matching schedule targets to edges. */
    struct Topology
    {
        std::vector<std::string> rackNames;
        std::vector<std::vector<std::string>> nodeNames;  ///< per rack
    };

    MessageFaultPlane(const faults::FaultSchedule* schedule, uint64_t seed,
                      Topology topology);

    /** What the network does to one message on the @p from -> @p to edge. */
    struct Verdict
    {
        bool drop = false;        ///< message lost
        bool partitioned = false; ///< the drop is a partition cut
        bool duplicate = false;   ///< delivered twice
        double delaySec = 0.0;    ///< extra latency before delivery
    };

    /** Evaluate (and draw for) one send at @p now. */
    Verdict onSend(EndpointId from, EndpointId to, double now);

    /**
     * Whether this message joins the shuffled set of the current delivery
     * flush (one draw per in-window call; the transport shuffles eligible
     * messages among their slots).
     */
    bool reorderEligible(EndpointId from, EndpointId to, double now);

    /** Whether rack @p rack is cut off from the root at @p now. */
    bool partitionActive(int32_t rack, double now) const;

    /** Uniform index in [0, @p n) from the plane's stream (the transport's
        reorder shuffle draws through here so one seed governs all message
        randomness). Requires n > 0. */
    uint64_t drawIndex(uint64_t n);

    // ----- accounting -----------------------------------------------------
    uint64_t dropsInjected() const { return drops_; }
    uint64_t duplicatesInjected() const { return duplicates_; }
    uint64_t delaysInjected() const { return delays_; }

  private:
    /** First active @p kind event matching either end of the edge. */
    const faults::FaultEvent* edgeActive(faults::FaultKind kind,
                                         EndpointId from, EndpointId to,
                                         double now) const;
    /** Probabilistic gate: always for prob >= 1, else one Bernoulli draw. */
    bool fires(const faults::FaultEvent& event);

    const faults::FaultSchedule* schedule_;
    util::Rng rng_;
    Topology topology_;
    uint64_t drops_ = 0;
    uint64_t duplicates_ = 0;
    uint64_t delays_ = 0;
};

}  // namespace pupil::net

#endif  // PUPIL_NET_FAULT_PLANE_H_
