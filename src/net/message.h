#ifndef PUPIL_NET_MESSAGE_H_
#define PUPIL_NET_MESSAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace pupil::net {

/**
 * The budget-tree control-plane protocol (DESIGN.md section 14).
 *
 * Every parent<->child interaction in the tree -- demand reports up, cap
 * grants down, membership changes -- is one of these message kinds. The
 * numeric values are part of the wire format; append new kinds rather
 * than renumbering, and bump kWireVersion on any layout change.
 */
enum class MsgKind : uint8_t {
    kDemandReport = 1,  ///< child -> parent: value = measured demand (W).
                        ///< node = -1 when a rack reports its aggregate.
    kCapGrant = 2,      ///< parent -> child: value = granted cap (W).
                        ///< node = -1 when the root grants to a rack.
    kNodeLeave = 3,     ///< node -> rack (forwarded rack -> root):
                        ///< value = the watts the leaver returns
    kNodeJoin = 4,      ///< node -> rack (forwarded rack -> root)
    kRackDark = 5,      ///< rack -> root: the rack's last member left
    kRackBright = 6,    ///< rack -> root: a dark rack has members again
};

/** Stable kebab-case name of @p kind ("demand-report", "cap-grant", ...). */
const char* kindName(MsgKind kind);

/**
 * Address of a control-plane endpoint: (-1, -1) is the root controller,
 * (r, -1) is rack r's agent, (r, n) is node n's agent inside rack r.
 */
struct EndpointId
{
    int32_t rack = -1;
    int32_t node = -1;

    bool isRoot() const { return rack < 0; }
    bool isRackAgent() const { return rack >= 0 && node < 0; }

    friend bool operator==(const EndpointId& a, const EndpointId& b)
    {
        return a.rack == b.rack && a.node == b.node;
    }
    friend bool operator<(const EndpointId& a, const EndpointId& b)
    {
        return a.rack != b.rack ? a.rack < b.rack : a.node < b.node;
    }
};

/** Whether @p raw is a defined MsgKind value (decode-time gate). */
bool knownKind(uint8_t raw);

/**
 * One control-plane message. Fixed shape on purpose: every protocol
 * interaction fits (kind, seq, rack, node, time, value), which keeps the
 * wire frame a single compact struct and the transport payload-agnostic.
 *
 * @p seq orders messages within one sender stream (see DESIGN.md 14.2 for
 * the per-stream idempotency rules). @p timeSec is the send time -- a
 * delayed demand report is stale *data*, so receivers age by send time,
 * not arrival time. @p rack / @p node name the subject endpoint; -1 means
 * "not a node" / "the root" as documented per kind.
 */
struct Message
{
    MsgKind kind = MsgKind::kDemandReport;
    uint32_t seq = 0;
    int32_t rack = -1;
    int32_t node = -1;
    double timeSec = 0.0;
    double valueWatts = 0.0;
};

/** Serialized frame size: every message encodes to exactly this. */
inline constexpr size_t kFrameBytes = 36;

/** Current wire-format version (byte 2 of every frame). */
inline constexpr uint8_t kWireVersion = 1;

/** A serialized message. */
using Frame = std::array<uint8_t, kFrameBytes>;

/**
 * Encode @p message into its little-endian wire frame:
 *
 *     [0..1]   magic 'P','B'
 *     [2]      version
 *     [3]      kind
 *     [4..7]   seq (u32)
 *     [8..11]  rack (i32)
 *     [12..15] node (i32)
 *     [16..23] timeSec (f64 bit pattern)
 *     [24..31] valueWatts (f64 bit pattern)
 *     [32..35] FNV-1a checksum of bytes [0..31], truncated to u32
 */
Frame encode(const Message& message);

/**
 * Decode a frame. Returns std::nullopt -- never throws, never crashes,
 * never returns partial state -- on any malformation: wrong length, bad
 * magic, unknown version or kind, checksum mismatch, or non-finite /
 * out-of-range payload fields (fuzzed in net_test.cc).
 */
std::optional<Message> decode(const uint8_t* data, size_t len);

/** Convenience overload for a full frame. */
std::optional<Message> decode(const Frame& frame);

}  // namespace pupil::net

#endif  // PUPIL_NET_MESSAGE_H_
