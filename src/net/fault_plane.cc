#include "fault_plane.h"

#include <utility>

namespace pupil::net {

namespace {

const std::string kEmpty;

}  // namespace

MessageFaultPlane::MessageFaultPlane(const faults::FaultSchedule* schedule,
                                     uint64_t seed, Topology topology)
    : schedule_(schedule), rng_(seed), topology_(std::move(topology))
{
}

const faults::FaultEvent*
MessageFaultPlane::edgeActive(faults::FaultKind kind, EndpointId from,
                              EndpointId to, double now) const
{
    if (schedule_ == nullptr)
        return nullptr;
    // Collect the names of both endpoints; the root has none, so a wildcard
    // event is the only way to target it directly.
    const std::string* names[2] = {&kEmpty, &kEmpty};
    int count = 0;
    for (const EndpointId& end : {from, to}) {
        if (end.isRoot())
            continue;
        if (end.isRackAgent())
            names[count++] = &topology_.rackNames[size_t(end.rack)];
        else
            names[count++] =
                &topology_.nodeNames[size_t(end.rack)][size_t(end.node)];
    }
    for (int i = 0; i < count; ++i) {
        const faults::FaultEvent* event =
            schedule_->firstActive(kind, *names[i], now);
        if (event != nullptr)
            return event;
    }
    return nullptr;
}

bool
MessageFaultPlane::fires(const faults::FaultEvent& event)
{
    return event.prob >= 1.0 || rng_.bernoulli(event.prob);
}

MessageFaultPlane::Verdict
MessageFaultPlane::onSend(EndpointId from, EndpointId to, double now)
{
    Verdict verdict;
    if (schedule_ == nullptr || schedule_->empty())
        return verdict;

    // A partition severs the rack's uplink outright -- no probability, no
    // draws -- exactly like a top-of-rack switch losing its spine port.
    if (from.isRoot() || to.isRoot()) {
        const int32_t rack = from.isRoot() ? to.rack : from.rack;
        if (rack >= 0 && partitionActive(rack, now)) {
            verdict.drop = true;
            verdict.partitioned = true;
            ++drops_;
            return verdict;
        }
    }

    if (const auto* event =
            edgeActive(faults::FaultKind::kMsgDrop, from, to, now)) {
        if (fires(*event)) {
            verdict.drop = true;
            ++drops_;
            return verdict;
        }
    }
    if (const auto* event =
            edgeActive(faults::FaultKind::kMsgDup, from, to, now)) {
        if (fires(*event)) {
            verdict.duplicate = true;
            ++duplicates_;
        }
    }
    if (const auto* event =
            edgeActive(faults::FaultKind::kMsgDelay, from, to, now)) {
        if (fires(*event)) {
            verdict.delaySec = event->param > 0.0 ? event->param : 0.0;
            ++delays_;
        }
    }
    return verdict;
}

bool
MessageFaultPlane::reorderEligible(EndpointId from, EndpointId to, double now)
{
    const faults::FaultEvent* event =
        edgeActive(faults::FaultKind::kMsgReorder, from, to, now);
    return event != nullptr && fires(*event);
}

uint64_t
MessageFaultPlane::drawIndex(uint64_t n)
{
    return rng_.uniformInt(n);
}

bool
MessageFaultPlane::partitionActive(int32_t rack, double now) const
{
    if (schedule_ == nullptr || rack < 0 ||
        size_t(rack) >= topology_.rackNames.size())
        return false;
    return schedule_->anyActive(faults::FaultKind::kPartition,
                                topology_.rackNames[size_t(rack)], now);
}

}  // namespace pupil::net
