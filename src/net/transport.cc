#include "transport.h"

#include <algorithm>
#include <utility>

namespace pupil::net {

namespace {

/** Slack for "due by now" so a delay of exactly one period is delivered
    at the period boundary rather than one period later. */
constexpr double kDueEps = 1e-9;

}  // namespace

LocalTransport::LocalTransport(MessageFaultPlane* plane)
    : plane_(plane)
{
}

void
LocalTransport::bind(EndpointId id, Handler handler)
{
    handlers_[id] = std::move(handler);
}

void
LocalTransport::send(EndpointId from, EndpointId to, const Message& message,
                     double now)
{
    ++stats_.sent;
    trace::emit(trace_, now, trace::EventKind::kMsgSend, message.valueWatts,
                0.0, int32_t(message.kind), to.rack);

    MessageFaultPlane::Verdict verdict;
    if (plane_ != nullptr)
        verdict = plane_->onSend(from, to, now);
    if (verdict.drop) {
        ++stats_.dropped;
        if (verdict.partitioned)
            ++stats_.partitionDrops;
        trace::emit(trace_, now, trace::EventKind::kMsgDrop,
                    message.valueWatts, 0.0, int32_t(message.kind), to.rack);
        return;
    }

    Pending pending;
    pending.dueSec = now + verdict.delaySec;
    pending.order = nextOrder_++;
    pending.from = from;
    pending.to = to;
    pending.frame = encode(message);
    if (verdict.delaySec > 0.0)
        ++stats_.delayed;
    queue_.push_back(pending);
    if (verdict.duplicate) {
        ++stats_.duplicated;
        pending.order = nextOrder_++;
        queue_.push_back(pending);
    }
}

void
LocalTransport::deliver(double now)
{
    if (queue_.empty())
        return;

    // Snapshot the due set before any handler runs: messages sent while
    // delivering (forwards, replies) belong to the next hop.
    std::vector<Pending> due;
    size_t keep = 0;
    for (size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].dueSec <= now + kDueEps)
            due.push_back(std::move(queue_[i]));
        else
            queue_[keep++] = std::move(queue_[i]);
    }
    queue_.resize(keep);
    if (due.empty())
        return;

    // Arrival order: due time, then send order -- a delayed frame lands
    // after everything that was sent while it was in flight. Fault-free
    // queues are already in send order (the common case at cluster scale:
    // ~3 messages per node per period), so the sort is skipped entirely
    // unless a delay actually reordered the due set.
    const auto arrivalOrder = [](const Pending& a, const Pending& b) {
        return a.dueSec != b.dueSec ? a.dueSec < b.dueSec
                                    : a.order < b.order;
    };
    if (!std::is_sorted(due.begin(), due.end(), arrivalOrder))
        std::sort(due.begin(), due.end(), arrivalOrder);

    // msg-reorder: draw the eligible set (one Bernoulli per frame, in
    // arrival order, so the draw sequence is schedule-determined), then
    // Fisher-Yates the eligible frames among their own slots.
    if (plane_ != nullptr && due.size() > 1) {
        std::vector<size_t> eligible;
        for (size_t i = 0; i < due.size(); ++i) {
            if (plane_->reorderEligible(due[i].from, due[i].to, now))
                eligible.push_back(i);
        }
        if (eligible.size() > 1) {
            for (size_t i = eligible.size() - 1; i > 0; --i) {
                const size_t j = size_t(plane_->drawIndex(i + 1));
                if (j != i) {
                    std::swap(due[eligible[i]], due[eligible[j]]);
                    stats_.reordered += 2;
                }
            }
        }
    }

    for (const Pending& pending : due) {
        const std::optional<Message> message =
            decode(pending.frame.data(), pending.frame.size());
        if (!message.has_value()) {
            ++stats_.rejected;
            continue;
        }
        const auto handler = handlers_.find(pending.to);
        if (handler == handlers_.end() || !handler->second) {
            ++stats_.unrouted;
            continue;
        }
        ++stats_.delivered;
        handler->second(*message);
    }
}

}  // namespace pupil::net
