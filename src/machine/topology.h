#ifndef PUPIL_MACHINE_TOPOLOGY_H_
#define PUPIL_MACHINE_TOPOLOGY_H_

namespace pupil::machine {

/**
 * Physical topology of the modelled server.
 *
 * Mirrors the paper's evaluation platform (Table 1): a dual-socket
 * SuperMICRO board with two Intel Xeon E5-2690 processors -- 8 cores per
 * socket, 2-way hyperthreading, one memory controller per socket, 15 DVFS
 * settings plus TurboBoost, and a 135 W thermal design power per socket.
 */
struct Topology
{
    int sockets = 2;
    int coresPerSocket = 8;
    int threadsPerCore = 2;
    int memControllers = 2;  ///< one per socket, interleavable via numactl
    double socketTdpWatts = 135.0;

    /** Physical cores across all sockets. */
    int totalCores() const { return sockets * coresPerSocket; }

    /** Hardware thread contexts across all sockets. */
    int totalContexts() const { return totalCores() * threadsPerCore; }
};

/** The default (paper) topology. */
const Topology& defaultTopology();

}  // namespace pupil::machine

#endif  // PUPIL_MACHINE_TOPOLOGY_H_
