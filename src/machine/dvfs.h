#ifndef PUPIL_MACHINE_DVFS_H_
#define PUPIL_MACHINE_DVFS_H_

namespace pupil::machine {

/**
 * DVFS (P-state) table for the modelled Xeon E5-2690.
 *
 * P-states 0..14 span 1.2 to 2.9 GHz in uniform steps; P-state 15 is
 * TurboBoost, whose achievable frequency degrades as more cores on the
 * socket are active (matching real SandyBridge turbo bins). Voltage follows
 * an affine V/f curve, which together with the CMOS dynamic-power law gives
 * the super-linear power-vs-speed tradeoff the paper's DVFS knob exhibits.
 */
class DvfsTable
{
  public:
    static constexpr int kNumPStates = 16;   ///< 15 DVFS settings + turbo
    static constexpr int kTurboPState = 15;
    static constexpr double kMinFrequencyGHz = 1.2;
    static constexpr double kMaxNominalGHz = 2.9;

    /**
     * Core clock frequency (GHz) at @p pstate with @p activeCores active on
     * the socket. Non-turbo states are independent of core count; turbo
     * starts at 3.8 GHz for one core and loses 0.1 GHz per extra active
     * core (floor: nominal + 0.2 GHz).
     */
    static double frequencyGHz(int pstate, int activeCores);

    /** Supply voltage (V) required to sustain frequency @p freqGHz. */
    static double voltage(double freqGHz);

    /** Whether @p pstate is a valid index into the table. */
    static bool valid(int pstate) { return pstate >= 0 && pstate < kNumPStates; }

    /**
     * Highest p-state whose (single-core-count-independent, i.e. nominal)
     * frequency does not exceed @p freqGHz. Used by controllers mapping a
     * continuous frequency target back onto the discrete table.
     */
    static int pstateForFrequency(double freqGHz);

    /** Time for a frequency/voltage transition to take effect (seconds). */
    static constexpr double kTransitionLatencySec = 0.010;
};

}  // namespace pupil::machine

#endif  // PUPIL_MACHINE_DVFS_H_
