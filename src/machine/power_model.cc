#include "power_model.h"

#include <algorithm>
#include <cassert>

namespace pupil::machine {

PowerModel::PowerModel(const PowerParams& params, const Topology& topo)
    : params_(params), topo_(topo)
{
}

double
PowerModel::frequency(const MachineConfig& cfg, int s) const
{
    if (!cfg.socketActive(s))
        return 0.0;
    return DvfsTable::frequencyGHz(cfg.pstate[s], cfg.activeCores(s));
}

double
PowerModel::staticSocketPower(const MachineConfig& cfg, int s) const
{
    // A memory controller draws power on the socket that owns it whenever
    // it is part of the interleave set, even if that socket's cores are off
    // (numactl can target a remote controller).
    const bool mcInUse = (s == 0) || (cfg.memControllers >= 2);
    const double mcPower = mcInUse ? params_.mcWatts : 0.0;

    if (!cfg.socketActive(s))
        return params_.idleSocketWatts + mcPower;

    const double volts = DvfsTable::voltage(frequency(cfg, s));
    return params_.uncoreWatts + mcPower +
           cfg.activeCores(s) * params_.leakPerVolt * volts;
}

double
PowerModel::socketPower(const MachineConfig& cfg, int s,
                        const SocketLoad& load, double dutyCycle) const
{
    assert(dutyCycle > 0.0 && dutyCycle <= 1.0);
    double power = staticSocketPower(cfg, s);
    if (!cfg.socketActive(s))
        return power;

    const double freq = frequency(cfg, s);
    const double volts = DvfsTable::voltage(freq);
    const double busyUnits =
        std::min(load.busyPrimary, double(cfg.activeCores(s))) +
        params_.htDynFactor *
            std::min(load.busySibling, double(cfg.activeCores(s)));
    power += params_.dynCoeff * volts * volts * freq * load.activity *
             busyUnits * dutyCycle;
    return power;
}

double
PowerModel::totalPower(const MachineConfig& cfg,
                       const std::array<SocketLoad, 2>& loads,
                       const std::array<double, 2>& dutyCycles) const
{
    double total = 0.0;
    for (int s = 0; s < topo_.sockets; ++s)
        total += socketPower(cfg, s, loads[s], dutyCycles[s]);
    return total;
}

}  // namespace pupil::machine
