#include "config.h"

#include <sstream>

namespace pupil::machine {

bool
MachineConfig::valid(const Topology& topo) const
{
    if (coresPerSocket < 1 || coresPerSocket > topo.coresPerSocket)
        return false;
    if (sockets < 1 || sockets > topo.sockets)
        return false;
    if (memControllers < 1 || memControllers > topo.memControllers)
        return false;
    for (int s = 0; s < sockets; ++s) {
        if (!DvfsTable::valid(pstate[s]))
            return false;
    }
    return true;
}

std::string
MachineConfig::toString() const
{
    std::ostringstream oss;
    oss << coresPerSocket << "c x " << sockets << 's'
        << (hyperthreading ? " +HT" : " -HT") << ' ' << memControllers
        << "mc P[" << pstate[0];
    if (sockets > 1)
        oss << ',' << pstate[1];
    oss << ']';
    return oss.str();
}

MachineConfig
minimalConfig()
{
    return MachineConfig{};  // 1 core, 1 socket, no HT, 1 MC, p-state 0
}

MachineConfig
maximalConfig()
{
    MachineConfig cfg;
    cfg.coresPerSocket = defaultTopology().coresPerSocket;
    cfg.sockets = defaultTopology().sockets;
    cfg.hyperthreading = true;
    cfg.memControllers = defaultTopology().memControllers;
    cfg.setUniformPState(DvfsTable::kTurboPState);
    return cfg;
}

std::vector<MachineConfig>
enumerateUserConfigs(const Topology& topo)
{
    std::vector<MachineConfig> configs;
    configs.reserve(static_cast<size_t>(topo.coresPerSocket) * topo.sockets *
                    2 * topo.memControllers * DvfsTable::kNumPStates);
    for (int cores = 1; cores <= topo.coresPerSocket; ++cores) {
        for (int sockets = 1; sockets <= topo.sockets; ++sockets) {
            for (int ht = 0; ht < 2; ++ht) {
                for (int mc = 1; mc <= topo.memControllers; ++mc) {
                    for (int p = 0; p < DvfsTable::kNumPStates; ++p) {
                        MachineConfig cfg;
                        cfg.coresPerSocket = cores;
                        cfg.sockets = sockets;
                        cfg.hyperthreading = ht != 0;
                        cfg.memControllers = mc;
                        cfg.setUniformPState(p);
                        configs.push_back(cfg);
                    }
                }
            }
        }
    }
    return configs;
}

std::vector<MachineConfig>
enumerateExtendedConfigs(const Topology& topo)
{
    std::vector<MachineConfig> configs;
    for (int cores = 1; cores <= topo.coresPerSocket; ++cores) {
        for (int sockets = 1; sockets <= topo.sockets; ++sockets) {
            for (int ht = 0; ht < 2; ++ht) {
                for (int mc = 1; mc <= topo.memControllers; ++mc) {
                    for (int p0 = 0; p0 < DvfsTable::kNumPStates; ++p0) {
                        MachineConfig cfg;
                        cfg.coresPerSocket = cores;
                        cfg.sockets = sockets;
                        cfg.hyperthreading = ht != 0;
                        cfg.memControllers = mc;
                        if (sockets == 1) {
                            cfg.pstate = {p0, 0};
                            configs.push_back(cfg);
                            continue;
                        }
                        // Independent second-socket p-state; avoid double
                        // counting symmetric pairs (the model is symmetric
                        // in socket identity).
                        for (int p1 = p0; p1 < DvfsTable::kNumPStates; ++p1) {
                            cfg.pstate = {p0, p1};
                            configs.push_back(cfg);
                        }
                    }
                }
            }
        }
    }
    return configs;
}

}  // namespace pupil::machine
