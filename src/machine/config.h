#ifndef PUPIL_MACHINE_CONFIG_H_
#define PUPIL_MACHINE_CONFIG_H_

#include <array>
#include <string>
#include <vector>

#include "machine/dvfs.h"
#include "machine/topology.h"

namespace pupil::machine {

/**
 * One point in the machine's user-accessible configuration space.
 *
 * The paper's platform exposes five knobs (Section 4.2): cores per socket,
 * socket count, hyperthreading, memory-controller count, and clock speed.
 * With a uniform clock across sockets that yields
 * 8 x 2 x 2 x 2 x 16 = 1024 configurations. P-states are stored per socket
 * because PUPiL's RAPL-based power distribution drives sockets
 * asymmetrically; the user-visible enumeration keeps them uniform.
 */
struct MachineConfig
{
    int coresPerSocket = 1;   ///< active cores on each active socket, 1..8
    int sockets = 1;          ///< active sockets, 1..2
    bool hyperthreading = false;
    int memControllers = 1;   ///< memory controllers interleaved, 1..2
    std::array<int, 2> pstate = {0, 0};  ///< per-socket p-state, 0..15

    /** Whether socket @p s is active. */
    bool socketActive(int s) const { return s < sockets; }

    /** Active cores on socket @p s (0 if the socket is off). */
    int activeCores(int s) const { return socketActive(s) ? coresPerSocket : 0; }

    /** Hardware contexts available on socket @p s. */
    int contexts(int s) const
    {
        return activeCores(s) * (hyperthreading ? 2 : 1);
    }

    /** Hardware contexts across all sockets. */
    int totalContexts() const
    {
        int total = 0;
        for (int s = 0; s < 2; ++s)
            total += contexts(s);
        return total;
    }

    /** Total active physical cores. */
    int totalCores() const { return coresPerSocket * sockets; }

    /** Set both sockets to the same p-state. */
    void setUniformPState(int p) { pstate = {p, p}; }

    /** Whether all fields are within the topology's legal ranges. */
    bool valid(const Topology& topo = defaultTopology()) const;

    /** Short human-readable description, e.g. "8c x 2s +HT 2mc P[15,15]". */
    std::string toString() const;

    bool operator==(const MachineConfig&) const = default;
};

/** The minimal resource configuration Algorithm 1 starts from. */
MachineConfig minimalConfig();

/** Everything on: 8 cores x 2 sockets, HT, 2 MCs, turbo. */
MachineConfig maximalConfig();

/**
 * Enumerate the user-accessible configuration space (uniform p-states).
 * Size is exactly 1024 for the default topology (paper Section 4.2).
 */
std::vector<MachineConfig> enumerateUserConfigs(
    const Topology& topo = defaultTopology());

/**
 * Enumerate the extended space with independent per-socket p-states for
 * dual-socket configurations. This is the space the oracle searches so that
 * PUPiL's asymmetric socket capping cannot beat "optimal".
 */
std::vector<MachineConfig> enumerateExtendedConfigs(
    const Topology& topo = defaultTopology());

}  // namespace pupil::machine

#endif  // PUPIL_MACHINE_CONFIG_H_
