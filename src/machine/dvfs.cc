#include "dvfs.h"

#include <algorithm>
#include <cassert>

namespace pupil::machine {

double
DvfsTable::frequencyGHz(int pstate, int activeCores)
{
    assert(valid(pstate));
    if (pstate < kTurboPState) {
        const double step =
            (kMaxNominalGHz - kMinFrequencyGHz) / (kTurboPState - 1);
        return kMinFrequencyGHz + step * pstate;
    }
    // TurboBoost: 3.8 GHz single-core, fading with active core count.
    const int cores = std::max(1, activeCores);
    const double turbo = 3.8 - 0.1 * (cores - 1);
    return std::max(turbo, kMaxNominalGHz + 0.2);
}

double
DvfsTable::voltage(double freqGHz)
{
    // Affine V/f curve: 0.70 V at 1.2 GHz rising to 1.10 V at 3.8 GHz.
    const double slope = (1.10 - 0.70) / (3.8 - 1.2);
    const double v = 0.70 + slope * (freqGHz - kMinFrequencyGHz);
    return std::clamp(v, 0.70, 1.15);
}

int
DvfsTable::pstateForFrequency(double freqGHz)
{
    int best = 0;
    for (int p = 0; p < kTurboPState; ++p) {
        if (frequencyGHz(p, 1) <= freqGHz + 1e-9)
            best = p;
    }
    // Turbo qualifies only if the target exceeds the all-core turbo bin.
    if (freqGHz >= frequencyGHz(kTurboPState, 8))
        best = kTurboPState;
    return best;
}

}  // namespace pupil::machine
