#ifndef PUPIL_MACHINE_MACHINE_H_
#define PUPIL_MACHINE_MACHINE_H_

#include <array>

#include "machine/config.h"

namespace pupil::faults {
class FaultInjector;
}

namespace pupil::machine {

/**
 * Stateful model of the configurable server: tracks the OS-requested
 * configuration, hardware (RAPL) frequency clamps, and duty-cycle
 * throttling, and applies each with a realistic actuation latency.
 *
 * Two actuation paths exist, mirroring the paper's platform:
 *  - the OS path (thread affinity via taskset/numactl, p-states via
 *    cpufrequtils) -- slow: migrations take ~150 ms to show effect, pure
 *    DVFS changes ~10 ms;
 *  - the hardware path (RAPL MSR writes) -- fast: ~1 ms, and able to clamp
 *    frequency below the OS request or duty-cycle the clock below the
 *    minimum p-state.
 *
 * Time is passed in explicitly (seconds) so the machine stays independent
 * of the simulation engine layered above it.
 */
class Machine
{
  public:
    /** Latency for OS-level changes that migrate threads or sockets. */
    static constexpr double kMigrationLatencySec = 0.150;
    /** Latency for OS-level changes touching only p-states. */
    static constexpr double kDvfsLatencySec = DvfsTable::kTransitionLatencySec;
    /** Latency for hardware (RAPL) clamp changes. */
    static constexpr double kRaplLatencySec = 0.001;

    explicit Machine(const Topology& topo = defaultTopology());

    const Topology& topology() const { return topo_; }

    /**
     * Interpose the fault injector on the OS actuation path (allocation
     * refusal, DVFS rejection, delayed actuation). Null detaches; the
     * hardware (RAPL clamp) path is never faulted -- its robustness is
     * the property under study.
     */
    void attachFaults(faults::FaultInjector* faults) { faults_ = faults; }

    /**
     * OS-level request to move the machine to @p cfg at time @p now.
     * Takes effect after the migration (or DVFS-only) latency. A new
     * request supersedes any pending one. Under an active actuator fault
     * the request may be silently dropped (a refused taskset/cpufreq
     * write) or take extra time to land.
     */
    void requestConfig(const MachineConfig& cfg, double now);

    /**
     * Hardware clamp from the RAPL controller for socket @p s: cap the
     * p-state at @p pstateCap and apply @p dutyCycle (T-state modulation,
     * (0,1]). Takes effect after ~1 ms.
     */
    void requestRaplClamp(int s, int pstateCap, double dutyCycle, double now);

    /** Remove any hardware clamp on socket @p s (cap = turbo, duty = 1). */
    void clearRaplClamp(int s, double now);

    /** The OS-requested configuration currently in force at @p now. */
    const MachineConfig& osConfig(double now) const;

    /** The OS-requested configuration ignoring pending changes. */
    const MachineConfig& lastAppliedOsConfig() const { return applied_; }

    /**
     * The configuration the hardware is actually running at @p now:
     * the applied OS config with each socket's p-state clamped by RAPL.
     */
    MachineConfig effectiveConfig(double now) const;

    /** Effective duty cycle for socket @p s at @p now. */
    double dutyCycle(int s, double now) const;

    /** Whether an OS config change is still in flight at @p now. */
    bool configChangePending(double now) const { return now < applyAt_; }

  private:
    struct Clamp
    {
        int pstateCap = DvfsTable::kTurboPState;
        double duty = 1.0;
    };

    Topology topo_;
    faults::FaultInjector* faults_ = nullptr;

    // Pending changes are committed lazily as accessors observe time
    // advance, so the applied state is mutable behind const accessors.
    mutable MachineConfig applied_;
    MachineConfig pending_;
    double applyAt_ = -1e300;  ///< when pending_ becomes applied_

    mutable std::array<Clamp, 2> clampApplied_;
    std::array<Clamp, 2> clampPending_;
    std::array<double, 2> clampApplyAt_ = {-1e300, -1e300};

    void commit(double now) const;
};

}  // namespace pupil::machine

#endif  // PUPIL_MACHINE_MACHINE_H_
