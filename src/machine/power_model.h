#ifndef PUPIL_MACHINE_POWER_MODEL_H_
#define PUPIL_MACHINE_POWER_MODEL_H_

#include <array>

#include "machine/config.h"

namespace pupil::machine {

/**
 * Per-socket load summary produced by the scheduler model and consumed by
 * the power model.
 */
struct SocketLoad
{
    /** Busy primary hardware contexts (core-seconds per second, 0..cores). */
    double busyPrimary = 0.0;
    /** Busy sibling (hyperthread) contexts (0..cores). */
    double busySibling = 0.0;
    /** Average dynamic activity factor of the running work, [0, 1]. */
    double activity = 0.0;
};

/**
 * Calibration constants of the CMOS power model.
 *
 * Exposed as a struct so tests and ablation benches can perturb them; the
 * defaults are calibrated so the modelled machine reproduces the paper's
 * operating envelope: the full machine at the lowest p-state draws more
 * than 60 W (Soft-DVFS cannot meet the 60 W cap, Section 5.1), an
 * unconstrained compute-heavy run draws ~230 W total, a single socket stays
 * under its 135 W TDP, and the minimal configuration idles near 11 W.
 */
struct PowerParams
{
    double dynCoeff = 4.6;       ///< W per (V^2 * GHz) of busy core activity
    double leakPerVolt = 0.6;    ///< W of leakage per volt per active core
    double uncoreWatts = 4.5;    ///< active socket base (LLC, ring, PCU)
    double mcWatts = 1.5;        ///< per memory controller in use
    double idleSocketWatts = 2.5;///< package-sleep power of an unused socket
    double htDynFactor = 0.35;   ///< marginal dynamic power of a busy sibling
};

/**
 * Analytic power model of the dual-socket server.
 *
 * P_socket = uncore + MC + n_active_cores * leak(V)
 *          + dynCoeff * V^2 * f * activity * (busyPrimary
 *                                             + htDynFactor * busySibling)
 *
 * Duty-cycle throttling (RAPL T-state fallback below the minimum p-state)
 * scales only the dynamic term; leakage and uncore power remain.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerParams& params = PowerParams(),
                        const Topology& topo = defaultTopology());

    const PowerParams& params() const { return params_; }

    /**
     * Power of socket @p s (Watts) under @p cfg with the given load.
     * @p dutyCycle in (0, 1] models T-state clock modulation.
     */
    double socketPower(const MachineConfig& cfg, int s, const SocketLoad& load,
                       double dutyCycle = 1.0) const;

    /** Total system power across both sockets. */
    double totalPower(const MachineConfig& cfg,
                      const std::array<SocketLoad, 2>& loads,
                      const std::array<double, 2>& dutyCycles = {1.0,
                                                                 1.0}) const;

    /**
     * Static (load-independent) power of socket @p s under @p cfg: uncore,
     * memory controllers, and core leakage at the configured voltage.
     * PUPiL uses this estimate when splitting a power cap across sockets.
     */
    double staticSocketPower(const MachineConfig& cfg, int s) const;

    /** Effective core frequency on socket @p s (GHz), before duty cycling. */
    double frequency(const MachineConfig& cfg, int s) const;

  private:
    PowerParams params_;
    Topology topo_;
};

}  // namespace pupil::machine

#endif  // PUPIL_MACHINE_POWER_MODEL_H_
