#include "machine.h"

#include <algorithm>
#include <cassert>

#include "faults/injector.h"

namespace pupil::machine {

Machine::Machine(const Topology& topo) : topo_(topo)
{
    applied_ = minimalConfig();
    pending_ = applied_;
}

void
Machine::requestConfig(const MachineConfig& cfg, double now)
{
    assert(cfg.valid(topo_));
    commit(now);
    // A change that only moves p-states is a cpufrequtils write and is much
    // faster than a thread/memory migration.
    const MachineConfig& base = applied_;
    const bool dvfsOnly = cfg.coresPerSocket == base.coresPerSocket &&
                          cfg.sockets == base.sockets &&
                          cfg.hyperthreading == base.hyperthreading &&
                          cfg.memControllers == base.memControllers;
    double latency = dvfsOnly ? kDvfsLatencySec : kMigrationLatencySec;
    if (faults_ != nullptr) {
        if (dvfsOnly ? faults_->dvfsRejected(now)
                     : faults_->allocRefused(now))
            return;  // the OS write failed; the request is lost
        latency += faults_->actuationExtraDelay(now);
    }
    pending_ = cfg;
    applyAt_ = now + latency;
}

void
Machine::requestRaplClamp(int s, int pstateCap, double dutyCycle, double now)
{
    assert(s >= 0 && s < topo_.sockets);
    assert(DvfsTable::valid(pstateCap));
    assert(dutyCycle > 0.0 && dutyCycle <= 1.0);
    commit(now);
    clampPending_[s] = Clamp{pstateCap, dutyCycle};
    clampApplyAt_[s] = now + kRaplLatencySec;
}

void
Machine::clearRaplClamp(int s, double now)
{
    requestRaplClamp(s, DvfsTable::kTurboPState, 1.0, now);
}

void
Machine::commit(double now) const
{
    if (now >= applyAt_)
        applied_ = pending_;
    for (int s = 0; s < 2; ++s) {
        if (now >= clampApplyAt_[s])
            clampApplied_[s] = clampPending_[s];
    }
}

const MachineConfig&
Machine::osConfig(double now) const
{
    commit(now);
    return applied_;
}

MachineConfig
Machine::effectiveConfig(double now) const
{
    commit(now);
    MachineConfig cfg = applied_;
    for (int s = 0; s < topo_.sockets; ++s)
        cfg.pstate[s] = std::min(cfg.pstate[s], clampApplied_[s].pstateCap);
    return cfg;
}

double
Machine::dutyCycle(int s, double now) const
{
    assert(s >= 0 && s < topo_.sockets);
    commit(now);
    return clampApplied_[s].duty;
}

}  // namespace pupil::machine
