#include "topology.h"

namespace pupil::machine {

const Topology&
defaultTopology()
{
    static const Topology topo;
    return topo;
}

}  // namespace pupil::machine
