#ifndef PUPIL_TRACE_TRACE_H_
#define PUPIL_TRACE_TRACE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pupil::trace {

/** The subsystem an event originates from (one category per layer). */
enum class Subsystem : uint8_t {
    kDecision,  ///< core::DecisionWalker (Algorithm 1 state machine)
    kCore,      ///< core::Pupil mode machine and power distribution
    kRapl,      ///< firmware control loop and MSR limit writes
    kSched,     ///< scheduler re-solves and app lifecycle
    kFaults,    ///< fault-schedule activations
    kCluster,   ///< PowerShifter membership and rebalances
    kHarness,   ///< experiment start/end markers
    kLoad,      ///< open-loop tenant traffic (arrivals, SLO outcomes)
    kNet,       ///< control-plane message transport (sends, drops, cuts)
};

/** Number of subsystems (for per-category accounting). */
inline constexpr int kSubsystemCount = 9;

/** Stable lowercase category name ("decision", "rapl", ...). */
const char* subsystemName(Subsystem subsystem);

/**
 * Every structured event the stack can emit. The numeric values are part
 * of the CSV export format; append new kinds at the end of their group
 * rather than renumbering.
 */
enum class EventKind : uint8_t {
    // decision walker
    kWalkStart,        ///< a=capWatts, i0=walk number
    kWalkStep,         ///< a=filtered perf, b=filtered power, i0=phase
    kConfigTry,        ///< i0=resource index, i1=setting written
    kConfigAccept,     ///< a=perf speedup estimate, b=filtered power,
                       ///< i0=resource index (-1: whole-config move),
                       ///< i1=setting kept
    kConfigReject,     ///< a=perf ratio, b=filtered power,
                       ///< i0=resource index (-1: whole-config move),
                       ///< i1=setting restored
    kWalkConverged,    ///< a=seconds since walk start, i0=steps taken
    kSampleRejected,   ///< a=perf sample, b=power sample

    // core (PUPiL mode machine / power distribution)
    kModeDegraded,     ///< i0=entry count
    kModeReengage,     ///< i0=reengagement count
    kCapSplit,         ///< a=socket0 cap (W), b=socket1 cap (W)

    // RAPL firmware
    kLimitWrite,       ///< a=cap watts, i0=socket, i1=enabled
    kClampChange,      ///< a=duty cycle, b=window avg (W), i0=socket,
                       ///< i1=new clamp p-state
    kBudgetWindow,     ///< a=window avg (W), b=cap (W), i0=socket,
                       ///< i1=1 over budget / 0 back under

    // scheduler / platform
    kAllocApplied,     ///< a=pstate0, b=pstate1, i0=cores0, i1=cores1
    kAppComplete,      ///< a=completion time (s), i0=app index

    // faults
    kFaultActivated,   ///< i0=schedule event index, i1=FaultKind

    // cluster
    kRebalance,        ///< a=total cap (W), b=total power (W), i0=shift#
    kNodeLoss,         ///< i0=node index
    kNodeRejoin,       ///< i0=node index, a=new cap share (W)
    kRackRebalance,    ///< a=rack grant (W), b=rack measured power (W),
                       ///< i0=rack index, i1=watts moved inside the rack
    kRackGrant,        ///< a=new grant (W), b=previous grant (W),
                       ///< i0=rack index

    // harness
    kExperimentStart,  ///< a=cap watts, i0=app count
    kExperimentEnd,    ///< a=simulated duration (s)

    // load (open-loop tenant traffic)
    kJobArrive,        ///< a=work items, b=SLO (s), i0=tier,
                       ///< i1=tier queue depth after enqueue
    kJobComplete,      ///< a=latency (s), b=SLO (s), i0=tier,
                       ///< i1=1 violated / 0 met
    kSloViolation,     ///< a=latency (s), b=SLO (s), i0=tier,
                       ///< i1=app slot (-1 dropped, -2 in-flight
                       ///< abandoned, -3 queued abandoned)

    // net (control-plane message transport)
    kMsgSend,          ///< a=payload value (W), i0=net::MsgKind,
                       ///< i1=destination rack (-1: the root)
    kMsgDrop,          ///< a=payload value (W), i0=net::MsgKind,
                       ///< i1=destination rack (-1: the root)
    kPartition,        ///< i0=rack index, i1=1 cut begins / 0 heals
};

/** Stable kebab-case event name ("walk-start", "limit-write", ...). */
const char* kindName(EventKind kind);

/** The subsystem an event kind belongs to. */
Subsystem kindSubsystem(EventKind kind);

/**
 * One recorded event: a timestamp, a kind, and four fixed payload slots
 * whose meaning is documented per kind above. Plain trivially-copyable
 * data -- recording is a couple of stores, no allocation, no formatting.
 */
struct Event
{
    double timeSec = 0.0;
    EventKind kind = EventKind::kWalkStart;
    int32_t i0 = 0;
    int32_t i1 = 0;
    double a = 0.0;
    double b = 0.0;
};

/**
 * Fixed-capacity flight recorder for structured events.
 *
 * The ring is allocated once at construction; emit() is a handful of
 * stores and never allocates, so it is safe on the 1 ms firmware path.
 * When the ring is full the oldest events are overwritten (classic
 * flight-recorder semantics) and dropped() counts the overwrites, so a
 * consumer can tell a complete trace from a truncated one.
 *
 * Instrumented components hold a `Recorder*` that is null by default;
 * the null-safe free function emit() below compiles to a test-and-skip,
 * so an untraced run executes no recording code and is byte-identical
 * to a build without instrumentation (covered by trace_test.cc).
 *
 * Not thread safe: one recorder belongs to one platform/experiment, the
 * same ownership discipline as every other per-run object (see DESIGN.md
 * section 4 on harness parallelism).
 */
class Recorder
{
  public:
    explicit Recorder(size_t capacity = kDefaultCapacity);

    static constexpr size_t kDefaultCapacity = 1 << 16;

    /** Append an event, overwriting the oldest if the ring is full. */
    void emit(double timeSec, EventKind kind, double a = 0.0, double b = 0.0,
              int32_t i0 = 0, int32_t i1 = 0)
    {
        Event& slot = ring_[head_];
        slot.timeSec = timeSec;
        slot.kind = kind;
        slot.i0 = i0;
        slot.i1 = i1;
        slot.a = a;
        slot.b = b;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (count_ < ring_.size())
            ++count_;
        else
            ++dropped_;
    }

    size_t capacity() const { return ring_.size(); }

    /** Events currently held (<= capacity). */
    size_t size() const { return count_; }

    /** Events overwritten because the ring was full. */
    uint64_t dropped() const { return dropped_; }

    bool empty() const { return count_ == 0; }

    /** The retained events in emission order (oldest first). */
    std::vector<Event> snapshot() const;

    /** Retained-event count per subsystem (indexed by Subsystem). */
    std::array<uint64_t, kSubsystemCount> subsystemCounts() const;

    /** Forget every event (capacity and allocation are kept). */
    void clear();

  private:
    std::vector<Event> ring_;
    size_t head_ = 0;    ///< next slot to write
    size_t count_ = 0;   ///< valid events in the ring
    uint64_t dropped_ = 0;
};

/**
 * Null-safe emission helper: every instrumentation point calls this with
 * its (possibly null) recorder pointer, so disabled tracing costs one
 * predictable branch.
 */
inline void
emit(Recorder* recorder, double timeSec, EventKind kind, double a = 0.0,
     double b = 0.0, int32_t i0 = 0, int32_t i1 = 0)
{
    if (recorder != nullptr)
        recorder->emit(timeSec, kind, a, b, i0, i1);
}

}  // namespace pupil::trace

#endif  // PUPIL_TRACE_TRACE_H_
