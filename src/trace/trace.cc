#include "trace.h"

namespace pupil::trace {

const char*
subsystemName(Subsystem subsystem)
{
    switch (subsystem) {
      case Subsystem::kDecision: return "decision";
      case Subsystem::kCore: return "core";
      case Subsystem::kRapl: return "rapl";
      case Subsystem::kSched: return "sched";
      case Subsystem::kFaults: return "faults";
      case Subsystem::kCluster: return "cluster";
      case Subsystem::kHarness: return "harness";
      case Subsystem::kLoad: return "load";
      case Subsystem::kNet: return "net";
    }
    return "?";
}

const char*
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::kWalkStart: return "walk-start";
      case EventKind::kWalkStep: return "walk-step";
      case EventKind::kConfigTry: return "config-try";
      case EventKind::kConfigAccept: return "config-accept";
      case EventKind::kConfigReject: return "config-reject";
      case EventKind::kWalkConverged: return "walk-converged";
      case EventKind::kSampleRejected: return "sample-rejected";
      case EventKind::kModeDegraded: return "mode-degraded";
      case EventKind::kModeReengage: return "mode-reengage";
      case EventKind::kCapSplit: return "cap-split";
      case EventKind::kLimitWrite: return "limit-write";
      case EventKind::kClampChange: return "clamp-change";
      case EventKind::kBudgetWindow: return "budget-window";
      case EventKind::kAllocApplied: return "alloc-applied";
      case EventKind::kAppComplete: return "app-complete";
      case EventKind::kFaultActivated: return "fault-activated";
      case EventKind::kRebalance: return "rebalance";
      case EventKind::kNodeLoss: return "node-loss";
      case EventKind::kNodeRejoin: return "node-rejoin";
      case EventKind::kRackRebalance: return "rack-rebalance";
      case EventKind::kRackGrant: return "rack-grant";
      case EventKind::kExperimentStart: return "experiment-start";
      case EventKind::kExperimentEnd: return "experiment-end";
      case EventKind::kJobArrive: return "job-arrive";
      case EventKind::kJobComplete: return "job-complete";
      case EventKind::kSloViolation: return "slo-violation";
      case EventKind::kMsgSend: return "msg-send";
      case EventKind::kMsgDrop: return "msg-drop";
      case EventKind::kPartition: return "partition";
    }
    return "?";
}

Subsystem
kindSubsystem(EventKind kind)
{
    switch (kind) {
      case EventKind::kWalkStart:
      case EventKind::kWalkStep:
      case EventKind::kConfigTry:
      case EventKind::kConfigAccept:
      case EventKind::kConfigReject:
      case EventKind::kWalkConverged:
      case EventKind::kSampleRejected:
        return Subsystem::kDecision;
      case EventKind::kModeDegraded:
      case EventKind::kModeReengage:
      case EventKind::kCapSplit:
        return Subsystem::kCore;
      case EventKind::kLimitWrite:
      case EventKind::kClampChange:
      case EventKind::kBudgetWindow:
        return Subsystem::kRapl;
      case EventKind::kAllocApplied:
      case EventKind::kAppComplete:
        return Subsystem::kSched;
      case EventKind::kFaultActivated:
        return Subsystem::kFaults;
      case EventKind::kRebalance:
      case EventKind::kNodeLoss:
      case EventKind::kNodeRejoin:
      case EventKind::kRackRebalance:
      case EventKind::kRackGrant:
        return Subsystem::kCluster;
      case EventKind::kExperimentStart:
      case EventKind::kExperimentEnd:
        return Subsystem::kHarness;
      case EventKind::kJobArrive:
      case EventKind::kJobComplete:
      case EventKind::kSloViolation:
        return Subsystem::kLoad;
      case EventKind::kMsgSend:
      case EventKind::kMsgDrop:
      case EventKind::kPartition:
        return Subsystem::kNet;
    }
    return Subsystem::kHarness;
}

Recorder::Recorder(size_t capacity)
    : ring_(capacity > 0 ? capacity : 1)
{
}

std::vector<Event>
Recorder::snapshot() const
{
    std::vector<Event> events;
    events.reserve(count_);
    // Oldest event first: when the ring has wrapped, it sits at head_.
    const size_t start = count_ < ring_.size() ? 0 : head_;
    for (size_t i = 0; i < count_; ++i)
        events.push_back(ring_[(start + i) % ring_.size()]);
    return events;
}

std::array<uint64_t, kSubsystemCount>
Recorder::subsystemCounts() const
{
    std::array<uint64_t, kSubsystemCount> counts{};
    const size_t start = count_ < ring_.size() ? 0 : head_;
    for (size_t i = 0; i < count_; ++i) {
        const Event& event = ring_[(start + i) % ring_.size()];
        ++counts[size_t(kindSubsystem(event.kind))];
    }
    return counts;
}

void
Recorder::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
}

}  // namespace pupil::trace
