#include "export.h"

#include <charconv>
#include <fstream>

#include "util/csv.h"
#include "util/log.h"

namespace pupil::trace {

std::string
formatDouble(double value)
{
    // std::to_chars renders the shortest decimal string that round-trips,
    // independent of locale and of any printf precision setting -- the
    // exports must be byte-stable for golden pinning.
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    return ec == std::errc() ? std::string(buf, end) : std::string("nan");
}

std::string
toChromeJson(const Recorder& recorder)
{
    std::string out;
    out.reserve(160 * recorder.size() + 64);
    out += "{\"traceEvents\":[";
    bool first = true;
    for (const Event& event : recorder.snapshot()) {
        if (!first)
            out += ",\n";
        first = false;
        const Subsystem subsystem = kindSubsystem(event.kind);
        out += "{\"name\":\"";
        out += kindName(event.kind);
        out += "\",\"cat\":\"";
        out += subsystemName(subsystem);
        // Instant event, thread scope; one track (tid) per subsystem so
        // Perfetto lays the layers out as parallel swimlanes.
        out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":";
        out += std::to_string(int(subsystem));
        out += ",\"ts\":";
        out += formatDouble(event.timeSec * 1e6);
        out += ",\"args\":{\"a\":";
        out += formatDouble(event.a);
        out += ",\"b\":";
        out += formatDouble(event.b);
        out += ",\"i0\":";
        out += std::to_string(event.i0);
        out += ",\"i1\":";
        out += std::to_string(event.i1);
        out += "}}";
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string
toCsv(const Recorder& recorder)
{
    std::string out;
    out.reserve(64 * recorder.size() + 40);
    out += "time_sec,subsystem,event,a,b,i0,i1\n";
    for (const Event& event : recorder.snapshot()) {
        out += formatDouble(event.timeSec);
        out += ',';
        // Shared RFC 4180 escaping (util::csvEscape): today's subsystem
        // and event names are clean identifiers, so this is byte-neutral
        // for the pinned goldens, but a future name containing a comma or
        // quote can no longer corrupt the record structure.
        out += util::csvEscape(subsystemName(kindSubsystem(event.kind)));
        out += ',';
        out += util::csvEscape(kindName(event.kind));
        out += ',';
        out += formatDouble(event.a);
        out += ',';
        out += formatDouble(event.b);
        out += ',';
        out += std::to_string(event.i0);
        out += ',';
        out += std::to_string(event.i1);
        out += '\n';
    }
    return out;
}

bool
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        util::Log(util::LogLevel::kWarn)
            << "trace: cannot open \"" << path << "\" for writing";
        return false;
    }
    out.write(content.data(), std::streamsize(content.size()));
    out.flush();
    if (!out) {
        util::Log(util::LogLevel::kWarn)
            << "trace: short write to \"" << path << "\"";
        return false;
    }
    return true;
}

}  // namespace pupil::trace
