#ifndef PUPIL_TRACE_EXPORT_H_
#define PUPIL_TRACE_EXPORT_H_

#include <string>

#include "trace/trace.h"

namespace pupil::trace {

/**
 * Render the recorder's retained events as Chrome trace-event JSON
 * (the `{"traceEvents": [...]}` object form), loadable directly in
 * chrome://tracing or https://ui.perfetto.dev. Events are emitted as
 * instant events; the subsystem becomes the category and the track
 * (tid), timestamps are simulation microseconds, and the payload slots
 * appear under "args".
 *
 * Formatting is locale-independent and uses shortest-round-trip decimal
 * output, so the same event stream always renders to the same bytes --
 * the property the golden-trace and determinism tests pin.
 */
std::string toChromeJson(const Recorder& recorder);

/**
 * Render the retained events as flat CSV:
 *
 *     time_sec,subsystem,event,a,b,i0,i1
 *
 * One line per event, oldest first, same deterministic number formatting
 * as the JSON exporter.
 */
std::string toCsv(const Recorder& recorder);

/** Write @p content to @p path. Returns false (and logs) on I/O failure. */
bool writeFile(const std::string& path, const std::string& content);

/** Deterministic shortest-round-trip rendering of @p value (internal). */
std::string formatDouble(double value);

}  // namespace pupil::trace

#endif  // PUPIL_TRACE_EXPORT_H_
