#ifndef PUPIL_HARNESS_EXPERIMENT_H_
#define PUPIL_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "capping/governor.h"
#include "core/power_dist.h"
#include "core/strategy.h"
#include "load/load_driver.h"
#include "sched/scheduler.h"
#include "sim/platform.h"
#include "telemetry/settling.h"
#include "trace/trace.h"
#include "workload/mixes.h"

namespace pupil::harness {

/** The power-capping systems under evaluation (paper Section 4.4). */
enum class GovernorKind {
    kRapl,
    kSoftDvfs,
    kSoftModeling,
    kSoftDecision,
    kPupil,
};

/** Display name matching the paper's tables. */
const char* governorName(GovernorKind kind);

/** All five online governors, in the paper's presentation order. */
const std::vector<GovernorKind>& allGovernors();

/** Options of one experiment run. */
struct ExperimentOptions
{
    double capWatts = 140.0;
    double durationSec = 240.0;
    /** Final window over which efficiency metrics are measured. */
    double statsWindowSec = 100.0;
    uint64_t seed = 42;
    sim::PlatformOptions platform;
    /** PUPiL's socket power-distribution policy (ablation knob). */
    core::PowerDistPolicy pupilPolicy =
        core::PowerDistPolicy::kCoreProportional;

    /**
     * Decision discipline for the walker-based governors (kSoftDecision
     * and kPupil; the others have no walker and ignore it). A zero
     * strategy seed is replaced with a SplitMix64 derivation from the
     * experiment seed, so stochastic strategies stay bit-reproducible
     * under sweeps at any thread count.
     */
    core::StrategyOptions strategy;

    /**
     * Per-app finite work (items). When non-empty the run becomes a
     * completion experiment: apps exit as they finish, the simulation runs
     * until all are done (or maxDurationSec), and metrics cover the whole
     * run. Used for the paper's multi-application evaluation.
     */
    std::vector<double> workItems;
    double maxDurationSec = 2000.0;

    /**
     * Open-loop tenant traffic (disabled by default). When enabled the
     * harness appends load.slots idle app slots to the demand vector,
     * constructs a load::LoadDriver whose seed (if 0) is derived from
     * the experiment seed, attaches the run's governor as its cap
     * source, and scores every job against its SLO; the tracker totals
     * land in the jobs/slo result fields and the load.* metrics.
     * When disabled no driver exists and the run is byte-identical to a
     * build without the subsystem.
     */
    load::LoadDriver::Options load;

    /**
     * Structured-event recorder for this run (not owned; null = untraced).
     * The harness attaches it to the platform (which propagates it to the
     * fault injector and to every actor at onStart) and brackets the run
     * with experiment-start/end events. Tracing is observational only:
     * attaching a recorder changes no governor decision and no metric.
     */
    trace::Recorder* trace = nullptr;
};

/** Everything measured in one experiment run. */
struct ExperimentResult
{
    std::string governor;
    double capWatts = 0.0;
    /** Aggregate normalized performance over the stats window. */
    double aggregatePerf = 0.0;
    /** Per-app mean item rates over the stats window. */
    std::vector<double> appItemsPerSec;
    double meanPowerWatts = 0.0;
    /** Normalized work per joule over the stats window. */
    double perfPerJoule = 0.0;
    double settlingTimeSec = 0.0;
    /** Seconds of cap violation over the whole run. */
    double capViolationSec = 0.0;
    double gips = 0.0;
    double bandwidthGBs = 0.0;
    double spinPercent = 0.0;
    bool capFeasible = true;
    bool converged = false;
    /** Per-app completion times (completion experiments only). */
    std::vector<double> completionTimes;
    /** Actual simulated duration. */
    double durationSec = 0.0;
    /**
     * Resilience accounting (whole-run scope; all zero unless the
     * platform options carried a fault spec and/or the governor degraded):
     * seconds spent in hardware-only fallback, fault events injected by
     * the schedule, and faults detected by the governor's watchdog.
     */
    double degradedSec = 0.0;
    uint64_t faultsInjected = 0;
    uint64_t faultsDetected = 0;
    /**
     * Open-loop traffic outcome (all zero unless options.load.enabled):
     * arrival/completion/drop totals, SLO violations (late completions +
     * drops + overdue abandonments), pooled p99 latency, and the
     * violation rate over scored jobs.
     */
    uint64_t jobsArrived = 0;
    uint64_t jobsCompleted = 0;
    uint64_t jobsDropped = 0;
    uint64_t sloViolations = 0;
    double p99LatencySec = 0.0;
    double sloViolationRate = 0.0;
    std::vector<telemetry::TracePoint> powerTrace;
    std::vector<telemetry::TracePoint> perfTrace;
    /**
     * Flattened snapshot of the run's MetricsRegistry (sorted by name):
     * every counter/gauge value plus .count/.mean/.min/.max per histogram,
     * and the legacy Counters fields republished under stable names
     * (counters.gips, counters.bandwidth_gbs, counters.spin_percent,
     * faults.injected, faults.detected, pupil.degraded_sec).
     */
    std::vector<std::pair<std::string, double>> metrics;
};

/** Instantiate a governor of @p kind. */
std::unique_ptr<capping::Governor> makeGovernor(
    GovernorKind kind,
    core::PowerDistPolicy pupilPolicy =
        core::PowerDistPolicy::kCoreProportional,
    const core::StrategyOptions& strategy = {});

/**
 * Run one experiment: warm-start the platform uncapped in the maximal
 * configuration, engage the governor at t = 0, simulate, and measure
 * efficiency over the final stats window (so the comparison captures each
 * controller's converged behaviour; settling and cap violations are
 * measured over the full run).
 */
ExperimentResult runExperiment(GovernorKind kind,
                               const std::vector<sched::AppDemand>& apps,
                               const ExperimentOptions& options);

/** Demand vector for one benchmark running alone. */
std::vector<sched::AppDemand> singleApp(const std::string& name,
                                        int threads = 32);

/** Demand vector for a Table 4 mix under the given scenario. */
std::vector<sched::AppDemand> mixApps(const workload::Mix& mix,
                                      workload::Scenario scenario);

}  // namespace pupil::harness

#endif  // PUPIL_HARNESS_EXPERIMENT_H_
