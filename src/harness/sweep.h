#ifndef PUPIL_HARNESS_SWEEP_H_
#define PUPIL_HARNESS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace pupil::harness {

/** One unit of work in a sweep: a governor on a workload under options. */
struct SweepJob
{
    GovernorKind kind = GovernorKind::kRapl;
    std::vector<sched::AppDemand> apps;
    ExperimentOptions options;
    /** Free-form tag carried into the outcome (e.g. "x264@140W"). */
    std::string label;
};

/** Result of one sweep job. Outcomes are returned in submission order. */
struct SweepOutcome
{
    size_t jobIndex = 0;
    std::string label;
    /** False when the job threw; @c result is then default-constructed. */
    bool ok = false;
    /** Exception text of a failed run (empty when ok). */
    std::string error;
    ExperimentResult result;
};

/** Snapshot handed to the progress callback after each finished job. */
struct SweepProgress
{
    size_t done = 0;
    size_t total = 0;
    double elapsedSec = 0.0;
};

/**
 * Executes experiment sweeps on a bounded thread pool.
 *
 * Every evaluation artifact in the paper is a sweep -- Table 3 alone is
 * 20 apps x 5 caps x 5 governors = 500 independent simulations -- and the
 * runs are embarrassingly parallel: each job owns its Platform, Machine,
 * governor, and RNG streams, and nothing in the library below the harness
 * holds cross-run mutable state (see DESIGN.md section 4, "Harness
 * parallelism").
 *
 * Determinism: each job's seed is derived as SplitMix64(options.seed,
 * jobIndex) before submission, so results are bit-identical regardless of
 * the thread count or completion order. The determinism is covered by
 * sweep_test.cc and is what makes `--serial` a pure debugging aid rather
 * than a different experiment.
 *
 * Failure isolation: a job that throws is recorded as a failed-run marker
 * (ok = false, the exception text in @c error) instead of aborting the
 * sweep; the remaining jobs still run.
 */
class SweepRunner
{
  public:
    struct Options
    {
        /**
         * Worker threads. 0 = automatic: the PUPIL_SWEEP_THREADS
         * environment variable if set to a positive integer, otherwise
         * std::thread::hardware_concurrency(). 1 runs the sweep serially
         * on the calling thread (the `--serial` bench flag sets this).
         */
        int threads = 0;
        /** Derive per-job seeds (SplitMix64 of seed and job index). */
        bool deriveSeeds = true;
        /**
         * Keep per-run power/perf traces. Large sweeps that only read
         * scalar metrics should turn this off: 500 full-length runs of
         * retained traces cost hundreds of megabytes.
         */
        bool keepTraces = true;
        /**
         * Called after each finished job (serialized; never concurrently).
         * When empty, progress is reported through util::log at kInfo.
         */
        std::function<void(const SweepProgress&)> progress;
    };

    SweepRunner() = default;
    explicit SweepRunner(Options options);

    /**
     * Run every job and return outcomes in submission order (outcome i
     * belongs to jobs[i], whatever order the pool finished them in).
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob>& jobs);

    /**
     * Generic bounded-pool loop: invoke fn(0..count-1) across the worker
     * threads. Returns one string per index: empty on success, the
     * exception text on failure. Used directly by benches whose work items
     * are not (governor, apps, options) triples (oracle searches, custom
     * platforms).
     */
    std::vector<std::string> forEach(
        size_t count, const std::function<void(size_t)>& fn);

    /** Thread count this runner will use for @p count work items. */
    int threadsFor(size_t count) const;

    /**
     * Resolve a requested thread count: positive values win, then a
     * positive PUPIL_SWEEP_THREADS, then hardware_concurrency (min 1).
     */
    static int resolveThreads(int requested);

    /**
     * Seed of job @p jobIndex in a sweep rooted at @p base: one SplitMix64
     * finalizer over base + (jobIndex+1) * golden ratio. Stable across
     * thread counts, platforms, and releases -- recorded results stay
     * reproducible.
     */
    static uint64_t deriveSeed(uint64_t base, size_t jobIndex);

    /** Default progress reporter: "sweep: done/total (elapsed)" via log. */
    static void logProgress(const SweepProgress& progress);

    const Options& options() const { return options_; }

  private:
    Options options_;
};

}  // namespace pupil::harness

#endif  // PUPIL_HARNESS_SWEEP_H_
