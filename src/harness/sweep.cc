#include "sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/log.h"

namespace pupil::harness {

SweepRunner::SweepRunner(Options options) : options_(std::move(options)) {}

int
SweepRunner::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char* env = std::getenv("PUPIL_SWEEP_THREADS")) {
        char* end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n > 0)
            return static_cast<int>(std::min<long>(n, 1024));
        util::Log(util::LogLevel::kWarn)
            << "ignoring invalid PUPIL_SWEEP_THREADS=\"" << env << "\"";
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
SweepRunner::threadsFor(size_t count) const
{
    const int resolved = resolveThreads(options_.threads);
    return static_cast<int>(
        std::min<size_t>(static_cast<size_t>(resolved), std::max<size_t>(count, 1)));
}

uint64_t
SweepRunner::deriveSeed(uint64_t base, size_t jobIndex)
{
    // SplitMix64 finalizer over a golden-ratio-strided stream. jobIndex+1
    // keeps job 0 from reusing the base seed verbatim.
    uint64_t x = base + (static_cast<uint64_t>(jobIndex) + 1) *
                            0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
SweepRunner::logProgress(const SweepProgress& progress)
{
    if (util::logLevel() > util::LogLevel::kInfo)
        return;
    util::Log(util::LogLevel::kInfo)
        << "sweep: " << progress.done << "/" << progress.total
        << " jobs done, " << progress.elapsedSec << " s elapsed";
}

std::vector<std::string>
SweepRunner::forEach(size_t count, const std::function<void(size_t)>& fn)
{
    std::vector<std::string> errors(count);
    if (count == 0)
        return errors;

    const int threads = threadsFor(count);
    const auto startedAt = std::chrono::steady_clock::now();
    const auto& progress =
        options_.progress ? options_.progress : logProgress;

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex progressMutex;

    // Claim work in chunks: at 50k+ items per call (BudgetTree stepping a
    // large cluster every period) a per-item fetch_add plus a per-item
    // progress lock is measurable contention. Chunks keep ~8 claims per
    // thread for load balance while collapsing to per-item claiming (and
    // per-item progress callbacks) for small counts.
    const size_t chunk =
        std::max<size_t>(1, count / (size_t(threads) * 8));
    auto worker = [&]() {
        for (;;) {
            const size_t begin =
                next.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= count)
                return;
            const size_t end = std::min(count, begin + chunk);
            for (size_t i = begin; i < end; ++i) {
                try {
                    fn(i);
                } catch (const std::exception& e) {
                    errors[i] = e.what()[0] != '\0' ? e.what() : "exception";
                } catch (...) {
                    errors[i] = "unknown exception";
                }
            }
            const size_t finished =
                done.fetch_add(end - begin) + (end - begin);
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - startedAt)
                    .count();
            std::lock_guard<std::mutex> lock(progressMutex);
            progress({finished, count, elapsed});
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<size_t>(threads));
        for (int t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread& t : pool)
            t.join();
    }
    return errors;
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob>& jobs)
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    const std::vector<std::string> errors =
        forEach(jobs.size(), [&](size_t i) {
            const SweepJob& job = jobs[i];
            SweepOutcome& out = outcomes[i];
            out.jobIndex = i;
            out.label = job.label;
            // A job needs something to run: static apps, or a tenant
            // traffic stream that will bind jobs into load slots.
            if (job.apps.empty() && !job.options.load.enabled)
                throw std::invalid_argument("sweep job has no applications");
            ExperimentOptions options = job.options;
            if (options_.deriveSeeds)
                options.seed = deriveSeed(job.options.seed, i);
            out.result = runExperiment(job.kind, job.apps, options);
            if (!options_.keepTraces) {
                out.result.powerTrace = {};
                out.result.perfTrace = {};
            }
            out.ok = true;
        });
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (errors[i].empty())
            continue;
        // Failed-run marker: keep the slot so submission-order indexing
        // holds, but flag it instead of surfacing a half-built result.
        outcomes[i] = SweepOutcome();
        outcomes[i].jobIndex = i;
        outcomes[i].label = jobs[i].label;
        outcomes[i].error = errors[i];
        util::Log(util::LogLevel::kWarn)
            << "sweep job " << i
            << (jobs[i].label.empty() ? std::string()
                                      : " (" + jobs[i].label + ")")
            << " failed: " << errors[i];
    }
    return outcomes;
}

}  // namespace pupil::harness
