#include "experiment.h"

#include <algorithm>

#include "capping/rapl_governor.h"
#include "harness/sweep.h"
#include "capping/soft_dvfs.h"
#include "capping/soft_modeling.h"
#include "core/pupil.h"
#include "core/soft_decision.h"
#include "rapl/rapl.h"
#include "workload/catalog.h"

namespace pupil::harness {

const char*
governorName(GovernorKind kind)
{
    switch (kind) {
      case GovernorKind::kRapl: return "RAPL";
      case GovernorKind::kSoftDvfs: return "Soft-DVFS";
      case GovernorKind::kSoftModeling: return "Soft-Modeling";
      case GovernorKind::kSoftDecision: return "Soft-Decision";
      case GovernorKind::kPupil: return "PUPiL";
    }
    return "?";
}

const std::vector<GovernorKind>&
allGovernors()
{
    static const std::vector<GovernorKind> kinds = {
        GovernorKind::kRapl, GovernorKind::kSoftDvfs,
        GovernorKind::kSoftModeling, GovernorKind::kSoftDecision,
        GovernorKind::kPupil,
    };
    return kinds;
}

std::unique_ptr<capping::Governor>
makeGovernor(GovernorKind kind, core::PowerDistPolicy pupilPolicy,
             const core::StrategyOptions& strategy)
{
    switch (kind) {
      case GovernorKind::kRapl:
        return std::make_unique<capping::RaplGovernor>();
      case GovernorKind::kSoftDvfs:
        return std::make_unique<capping::SoftDvfs>();
      case GovernorKind::kSoftModeling:
        return std::make_unique<capping::SoftModeling>();
      case GovernorKind::kSoftDecision: {
        core::DecisionWalker::Options options =
            core::SoftDecision::defaultOptions();
        options.strategy = strategy;
        return std::make_unique<core::SoftDecision>(options);
      }
      case GovernorKind::kPupil: {
        core::DecisionWalker::Options options = core::Pupil::defaultOptions();
        options.strategy = strategy;
        return std::make_unique<core::Pupil>(pupilPolicy, options);
      }
    }
    return nullptr;
}

ExperimentResult
runExperiment(GovernorKind kind, const std::vector<sched::AppDemand>& apps,
              const ExperimentOptions& options)
{
    sim::PlatformOptions platformOptions = options.platform;
    platformOptions.seed = options.seed;
    // Tenant-traffic runs get a block of idle app slots after the static
    // apps; the LoadDriver binds and releases jobs there.
    std::vector<sched::AppDemand> demand = apps;
    const size_t firstLoadSlot = demand.size();
    if (options.load.enabled) {
        for (size_t s = 0; s < std::max<size_t>(options.load.slots, 1); ++s)
            demand.push_back({&workload::calibrationApp(), 0});
    }
    sim::Platform platform(platformOptions, std::move(demand));
    // The machine is busy and uncapped before the governor engages.
    platform.warmStart(machine::maximalConfig());
    // Per-job accounting starts from zero no matter how the caller obtained
    // the platform: a reused sweep worker must never leak activity or fault
    // accounting from a previous job into this result (regression covered
    // by sweep_test).
    platform.mutableCounters().reset();
    platform.mutableCounters().resetFaults();
    platform.metrics().reset();
    platform.attachTrace(options.trace);
    trace::emit(options.trace, platform.now(),
                trace::EventKind::kExperimentStart, options.capWatts,
                options.durationSec, int32_t(kind), int32_t(apps.size()));

    rapl::RaplController rapl;
    core::StrategyOptions strategy = options.strategy;
    if (strategy.seed == 0) {
        // Reserve one SplitMix64 stream of the experiment seed for the
        // strategy RNG (distinct from the platform's noise streams).
        strategy.seed = SweepRunner::deriveSeed(options.seed, 0x5EED);
    }
    std::unique_ptr<capping::Governor> governor =
        makeGovernor(kind, options.pupilPolicy, strategy);
    governor->attachRapl(&rapl);
    governor->setCap(options.capWatts);
    platform.addActor(&rapl);
    platform.addActor(governor.get());

    std::unique_ptr<load::LoadDriver> loadDriver;
    if (options.load.enabled) {
        const uint64_t loadSeed =
            options.load.seed != 0
                ? options.load.seed
                : SweepRunner::deriveSeed(options.seed, 0x70AD);
        loadDriver = std::make_unique<load::LoadDriver>(
            options.load, firstLoadSlot, loadSeed);
        loadDriver->attachGovernor(governor.get());
        platform.addActor(loadDriver.get());
    }

    double duration = options.durationSec;
    if (!options.workItems.empty()) {
        // Completion experiment: run until every app finishes its work.
        for (size_t i = 0; i < options.workItems.size() &&
                           i < platform.appCount(); ++i)
            platform.setAppWorkItems(i, options.workItems[i]);
        double t = 0.0;
        while (!platform.allComplete() && t < options.maxDurationSec) {
            t += 1.0;
            platform.run(t);
        }
        duration = t;
    } else {
        const double statsStart = std::max(
            0.0, options.durationSec - options.statsWindowSec);
        platform.run(statsStart);
        platform.resetStatsWindow();
        platform.run(options.durationSec);
    }

    ExperimentResult result;
    result.governor = governor->name();
    result.capWatts = options.capWatts;
    result.aggregatePerf = platform.energy().meanItemsPerSec();
    const double window = std::max(platform.statsWindowSec(), 1e-9);
    for (size_t i = 0; i < platform.appCount(); ++i)
        result.appItemsPerSec.push_back(platform.appItems(i) / window);
    result.meanPowerWatts = platform.energy().meanPower();
    result.perfPerJoule = platform.energy().itemsPerJoule();
    result.settlingTimeSec =
        telemetry::settlingTime(platform.powerTrace(), options.capWatts);
    result.capViolationSec = platform.capViolationSec(options.capWatts);
    result.gips = platform.counters().gips();
    result.bandwidthGBs = platform.counters().bandwidthGBs();
    result.spinPercent = platform.counters().spinPercent();
    result.capFeasible = governor->capFeasible();
    result.converged = governor->converged();
    result.durationSec = duration;
    result.degradedSec = platform.counters().degradedSeconds();
    result.faultsInjected = platform.counters().faultsInjected();
    result.faultsDetected = platform.counters().faultsDetected();
    if (!options.workItems.empty()) {
        for (size_t i = 0; i < platform.appCount(); ++i) {
            const double done = platform.completionTime(i);
            result.completionTimes.push_back(done >= 0.0 ? done : duration);
        }
    }
    result.powerTrace = platform.powerTrace();
    result.perfTrace = platform.perfTrace();

    if (loadDriver != nullptr) {
        loadDriver->finish(platform);
        const load::SloTracker& tracker = loadDriver->tracker();
        result.jobsArrived = tracker.totalArrivals();
        result.jobsCompleted = tracker.totalCompletions();
        result.jobsDropped = tracker.totalDrops();
        result.sloViolations = tracker.totalViolations();
        result.p99LatencySec = tracker.p99LatencySec();
        result.sloViolationRate = tracker.violationRate();
    }

    // Republish the legacy ad-hoc Counters fields through the registry so
    // every number a run produces flows out through one interface.
    telemetry::MetricsRegistry& metrics = platform.metrics();
    metrics.setGauge("counters.gips", result.gips);
    metrics.setGauge("counters.bandwidth_gbs", result.bandwidthGBs);
    metrics.setGauge("counters.spin_percent", result.spinPercent);
    metrics.setGauge("faults.injected", double(result.faultsInjected));
    metrics.setGauge("faults.detected", double(result.faultsDetected));
    metrics.setGauge("pupil.degraded_sec", result.degradedSec);
    metrics.setGauge("experiment.duration_sec", duration);
    metrics.setGauge("experiment.mean_power_watts", result.meanPowerWatts);
    const uint64_t cacheHits = metrics.counterTotal("sched.solve_cache.hits");
    const uint64_t cacheMisses =
        metrics.counterTotal("sched.solve_cache.misses");
    if (cacheHits + cacheMisses > 0) {
        metrics.setGauge("sched.solve_cache.hit_rate",
                         double(cacheHits) /
                             double(cacheHits + cacheMisses));
    }
    result.metrics = metrics.snapshot();

    trace::emit(options.trace, platform.now(),
                trace::EventKind::kExperimentEnd, result.aggregatePerf,
                result.meanPowerWatts, int32_t(kind),
                result.converged ? 1 : 0);
    return result;
}

std::vector<sched::AppDemand>
singleApp(const std::string& name, int threads)
{
    return {{&workload::findBenchmark(name), threads}};
}

std::vector<sched::AppDemand>
mixApps(const workload::Mix& mix, workload::Scenario scenario)
{
    std::vector<sched::AppDemand> apps;
    for (const std::string& name : mix.apps)
        apps.push_back(
            {&workload::findBenchmark(name),
             workload::threadsPerApp(scenario)});
    return apps;
}

}  // namespace pupil::harness
