#include "budget_policy.h"

#include <algorithm>
#include <cmath>

namespace pupil::cluster {

// The kernels below are the ONLY implementation of the per-level grant
// arithmetic. They stream over the packed lanes in index order, with the
// exact operation sequence the original ChildBudget loops used, so the
// AoS adapters at the bottom of this file -- and therefore every pinned
// golden digest -- are bit-identical to the pre-SoA code.

void
BudgetPool::resize(size_t n)
{
    capWatts.resize(n, 0.0);
    powerWatts.resize(n, 0.0);
    maxCapWatts.resize(n, kUnboundedWatts);
    minShareWatts.resize(n, 0.0);
    online.resize(n, 0);
    weightScratch.resize(n, 0.0);
}

void
BudgetPool::assign(const std::vector<ChildBudget>& children)
{
    resize(children.size());
    for (size_t i = 0; i < children.size(); ++i) {
        capWatts[i] = children[i].capWatts;
        powerWatts[i] = children[i].powerWatts;
        maxCapWatts[i] = children[i].maxCapWatts;
        minShareWatts[i] = children[i].minShareWatts;
        online[i] = children[i].online ? 1 : 0;
    }
}

void
BudgetPool::storeCaps(std::vector<ChildBudget>& children) const
{
    for (size_t i = 0; i < children.size(); ++i) {
        children[i].capWatts = capWatts[i];
        children[i].online = online[i] != 0;
    }
}

double
onlineCapSum(const BudgetPool& pool)
{
    double sum = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            sum += pool.capWatts[i];
    }
    return sum;
}

size_t
onlineCount(const BudgetPool& pool)
{
    size_t count = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            ++count;
    }
    return count;
}

double
conservationError(const BudgetPool& pool, double budget)
{
    double ceilingSum = 0.0;
    bool anyOnline = false;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        anyOnline = true;
        ceilingSum += pool.maxCapWatts[i];
    }
    if (!anyOnline)
        return 0.0;
    const double grantable = std::min(budget, ceilingSum);
    return std::abs(onlineCapSum(pool) - grantable);
}

double
clampToCeilings(BudgetPool& pool)
{
    double excess = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        if (pool.capWatts[i] > pool.maxCapWatts[i]) {
            excess += pool.capWatts[i] - pool.maxCapWatts[i];
            pool.capWatts[i] = pool.maxCapWatts[i];
        }
    }
    if (excess <= 0.0)
        return 0.0;

    // Water-fill the excess into remaining ceiling headroom. One pass is
    // enough: each receiver gets at most its own room because the placed
    // total never exceeds the total room.
    double room = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            room += pool.maxCapWatts[i] - pool.capWatts[i];
    }
    if (room <= 0.0)
        return excess;  // every online child at its ceiling: unplaceable
    const double placed = std::min(excess, room);
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        pool.capWatts[i] +=
            placed * (pool.maxCapWatts[i] - pool.capWatts[i]) / room;
    }
    return excess - placed;
}

void
enforceFloor(BudgetPool& pool)
{
    double deficit = 0.0;
    double surplus = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        if (pool.capWatts[i] < pool.minShareWatts[i])
            deficit += pool.minShareWatts[i] - pool.capWatts[i];
        else
            surplus += pool.capWatts[i] - pool.minShareWatts[i];
    }
    if (deficit <= 0.0 || surplus <= 0.0)
        return;
    // Raise the poor toward their floor, funded proportionally from the
    // children above theirs. Sum-preserving; best effort when the online
    // sum cannot cover everyone's floor.
    const double take = std::min(deficit, surplus);
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        if (pool.capWatts[i] < pool.minShareWatts[i])
            pool.capWatts[i] +=
                (pool.minShareWatts[i] - pool.capWatts[i]) * take / deficit;
        else
            pool.capWatts[i] -=
                (pool.capWatts[i] - pool.minShareWatts[i]) * take / surplus;
    }
}

double
rebalanceBudgets(BudgetPool& pool, const BudgetPolicy& policy)
{
    // Collect headroom (cap - consumption). Donors give away a fraction
    // of their headroom; the pot is granted to children at their cap,
    // proportionally to consumption (a proxy for demand). Offline
    // children hold no budget and take no part.
    double pot = 0.0;
    pool.weightScratch.assign(pool.size(), 0.0);
    double weightSum = 0.0;
    size_t online = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        ++online;
        const double power = pool.powerWatts[i];
        const double headroom = pool.capWatts[i] - power;
        const bool implausible = power < policy.minPlausiblePowerWatts;
        if (!implausible &&
            headroom > policy.headroomSlackFraction * pool.capWatts[i]) {
            const double donation =
                std::min(headroom * policy.donationFraction,
                         pool.capWatts[i] - pool.minShareWatts[i]);
            if (donation > 0.0) {
                pool.capWatts[i] -= donation;
                pot += donation;
            }
        } else {
            // Constrained -- or reading an implausible ~0 (dead meter,
            // frozen child). Floor the weight so a zero measurement can
            // never starve a child of grants forever.
            pool.weightScratch[i] =
                std::max(power, std::max(pool.minShareWatts[i], 1.0));
            weightSum += pool.weightScratch[i];
        }
    }
    if (pot <= 0.0 || online == 0)
        return 0.0;
    if (weightSum <= 0.0) {
        // Nobody is constrained: return the pot evenly.
        for (size_t i = 0; i < pool.size(); ++i) {
            if (pool.online[i])
                pool.capWatts[i] += pot / double(online);
        }
    } else {
        for (size_t i = 0; i < pool.size(); ++i) {
            if (pool.weightScratch[i] > 0.0)
                pool.capWatts[i] +=
                    pot * pool.weightScratch[i] / weightSum;
        }
    }
    // A grant above a child's TDP is budget it can never draw: clamp and
    // hand the excess to children that still have ceiling headroom.
    clampToCeilings(pool);
    return pot;
}

void
reshareBudgets(BudgetPool& pool, double budget,
               const std::vector<size_t>& rejoined)
{
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            pool.capWatts[i] = 0.0;
    }
    const size_t online = onlineCount(pool);
    if (online == 0)
        return;  // whole pool dark; budget re-granted at first rejoin

    const auto isRejoined = [&](size_t i) {
        return std::find(rejoined.begin(), rejoined.end(), i) !=
               rejoined.end();
    };

    // Survivors keep their relative shares (so shifting history is
    // preserved); rejoiners start from an even share of the budget.
    const double share = budget / double(online);
    double survivorSum = 0.0;
    size_t rejoinedOnline = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (!pool.online[i])
            continue;
        if (isRejoined(i))
            ++rejoinedOnline;
        else
            survivorSum += pool.capWatts[i];
    }
    if (survivorSum <= 0.0) {
        for (size_t i = 0; i < pool.size(); ++i) {
            if (pool.online[i])
                pool.capWatts[i] = share;
        }
    } else {
        const double survivorBudget =
            budget - share * double(rejoinedOnline);
        const double factor = survivorBudget / survivorSum;
        for (size_t i = 0; i < pool.size(); ++i) {
            if (!pool.online[i])
                continue;
            if (isRejoined(i))
                pool.capWatts[i] = share;
            else
                pool.capWatts[i] *= factor;
        }
    }
    // Scaling survivors down to fund a rejoiner can push one below its
    // floor; re-impose it (and the ceilings) before the caps go out.
    enforceFloor(pool);
    clampToCeilings(pool);
}

void
evenShares(BudgetPool& pool, double budget)
{
    const size_t online = onlineCount(pool);
    for (size_t i = 0; i < pool.size(); ++i)
        pool.capWatts[i] = 0.0;
    if (online == 0)
        return;
    const double share = budget / double(online);
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            pool.capWatts[i] = share;
    }
    clampToCeilings(pool);
}

// ---------------------------------------------------------------------------
// ChildBudget-vector adapters.
// ---------------------------------------------------------------------------

namespace {

// One pack/run/unpack scratch per thread: the adapters are used by the
// flat PowerShifter and by tests, never on an allocation-audited path,
// but reusing the buffer still keeps the common repeated-call pattern
// allocation-free after warm-up.
thread_local BudgetPool tlsPool;

}  // namespace

double
onlineCapSum(const std::vector<ChildBudget>& children)
{
    double sum = 0.0;
    for (const ChildBudget& child : children) {
        if (child.online)
            sum += child.capWatts;
    }
    return sum;
}

size_t
onlineCount(const std::vector<ChildBudget>& children)
{
    size_t count = 0;
    for (const ChildBudget& child : children) {
        if (child.online)
            ++count;
    }
    return count;
}

double
conservationError(const std::vector<ChildBudget>& children, double budget)
{
    tlsPool.assign(children);
    return conservationError(tlsPool, budget);
}

double
clampToCeilings(std::vector<ChildBudget>& children)
{
    tlsPool.assign(children);
    const double unplaced = clampToCeilings(tlsPool);
    tlsPool.storeCaps(children);
    return unplaced;
}

void
enforceFloor(std::vector<ChildBudget>& children)
{
    tlsPool.assign(children);
    enforceFloor(tlsPool);
    tlsPool.storeCaps(children);
}

double
rebalanceBudgets(std::vector<ChildBudget>& children,
                 const BudgetPolicy& policy)
{
    tlsPool.assign(children);
    const double moved = rebalanceBudgets(tlsPool, policy);
    tlsPool.storeCaps(children);
    return moved;
}

void
reshareBudgets(std::vector<ChildBudget>& children, double budget,
               const std::vector<size_t>& rejoined)
{
    tlsPool.assign(children);
    reshareBudgets(tlsPool, budget, rejoined);
    tlsPool.storeCaps(children);
}

void
evenShares(std::vector<ChildBudget>& children, double budget)
{
    tlsPool.assign(children);
    evenShares(tlsPool, budget);
    tlsPool.storeCaps(children);
}

}  // namespace pupil::cluster
