#include "budget_policy.h"

#include <algorithm>
#include <cmath>

namespace pupil::cluster {

double
onlineCapSum(const std::vector<ChildBudget>& children)
{
    double sum = 0.0;
    for (const ChildBudget& child : children) {
        if (child.online)
            sum += child.capWatts;
    }
    return sum;
}

size_t
onlineCount(const std::vector<ChildBudget>& children)
{
    size_t count = 0;
    for (const ChildBudget& child : children) {
        if (child.online)
            ++count;
    }
    return count;
}

double
conservationError(const std::vector<ChildBudget>& children, double budget)
{
    double ceilingSum = 0.0;
    bool anyOnline = false;
    for (const ChildBudget& child : children) {
        if (!child.online)
            continue;
        anyOnline = true;
        ceilingSum += child.maxCapWatts;
    }
    if (!anyOnline)
        return 0.0;
    const double grantable = std::min(budget, ceilingSum);
    return std::abs(onlineCapSum(children) - grantable);
}

double
clampToCeilings(std::vector<ChildBudget>& children)
{
    double excess = 0.0;
    for (ChildBudget& child : children) {
        if (!child.online)
            continue;
        if (child.capWatts > child.maxCapWatts) {
            excess += child.capWatts - child.maxCapWatts;
            child.capWatts = child.maxCapWatts;
        }
    }
    if (excess <= 0.0)
        return 0.0;

    // Water-fill the excess into remaining ceiling headroom. One pass is
    // enough: each receiver gets at most its own room because the placed
    // total never exceeds the total room.
    double room = 0.0;
    for (const ChildBudget& child : children) {
        if (child.online)
            room += child.maxCapWatts - child.capWatts;
    }
    if (room <= 0.0)
        return excess;  // every online child at its ceiling: unplaceable
    const double placed = std::min(excess, room);
    for (ChildBudget& child : children) {
        if (!child.online)
            continue;
        child.capWatts +=
            placed * (child.maxCapWatts - child.capWatts) / room;
    }
    return excess - placed;
}

void
enforceFloor(std::vector<ChildBudget>& children)
{
    double deficit = 0.0;
    double surplus = 0.0;
    for (const ChildBudget& child : children) {
        if (!child.online)
            continue;
        if (child.capWatts < child.minShareWatts)
            deficit += child.minShareWatts - child.capWatts;
        else
            surplus += child.capWatts - child.minShareWatts;
    }
    if (deficit <= 0.0 || surplus <= 0.0)
        return;
    // Raise the poor toward their floor, funded proportionally from the
    // children above theirs. Sum-preserving; best effort when the online
    // sum cannot cover everyone's floor.
    const double take = std::min(deficit, surplus);
    for (ChildBudget& child : children) {
        if (!child.online)
            continue;
        if (child.capWatts < child.minShareWatts)
            child.capWatts +=
                (child.minShareWatts - child.capWatts) * take / deficit;
        else
            child.capWatts -=
                (child.capWatts - child.minShareWatts) * take / surplus;
    }
}

double
rebalanceBudgets(std::vector<ChildBudget>& children,
                 const BudgetPolicy& policy)
{
    // Collect headroom (cap - consumption). Donors give away a fraction
    // of their headroom; the pool is granted to children at their cap,
    // proportionally to consumption (a proxy for demand). Offline
    // children hold no budget and take no part.
    double pool = 0.0;
    std::vector<double> grantWeight(children.size(), 0.0);
    double weightSum = 0.0;
    size_t online = 0;
    for (size_t i = 0; i < children.size(); ++i) {
        ChildBudget& child = children[i];
        if (!child.online)
            continue;
        ++online;
        const double power = child.powerWatts;
        const double headroom = child.capWatts - power;
        const bool implausible = power < policy.minPlausiblePowerWatts;
        if (!implausible &&
            headroom > policy.headroomSlackFraction * child.capWatts) {
            const double donation =
                std::min(headroom * policy.donationFraction,
                         child.capWatts - child.minShareWatts);
            if (donation > 0.0) {
                child.capWatts -= donation;
                pool += donation;
            }
        } else {
            // Constrained -- or reading an implausible ~0 (dead meter,
            // frozen child). Floor the weight so a zero measurement can
            // never starve a child of grants forever.
            grantWeight[i] =
                std::max(power, std::max(child.minShareWatts, 1.0));
            weightSum += grantWeight[i];
        }
    }
    if (pool <= 0.0 || online == 0)
        return 0.0;
    if (weightSum <= 0.0) {
        // Nobody is constrained: return the pool evenly.
        for (ChildBudget& child : children) {
            if (child.online)
                child.capWatts += pool / double(online);
        }
    } else {
        for (size_t i = 0; i < children.size(); ++i) {
            if (grantWeight[i] > 0.0)
                children[i].capWatts += pool * grantWeight[i] / weightSum;
        }
    }
    // A grant above a child's TDP is budget it can never draw: clamp and
    // hand the excess to children that still have ceiling headroom.
    clampToCeilings(children);
    return pool;
}

void
reshareBudgets(std::vector<ChildBudget>& children, double budget,
               const std::vector<size_t>& rejoined)
{
    for (ChildBudget& child : children) {
        if (!child.online)
            child.capWatts = 0.0;
    }
    const size_t online = onlineCount(children);
    if (online == 0)
        return;  // whole pool dark; budget re-granted at first rejoin

    const auto isRejoined = [&](size_t i) {
        return std::find(rejoined.begin(), rejoined.end(), i) !=
               rejoined.end();
    };

    // Survivors keep their relative shares (so shifting history is
    // preserved); rejoiners start from an even share of the budget.
    const double share = budget / double(online);
    double survivorSum = 0.0;
    size_t rejoinedOnline = 0;
    for (size_t i = 0; i < children.size(); ++i) {
        if (!children[i].online)
            continue;
        if (isRejoined(i))
            ++rejoinedOnline;
        else
            survivorSum += children[i].capWatts;
    }
    if (survivorSum <= 0.0) {
        for (ChildBudget& child : children) {
            if (child.online)
                child.capWatts = share;
        }
    } else {
        const double survivorBudget =
            budget - share * double(rejoinedOnline);
        const double factor = survivorBudget / survivorSum;
        for (size_t i = 0; i < children.size(); ++i) {
            if (!children[i].online)
                continue;
            if (isRejoined(i))
                children[i].capWatts = share;
            else
                children[i].capWatts *= factor;
        }
    }
    // Scaling survivors down to fund a rejoiner can push one below its
    // floor; re-impose it (and the ceilings) before the caps go out.
    enforceFloor(children);
    clampToCeilings(children);
}

void
evenShares(std::vector<ChildBudget>& children, double budget)
{
    const size_t online = onlineCount(children);
    for (ChildBudget& child : children)
        child.capWatts = 0.0;
    if (online == 0)
        return;
    const double share = budget / double(online);
    for (ChildBudget& child : children) {
        if (child.online)
            child.capWatts = share;
    }
    clampToCeilings(children);
}

}  // namespace pupil::cluster
