#ifndef PUPIL_CLUSTER_BUDGET_TREE_H_
#define PUPIL_CLUSTER_BUDGET_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/budget_policy.h"
#include "cluster/power_shifter.h"
#include "harness/sweep.h"
#include "telemetry/metrics.h"

namespace pupil::cluster {

/**
 * A rack: one interior level of the budget tree. Holds a grant from the
 * datacenter root and divides it among its nodes with the same
 * headroom-donation policy the root uses to divide the global budget
 * among racks.
 */
struct Rack
{
    std::string name;
    double grantWatts = 0.0;
    /** False while every node in the rack is offline (rack dark). */
    bool online = true;
    std::vector<std::unique_ptr<Node>> nodes;
};

/**
 * Hierarchical datacenter-scale power budgeting: a budget *tree* --
 * datacenter -> rack -> node -- instead of the flat PowerShifter's
 * budget loop (the direction FastCap's bounded-per-period fair capping
 * and Subramaniam & Feng's composable subsystem/node/cluster managers
 * both point at).
 *
 * Every interior level runs the same policy over its children
 * (budget_policy.h): measure demand, pool donated headroom, grant it
 * demand-weighted, clamp to ceilings. Leaves are full sim::Platform +
 * governor + RAPL stacks, exactly as under the flat shifter. Per period:
 *
 *  1. membership: node-loss faults and failed nodes leave (their watts
 *     redistributed inside their rack), rejoiners are folded back in; a
 *     rack whose last node left goes dark and its grant returns to the
 *     root pool;
 *  2. cap push: changed caps go out per rack in one batch (governor +
 *     RAPL firmware per node);
 *  3. step: every online node platform advances one period on a bounded
 *     thread pool (PUPIL_SWEEP_THREADS / Options::threads; 1 = serial).
 *     Nodes share no mutable state, so serial and parallel stepping are
 *     byte-identical; a node that throws is isolated (marked failed,
 *     removed at the next membership update) instead of aborting the
 *     cluster -- the SweepRunner's seed-derivation and failure-isolation
 *     idioms at cluster scale;
 *  4. rebalance: each rack shifts watts among its nodes, then the root
 *     shifts grants among racks; changed rack grants are re-divided
 *     inside the rack proportionally and pushed.
 *
 * Budget conservation -- sum(child caps) == parent grant at every level,
 * up to watts no child's TDP can absorb -- is asserted after every phase
 * in debug builds and exported continuously as the cluster.budget_error
 * gauge (see metrics()).
 *
 * Tracing: the tree emits cluster- and rack-level events (rebalances,
 * rack grants, node loss/rejoin) into the attached recorder. Node
 * platforms stay untraced: a Recorder is single-owner and the leaves
 * step concurrently.
 */
class BudgetTree
{
  public:
    struct Options
    {
        double globalBudgetWatts = 3200.0;
        double periodSec = 1.0;       ///< reallocation period, every level
        double minNodeCapWatts = 30.0;
        /** Fraction of measured headroom donated per period (all levels). */
        double donationFraction = 0.5;
        /** Per-node cap ceiling (package TDPs of the modelled server). */
        double nodeTdpWatts = 270.0;
        /**
         * Worker threads for node stepping. 0 = automatic
         * (PUPIL_SWEEP_THREADS, then hardware_concurrency); 1 steps
         * serially on the calling thread. Pure speed knob: results are
         * byte-identical across thread counts.
         */
        int threads = 0;
    };

    explicit BudgetTree(const Options& options);

    /** Add an (empty) rack. Returns its index. Call before run(). */
    size_t addRack(const std::string& name);

    /**
     * Add a node under rack @p rack running @p apps. Returns its index
     * within the rack. @p faultSpec injects node-local faults into the
     * node's own platform. When @p load is enabled the node also serves
     * open-loop tenant traffic: slots are appended after @p apps and a
     * load::LoadDriver (seeded from the node seed unless load.seed is
     * set) churns jobs through them against the node governor's live
     * cap, so arrivals and departures ride under BudgetTree grant
     * changes. Call before run().
     */
    size_t addNode(size_t rack, const std::string& name,
                   const std::vector<sched::AppDemand>& apps,
                   harness::GovernorKind kind = harness::GovernorKind::kPupil,
                   uint64_t seed = 1, const std::string& faultSpec = "",
                   const load::LoadDriver::Options& load =
                       load::LoadDriver::Options());

    /**
     * Attach a cluster-level fault schedule; node-loss events match node
     * names. Null detaches. Not owned; must outlive run().
     */
    void setFaultSchedule(const faults::FaultSchedule* schedule)
    {
        schedule_ = schedule;
    }

    /** Cluster/rack-level event recorder (null detaches; not owned). */
    void attachTrace(trace::Recorder* recorder) { trace_ = recorder; }

    /** Advance every node to @p untilSec, rebalancing period by period. */
    void run(double untilSec);

    // ----- topology -------------------------------------------------------
    size_t rackCount() const { return racks_.size(); }
    size_t nodeCount(size_t rack) const { return racks_[rack]->nodes.size(); }
    size_t totalNodes() const;
    const Rack& rack(size_t i) const { return *racks_[i]; }
    const Node& node(size_t rack, size_t i) const
    {
        return *racks_[rack]->nodes[i];
    }

    // ----- budget state ---------------------------------------------------
    /** Sum of online rack grants (== global budget while any rack is up). */
    double totalGrantWatts() const;
    /** Sum of per-node caps over online nodes. */
    double totalCapWatts() const;
    /** Sum of ground-truth power over online nodes (harness metric). */
    double totalPowerWatts() const;
    /**
     * Aggregate normalized performance: sum over online nodes of each
     * app's rate normalized by its solo rate in the maximal
     * configuration (ground truth; the bench's throughput-under-budget).
     */
    double aggregatePerformance() const;
    /**
     * Worst conservation error across all levels right now:
     * max over racks of |sum(node caps) - rack grant| and
     * |sum(rack grants) - global budget|, each against what the level's
     * ceilings can absorb.
     */
    double budgetErrorWatts() const;

    // ----- accounting -----------------------------------------------------
    /** Rack- or root-level reallocations that moved watts. */
    int shifts() const { return shifts_; }
    int lossEvents() const { return lossEvents_; }
    int rejoinEvents() const { return rejoinEvents_; }
    /** Nodes isolated after their platform threw during a step. */
    int nodeFailures() const { return nodeFailures_; }
    /** Periods executed so far. */
    int periods() const { return periods_; }

    /**
     * Wall-clock seconds spent in the control plane (membership,
     * measurement, both rebalance levels, cap pushes) -- everything
     * except node stepping. rebalance latency = controlWallSec/periods.
     * Not part of the deterministic state (never feeds back into it).
     */
    double controlWallSec() const { return controlWallSec_; }
    /** Wall-clock seconds spent stepping node platforms. */
    double stepWallSec() const { return stepWallSec_; }

    /**
     * Tree-level metrics: cluster.budget_error gauge (refreshed every
     * period), cluster.rebalances / cluster.node_loss /
     * cluster.node_rejoins / cluster.node_failures counters, and
     * cluster.racks / cluster.nodes_online gauges.
     */
    const telemetry::MetricsRegistry& metrics() const { return metrics_; }

    /**
     * FNV-1a digest of the deterministic cluster state (per-node caps,
     * true power, accumulated items, rack grants, event counts). Equal
     * digests <=> byte-identical runs; used by the determinism checks in
     * tests and bench/cluster_scale (serial vs parallel stepping).
     */
    uint64_t stateDigest() const;

  private:
    BudgetPolicy policy() const;
    std::vector<ChildBudget> nodeChildren(const Rack& rack) const;
    std::vector<ChildBudget> rackChildren() const;
    void applyNodeCaps(Rack& rack, const std::vector<ChildBudget>& state);
    /** Re-divide a changed rack grant among its online nodes. */
    void distributeRackGrant(size_t rackIndex,
                             const std::vector<size_t>& rejoinedNodes);
    void pushRackCaps(size_t rackIndex);
    void updateMembership();
    void stepNodes();
    void measure();
    void rebalance();
    void refreshInvariant();

    Options options_;
    std::vector<std::unique_ptr<Rack>> racks_;
    /** Per-rack, per-node measured (meter-channel) power this period. */
    std::vector<std::vector<double>> measured_;
    std::vector<bool> rackDirty_;
    harness::SweepRunner runner_;
    const faults::FaultSchedule* schedule_ = nullptr;
    trace::Recorder* trace_ = nullptr;
    telemetry::MetricsRegistry metrics_;
    double now_ = 0.0;
    int shifts_ = 0;
    int lossEvents_ = 0;
    int rejoinEvents_ = 0;
    int nodeFailures_ = 0;
    int periods_ = 0;
    double controlWallSec_ = 0.0;
    double stepWallSec_ = 0.0;
    bool started_ = false;
};

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_BUDGET_TREE_H_
