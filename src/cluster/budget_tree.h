#ifndef PUPIL_CLUSTER_BUDGET_TREE_H_
#define PUPIL_CLUSTER_BUDGET_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/budget_policy.h"
#include "cluster/power_shifter.h"
#include "cluster/surrogate_leaf.h"
#include "harness/sweep.h"
#include "net/fault_plane.h"
#include "net/transport.h"
#include "telemetry/metrics.h"

namespace pupil::cluster {

/**
 * A rack: one interior level of the budget tree. grantWatts and online
 * are the ROOT CONTROLLER's view of the rack -- what the root last
 * granted and whether it believes the rack is up. Under message faults
 * this view can lag the rack's own state; with faults off the two are
 * always equal at period boundaries.
 */
struct Rack
{
    std::string name;
    double grantWatts = 0.0;
    /** False while the root believes every node in the rack is offline. */
    bool online = true;
    std::vector<std::unique_ptr<Node>> nodes;
};

/**
 * Hierarchical datacenter-scale power budgeting: a budget *tree* --
 * datacenter -> rack -> node -- instead of the flat PowerShifter's
 * budget loop (the direction FastCap's bounded-per-period fair capping
 * and Subramaniam & Feng's composable subsystem/node/cluster managers
 * both point at).
 *
 * Since the control-plane extraction (DESIGN.md section 14), the three
 * endpoint roles -- the root controller, one agent per rack, one agent
 * per node -- share no state and coordinate ONLY through net::Messages
 * over a net::Transport: demand reports up, cap grants down, membership
 * announcements (node leave/join, rack dark/bright) in between. The
 * in-process LocalTransport round-trips every message through the wire
 * codec, so this object already exercises exactly the bytes a socket
 * transport would carry. With faults off the message rounds reproduce
 * the pre-extraction direct-call arithmetic bit for bit (pinned golden
 * stateDigest()s, tests/golden_trace_test.cc).
 *
 * Every interior level runs the same policy over its children
 * (budget_policy.h): measure demand, pool donated headroom, grant it
 * demand-weighted, clamp to ceilings. Leaves are full sim::Platform +
 * governor + RAPL stacks, exactly as under the flat shifter. Per period:
 *
 *  1. membership: node agents announce their liveness (scheduled
 *     node-loss windows, step-failure isolation); rack agents fold the
 *     announcements into their member view and report dark/bright + live
 *     population up; the root reshares grants across racks when rack
 *     liveness changed; changed racks re-divide and push caps;
 *  2. step: every online node platform advances one period on a bounded
 *     thread pool (PUPIL_SWEEP_THREADS / Options::threads; 1 = serial).
 *     Nodes share no mutable state, so serial and parallel stepping are
 *     byte-identical; a node that throws is isolated (marked failed,
 *     removed at the next membership round) instead of aborting the
 *     cluster;
 *  3. report: each live node agent samples its meter once and reports
 *     demand to its rack agent; rack agents report aggregates to the
 *     root;
 *  4. rebalance: each rack shifts watts among its nodes, then the root
 *     shifts grants among racks; changed rack grants are re-divided
 *     inside the rack proportionally and the caps go out in one batch
 *     of grant messages per rack.
 *
 * Ride-through under message faults (see setFaultSchedule): a
 * partitioned rack keeps enforcing -- and internally rebalancing -- its
 * last delivered grant; demand reports older than demandStaleSec age
 * into the policy's implausible-reading floor weight; duplicated and
 * reordered grants are idempotent via per-stream sequence numbers; and a
 * node agent clamps every applied grant to [minNodeCapWatts,
 * nodeTdpWatts], so no leaf ever enforces a cap outside its physical
 * envelope no matter what the network delivered.
 *
 * Budget conservation -- at every level, sum(granted caps) == what was
 * actually DELIVERED to that level (the root's global budget; a rack
 * agent's last grant view), up to watts no child's TDP can absorb -- is
 * asserted after every phase in debug builds and exported continuously
 * as the cluster.budget_error gauge (see metrics()). Measuring each
 * level against its own delivered view is what keeps the gate meaningful
 * when the network diverges the views; with faults off it reduces to the
 * pre-extraction definition.
 *
 * Event-driven mode (DESIGN.md section 15): with Options::hysteresisWatts
 * > 0 the control plane goes quiescent with the demand signal instead of
 * recomputing everything every period. A node publishes a demand report
 * only when its reading moved past the band since the last one it sent
 * (with a heartbeat at demandStaleSec/2 so suppression never ages a live
 * node into the stale-report guard); a rack re-runs its local division
 * only when some member's demand moved past the band since the division
 * it last acted on, and reports its aggregate up under the same delta
 * gate; the root re-rebalances only when some rack subtree is dirty. A
 * quiescent subtree therefore sends nothing and triggers nothing -- at
 * 50k nodes this is what turns the per-period control cost from
 * O(cluster) to O(dirty subtrees). The conservation-triggered full
 * reshare (rootMembershipAct) stays armed as the safety net, so a
 * suppressed path can never strand watts: any drift past 1e-7 of the
 * budget re-pins the grants. hysteresisWatts <= 0 is the legacy
 * everything-every-period plane, bit-identical to the pinned golden
 * digests.
 *
 * Leaves are swappable behind the LeafModel seam: full Platform +
 * governor + RAPL stacks (addNode; the pre-seam behaviour, bit for bit)
 * or calibrated O(1) surrogates (addSurrogateNode) fitted online from a
 * configurable sample of full-stack leaves (addCalibrationSource) via
 * the per-(app, governor) response tables in surrogates(). Surrogates
 * are what make 10k-50k node trees simulate faster than real time.
 *
 * Tracing: the tree emits cluster- and rack-level events (rebalances,
 * rack grants, node loss/rejoin) plus the transport's kMsgSend /
 * kMsgDrop / kPartition timeline into the attached recorder. Node
 * platforms stay untraced: a Recorder is single-owner and the leaves
 * step concurrently.
 */
class BudgetTree
{
  public:
    struct Options
    {
        double globalBudgetWatts = 3200.0;
        double periodSec = 1.0;       ///< reallocation period, every level
        double minNodeCapWatts = 30.0;
        /** Fraction of measured headroom donated per period (all levels). */
        double donationFraction = 0.5;
        /** Per-node cap ceiling (package TDPs of the modelled server). */
        double nodeTdpWatts = 270.0;
        /**
         * Demand reports older than this are stale: the receiving level
         * treats the child as reading implausibly (floor grant weight)
         * instead of trusting data the network delayed or dropped.
         * Default: 2.5 reallocation periods at the default periodSec.
         */
        double demandStaleSec = 2.5;
        /**
         * Seed of the message-fault RNG stream (drop/dup/delay Bernoulli
         * draws, reorder shuffles). A dedicated stream, so the same node
         * seeds under a different message scenario step identically.
         */
        uint64_t msgFaultSeed = 0x6d736766;
        /**
         * Worker threads for node stepping. 0 = automatic
         * (PUPIL_SWEEP_THREADS, then hardware_concurrency); 1 steps
         * serially on the calling thread. Pure speed knob: results are
         * byte-identical across thread counts.
         */
        int threads = 0;
        /**
         * Event-driven hysteresis band (Watts). > 0: demand reports,
         * rack-local divisions, and root rebalances are recomputed only
         * when the underlying demand moved past the band (see the class
         * comment); <= 0: the legacy everything-every-period control
         * plane, bit-identical to the pinned golden digests.
         */
        double hysteresisWatts = 0.0;
    };

    explicit BudgetTree(const Options& options);

    /** Add an (empty) rack. Returns its index. Call before run(). */
    size_t addRack(const std::string& name);

    /**
     * Add a node under rack @p rack running @p apps. Returns its index
     * within the rack. @p faultSpec injects node-local faults into the
     * node's own platform. When @p load is enabled the node also serves
     * open-loop tenant traffic: slots are appended after @p apps and a
     * load::LoadDriver (seeded from the node seed unless load.seed is
     * set) churns jobs through them against the node governor's live
     * cap, so arrivals and departures ride under BudgetTree grant
     * changes. Call before run().
     */
    size_t addNode(size_t rack, const std::string& name,
                   const std::vector<sched::AppDemand>& apps,
                   harness::GovernorKind kind = harness::GovernorKind::kPupil,
                   uint64_t seed = 1, const std::string& faultSpec = "",
                   const load::LoadDriver::Options& load =
                       load::LoadDriver::Options());

    /**
     * Add a surrogate node under rack @p rack: an O(1) calibrated-table
     * leaf (surrogate_leaf.h) standing in for a full platform stack
     * running @p app under @p kind. All surrogate nodes of one
     * (app, kind) cell share the cell's response model in surrogates();
     * pair them with addCalibrationSource() so sampled full-stack leaves
     * keep the shared table honest. Returns the node index within the
     * rack. Call before run().
     */
    size_t addSurrogateNode(size_t rack, const std::string& name,
                            const std::string& app,
                            harness::GovernorKind kind =
                                harness::GovernorKind::kPupil,
                            uint64_t seed = 1,
                            const SurrogateLeaf::Options& leafOptions =
                                SurrogateLeaf::Options());

    /**
     * Register full-stack node (@p rack, @p node) as a calibration
     * sample for the (app, kind) surrogate cell: once per period (before
     * the demand reports go out) its ground-truth settled power and
     * normalized perf at its enforced cap are folded into the cell's
     * response table. Ground truth draws no RNG, so registering sources
     * never perturbs a digest. Call before run().
     */
    void addCalibrationSource(size_t rack, size_t node,
                              const std::string& app,
                              harness::GovernorKind kind =
                                  harness::GovernorKind::kPupil);

    /** Per-(app, governor) surrogate response tables. */
    SurrogateLibrary& surrogates() { return surrogates_; }
    const SurrogateLibrary& surrogates() const { return surrogates_; }

    /** Node (@p rack, @p i)'s leaf as a SurrogateLeaf, or null when it
        is a full stack. Mutable: benches and property tests drive demand
        churn through SurrogateLeaf::setUtilization. */
    SurrogateLeaf* surrogateLeaf(size_t rack, size_t i)
    {
        return dynamic_cast<SurrogateLeaf*>(racks_[rack]->nodes[i]->leaf.get());
    }

    /**
     * Attach a cluster-level fault schedule; node-loss events match node
     * names, partition events match rack names, and the message kinds
     * (msg-drop/-delay/-dup/-reorder) match either end of an edge. Null
     * detaches. Not owned; must outlive run(). Targets naming a rack or
     * node that does not exist are rejected with std::invalid_argument
     * when run() starts.
     */
    void setFaultSchedule(const faults::FaultSchedule* schedule)
    {
        schedule_ = schedule;
    }

    /** Cluster/rack-level event recorder (null detaches; not owned). */
    void attachTrace(trace::Recorder* recorder);

    /** Advance every node to @p untilSec, rebalancing period by period. */
    void run(double untilSec);

    // ----- topology -------------------------------------------------------
    size_t rackCount() const { return racks_.size(); }
    size_t nodeCount(size_t rack) const { return racks_[rack]->nodes.size(); }
    size_t totalNodes() const;
    const Rack& rack(size_t i) const { return *racks_[i]; }
    const Node& node(size_t rack, size_t i) const
    {
        return *racks_[rack]->nodes[i];
    }

    // ----- budget state ---------------------------------------------------
    /** Sum of online rack grants (== global budget while any rack is up). */
    double totalGrantWatts() const;
    /** Sum of node-enforced caps over online nodes. */
    double totalCapWatts() const;
    /** Sum of ground-truth power over online nodes (harness metric). */
    double totalPowerWatts() const;
    /**
     * Aggregate normalized performance: sum over online nodes of each
     * app's rate normalized by its solo rate in the maximal
     * configuration (ground truth; the bench's throughput-under-budget).
     */
    double aggregatePerformance() const;
    /**
     * Worst conservation error across all levels right now, each level
     * measured against what was DELIVERED to it: the root's granted
     * rack caps against the global budget, and each rack agent's granted
     * node caps against its last delivered grant view. With faults off
     * this is the pre-extraction definition.
     */
    double budgetErrorWatts() const;

    /** Whether node (@p rack, @p i) has ever applied a delivered grant.
        Until then it enforces nothing (capWatts 0) -- the bootstrap
        state when the first grants are lost to the network. */
    bool nodeProvisioned(size_t rack, size_t i) const;

    /** A rack agent's last delivered grant view (0 until one arrives) --
        what the rack is actually dividing, which under partition can
        diverge from the root-side rack(i).grantWatts. */
    double rackGrantViewWatts(size_t rack) const;

    // ----- accounting -----------------------------------------------------
    /** Rack- or root-level reallocations that moved watts. */
    int shifts() const { return shifts_; }
    int lossEvents() const { return lossEvents_; }
    int rejoinEvents() const { return rejoinEvents_; }
    /** Nodes isolated after their platform threw during a step. */
    int nodeFailures() const { return nodeFailures_; }
    /** Periods executed so far. */
    int periods() const { return periods_; }

    /** Message-transport delivery accounting (sends, drops, ...). */
    const net::Transport::Stats& transportStats() const
    {
        return transport_->stats();
    }

    /**
     * Wall-clock seconds spent in the control plane (membership,
     * measurement, both rebalance levels, message rounds) -- everything
     * except node stepping. Not part of the deterministic state (never
     * feeds back into it).
     */
    double controlWallSec() const { return controlWallSec_; }
    /** Wall-clock seconds spent stepping node platforms. */
    double stepWallSec() const { return stepWallSec_; }
    /** Per-period control-plane wall seconds, one sample per executed
        period (controlWallSamples()[p] is period p). The aggregate
        controlWallSec() hides the warm-up transient; steady-state
        latency figures must come from these samples (bench/cluster_scale
        reports their post-warm-up median and p95). */
    const std::vector<double>& controlWallSamples() const
    {
        return controlWallPerPeriod_;
    }
    /** Per-period node-stepping wall seconds. */
    const std::vector<double>& stepWallSamples() const
    {
        return stepWallPerPeriod_;
    }

    /** Demand reports (node and rack level) suppressed by the hysteresis
        band -- messages the event-driven plane did not send. */
    uint64_t reportsSuppressed() const { return reportsSuppressed_; }
    /** Rack-local divisions and root rebalances skipped because every
        watched demand stayed inside the hysteresis band. */
    uint64_t rebalancesSuppressed() const { return rebalancesSuppressed_; }

    /**
     * Tree-level metrics: cluster.budget_error gauge (refreshed every
     * period), cluster.rebalances / cluster.node_loss /
     * cluster.node_rejoins / cluster.node_failures counters,
     * cluster.racks / cluster.nodes_online gauges, and the transport's
     * cluster.msgs_sent / cluster.msgs_dropped gauges.
     */
    const telemetry::MetricsRegistry& metrics() const { return metrics_; }

    /**
     * FNV-1a digest of the deterministic cluster state (per-node caps,
     * true power, accumulated items, rack grants, event counts). Equal
     * digests <=> byte-identical runs; used by the determinism checks in
     * tests and bench/cluster_scale (serial vs parallel stepping).
     */
    uint64_t stateDigest() const;

  private:
    /** The root controller's per-rack bookkeeping. */
    struct RootView
    {
        std::vector<uint32_t> grantSeqOut;    ///< root->rack grant stream
        std::vector<uint32_t> memberSeqSeen;  ///< rack->root announcements
        std::vector<uint32_t> reportSeqSeen;  ///< rack->root demand reports
        std::vector<double> demandWatts;
        std::vector<double> demandTimeSec;    ///< send time; < 0 = never
        std::vector<size_t> onlinePop;        ///< announced live population
        /** Persistent SoA policy state: filled in place each round, so
            the steady-state root path allocates nothing. */
        BudgetPool pool;
        /** Aged rack demand the root last rebalanced on (hysteresis). */
        std::vector<double> lastActedDemand;
    };

    /** One rack agent: divides its delivered grant among its members. */
    struct RackAgent
    {
        bool haveGrant = false;
        double grantViewWatts = 0.0;     ///< last delivered root grant
        uint32_t grantSeqSeen = 0;
        bool grantChanged = false;       ///< new grant view this round
        bool popChanged = false;         ///< membership moved this round
        bool dirty = false;              ///< caps changed; send at round end
        size_t onlineMembers = 0;
        uint32_t upMemberSeqOut = 0;     ///< rack->root announcement stream
        uint32_t upReportSeqOut = 0;     ///< rack->root report stream
        std::vector<bool> memberOnline;  ///< the rack's member view
        std::vector<double> grantedCapWatts;
        std::vector<uint32_t> grantSeqOut;    ///< per member
        std::vector<uint32_t> memberSeqSeen;  ///< per member
        std::vector<uint32_t> demandSeqSeen;  ///< per member
        std::vector<double> demandWatts;
        std::vector<double> demandTimeSec;    ///< send time; < 0 = never
        std::vector<size_t> rejoined;    ///< joins awaiting the re-divide
        /** Persistent SoA policy state (filled in place each round). */
        BudgetPool pool;
        /** Aged member demand this rack last divided on (hysteresis). */
        std::vector<double> lastActedDemand;
        double lastUpWatts = 0.0;   ///< aggregate demand last sent up
        double lastUpSec = -1.0;    ///< when; < 0 = never sent
    };

    /** One node agent: enforces delivered grants on its own platform. */
    struct NodeAgent
    {
        uint32_t appliedGrantSeq = 0;
        uint32_t memberSeqOut = 0;
        uint32_t reportSeqOut = 0;
        bool provisioned = false;
        double lastReportWatts = 0.0;  ///< demand last sent (hysteresis)
        double lastReportSec = -1.0;   ///< when; < 0 = never sent
    };

    /** A full-stack node feeding a surrogate cell's response table. */
    struct CalibrationSource
    {
        size_t rack = 0;
        size_t node = 0;
        SurrogateModel* model = nullptr;
    };

    BudgetPolicy policy() const;
    /** Demand value aged by send time: stale or never-seen reads as 0. */
    double agedDemand(double watts, double sentSec) const;

    // endpoint handlers (invoked by the transport at delivery)
    void bindEndpoints();
    void onRootMessage(const net::Message& message);
    void onRackMessage(size_t rackIndex, const net::Message& message);
    void onNodeMessage(size_t rackIndex, size_t nodeIndex,
                       const net::Message& message);

    // node-agent actions
    void nodeAnnounce(size_t rackIndex, size_t nodeIndex);
    void nodeReport(size_t rackIndex, size_t nodeIndex);

    // rack-agent actions
    std::vector<ChildBudget> rackAgentChildren(size_t rackIndex) const;
    /** Pack the agent's member state into its persistent SoA pool. */
    void fillRackPool(size_t rackIndex);
    void rackAnnounceUp(size_t rackIndex);
    void rackRedivide(size_t rackIndex);
    void rackRebalanceLocal(size_t rackIndex);
    void rackReportUp(size_t rackIndex);
    void rackSendCaps(size_t rackIndex);

    // root-controller actions
    std::vector<ChildBudget> rootChildren() const;
    /** Pack the root's rack view into its persistent SoA pool. */
    void fillRootPool();
    void rootMembershipAct();
    void rootRebalance();

    // per-period phases
    void tracePartitions();
    void settleRacks();
    void membershipPhase();
    void stepNodes();
    void reportPhase();
    void rebalancePhase();
    void refreshInvariant();

    Options options_;
    std::vector<std::unique_ptr<Rack>> racks_;
    harness::SweepRunner runner_;
    const faults::FaultSchedule* schedule_ = nullptr;
    trace::Recorder* trace_ = nullptr;
    telemetry::MetricsRegistry metrics_;

    std::unique_ptr<net::LocalTransport> transport_;
    std::unique_ptr<net::MessageFaultPlane> plane_;
    RootView root_;
    std::vector<RackAgent> rackAgents_;
    std::vector<std::vector<NodeAgent>> nodeAgents_;
    std::vector<bool> rackPartitioned_;  ///< for kPartition edge traces
    std::vector<size_t> rejoinedRacks_;  ///< bright racks awaiting reshare
    bool rootLivenessChanged_ = false;
    bool rootRebalanced_ = false;

    SurrogateLibrary surrogates_;
    std::vector<CalibrationSource> calibration_;

    double now_ = 0.0;
    int shifts_ = 0;
    int lossEvents_ = 0;
    int rejoinEvents_ = 0;
    int nodeFailures_ = 0;
    int periods_ = 0;
    uint64_t reportsSuppressed_ = 0;
    uint64_t rebalancesSuppressed_ = 0;
    double controlWallSec_ = 0.0;
    double stepWallSec_ = 0.0;
    std::vector<double> controlWallPerPeriod_;
    std::vector<double> stepWallPerPeriod_;
    bool started_ = false;
};

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_BUDGET_TREE_H_
