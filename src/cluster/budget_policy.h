#ifndef PUPIL_CLUSTER_BUDGET_POLICY_H_
#define PUPIL_CLUSTER_BUDGET_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pupil::cluster {

/** Ceiling sentinel for children without a TDP-class cap limit. */
inline constexpr double kUnboundedWatts = 1e18;

/**
 * One child of a budget pool, as the reallocation policy sees it: a node
 * inside a rack, or a rack under the datacenter root. The policy is pure
 * arithmetic over these records; the owners (PowerShifter, BudgetTree)
 * translate between them and their real node/rack state.
 */
struct ChildBudget
{
    /** Current grant (Watts). The policy mutates this in place. */
    double capWatts = 0.0;
    /** Measured consumption (Watts), the demand proxy. */
    double powerWatts = 0.0;
    /** TDP-class ceiling: a grant above this is watts the child can
     *  never draw (a dual-socket node cannot exceed its package TDPs). */
    double maxCapWatts = kUnboundedWatts;
    /**
     * Per-child floor: donation never takes the child below this, and
     * reshares raise it back up to it. A node's floor is the cluster's
     * minNodeCapWatts; a rack's floor is its online node count times
     * that, so a rack can always pass every node its own floor.
     */
    double minShareWatts = 0.0;
    /** Offline children hold no budget and take no part. */
    bool online = true;
};

/**
 * Struct-of-arrays view of a budget pool: the same per-child fields as
 * ChildBudget, packed one array per field so the per-level grant math
 * streams over contiguous doubles instead of hopping 40-byte records.
 * This is what BudgetTree levels hold persistently (fill caps/powers/
 * liveness in place each period, no per-call allocation); the
 * ChildBudget-vector entry points below delegate to the SoA kernels, so
 * there is exactly one implementation of the arithmetic and the two
 * representations are bit-identical by construction.
 */
struct BudgetPool
{
    std::vector<double> capWatts;
    std::vector<double> powerWatts;
    std::vector<double> maxCapWatts;
    std::vector<double> minShareWatts;
    std::vector<uint8_t> online;
    /** Kernel scratch (grant weights); sized with the pool so the
     *  steady-state rebalance path performs no allocations. */
    std::vector<double> weightScratch;

    size_t size() const { return capWatts.size(); }
    /** Resize every lane; new slots zeroed/offline, ceilings unbounded. */
    void resize(size_t n);
    /** Pack an AoS children vector (resizes as needed). */
    void assign(const std::vector<ChildBudget>& children);
    /** Unpack caps/liveness back into an AoS children vector of equal
     *  size (powers/ceilings/floors are inputs, never mutated). */
    void storeCaps(std::vector<ChildBudget>& children) const;
};

/**
 * Tuning knobs of the headroom-donation / demand-weighted-grant policy
 * (one instance per tree level; the defaults match the paper's two-node
 * shifting experiment in Section 6).
 */
struct BudgetPolicy
{
    /** Fraction of measured headroom a child donates per period. */
    double donationFraction = 0.5;
    /** Headroom below this fraction of the cap marks a child constrained. */
    double headroomSlackFraction = 0.05;
    /**
     * Measured power below this is treated as an implausible reading (a
     * dead meter, a frozen node): the child neither donates nor competes
     * on the bogus number -- it is held as constrained with a floor grant
     * weight so a ~0 reading can never starve it of budget. The modelled
     * machine idles near 11 W with a socket parked, so a sub-watt reading
     * is always a fault, not a quiet child.
     */
    double minPlausiblePowerWatts = 1.0;
};

// ---------------------------------------------------------------------------
// SoA kernels: the single implementation of the per-level arithmetic.
// ---------------------------------------------------------------------------

/** Sum of online children's caps. */
double onlineCapSum(const BudgetPool& pool);

/** Number of online children. */
size_t onlineCount(const BudgetPool& pool);

/**
 * Conservation error |sum(online caps) - budget| against the grantable
 * budget: watts above the sum of online ceilings are unplaceable (no
 * child may draw them), so the invariant every level maintains is
 *
 *     sum(online caps) == min(budget, sum(online maxCaps))
 *
 * Returns 0 when no child is online (the budget is parked, not held).
 */
double conservationError(const BudgetPool& pool, double budget);

/**
 * Clamp online children to their ceilings and redistribute the excess to
 * online children still below theirs, proportionally to remaining
 * ceiling headroom (water-filling). Returns the watts that could not be
 * placed anywhere (every online child at its ceiling); the caller parks
 * them, and conservationError() accounts for them.
 */
double clampToCeilings(BudgetPool& pool);

/**
 * Raise online children below their floor up to it, drawing the needed
 * watts from children above their floor proportionally to their excess.
 * Sum-preserving. Best effort: when the online sum cannot cover every
 * child's floor the shortfall remains on the poorest children.
 */
void enforceFloor(BudgetPool& pool);

/**
 * One reallocation pass (the paper's Section 6 shifting step, run
 * identically at every tree level): children with persistent measured
 * headroom donate a fraction of it; the pooled watts are granted to
 * constrained children proportionally to measured demand -- floored so a
 * child with an implausible ~0 reading still receives grants -- then
 * clamped to ceilings with the excess redistributed. Sum over online
 * children is preserved exactly up to unplaceable watts (returned by
 * value through conservationError afterwards).
 *
 * Returns the watts moved (0 when no child had donatable headroom).
 */
double rebalanceBudgets(BudgetPool& pool, const BudgetPolicy& policy);

/**
 * Restore sum(online caps) == budget after a membership change: children
 * listed in @p rejoined start from an even share of the budget, the
 * remaining online children keep their relative shares of the rest, and
 * the policy floor and the ceilings are re-imposed. Offline children are
 * zeroed. No-op when no child is online (the budget is re-granted at the
 * first rejoin).
 */
void reshareBudgets(BudgetPool& pool, double budget,
                    const std::vector<size_t>& rejoined);

/**
 * Even division of @p budget over online children (initial grant),
 * ceilings respected. Offline children are zeroed.
 */
void evenShares(BudgetPool& pool, double budget);

// ---------------------------------------------------------------------------
// ChildBudget-vector entry points (PowerShifter, tests): thin adapters
// that pack into a BudgetPool, run the SoA kernel, and unpack the caps.
// ---------------------------------------------------------------------------

double onlineCapSum(const std::vector<ChildBudget>& children);
size_t onlineCount(const std::vector<ChildBudget>& children);
double conservationError(const std::vector<ChildBudget>& children,
                         double budget);
double clampToCeilings(std::vector<ChildBudget>& children);
void enforceFloor(std::vector<ChildBudget>& children);
double rebalanceBudgets(std::vector<ChildBudget>& children,
                        const BudgetPolicy& policy);
void reshareBudgets(std::vector<ChildBudget>& children, double budget,
                    const std::vector<size_t>& rejoined);
void evenShares(std::vector<ChildBudget>& children, double budget);

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_BUDGET_POLICY_H_
