#include "budget_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>

#include "workload/catalog.h"

namespace pupil::cluster {

namespace {

double
wallNow()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

// FNV-1a over 64-bit words; doubles are hashed by bit pattern so two runs
// agree on the digest iff they agree on every byte of the state.
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void
mix(uint64_t& hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xffu;
        hash *= kFnvPrime;
    }
}

void
mixDouble(uint64_t& hash, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(hash, bits);
}

}  // namespace

BudgetTree::BudgetTree(const Options& options) : options_(options)
{
    harness::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.deriveSeeds = false;  // node seeds are fixed at addNode time
    ropts.keepTraces = false;
    ropts.progress = [](const harness::SweepProgress&) {};
    runner_ = harness::SweepRunner(ropts);
}

size_t
BudgetTree::addRack(const std::string& name)
{
    assert(!started_);
    auto rack = std::make_unique<Rack>();
    rack->name = name;
    racks_.push_back(std::move(rack));
    return racks_.size() - 1;
}

size_t
BudgetTree::addNode(size_t rackIndex, const std::string& name,
                    const std::vector<sched::AppDemand>& apps,
                    harness::GovernorKind kind, uint64_t seed,
                    const std::string& faultSpec,
                    const load::LoadDriver::Options& load)
{
    assert(!started_);
    Rack& rack = *racks_[rackIndex];
    auto node = std::make_unique<Node>();
    node->name = name;
    sim::PlatformOptions popts;
    popts.seed = seed;
    popts.faultSpec = faultSpec;
    std::vector<sched::AppDemand> demand = apps;
    const size_t firstLoadSlot = demand.size();
    if (load.enabled) {
        for (size_t s = 0; s < std::max<size_t>(load.slots, 1); ++s)
            demand.push_back({&workload::calibrationApp(), 0});
    }
    node->platform =
        std::make_unique<sim::Platform>(popts, std::move(demand));
    node->platform->warmStart(machine::maximalConfig());
    node->rapl = std::make_unique<rapl::RaplController>();
    node->governor = harness::makeGovernor(kind);
    node->governor->attachRapl(node->rapl.get());
    node->platform->addActor(node->rapl.get());
    node->platform->addActor(node->governor.get());
    if (load.enabled) {
        const uint64_t loadSeed =
            load.seed != 0
                ? load.seed
                : harness::SweepRunner::deriveSeed(seed, 0x70AD);
        node->load = std::make_unique<load::LoadDriver>(
            load, firstLoadSlot, loadSeed);
        node->load->attachGovernor(node->governor.get());
        node->platform->addActor(node->load.get());
    }
    // Node platforms stay untraced: a trace::Recorder is single-owner and
    // the leaves step concurrently. The tree emits the cluster- and
    // rack-level timeline into the recorder attached via attachTrace().
    rack.nodes.push_back(std::move(node));
    return rack.nodes.size() - 1;
}

size_t
BudgetTree::totalNodes() const
{
    size_t count = 0;
    for (const auto& rack : racks_)
        count += rack->nodes.size();
    return count;
}

double
BudgetTree::totalGrantWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        if (rack->online)
            total += rack->grantWatts;
    }
    return total;
}

double
BudgetTree::totalCapWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (node->online)
                total += node->capWatts;
        }
    }
    return total;
}

double
BudgetTree::totalPowerWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (node->online)
                total += node->platform->truePower();
        }
    }
    return total;
}

double
BudgetTree::aggregatePerformance() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (!node->online)
                continue;
            for (size_t i = 0; i < node->platform->appCount(); ++i) {
                const double solo = node->platform->soloReferenceRate(i);
                if (solo > 0.0)
                    total += node->platform->trueAppRate(i) / solo;
            }
        }
    }
    return total;
}

BudgetPolicy
BudgetTree::policy() const
{
    BudgetPolicy policy;
    policy.donationFraction = options_.donationFraction;
    return policy;
}

std::vector<ChildBudget>
BudgetTree::nodeChildren(const Rack& rack) const
{
    std::vector<ChildBudget> children(rack.nodes.size());
    for (size_t i = 0; i < rack.nodes.size(); ++i) {
        children[i].capWatts = rack.nodes[i]->capWatts;
        children[i].maxCapWatts = options_.nodeTdpWatts;
        children[i].minShareWatts = options_.minNodeCapWatts;
        children[i].online = rack.nodes[i]->online;
    }
    return children;
}

std::vector<ChildBudget>
BudgetTree::rackChildren() const
{
    // A rack's ceiling and floor scale with its live population: it can
    // absorb at most onlineNodes * TDP and must always be able to hand
    // every online node its floor.
    std::vector<ChildBudget> children(racks_.size());
    for (size_t r = 0; r < racks_.size(); ++r) {
        const Rack& rack = *racks_[r];
        size_t online = 0;
        double power = 0.0;
        for (size_t i = 0; i < rack.nodes.size(); ++i) {
            if (!rack.nodes[i]->online)
                continue;
            ++online;
            if (r < measured_.size() && i < measured_[r].size())
                power += measured_[r][i];
        }
        children[r].capWatts = rack.grantWatts;
        children[r].powerWatts = power;
        children[r].maxCapWatts = double(online) * options_.nodeTdpWatts;
        children[r].minShareWatts =
            double(online) * options_.minNodeCapWatts;
        children[r].online = rack.online && online > 0;
    }
    return children;
}

double
BudgetTree::budgetErrorWatts() const
{
    double worst =
        conservationError(rackChildren(), options_.globalBudgetWatts);
    for (const auto& rack : racks_) {
        if (!rack->online)
            continue;
        worst = std::max(
            worst, conservationError(nodeChildren(*rack), rack->grantWatts));
    }
    return worst;
}

void
BudgetTree::applyNodeCaps(Rack& rack, const std::vector<ChildBudget>& state)
{
    for (size_t i = 0; i < rack.nodes.size(); ++i)
        rack.nodes[i]->capWatts = state[i].capWatts;
}

void
BudgetTree::distributeRackGrant(size_t rackIndex,
                                const std::vector<size_t>& rejoinedNodes)
{
    Rack& rack = *racks_[rackIndex];
    std::vector<ChildBudget> state = nodeChildren(rack);
    reshareBudgets(state, rack.grantWatts, rejoinedNodes);
    applyNodeCaps(rack, state);
    rackDirty_[rackIndex] = true;
}

void
BudgetTree::pushRackCaps(size_t rackIndex)
{
    // One batched push per rack: every online node's governor and its
    // RAPL firmware get the new cap together, so the hardware backstop is
    // armed from the same period the grant changes -- including for
    // software-only node governors.
    Rack& rack = *racks_[rackIndex];
    for (auto& node : rack.nodes) {
        if (!node->online || node->failed)
            continue;
        node->governor->setCap(node->capWatts);
        node->rapl->setTotalCapEvenSplit(node->capWatts);
    }
    rackDirty_[rackIndex] = false;
}

void
BudgetTree::updateMembership()
{
    // Phase 1: apply node-level liveness transitions (scheduled node-loss
    // windows and step-failure isolation) and note what changed where.
    std::vector<std::vector<size_t>> rejoinedNodes(racks_.size());
    std::vector<bool> rackChanged(racks_.size(), false);
    std::vector<size_t> rejoinedRacks;
    bool rackLivenessChanged = false;
    for (size_t r = 0; r < racks_.size(); ++r) {
        Rack& rack = *racks_[r];
        size_t online = 0;
        for (size_t i = 0; i < rack.nodes.size(); ++i) {
            Node& node = *rack.nodes[i];
            // A platform that threw during a step is isolated for good;
            // scheduled node-loss windows end and the node rejoins.
            const bool lost =
                node.failed ||
                (schedule_ != nullptr &&
                 schedule_->anyActive(faults::FaultKind::kNodeLoss,
                                      node.name, now_));
            if (lost && node.online) {
                trace::emit(trace_, now_, trace::EventKind::kNodeLoss,
                            node.capWatts, 0.0, int32_t(r), int32_t(i));
                node.online = false;
                node.capWatts = 0.0;
                ++lossEvents_;
                metrics_.addCounter("cluster.node_loss");
                rackChanged[r] = true;
            } else if (!lost && !node.online) {
                node.online = true;
                ++rejoinEvents_;
                metrics_.addCounter("cluster.node_rejoins");
                rejoinedNodes[r].push_back(i);
                rackChanged[r] = true;
            }
            if (node.online)
                ++online;
        }
        const bool nowOnline = online > 0;
        if (nowOnline != rack.online) {
            rack.online = nowOnline;
            rackLivenessChanged = true;
            if (nowOnline)
                rejoinedRacks.push_back(r);
            else
                rack.grantWatts = 0.0;  // dark rack returns its grant
        }
    }

    // Phase 2: a rack going dark or coming back moves watts *between*
    // racks, so the root reshares grants.
    std::vector<bool> grantChanged(racks_.size(), false);
    if (rackLivenessChanged) {
        std::vector<ChildBudget> state = rackChildren();
        reshareBudgets(state, options_.globalBudgetWatts, rejoinedRacks);
        for (size_t r = 0; r < racks_.size(); ++r) {
            if (std::abs(state[r].capWatts - racks_[r]->grantWatts) <=
                1e-12)
                continue;
            trace::emit(trace_, now_, trace::EventKind::kRackGrant,
                        state[r].capWatts, racks_[r]->grantWatts,
                        int32_t(r));
            racks_[r]->grantWatts = state[r].capWatts;
            grantChanged[r] = true;
        }
    }

    // Phase 3: every rack whose population or grant moved re-divides
    // internally (survivors keep relative shares, rejoiners get an even
    // share, floors and ceilings re-imposed), then the caps go out in one
    // batch per dirty rack.
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (!racks_[r]->online || (!rackChanged[r] && !grantChanged[r]))
            continue;
        distributeRackGrant(r, rejoinedNodes[r]);
        for (size_t i : rejoinedNodes[r])
            trace::emit(trace_, now_, trace::EventKind::kNodeRejoin,
                        racks_[r]->nodes[i]->capWatts, 0.0, int32_t(r),
                        int32_t(i));
    }

    assert(budgetErrorWatts() <
           1e-6 * options_.globalBudgetWatts + 1e-9);
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (rackDirty_[r])
            pushRackCaps(r);
    }
}

void
BudgetTree::stepNodes()
{
    // Advance every live node platform to now_ on the bounded pool. Nodes
    // share no mutable state (each owns its platform, machine, governor,
    // and RNG streams), so serial and parallel stepping are byte-identical
    // -- the SweepRunner determinism argument at cluster scale. A node
    // whose platform throws is isolated (failed, removed at the next
    // membership update) instead of aborting the cluster.
    std::vector<Node*> live;
    live.reserve(totalNodes());
    for (auto& rack : racks_) {
        for (auto& node : rack->nodes) {
            if (node->online && !node->failed)
                live.push_back(node.get());
        }
    }
    const double target = now_;
    const double start = wallNow();
    const std::vector<std::string> errors = runner_.forEach(
        live.size(), [&](size_t i) { live[i]->platform->run(target); });
    stepWallSec_ += wallNow() - start;
    for (size_t i = 0; i < errors.size(); ++i) {
        if (errors[i].empty())
            continue;
        live[i]->failed = true;
        ++nodeFailures_;
        metrics_.addCounter("cluster.node_failures");
    }
}

void
BudgetTree::measure()
{
    // All cross-node reads happen here, serially, in fixed rack-major
    // order, after the stepping barrier -- the other half of the
    // determinism argument. The meter channel (readPower) is what a real
    // cluster manager sees: noisy and fault-prone, which is why the
    // policy's implausible-reading guard exists.
    measured_.resize(racks_.size());
    for (size_t r = 0; r < racks_.size(); ++r) {
        Rack& rack = *racks_[r];
        measured_[r].assign(rack.nodes.size(), 0.0);
        for (size_t i = 0; i < rack.nodes.size(); ++i) {
            Node& node = *rack.nodes[i];
            if (node.online && !node.failed)
                measured_[r][i] = node.platform->readPower();
        }
    }
}

void
BudgetTree::rebalance()
{
    // Leaf level first: each rack shifts watts among its own nodes under
    // its current grant.
    for (size_t r = 0; r < racks_.size(); ++r) {
        Rack& rack = *racks_[r];
        if (!rack.online)
            continue;
        std::vector<ChildBudget> state = nodeChildren(rack);
        for (size_t i = 0; i < rack.nodes.size(); ++i)
            state[i].powerWatts = measured_[r][i];
        const double moved = rebalanceBudgets(state, policy());
        if (moved <= 0.0)
            continue;
        applyNodeCaps(rack, state);
        rackDirty_[r] = true;
        ++shifts_;
        metrics_.addCounter("cluster.rebalances");
        double rackPower = 0.0;
        for (size_t i = 0; i < rack.nodes.size(); ++i)
            rackPower += measured_[r][i];
        trace::emit(trace_, now_, trace::EventKind::kRackRebalance,
                    rack.grantWatts, rackPower, int32_t(r),
                    int32_t(moved));
    }

    // Root level: the same policy over racks. A changed grant is
    // re-divided inside the rack proportionally before the push.
    std::vector<ChildBudget> state = rackChildren();
    const double moved = rebalanceBudgets(state, policy());
    if (moved > 0.0) {
        ++shifts_;
        metrics_.addCounter("cluster.rebalances");
        for (size_t r = 0; r < racks_.size(); ++r) {
            if (!racks_[r]->online ||
                std::abs(state[r].capWatts - racks_[r]->grantWatts) <=
                    1e-12)
                continue;
            trace::emit(trace_, now_, trace::EventKind::kRackGrant,
                        state[r].capWatts, racks_[r]->grantWatts,
                        int32_t(r));
            racks_[r]->grantWatts = state[r].capWatts;
            distributeRackGrant(r, {});
        }
        trace::emit(trace_, now_, trace::EventKind::kRebalance,
                    totalCapWatts(), totalPowerWatts(), shifts_);
    }

    assert(budgetErrorWatts() <
           1e-6 * options_.globalBudgetWatts + 1e-9);
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (rackDirty_[r])
            pushRackCaps(r);
    }
}

void
BudgetTree::refreshInvariant()
{
    const double error = budgetErrorWatts();
    metrics_.setGauge("cluster.budget_error", error);
    size_t racksOnline = 0;
    size_t nodesOnline = 0;
    for (const auto& rack : racks_) {
        if (rack->online)
            ++racksOnline;
        for (const auto& node : rack->nodes) {
            if (node->online)
                ++nodesOnline;
        }
    }
    metrics_.setGauge("cluster.racks", double(racksOnline));
    metrics_.setGauge("cluster.nodes_online", double(nodesOnline));
    assert(error < 1e-6 * options_.globalBudgetWatts + 1e-9);
}

void
BudgetTree::run(double untilSec)
{
    if (!started_) {
        started_ = true;
        measured_.resize(racks_.size());
        for (size_t r = 0; r < racks_.size(); ++r)
            measured_[r].assign(racks_[r]->nodes.size(), 0.0);
        rackDirty_.assign(racks_.size(), false);
        // Initial division: even shares root -> racks, then rack -> nodes,
        // pushed to every node's governor AND its RAPL firmware before the
        // first period (no node runs uncapped waiting for the first
        // rebalance).
        std::vector<ChildBudget> rackState = rackChildren();
        evenShares(rackState, options_.globalBudgetWatts);
        for (size_t r = 0; r < racks_.size(); ++r) {
            racks_[r]->grantWatts = rackState[r].capWatts;
            std::vector<ChildBudget> nodeState =
                nodeChildren(*racks_[r]);
            evenShares(nodeState, racks_[r]->grantWatts);
            applyNodeCaps(*racks_[r], nodeState);
            pushRackCaps(r);
        }
        refreshInvariant();
    }
    while (now_ < untilSec - 1e-9) {
        double mark = wallNow();
        updateMembership();
        controlWallSec_ += wallNow() - mark;
        const double step = std::min(options_.periodSec, untilSec - now_);
        now_ += step;
        stepNodes();  // times itself into stepWallSec_
        mark = wallNow();
        measure();
        rebalance();
        refreshInvariant();
        ++periods_;
        controlWallSec_ += wallNow() - mark;
    }
}

uint64_t
BudgetTree::stateDigest() const
{
    uint64_t hash = kFnvOffset;
    mixDouble(hash, now_);
    mix(hash, uint64_t(shifts_));
    mix(hash, uint64_t(lossEvents_));
    mix(hash, uint64_t(rejoinEvents_));
    mix(hash, uint64_t(nodeFailures_));
    mix(hash, uint64_t(periods_));
    for (const auto& rack : racks_) {
        mixDouble(hash, rack->grantWatts);
        mix(hash, rack->online ? 1 : 0);
        for (const auto& node : rack->nodes) {
            mixDouble(hash, node->capWatts);
            mix(hash, (node->online ? 1u : 0u) |
                          (node->failed ? 2u : 0u));
            mixDouble(hash, node->platform->truePower());
            for (size_t i = 0; i < node->platform->appCount(); ++i)
                mixDouble(hash, node->platform->trueAppRate(i));
            if (node->load != nullptr) {
                // Churn bookkeeping is deterministic state too: a thread
                // count that perturbed tenant scheduling must fail the
                // serial-vs-parallel digest comparison.
                const load::SloTracker& tracker = node->load->tracker();
                mix(hash, tracker.totalArrivals());
                mix(hash, tracker.totalCompletions());
                mix(hash, tracker.totalViolations());
                mix(hash, tracker.totalDrops());
            }
        }
    }
    return hash;
}

}  // namespace pupil::cluster
