#include "budget_tree.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>

#include "workload/catalog.h"

namespace pupil::cluster {

namespace {

double
wallNow()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

constexpr net::EndpointId kRootEndpoint{-1, -1};

net::EndpointId
rackEndpoint(size_t rack)
{
    return {int32_t(rack), -1};
}

net::EndpointId
nodeEndpoint(size_t rack, size_t node)
{
    return {int32_t(rack), int32_t(node)};
}

}  // namespace

BudgetTree::BudgetTree(const Options& options) : options_(options)
{
    harness::SweepRunner::Options ropts;
    ropts.threads = options.threads;
    ropts.deriveSeeds = false;  // node seeds are fixed at addNode time
    ropts.keepTraces = false;
    ropts.progress = [](const harness::SweepProgress&) {};
    runner_ = harness::SweepRunner(ropts);
    transport_ = std::make_unique<net::LocalTransport>();
}

size_t
BudgetTree::addRack(const std::string& name)
{
    assert(!started_);
    auto rack = std::make_unique<Rack>();
    rack->name = name;
    racks_.push_back(std::move(rack));
    return racks_.size() - 1;
}

size_t
BudgetTree::addNode(size_t rackIndex, const std::string& name,
                    const std::vector<sched::AppDemand>& apps,
                    harness::GovernorKind kind, uint64_t seed,
                    const std::string& faultSpec,
                    const load::LoadDriver::Options& load)
{
    assert(!started_);
    Rack& rack = *racks_[rackIndex];
    auto node = std::make_unique<Node>();
    node->name = name;
    sim::PlatformOptions popts;
    popts.seed = seed;
    popts.faultSpec = faultSpec;
    std::vector<sched::AppDemand> demand = apps;
    const size_t firstLoadSlot = demand.size();
    if (load.enabled) {
        for (size_t s = 0; s < std::max<size_t>(load.slots, 1); ++s)
            demand.push_back({&workload::calibrationApp(), 0});
    }
    node->platform =
        std::make_unique<sim::Platform>(popts, std::move(demand));
    node->platform->warmStart(machine::maximalConfig());
    node->rapl = std::make_unique<rapl::RaplController>();
    node->governor = harness::makeGovernor(kind);
    node->governor->attachRapl(node->rapl.get());
    node->platform->addActor(node->rapl.get());
    node->platform->addActor(node->governor.get());
    if (load.enabled) {
        const uint64_t loadSeed =
            load.seed != 0
                ? load.seed
                : harness::SweepRunner::deriveSeed(seed, 0x70AD);
        node->load = std::make_unique<load::LoadDriver>(
            load, firstLoadSlot, loadSeed);
        node->load->attachGovernor(node->governor.get());
        node->platform->addActor(node->load.get());
    }
    // Node platforms stay untraced: a trace::Recorder is single-owner and
    // the leaves step concurrently. The tree emits the cluster- and
    // rack-level timeline into the recorder attached via attachTrace().
    node->leaf = std::make_unique<FullStackLeaf>(
        node->platform.get(), node->governor.get(), node->rapl.get(),
        node->load.get());
    rack.nodes.push_back(std::move(node));
    return rack.nodes.size() - 1;
}

size_t
BudgetTree::addSurrogateNode(size_t rackIndex, const std::string& name,
                             const std::string& app,
                             harness::GovernorKind kind, uint64_t seed,
                             const SurrogateLeaf::Options& leafOptions)
{
    assert(!started_);
    Rack& rack = *racks_[rackIndex];
    auto node = std::make_unique<Node>();
    node->name = name;
    // All surrogate nodes of a cell share the cell's response table;
    // std::map gives the model a stable address for the leaf to hold.
    SurrogateModel& model = surrogates_.cell(app, int(kind));
    node->leaf = std::make_unique<SurrogateLeaf>(&model, leafOptions, seed);
    rack.nodes.push_back(std::move(node));
    return rack.nodes.size() - 1;
}

void
BudgetTree::addCalibrationSource(size_t rackIndex, size_t nodeIndex,
                                 const std::string& app,
                                 harness::GovernorKind kind)
{
    assert(!started_);
    assert(racks_[rackIndex]->nodes[nodeIndex]->leaf->fullStack());
    calibration_.push_back(
        {rackIndex, nodeIndex, &surrogates_.cell(app, int(kind))});
}

void
BudgetTree::attachTrace(trace::Recorder* recorder)
{
    trace_ = recorder;
    transport_->attachTrace(recorder);
}

size_t
BudgetTree::totalNodes() const
{
    size_t count = 0;
    for (const auto& rack : racks_)
        count += rack->nodes.size();
    return count;
}

double
BudgetTree::totalGrantWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        if (rack->online)
            total += rack->grantWatts;
    }
    return total;
}

double
BudgetTree::totalCapWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (node->online)
                total += node->capWatts;
        }
    }
    return total;
}

double
BudgetTree::totalPowerWatts() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (node->online)
                total += node->leaf->truePower();
        }
    }
    return total;
}

double
BudgetTree::aggregatePerformance() const
{
    double total = 0.0;
    for (const auto& rack : racks_) {
        for (const auto& node : rack->nodes) {
            if (node->online)
                total += node->leaf->normalizedPerf();
        }
    }
    return total;
}

BudgetPolicy
BudgetTree::policy() const
{
    BudgetPolicy policy;
    policy.donationFraction = options_.donationFraction;
    return policy;
}

double
BudgetTree::agedDemand(double watts, double sentSec) const
{
    if (sentSec < 0.0)
        return 0.0;  // never reported
    // Send-time aging: a report the network delayed past the staleness
    // horizon carries data about a cluster that no longer exists, so the
    // receiver treats the child as unmeasured (the policy's implausible-
    // reading guard then grants it the floor weight).
    return (now_ - sentSec) <= options_.demandStaleSec + 1e-9 ? watts : 0.0;
}

bool
BudgetTree::nodeProvisioned(size_t rack, size_t i) const
{
    return started_ && nodeAgents_[rack][i].provisioned;
}

double
BudgetTree::rackGrantViewWatts(size_t rack) const
{
    if (!started_ || !rackAgents_[rack].haveGrant)
        return 0.0;
    return rackAgents_[rack].grantViewWatts;
}

// ---------------------------------------------------------------------------
// Child views. Each endpoint builds its policy input from ITS OWN state:
// the root from announced populations and its granted watts, a rack agent
// from its member view and delivered grant. Before run() both fall back to
// construction-time topology so budgetErrorWatts() is well-defined.
// ---------------------------------------------------------------------------

std::vector<ChildBudget>
BudgetTree::rootChildren() const
{
    // A rack's ceiling and floor scale with its live population: it can
    // absorb at most onlineNodes * TDP and must always be able to hand
    // every online node its floor.
    std::vector<ChildBudget> children(racks_.size());
    for (size_t r = 0; r < racks_.size(); ++r) {
        const size_t pop =
            started_ ? root_.onlinePop[r] : racks_[r]->nodes.size();
        children[r].capWatts = racks_[r]->grantWatts;
        children[r].maxCapWatts = double(pop) * options_.nodeTdpWatts;
        children[r].minShareWatts = double(pop) * options_.minNodeCapWatts;
        children[r].online = racks_[r]->online && pop > 0;
    }
    return children;
}

std::vector<ChildBudget>
BudgetTree::rackAgentChildren(size_t rackIndex) const
{
    const Rack& rack = *racks_[rackIndex];
    std::vector<ChildBudget> children(rack.nodes.size());
    for (size_t i = 0; i < rack.nodes.size(); ++i) {
        children[i].maxCapWatts = options_.nodeTdpWatts;
        children[i].minShareWatts = options_.minNodeCapWatts;
        if (started_) {
            const RackAgent& agent = rackAgents_[rackIndex];
            children[i].capWatts = agent.grantedCapWatts[i];
            children[i].online = agent.memberOnline[i];
        } else {
            children[i].capWatts = rack.nodes[i]->capWatts;
            children[i].online = rack.nodes[i]->online;
        }
    }
    return children;
}

double
BudgetTree::budgetErrorWatts() const
{
    // Each level is measured against what was DELIVERED to it. Under
    // partition the root's view of a rack grant and the rack's own view
    // can diverge legitimately; conservation must still hold per view.
    double worst =
        conservationError(rootChildren(), options_.globalBudgetWatts);
    for (size_t r = 0; r < racks_.size(); ++r) {
        const double delivered =
            started_ ? (rackAgents_[r].haveGrant
                            ? rackAgents_[r].grantViewWatts
                            : 0.0)
                     : racks_[r]->grantWatts;
        worst = std::max(
            worst, conservationError(rackAgentChildren(r), delivered));
    }
    return worst;
}

// ---------------------------------------------------------------------------
// Endpoint handlers: the ONLY way state crosses a parent<->child boundary.
// Every stream applies a message iff its seq advances past the last seen
// one, which makes duplicated and reordered deliveries idempotent.
// ---------------------------------------------------------------------------

void
BudgetTree::bindEndpoints()
{
    transport_->bind(kRootEndpoint,
                     [this](const net::Message& m) { onRootMessage(m); });
    for (size_t r = 0; r < racks_.size(); ++r) {
        transport_->bind(rackEndpoint(r), [this, r](const net::Message& m) {
            onRackMessage(r, m);
        });
        for (size_t n = 0; n < racks_[r]->nodes.size(); ++n) {
            transport_->bind(nodeEndpoint(r, n),
                             [this, r, n](const net::Message& m) {
                                 onNodeMessage(r, n, m);
                             });
        }
    }
}

void
BudgetTree::onRootMessage(const net::Message& message)
{
    const size_t r = size_t(message.rack);
    if (message.rack < 0 || r >= racks_.size())
        return;
    switch (message.kind) {
      case net::MsgKind::kDemandReport: {
        if (message.seq <= root_.reportSeqSeen[r])
            return;
        root_.reportSeqSeen[r] = message.seq;
        root_.demandWatts[r] = message.valueWatts;
        root_.demandTimeSec[r] = message.timeSec;
        return;
      }
      case net::MsgKind::kRackDark:
      case net::MsgKind::kRackBright: {
        // Periodic idempotent liveness announcements; value carries the
        // rack's live population so the root's floors/ceilings track
        // membership without per-node forwarding.
        if (message.seq <= root_.memberSeqSeen[r])
            return;
        root_.memberSeqSeen[r] = message.seq;
        root_.onlinePop[r] = size_t(message.valueWatts + 0.5);
        const bool online = message.kind == net::MsgKind::kRackBright;
        if (racks_[r]->online != online) {
            racks_[r]->online = online;
            rootLivenessChanged_ = true;
            if (online)
                rejoinedRacks_.push_back(r);
            else
                racks_[r]->grantWatts = 0.0;  // dark rack returns its grant
        }
        return;
      }
      default:
        return;
    }
}

void
BudgetTree::onRackMessage(size_t rackIndex, const net::Message& message)
{
    RackAgent& agent = rackAgents_[rackIndex];
    switch (message.kind) {
      case net::MsgKind::kCapGrant: {
        // From the root: a new grant view for this rack.
        if (message.seq <= agent.grantSeqSeen)
            return;
        agent.grantSeqSeen = message.seq;
        agent.grantViewWatts = message.valueWatts;
        agent.haveGrant = true;
        agent.grantChanged = true;
        return;
      }
      case net::MsgKind::kDemandReport: {
        const size_t n = size_t(message.node);
        if (message.node < 0 || n >= agent.demandSeqSeen.size())
            return;
        if (message.seq <= agent.demandSeqSeen[n])
            return;
        agent.demandSeqSeen[n] = message.seq;
        agent.demandWatts[n] = message.valueWatts;
        agent.demandTimeSec[n] = message.timeSec;
        return;
      }
      case net::MsgKind::kNodeLeave: {
        const size_t n = size_t(message.node);
        if (message.node < 0 || n >= agent.memberOnline.size())
            return;
        if (message.seq <= agent.memberSeqSeen[n])
            return;
        agent.memberSeqSeen[n] = message.seq;
        if (!agent.memberOnline[n])
            return;  // steady-state re-announcement
        agent.memberOnline[n] = false;
        agent.grantedCapWatts[n] = 0.0;
        --agent.onlineMembers;
        agent.popChanged = true;
        ++lossEvents_;
        metrics_.addCounter("cluster.node_loss");
        trace::emit(trace_, now_, trace::EventKind::kNodeLoss,
                    message.valueWatts, 0.0, int32_t(rackIndex),
                    int32_t(n));
        return;
      }
      case net::MsgKind::kNodeJoin: {
        const size_t n = size_t(message.node);
        if (message.node < 0 || n >= agent.memberOnline.size())
            return;
        if (message.seq <= agent.memberSeqSeen[n])
            return;
        agent.memberSeqSeen[n] = message.seq;
        if (agent.memberOnline[n])
            return;  // steady-state re-announcement
        agent.memberOnline[n] = true;
        ++agent.onlineMembers;
        agent.popChanged = true;
        ++rejoinEvents_;
        metrics_.addCounter("cluster.node_rejoins");
        agent.rejoined.push_back(n);
        return;
      }
      default:
        return;
    }
}

void
BudgetTree::onNodeMessage(size_t rackIndex, size_t nodeIndex,
                          const net::Message& message)
{
    if (message.kind != net::MsgKind::kCapGrant)
        return;
    NodeAgent& agent = nodeAgents_[rackIndex][nodeIndex];
    if (message.seq <= agent.appliedGrantSeq)
        return;
    agent.appliedGrantSeq = message.seq;
    Node& node = *racks_[rackIndex]->nodes[nodeIndex];
    if (!node.online || node.failed)
        return;
    // The node-side safety envelope: whatever the network delivered, the
    // enforced cap never leaves [floor, TDP]. The leaf enforces it on its
    // governor AND its RAPL firmware together (FullStackLeaf) or on its
    // response table (SurrogateLeaf).
    const double cap = std::clamp(message.valueWatts,
                                  options_.minNodeCapWatts,
                                  options_.nodeTdpWatts);
    node.capWatts = cap;
    node.leaf->applyCap(cap);
    agent.provisioned = true;
}

// ---------------------------------------------------------------------------
// Node-agent actions.
// ---------------------------------------------------------------------------

void
BudgetTree::nodeAnnounce(size_t rackIndex, size_t nodeIndex)
{
    Node& node = *racks_[rackIndex]->nodes[nodeIndex];
    NodeAgent& agent = nodeAgents_[rackIndex][nodeIndex];
    // A platform that threw during a step is isolated for good; scheduled
    // node-loss windows end and the node rejoins.
    const bool lost =
        node.failed ||
        (schedule_ != nullptr &&
         schedule_->anyActive(faults::FaultKind::kNodeLoss, node.name,
                              now_));
    double value = node.capWatts;
    if (lost && node.online) {
        // Leave announcement carries the watts the leaver returns.
        node.online = false;
        node.capWatts = 0.0;
    } else if (!lost && !node.online) {
        node.online = true;
        value = 0.0;
    }
    // Announce current state EVERY round, not just on transitions: the
    // rack applies announcements idempotently, so a dropped leave/join
    // converges at the next round instead of diverging forever.
    net::Message m;
    m.kind = node.online ? net::MsgKind::kNodeJoin
                         : net::MsgKind::kNodeLeave;
    m.seq = ++agent.memberSeqOut;
    m.rack = int32_t(rackIndex);
    m.node = int32_t(nodeIndex);
    m.timeSec = now_;
    m.valueWatts = value;
    transport_->send(nodeEndpoint(rackIndex, nodeIndex),
                     rackEndpoint(rackIndex), m, now_);
}

void
BudgetTree::nodeReport(size_t rackIndex, size_t nodeIndex)
{
    Node& node = *racks_[rackIndex]->nodes[nodeIndex];
    if (!node.online || node.failed)
        return;
    // The meter channel (readPower) is what a real cluster manager sees:
    // noisy and fault-prone, which is why the policy's implausible-reading
    // guard exists. Exactly one read per live node per period, in fixed
    // rack-major order, after the stepping barrier -- the cross-node half
    // of the determinism argument. The read happens even when hysteresis
    // then suppresses the send: the delta gate needs the sample, and a
    // full-stack meter's RNG stream must advance identically whether or
    // not the report goes out.
    NodeAgent& agent = nodeAgents_[rackIndex][nodeIndex];
    const double power = node.leaf->readPower();
    if (options_.hysteresisWatts > 0.0) {
        // Heartbeat at half the staleness horizon: suppression must never
        // age a live, quiescent node into the stale-report guard.
        const double refreshSec = 0.5 * options_.demandStaleSec;
        const bool heartbeatDue =
            agent.lastReportSec < 0.0 ||
            now_ - agent.lastReportSec >= refreshSec - 1e-9;
        if (!heartbeatDue &&
            std::abs(power - agent.lastReportWatts) <=
                options_.hysteresisWatts) {
            ++reportsSuppressed_;
            return;
        }
    }
    agent.lastReportWatts = power;
    agent.lastReportSec = now_;
    net::Message m;
    m.kind = net::MsgKind::kDemandReport;
    m.seq = ++agent.reportSeqOut;
    m.rack = int32_t(rackIndex);
    m.node = int32_t(nodeIndex);
    m.timeSec = now_;
    m.valueWatts = power;
    transport_->send(nodeEndpoint(rackIndex, nodeIndex),
                     rackEndpoint(rackIndex), m, now_);
}

// ---------------------------------------------------------------------------
// Rack-agent actions.
// ---------------------------------------------------------------------------

void
BudgetTree::fillRackPool(size_t rackIndex)
{
    // In-place pack of the agent's member view into its persistent SoA
    // pool: the same values rackAgentChildren() builds, without the
    // per-call ChildBudget allocation -- at 6400 racks every period, the
    // difference is the control plane's allocation rate.
    RackAgent& agent = rackAgents_[rackIndex];
    BudgetPool& pool = agent.pool;
    const size_t n = agent.memberOnline.size();
    for (size_t i = 0; i < n; ++i) {
        pool.capWatts[i] = agent.grantedCapWatts[i];
        pool.powerWatts[i] = 0.0;
        pool.maxCapWatts[i] = options_.nodeTdpWatts;
        pool.minShareWatts[i] = options_.minNodeCapWatts;
        pool.online[i] = agent.memberOnline[i] ? 1 : 0;
    }
}

void
BudgetTree::rackAnnounceUp(size_t rackIndex)
{
    RackAgent& agent = rackAgents_[rackIndex];
    net::Message m;
    m.kind = agent.onlineMembers > 0 ? net::MsgKind::kRackBright
                                     : net::MsgKind::kRackDark;
    m.seq = ++agent.upMemberSeqOut;
    m.rack = int32_t(rackIndex);
    m.timeSec = now_;
    m.valueWatts = double(agent.onlineMembers);
    transport_->send(rackEndpoint(rackIndex), kRootEndpoint, m, now_);
}

void
BudgetTree::rackRedivide(size_t rackIndex)
{
    // Re-divide the delivered grant: survivors keep relative shares,
    // rejoiners get an even share, floors and ceilings re-imposed.
    RackAgent& agent = rackAgents_[rackIndex];
    fillRackPool(rackIndex);
    reshareBudgets(agent.pool,
                   agent.haveGrant ? agent.grantViewWatts : 0.0,
                   agent.rejoined);
    for (size_t i = 0; i < agent.grantedCapWatts.size(); ++i)
        agent.grantedCapWatts[i] = agent.pool.capWatts[i];
    for (size_t i : agent.rejoined) {
        if (agent.memberOnline[i])
            trace::emit(trace_, now_, trace::EventKind::kNodeRejoin,
                        agent.grantedCapWatts[i], 0.0, int32_t(rackIndex),
                        int32_t(i));
    }
    agent.rejoined.clear();
    agent.popChanged = false;
    agent.grantChanged = false;
    agent.dirty = true;
}

void
BudgetTree::rackRebalanceLocal(size_t rackIndex)
{
    RackAgent& agent = rackAgents_[rackIndex];
    if (agent.onlineMembers == 0)
        return;
    fillRackPool(rackIndex);
    BudgetPool& pool = agent.pool;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            pool.powerWatts[i] =
                agedDemand(agent.demandWatts[i], agent.demandTimeSec[i]);
    }
    if (options_.hysteresisWatts > 0.0) {
        // Dirty-subtree gate: this rack's division is recomputed only
        // when some member's demand moved past the band since the
        // division the rack last acted on. Membership changes bypass the
        // gate entirely (they re-divide in settleRacks).
        double maxDelta = 0.0;
        for (size_t i = 0; i < pool.size(); ++i) {
            if (pool.online[i])
                maxDelta = std::max(
                    maxDelta,
                    std::abs(pool.powerWatts[i] - agent.lastActedDemand[i]));
        }
        if (maxDelta <= options_.hysteresisWatts) {
            ++rebalancesSuppressed_;
            return;
        }
        for (size_t i = 0; i < pool.size(); ++i)
            agent.lastActedDemand[i] =
                pool.online[i] ? pool.powerWatts[i] : 0.0;
    }
    const double moved = rebalanceBudgets(pool, policy());
    if (moved <= 0.0)
        return;
    for (size_t i = 0; i < agent.grantedCapWatts.size(); ++i)
        agent.grantedCapWatts[i] = pool.capWatts[i];
    agent.dirty = true;
    ++shifts_;
    metrics_.addCounter("cluster.rebalances");
    double rackPower = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
        if (pool.online[i])
            rackPower += pool.powerWatts[i];
    }
    trace::emit(trace_, now_, trace::EventKind::kRackRebalance,
                agent.haveGrant ? agent.grantViewWatts : 0.0, rackPower,
                int32_t(rackIndex), int32_t(moved));
}

void
BudgetTree::rackReportUp(size_t rackIndex)
{
    RackAgent& agent = rackAgents_[rackIndex];
    if (agent.onlineMembers == 0)
        return;
    double sum = 0.0;
    for (size_t i = 0; i < agent.memberOnline.size(); ++i) {
        if (agent.memberOnline[i])
            sum += agedDemand(agent.demandWatts[i], agent.demandTimeSec[i]);
    }
    if (options_.hysteresisWatts > 0.0) {
        // Same delta-or-heartbeat gate as the node reports, one level up:
        // a quiescent rack subtree publishes nothing.
        const double refreshSec = 0.5 * options_.demandStaleSec;
        const bool heartbeatDue =
            agent.lastUpSec < 0.0 ||
            now_ - agent.lastUpSec >= refreshSec - 1e-9;
        if (!heartbeatDue &&
            std::abs(sum - agent.lastUpWatts) <= options_.hysteresisWatts) {
            ++reportsSuppressed_;
            return;
        }
        agent.lastUpWatts = sum;
        agent.lastUpSec = now_;
    }
    net::Message m;
    m.kind = net::MsgKind::kDemandReport;
    m.seq = ++agent.upReportSeqOut;
    m.rack = int32_t(rackIndex);
    m.timeSec = now_;
    m.valueWatts = sum;
    transport_->send(rackEndpoint(rackIndex), kRootEndpoint, m, now_);
}

void
BudgetTree::rackSendCaps(size_t rackIndex)
{
    // One batched round of grant messages per rack and per round, no
    // matter how many stages (membership re-divide, local rebalance, root
    // reshare) touched the division -- each member's governor sees at most
    // one cap change per period.
    RackAgent& agent = rackAgents_[rackIndex];
    for (size_t n = 0; n < agent.memberOnline.size(); ++n) {
        if (!agent.memberOnline[n])
            continue;
        net::Message m;
        m.kind = net::MsgKind::kCapGrant;
        m.seq = ++agent.grantSeqOut[n];
        m.rack = int32_t(rackIndex);
        m.node = int32_t(n);
        m.timeSec = now_;
        m.valueWatts = agent.grantedCapWatts[n];
        transport_->send(rackEndpoint(rackIndex), nodeEndpoint(rackIndex, n),
                         m, now_);
    }
    agent.dirty = false;
}

// ---------------------------------------------------------------------------
// Root-controller actions.
// ---------------------------------------------------------------------------

void
BudgetTree::fillRootPool()
{
    // In-place pack of the root's rack view into its persistent SoA pool
    // (the same values rootChildren() builds, allocation-free).
    BudgetPool& pool = root_.pool;
    for (size_t r = 0; r < racks_.size(); ++r) {
        const size_t pop = root_.onlinePop[r];
        pool.capWatts[r] = racks_[r]->grantWatts;
        pool.powerWatts[r] = 0.0;
        pool.maxCapWatts[r] = double(pop) * options_.nodeTdpWatts;
        pool.minShareWatts[r] = double(pop) * options_.minNodeCapWatts;
        pool.online[r] = (racks_[r]->online && pop > 0) ? 1 : 0;
    }
}

void
BudgetTree::rootMembershipAct()
{
    // A rack going dark or coming back moves watts *between* racks, so
    // the root reshares grants on announced liveness transitions. It also
    // reshares when the announced populations have drifted the
    // outstanding grants out of conservation -- a rack that shrank (but
    // stayed bright) can be holding watts its surviving ceilings cannot
    // absorb, and one that grew can absorb watts that were unplaceable
    // before; either way the proportional reshare re-pins sum(grants) to
    // what the surviving populations can actually take. In event-driven
    // mode this conservation trigger doubles as the safety net under the
    // suppressed paths: any stranded watts re-pin the grants here.
    fillRootPool();
    BudgetPool& pool = root_.pool;
    const double tol = 1e-7 * options_.globalBudgetWatts + 1e-9;
    if (!rootLivenessChanged_ &&
        conservationError(pool, options_.globalBudgetWatts) <= tol)
        return;
    rootLivenessChanged_ = false;
    reshareBudgets(pool, options_.globalBudgetWatts, rejoinedRacks_);
    rejoinedRacks_.clear();
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (std::abs(pool.capWatts[r] - racks_[r]->grantWatts) <= 1e-12)
            continue;
        trace::emit(trace_, now_, trace::EventKind::kRackGrant,
                    pool.capWatts[r], racks_[r]->grantWatts, int32_t(r));
        racks_[r]->grantWatts = pool.capWatts[r];
        net::Message m;
        m.kind = net::MsgKind::kCapGrant;
        m.seq = ++root_.grantSeqOut[r];
        m.rack = int32_t(r);
        m.timeSec = now_;
        m.valueWatts = racks_[r]->grantWatts;
        transport_->send(kRootEndpoint, rackEndpoint(r), m, now_);
    }
}

void
BudgetTree::rootRebalance()
{
    // The same policy over racks, fed by the racks' aggregate reports.
    fillRootPool();
    BudgetPool& pool = root_.pool;
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (pool.online[r])
            pool.powerWatts[r] =
                agedDemand(root_.demandWatts[r], root_.demandTimeSec[r]);
    }
    if (options_.hysteresisWatts > 0.0) {
        // The root recomputes the cross-rack division only when some rack
        // subtree is dirty -- its aggregate demand moved past the band
        // since the division the root last acted on. The rebalance itself
        // then spans all online racks: a newly hungry rack must be able
        // to pull watts from a quiescent donor's standing headroom.
        bool anyDirty = false;
        for (size_t r = 0; r < racks_.size(); ++r) {
            if (pool.online[r] &&
                std::abs(pool.powerWatts[r] - root_.lastActedDemand[r]) >
                    options_.hysteresisWatts) {
                anyDirty = true;
                break;
            }
        }
        if (!anyDirty) {
            ++rebalancesSuppressed_;
            return;
        }
        for (size_t r = 0; r < racks_.size(); ++r)
            root_.lastActedDemand[r] =
                pool.online[r] ? pool.powerWatts[r] : 0.0;
    }
    const double moved = rebalanceBudgets(pool, policy());
    if (moved <= 0.0)
        return;
    ++shifts_;
    metrics_.addCounter("cluster.rebalances");
    for (size_t r = 0; r < racks_.size(); ++r) {
        if (!racks_[r]->online ||
            std::abs(pool.capWatts[r] - racks_[r]->grantWatts) <= 1e-12)
            continue;
        trace::emit(trace_, now_, trace::EventKind::kRackGrant,
                    pool.capWatts[r], racks_[r]->grantWatts, int32_t(r));
        racks_[r]->grantWatts = pool.capWatts[r];
        net::Message m;
        m.kind = net::MsgKind::kCapGrant;
        m.seq = ++root_.grantSeqOut[r];
        m.rack = int32_t(r);
        m.timeSec = now_;
        m.valueWatts = racks_[r]->grantWatts;
        transport_->send(kRootEndpoint, rackEndpoint(r), m, now_);
    }
    rootRebalanced_ = true;
}

// ---------------------------------------------------------------------------
// Per-period phases.
// ---------------------------------------------------------------------------

void
BudgetTree::tracePartitions()
{
    if (plane_ == nullptr)
        return;
    for (size_t r = 0; r < racks_.size(); ++r) {
        const bool active = plane_->partitionActive(int32_t(r), now_);
        if (active == bool(rackPartitioned_[r]))
            continue;
        rackPartitioned_[r] = active;
        trace::emit(trace_, now_, trace::EventKind::kPartition, 0.0, 0.0,
                    int32_t(r), active ? 1 : 0);
        if (active)
            metrics_.addCounter("cluster.partitions");
    }
}

void
BudgetTree::settleRacks()
{
    // Fold pending membership/grant changes into node caps and send them.
    // One iteration suffices with faults off; delayed stragglers delivered
    // mid-settle can re-flag a rack, so loop (bounded) until quiescent --
    // this is what keeps the per-view conservation gate closed at the end
    // of every phase no matter what the network reordered.
    for (int round = 0; round < 4; ++round) {
        bool acted = false;
        for (size_t r = 0; r < racks_.size(); ++r) {
            RackAgent& agent = rackAgents_[r];
            if (!agent.popChanged && !agent.grantChanged)
                continue;
            if (agent.onlineMembers > 0) {
                rackRedivide(r);
                acted = true;
            } else {
                // Dark rack: nothing to divide; caps already zeroed as
                // the members left.
                agent.popChanged = false;
                agent.grantChanged = false;
                agent.rejoined.clear();
            }
        }
        for (size_t r = 0; r < racks_.size(); ++r) {
            if (rackAgents_[r].dirty) {
                rackSendCaps(r);
                acted = true;
            }
        }
        if (!acted)
            break;
        transport_->deliver(now_);
    }
}

void
BudgetTree::membershipPhase()
{
    tracePartitions();
    transport_->deliver(now_);  // delayed stragglers from prior rounds
    for (size_t r = 0; r < racks_.size(); ++r) {
        for (size_t n = 0; n < racks_[r]->nodes.size(); ++n)
            nodeAnnounce(r, n);
    }
    transport_->deliver(now_);  // racks fold announcements into members
    for (size_t r = 0; r < racks_.size(); ++r)
        rackAnnounceUp(r);
    transport_->deliver(now_);  // root folds rack liveness
    rootMembershipAct();
    transport_->deliver(now_);  // racks receive reshared grants
    settleRacks();
    assert(budgetErrorWatts() <
           1e-6 * options_.globalBudgetWatts + 1e-9);
}

void
BudgetTree::stepNodes()
{
    // Advance every live node platform to now_ on the bounded pool. Nodes
    // share no mutable state (each owns its platform, machine, governor,
    // and RNG streams), so serial and parallel stepping are byte-identical
    // -- the SweepRunner determinism argument at cluster scale. A node
    // whose platform throws is isolated (failed, removed at the next
    // membership round) instead of aborting the cluster.
    std::vector<Node*> live;
    live.reserve(totalNodes());
    for (auto& rack : racks_) {
        for (auto& node : rack->nodes) {
            if (node->online && !node->failed)
                live.push_back(node.get());
        }
    }
    const double target = now_;
    const double start = wallNow();
    const std::vector<std::string> errors = runner_.forEach(
        live.size(), [&](size_t i) { live[i]->leaf->stepTo(target); });
    stepWallSec_ += wallNow() - start;
    for (size_t i = 0; i < errors.size(); ++i) {
        if (errors[i].empty())
            continue;
        live[i]->failed = true;
        ++nodeFailures_;
        metrics_.addCounter("cluster.node_failures");
    }
}

void
BudgetTree::reportPhase()
{
    // Calibration first: each registered full-stack sample folds its
    // settled ground-truth response at its enforced cap into its
    // surrogate cell's table. Ground truth draws no RNG and the sources
    // run in registration order on the control thread, so calibration is
    // deterministic and digest-neutral for full-stack nodes.
    for (const CalibrationSource& src : calibration_) {
        const Node& node = *racks_[src.rack]->nodes[src.node];
        if (!node.online || node.failed || node.capWatts <= 0.0)
            continue;
        src.model->observe(node.capWatts, node.leaf->truePower(),
                           node.leaf->normalizedPerf());
    }
    for (size_t r = 0; r < racks_.size(); ++r) {
        for (size_t n = 0; n < racks_[r]->nodes.size(); ++n)
            nodeReport(r, n);
    }
    transport_->deliver(now_);  // racks record node demand
}

void
BudgetTree::rebalancePhase()
{
    // Leaf level first: each rack shifts watts among its own nodes under
    // its delivered grant, then reports its aggregate up.
    for (size_t r = 0; r < racks_.size(); ++r)
        rackRebalanceLocal(r);
    for (size_t r = 0; r < racks_.size(); ++r)
        rackReportUp(r);
    transport_->deliver(now_);  // root records rack demand
    rootRebalance();
    transport_->deliver(now_);  // racks receive shifted grants
    settleRacks();
    if (rootRebalanced_) {
        // Emitted after the settle so the totals reflect the re-divided,
        // applied caps (as they always have).
        rootRebalanced_ = false;
        trace::emit(trace_, now_, trace::EventKind::kRebalance,
                    totalCapWatts(), totalPowerWatts(), shifts_);
    }
    assert(budgetErrorWatts() <
           1e-6 * options_.globalBudgetWatts + 1e-9);
}

void
BudgetTree::refreshInvariant()
{
    const double error = budgetErrorWatts();
    metrics_.setGauge("cluster.budget_error", error);
    size_t racksOnline = 0;
    size_t nodesOnline = 0;
    for (const auto& rack : racks_) {
        if (rack->online)
            ++racksOnline;
        for (const auto& node : rack->nodes) {
            if (node->online)
                ++nodesOnline;
        }
    }
    metrics_.setGauge("cluster.racks", double(racksOnline));
    metrics_.setGauge("cluster.nodes_online", double(nodesOnline));
    metrics_.setGauge("cluster.msgs_sent", double(transport_->stats().sent));
    metrics_.setGauge("cluster.msgs_dropped",
                      double(transport_->stats().dropped));
    assert(error < 1e-6 * options_.globalBudgetWatts + 1e-9);
}

void
BudgetTree::run(double untilSec)
{
    if (schedule_ != nullptr) {
        std::vector<std::string> nodeNames;
        std::vector<std::string> rackNames;
        for (const auto& rack : racks_) {
            rackNames.push_back(rack->name);
            for (const auto& node : rack->nodes)
                nodeNames.push_back(node->name);
        }
        faults::validateClusterTargets(*schedule_, nodeNames, rackNames);
    }
    if (!started_) {
        started_ = true;
        root_.grantSeqOut.assign(racks_.size(), 0);
        root_.memberSeqSeen.assign(racks_.size(), 0);
        root_.reportSeqSeen.assign(racks_.size(), 0);
        root_.demandWatts.assign(racks_.size(), 0.0);
        root_.demandTimeSec.assign(racks_.size(), -1.0);
        root_.onlinePop.resize(racks_.size());
        root_.pool.resize(racks_.size());
        root_.lastActedDemand.assign(racks_.size(), 0.0);
        rackAgents_.assign(racks_.size(), RackAgent{});
        nodeAgents_.resize(racks_.size());
        for (size_t r = 0; r < racks_.size(); ++r) {
            const size_t n = racks_[r]->nodes.size();
            root_.onlinePop[r] = n;
            RackAgent& agent = rackAgents_[r];
            agent.onlineMembers = n;
            agent.memberOnline.assign(n, true);
            agent.grantedCapWatts.assign(n, 0.0);
            agent.grantSeqOut.assign(n, 0);
            agent.memberSeqSeen.assign(n, 0);
            agent.demandSeqSeen.assign(n, 0);
            agent.demandWatts.assign(n, 0.0);
            agent.demandTimeSec.assign(n, -1.0);
            agent.pool.resize(n);
            agent.lastActedDemand.assign(n, 0.0);
            nodeAgents_[r].assign(n, NodeAgent{});
        }
        rackPartitioned_.assign(racks_.size(), false);
        // The fault plane needs the topology names, so it is built here
        // rather than in the constructor. Message faults therefore require
        // the schedule to be attached before the first run().
        net::MessageFaultPlane::Topology topo;
        for (const auto& rack : racks_) {
            topo.rackNames.push_back(rack->name);
            topo.nodeNames.emplace_back();
            for (const auto& node : rack->nodes)
                topo.nodeNames.back().push_back(node->name);
        }
        plane_ = std::make_unique<net::MessageFaultPlane>(
            schedule_, options_.msgFaultSeed, std::move(topo));
        transport_->setFaultPlane(plane_.get());
        bindEndpoints();
        // Initial division: even shares root -> racks, then rack -> nodes
        // (the reshare in settleRacks over all-zero caps IS the even
        // split), delivered to every node's governor AND its RAPL firmware
        // before the first period -- no node runs uncapped waiting for the
        // first rebalance. If the network eats a first grant, the node
        // stays unprovisioned (capWatts 0) until a later grant lands.
        std::vector<ChildBudget> state = rootChildren();
        evenShares(state, options_.globalBudgetWatts);
        for (size_t r = 0; r < racks_.size(); ++r) {
            racks_[r]->grantWatts = state[r].capWatts;
            net::Message m;
            m.kind = net::MsgKind::kCapGrant;
            m.seq = ++root_.grantSeqOut[r];
            m.rack = int32_t(r);
            m.timeSec = now_;
            m.valueWatts = racks_[r]->grantWatts;
            transport_->send(kRootEndpoint, rackEndpoint(r), m, now_);
        }
        transport_->deliver(now_);
        settleRacks();
        refreshInvariant();
    }
    while (now_ < untilSec - 1e-9) {
        double mark = wallNow();
        membershipPhase();
        double control = wallNow() - mark;
        const double step = std::min(options_.periodSec, untilSec - now_);
        now_ += step;
        const double stepBefore = stepWallSec_;
        stepNodes();  // times itself into stepWallSec_
        mark = wallNow();
        reportPhase();
        rebalancePhase();
        refreshInvariant();
        ++periods_;
        control += wallNow() - mark;
        controlWallSec_ += control;
        // One sample per period, so steady state is separable from the
        // warm-up transient (bench/cluster_scale's median/p95 latency).
        controlWallPerPeriod_.push_back(control);
        stepWallPerPeriod_.push_back(stepWallSec_ - stepBefore);
    }
}

uint64_t
BudgetTree::stateDigest() const
{
    uint64_t hash = kFnvOffset;
    fnvMixDouble(hash, now_);
    fnvMix(hash, uint64_t(shifts_));
    fnvMix(hash, uint64_t(lossEvents_));
    fnvMix(hash, uint64_t(rejoinEvents_));
    fnvMix(hash, uint64_t(nodeFailures_));
    fnvMix(hash, uint64_t(periods_));
    for (const auto& rack : racks_) {
        fnvMixDouble(hash, rack->grantWatts);
        fnvMix(hash, rack->online ? 1 : 0);
        for (const auto& node : rack->nodes) {
            fnvMixDouble(hash, node->capWatts);
            fnvMix(hash, (node->online ? 1u : 0u) |
                             (node->failed ? 2u : 0u));
            // Each leaf mixes its own deterministic state: a full stack
            // mixes true power, per-app rates, and churn bookkeeping
            // (byte-compatible with the pre-seam digest); a surrogate
            // mixes its lagged response state.
            node->leaf->mixDigest(hash);
        }
    }
    return hash;
}

}  // namespace pupil::cluster
