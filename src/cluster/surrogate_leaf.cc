#include "surrogate_leaf.h"

#include <algorithm>
#include <cmath>

namespace pupil::cluster {

// ---------------------------------------------------------------------------
// SurrogateModel
// ---------------------------------------------------------------------------

SurrogateModel::SurrogateModel(const Options& options) : options_(options)
{
    if (options_.bins < 2)
        options_.bins = 2;
    if (options_.maxCapWatts <= options_.minCapWatts)
        options_.maxCapWatts = options_.minCapWatts + 1.0;
    bins_.resize(size_t(options_.bins));
}

double
SurrogateModel::binCap(size_t i) const
{
    const double span = options_.maxCapWatts - options_.minCapWatts;
    return options_.minCapWatts +
           span * double(i) / double(options_.bins - 1);
}

SurrogateModel::Response
SurrogateModel::binResponse(size_t i) const
{
    if (bins_[i].weight > 0.0)
        return Response{bins_[i].powerWatts, bins_[i].perf};
    return prior(binCap(i));
}

void
SurrogateModel::observe(double capWatts, double powerWatts, double perf)
{
    const double span = options_.maxCapWatts - options_.minCapWatts;
    const double u =
        std::clamp((capWatts - options_.minCapWatts) / span, 0.0, 1.0);
    const size_t i = size_t(std::lround(u * double(options_.bins - 1)));
    Bin& bin = bins_[i];
    ++samples_;
    if (bin.weight <= 0.0) {
        bin.powerWatts = powerWatts;
        bin.perf = perf;
        bin.weight = 1.0;
        return;
    }
    const bool drifted =
        std::abs(powerWatts - bin.powerWatts) > options_.driftPowerWatts ||
        std::abs(perf - bin.perf) > options_.driftPerf;
    if (drifted) {
        // The regime changed (workload phase, governor swap): the bin's
        // history describes a machine that no longer exists. Re-seed.
        bin.powerWatts = powerWatts;
        bin.perf = perf;
        bin.weight = 1.0;
        ++recalibrations_;
        return;
    }
    const double a = options_.learningRate;
    bin.powerWatts += a * (powerWatts - bin.powerWatts);
    bin.perf += a * (perf - bin.perf);
    bin.weight = std::min(bin.weight + 1.0, 64.0);
}

SurrogateModel::Response
SurrogateModel::predict(double capWatts) const
{
    const double span = options_.maxCapWatts - options_.minCapWatts;
    const double u =
        std::clamp((capWatts - options_.minCapWatts) / span, 0.0, 1.0);
    const double x = u * double(options_.bins - 1);
    const size_t lo = size_t(x);
    const size_t hi = std::min(lo + 1, bins_.size() - 1);
    const double t = x - double(lo);
    // With no observation on either side, answer from the analytic prior
    // at the cap itself -- not a chord between grid-point priors -- so
    // predict() equals prior() exactly until the first sample lands.
    if (bins_[lo].weight <= 0.0 && bins_[hi].weight <= 0.0)
        return prior(capWatts);
    const Response a = binResponse(lo);
    const Response b = binResponse(hi);
    return Response{a.powerWatts + t * (b.powerWatts - a.powerWatts),
                    a.perf + t * (b.perf - a.perf)};
}

SurrogateModel::Response
SurrogateModel::prior(double capWatts) const
{
    // Concave ramp from idle to peak: marginal watts buy less performance
    // near the top of the cap range (the paper's diminishing-returns
    // power/perf curves), with power never exceeding 95% of the cap (a
    // capped machine settles slightly under its limit).
    const double span = options_.maxCapWatts - options_.minCapWatts;
    const double u =
        std::clamp((capWatts - options_.minCapWatts) / span, 0.0, 1.0);
    const double resp = u * (2.0 - u);
    const double power = std::min(
        0.95 * capWatts,
        options_.priorIdleWatts +
            (options_.priorPeakWatts - options_.priorIdleWatts) * resp);
    return Response{power, options_.priorPeakPerf * resp};
}

size_t
SurrogateModel::calibratedBins() const
{
    size_t count = 0;
    for (const Bin& bin : bins_) {
        if (bin.weight > 0.0)
            ++count;
    }
    return count;
}

// ---------------------------------------------------------------------------
// SurrogateLibrary
// ---------------------------------------------------------------------------

SurrogateModel&
SurrogateLibrary::cell(const std::string& app, int governorId)
{
    auto [it, inserted] =
        cells_.try_emplace({app, governorId}, defaults_);
    return it->second;
}

const SurrogateModel*
SurrogateLibrary::findCell(const std::string& app, int governorId) const
{
    const auto it = cells_.find({app, governorId});
    return it == cells_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// SurrogateLeaf
// ---------------------------------------------------------------------------

SurrogateLeaf::SurrogateLeaf(const SurrogateModel* model,
                             const Options& options, uint64_t seed)
    : model_(model),
      options_(options),
      rng_(seed),
      utilization_(options.utilization),
      powerWatts_(options.idleFloorWatts)
{
}

SurrogateModel::Response
SurrogateLeaf::target() const
{
    // An unprovisioned leaf (cap 0) runs uncapped: respond as at the top
    // of the calibrated range.
    const double cap =
        capWatts_ > 0.0 ? capWatts_ : model_->options().maxCapWatts;
    SurrogateModel::Response resp = model_->predict(cap);
    resp.powerWatts = std::max(options_.idleFloorWatts,
                               resp.powerWatts * utilization_);
    resp.perf *= utilization_;
    return resp;
}

void
SurrogateLeaf::stepTo(double untilSec)
{
    const double dt = untilSec - now_;
    if (dt <= 0.0)
        return;
    now_ = untilSec;
    const SurrogateModel::Response want = target();
    const double alpha =
        options_.responseTauSec > 0.0
            ? 1.0 - std::exp(-dt / options_.responseTauSec)
            : 1.0;
    powerWatts_ += alpha * (want.powerWatts - powerWatts_);
    perf_ += alpha * (want.perf - perf_);
    // A cap is a hard limit the firmware enforces within the period even
    // while the lag is still settling.
    if (capWatts_ > 0.0 && powerWatts_ > capWatts_)
        powerWatts_ = capWatts_;
}

double
SurrogateLeaf::readPower()
{
    if (options_.meterJitterFraction <= 0.0)
        return powerWatts_;
    // Deterministic per-leaf jitter stream, so noisy-meter studies stay
    // reproducible and digest-comparable across thread counts.
    const double noise =
        1.0 + options_.meterJitterFraction * (2.0 * rng_.uniform() - 1.0);
    return powerWatts_ * noise;
}

void
SurrogateLeaf::setUtilization(double utilization)
{
    utilization_ = std::max(0.0, utilization);
}

void
SurrogateLeaf::mixDigest(uint64_t& hash) const
{
    fnvMixDouble(hash, capWatts_);
    fnvMixDouble(hash, powerWatts_);
    fnvMixDouble(hash, perf_);
    fnvMixDouble(hash, utilization_);
}

}  // namespace pupil::cluster
