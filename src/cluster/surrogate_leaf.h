#ifndef PUPIL_CLUSTER_SURROGATE_LEAF_H_
#define PUPIL_CLUSTER_SURROGATE_LEAF_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/leaf_model.h"
#include "util/rng.h"

namespace pupil::cluster {

/**
 * A calibrated power/perf response table for one (application, governor)
 * cell: what a full Platform + governor + RAPL leaf settles to at a
 * given cap. The table is a uniform cap grid over [minCapWatts,
 * maxCapWatts]; each grid point holds an EWMA of observed (power, perf)
 * samples, and predictions interpolate linearly between grid points.
 *
 * Calibration protocol (DESIGN.md section 15): full-stack sample leaves
 * feed one observation per period through observe() -- the tree
 * piggybacks this on the demand-report phase, so calibration costs no
 * extra sensor reads and perturbs no RNG stream. Uncalibrated grid
 * points answer from a fixed analytic prior (capped concave ramp from
 * idle toward peak), so a surrogate-only tree is well-defined before the
 * first sample lands.
 *
 * Drift: when a new observation disagrees with an already-calibrated
 * grid point by more than the drift tolerances, the point's history is
 * discarded and re-seeded from the new sample (counted in
 * recalibrations()), so a workload or governor regime change re-converges
 * in one period per grid point instead of bleeding in at the EWMA rate.
 */
class SurrogateModel
{
  public:
    struct Options
    {
        double minCapWatts = 30.0;
        double maxCapWatts = 270.0;
        /** Grid points (>= 2); 13 = one point every 20 W at the defaults. */
        int bins = 13;
        /** EWMA weight of a consistent new sample. */
        double learningRate = 0.25;
        /** Power disagreement that declares a calibrated point stale. */
        double driftPowerWatts = 10.0;
        /** Normalized-perf disagreement that declares a point stale. */
        double driftPerf = 0.2;
        // Analytic prior for uncalibrated grid points.
        double priorIdleWatts = 35.0;
        double priorPeakWatts = 200.0;
        double priorPeakPerf = 1.0;
    };

    struct Response
    {
        double powerWatts = 0.0;
        double perf = 0.0;
    };

    SurrogateModel() : SurrogateModel(Options{}) {}
    explicit SurrogateModel(const Options& options);

    /** Feed one full-stack observation: leaf settled at @p capWatts was
     *  drawing @p powerWatts at normalized perf @p perf. */
    void observe(double capWatts, double powerWatts, double perf);

    /** Interpolated response at @p capWatts (prior where uncalibrated). */
    Response predict(double capWatts) const;

    /** The analytic prior alone (what predict() returns pre-calibration). */
    Response prior(double capWatts) const;

    const Options& options() const { return options_; }
    /** Observations folded in so far. */
    uint64_t samples() const { return samples_; }
    /** Drift-triggered grid-point resets. */
    uint64_t recalibrations() const { return recalibrations_; }
    /** Grid points holding at least one observation. */
    size_t calibratedBins() const;

  private:
    struct Bin
    {
        double powerWatts = 0.0;
        double perf = 0.0;
        /** 0 = uncalibrated (prior answers for this point). */
        double weight = 0.0;
    };

    double binCap(size_t i) const;
    Response binResponse(size_t i) const;

    Options options_;
    std::vector<Bin> bins_;
    uint64_t samples_ = 0;
    uint64_t recalibrations_ = 0;
};

/**
 * Keyed registry of response models: one SurrogateModel per
 * (application, governor) cell, created on first touch with the
 * library's default options. The BudgetTree owns one library; every
 * surrogate leaf of a cell shares the cell's model, and every full-stack
 * sample leaf of the cell calibrates it.
 */
class SurrogateLibrary
{
  public:
    SurrogateLibrary() = default;
    explicit SurrogateLibrary(const SurrogateModel::Options& defaults)
        : defaults_(defaults)
    {
    }

    /** The cell for (@p app, @p governorId), created if absent. */
    SurrogateModel& cell(const std::string& app, int governorId);

    /** The cell if it exists, else null. */
    const SurrogateModel* findCell(const std::string& app,
                                   int governorId) const;

    size_t cellCount() const { return cells_.size(); }

  private:
    SurrogateModel::Options defaults_;
    std::map<std::pair<std::string, int>, SurrogateModel> cells_;
};

/**
 * The cheap leaf: instead of stepping a full platform stack (~30 us of
 * scheduler solves, lag integration, and sensor draws per simulated
 * period), a surrogate leaf relaxes first-order toward its model cell's
 * predicted response at the currently enforced cap -- a handful of
 * flops, so stepping 50k leaves costs microseconds and the tree
 * simulates faster than real time. Demand churn enters through
 * setUtilization() (1.0 = the calibrated full-demand response); the
 * meter channel is clean by default, with optional seeded deterministic
 * jitter for noise-sensitivity studies.
 */
class SurrogateLeaf : public LeafModel
{
  public:
    struct Options
    {
        /** First-order time constant of the approach to the table
         *  response (mirrors the platform's power/perf lags). */
        double responseTauSec = 0.4;
        /** Demand scale in [0, 1+]; multiplies the cell's full-demand
         *  power/perf response. */
        double utilization = 1.0;
        /** Power draw of an idle (or unprovisioned, uncapped) leaf. */
        double idleFloorWatts = 8.0;
        /** Relative meter jitter on readPower (0 = clean channel). */
        double meterJitterFraction = 0.0;
    };

    SurrogateLeaf(const SurrogateModel* model, const Options& options,
                  uint64_t seed);

    // ----- LeafModel ------------------------------------------------------
    void stepTo(double untilSec) override;
    void applyCap(double watts) override { capWatts_ = watts; }
    double readPower() override;
    double truePower() const override { return powerWatts_; }
    double normalizedPerf() const override { return perf_; }
    void mixDigest(uint64_t& hash) const override;
    bool fullStack() const override { return false; }

    // ----- surrogate-specific --------------------------------------------
    /** Change the leaf's demand scale (takes effect from the next step). */
    void setUtilization(double utilization);
    double utilization() const { return utilization_; }
    double capWatts() const { return capWatts_; }
    const SurrogateModel* model() const { return model_; }

  private:
    /** Target (power, perf) for the current cap and utilization. */
    SurrogateModel::Response target() const;

    const SurrogateModel* model_;
    Options options_;
    util::Rng rng_;
    double capWatts_ = 0.0;  ///< 0 = unprovisioned: runs uncapped
    double utilization_;
    double powerWatts_;
    double perf_ = 0.0;
    double now_ = 0.0;
};

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_SURROGATE_LEAF_H_
