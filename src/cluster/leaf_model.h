#ifndef PUPIL_CLUSTER_LEAF_MODEL_H_
#define PUPIL_CLUSTER_LEAF_MODEL_H_

#include <cstdint>
#include <cstring>

#include "capping/governor.h"
#include "load/load_driver.h"
#include "rapl/rapl.h"
#include "sim/platform.h"

namespace pupil::cluster {

// FNV-1a over 64-bit words; doubles are hashed by bit pattern so two runs
// agree on a digest iff they agree on every byte of the state. Shared by
// BudgetTree::stateDigest() and the LeafModel implementations so a leaf
// owns the mixing of its own state.
inline constexpr uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline void
fnvMix(uint64_t& hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xffu;
        hash *= kFnvPrime;
    }
}

inline void
fnvMixDouble(uint64_t& hash, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    fnvMix(hash, bits);
}

/**
 * The per-node seam of the budget tree: everything the control plane
 * needs from a leaf, abstracted from how the leaf is simulated. A
 * FullStackLeaf runs the real sim::Platform + governor + RAPL stack (the
 * pre-seam behaviour, bit for bit); a SurrogateLeaf (surrogate_leaf.h)
 * steps a calibrated power/perf response table in O(1) so a 50k-node
 * tree simulates faster than real time. Swappable per node at addNode
 * time; the two kinds coexist in one tree, with sampled full-stack
 * leaves keeping the surrogates' shared calibration honest.
 */
class LeafModel
{
  public:
    virtual ~LeafModel() = default;

    /** Advance the leaf's own simulation to @p untilSec. Called on the
     *  stepping pool: implementations must not touch shared state. */
    virtual void stepTo(double untilSec) = 0;

    /** Enforce a delivered cap grant (governor AND firmware together). */
    virtual void applyCap(double watts) = 0;

    /** Sample the governor-visible meter channel once (the demand proxy
     *  reported up the tree; noisy and fault-prone on a full stack). */
    virtual double readPower() = 0;

    /** Ground-truth power (harness metrics, never the control input). */
    virtual double truePower() const = 0;

    /** Aggregate normalized performance (ground truth). */
    virtual double normalizedPerf() const = 0;

    /** Fold the leaf's deterministic state into @p hash (FNV-1a). */
    virtual void mixDigest(uint64_t& hash) const = 0;

    /** Whether this leaf runs the full Platform+governor+RAPL stack. */
    virtual bool fullStack() const = 0;
};

/**
 * The full-stack leaf: non-owning adapter over the Node's platform,
 * governor, RAPL firmware, and optional tenant-load driver. Every method
 * forwards to exactly the calls the tree made before the seam existed,
 * in the same order, so legacy-mode digests are pinned-golden identical.
 */
class FullStackLeaf : public LeafModel
{
  public:
    FullStackLeaf(sim::Platform* platform, capping::Governor* governor,
                  rapl::RaplController* rapl, load::LoadDriver* load)
        : platform_(platform), governor_(governor), rapl_(rapl), load_(load)
    {
    }

    void stepTo(double untilSec) override { platform_->run(untilSec); }

    void applyCap(double watts) override
    {
        // The governor AND the RAPL firmware get the new cap together, so
        // the hardware backstop is armed from the same period the grant
        // changes -- including for software-only node governors.
        governor_->setCap(watts);
        rapl_->setTotalCapEvenSplit(watts);
    }

    double readPower() override { return platform_->readPower(); }

    double truePower() const override { return platform_->truePower(); }

    double normalizedPerf() const override
    {
        double total = 0.0;
        for (size_t i = 0; i < platform_->appCount(); ++i) {
            const double solo = platform_->soloReferenceRate(i);
            if (solo > 0.0)
                total += platform_->trueAppRate(i) / solo;
        }
        return total;
    }

    void mixDigest(uint64_t& hash) const override
    {
        fnvMixDouble(hash, platform_->truePower());
        for (size_t i = 0; i < platform_->appCount(); ++i)
            fnvMixDouble(hash, platform_->trueAppRate(i));
        if (load_ != nullptr) {
            // Churn bookkeeping is deterministic state too: a thread
            // count that perturbed tenant scheduling must fail the
            // serial-vs-parallel digest comparison.
            const load::SloTracker& tracker = load_->tracker();
            fnvMix(hash, tracker.totalArrivals());
            fnvMix(hash, tracker.totalCompletions());
            fnvMix(hash, tracker.totalViolations());
            fnvMix(hash, tracker.totalDrops());
        }
    }

    bool fullStack() const override { return true; }

  private:
    sim::Platform* platform_;
    capping::Governor* governor_;
    rapl::RaplController* rapl_;
    load::LoadDriver* load_;
};

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_LEAF_MODEL_H_
