#include "power_shifter.h"

#include <algorithm>
#include <cassert>


namespace pupil::cluster {

PowerShifter::PowerShifter(const Options& options) : options_(options)
{
}

size_t
PowerShifter::addNode(const std::string& name,
                      const std::vector<sched::AppDemand>& apps,
                      harness::GovernorKind kind, uint64_t seed,
                      const std::string& faultSpec)
{
    assert(!started_);
    auto node = std::make_unique<Node>();
    node->name = name;
    sim::PlatformOptions popts;
    popts.seed = seed;
    popts.faultSpec = faultSpec;
    node->platform = std::make_unique<sim::Platform>(popts, apps);
    node->platform->warmStart(machine::maximalConfig());
    node->rapl = std::make_unique<rapl::RaplController>();
    node->governor = harness::makeGovernor(kind);
    node->governor->attachRapl(node->rapl.get());
    node->platform->addActor(node->rapl.get());
    node->platform->addActor(node->governor.get());
    node->platform->attachTrace(trace_);
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
}

void
PowerShifter::attachTrace(trace::Recorder* recorder)
{
    trace_ = recorder;
    for (auto& node : nodes_)
        node->platform->attachTrace(recorder);
}

double
PowerShifter::totalCapWatts() const
{
    double total = 0.0;
    for (const auto& node : nodes_)
        total += node->capWatts;
    return total;
}

double
PowerShifter::totalPowerWatts() const
{
    double total = 0.0;
    for (const auto& node : nodes_) {
        if (node->online)
            total += node->platform->truePower();
    }
    return total;
}

BudgetPolicy
PowerShifter::policy() const
{
    BudgetPolicy policy;
    policy.donationFraction = options_.donationFraction;
    return policy;
}

std::vector<ChildBudget>
PowerShifter::children() const
{
    std::vector<ChildBudget> children(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        children[i].capWatts = nodes_[i]->capWatts;
        children[i].maxCapWatts = options_.nodeTdpWatts;
        children[i].minShareWatts = options_.minNodeCapWatts;
        children[i].online = nodes_[i]->online;
    }
    return children;
}

double
PowerShifter::budgetErrorWatts() const
{
    return conservationError(children(), options_.globalBudgetWatts);
}

void
PowerShifter::pushCaps()
{
    // Push the current caps to every online node's capping system -- the
    // node governor AND the RAPL firmware, so the hardware backstop is
    // armed even for software-only governors (a cluster deployment always
    // gives every node the hardware safety net). Node governors with
    // hardware backing re-enforce within milliseconds.
    for (auto& node : nodes_) {
        if (!node->online)
            continue;
        node->governor->setCap(node->capWatts);
        node->rapl->setTotalCapEvenSplit(node->capWatts);
    }
}

void
PowerShifter::updateMembership()
{
    if (schedule_ == nullptr)
        return;
    std::vector<size_t> rejoined;
    bool changed = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = *nodes_[i];
        const bool lost = schedule_->anyActive(faults::FaultKind::kNodeLoss,
                                               node.name, now_);
        if (lost && node.online) {
            // Node down: it draws nothing, and its budget share must not
            // evaporate with it -- the survivors absorb it below.
            trace::emit(trace_, now_, trace::EventKind::kNodeLoss,
                        node.capWatts, 0.0, int32_t(i));
            node.online = false;
            node.capWatts = 0.0;
            ++lossEvents_;
            changed = true;
        } else if (!lost && !node.online) {
            node.online = true;
            ++rejoinEvents_;
            rejoined.push_back(i);
            changed = true;
        }
    }
    if (!changed)
        return;

    // Restore the invariant sum(online caps) == global budget. Survivors
    // keep their relative shares (so shifting history is preserved);
    // rejoiners start from an even share of the budget; the per-node
    // floor and TDP ceilings are re-imposed.
    std::vector<ChildBudget> state = children();
    reshareBudgets(state, options_.globalBudgetWatts, rejoined);
    for (size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i]->capWatts = state[i].capWatts;
    for (size_t i : rejoined)
        trace::emit(trace_, now_, trace::EventKind::kNodeRejoin,
                    nodes_[i]->capWatts, 0.0, int32_t(i));
    assert(budgetErrorWatts() < 1e-6 * options_.globalBudgetWatts + 1e-9);
    pushCaps();
}

void
PowerShifter::reallocate()
{
    // Demand is read through each node's governor-visible meter channel
    // (noisy, fault-prone -- what a real cluster manager sees); the
    // policy guards against implausible ~0 readings so a dead meter can
    // neither drain a node's budget nor starve it of grants.
    std::vector<ChildBudget> state = children();
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (nodes_[i]->online)
            state[i].powerWatts = nodes_[i]->platform->readPower();
    }
    const double moved = rebalanceBudgets(state, policy());
    if (moved <= 0.0)
        return;
    for (size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i]->capWatts = state[i].capWatts;
    assert(budgetErrorWatts() < 1e-6 * options_.globalBudgetWatts + 1e-9);
    pushCaps();
    ++shifts_;
    trace::emit(trace_, now_, trace::EventKind::kRebalance, totalCapWatts(),
                totalPowerWatts(), shifts_);
}

void
PowerShifter::run(double untilSec)
{
    if (!started_) {
        started_ = true;
        // Initial even division of the global budget, pushed to every
        // node's governor AND its RAPL firmware before the first period
        // -- a node whose governor never programs the hardware itself
        // (the software-only ones) must not run uncapped until the first
        // reallocation.
        std::vector<ChildBudget> state = children();
        evenShares(state, options_.globalBudgetWatts);
        for (size_t i = 0; i < nodes_.size(); ++i)
            nodes_[i]->capWatts = state[i].capWatts;
        pushCaps();
    }
    while (now_ < untilSec - 1e-9) {
        updateMembership();
        const double step = std::min(options_.periodSec, untilSec - now_);
        now_ += step;
        for (auto& node : nodes_) {
            if (node->online)
                node->platform->run(now_);
        }
        reallocate();
    }
}

}  // namespace pupil::cluster
