#include "power_shifter.h"

#include <algorithm>
#include <cassert>


namespace pupil::cluster {

PowerShifter::PowerShifter(const Options& options) : options_(options)
{
}

size_t
PowerShifter::addNode(const std::string& name,
                      const std::vector<sched::AppDemand>& apps,
                      harness::GovernorKind kind, uint64_t seed,
                      const std::string& faultSpec)
{
    assert(!started_);
    auto node = std::make_unique<Node>();
    node->name = name;
    sim::PlatformOptions popts;
    popts.seed = seed;
    popts.faultSpec = faultSpec;
    node->platform = std::make_unique<sim::Platform>(popts, apps);
    node->platform->warmStart(machine::maximalConfig());
    node->rapl = std::make_unique<rapl::RaplController>();
    node->governor = harness::makeGovernor(kind);
    node->governor->attachRapl(node->rapl.get());
    node->platform->addActor(node->rapl.get());
    node->platform->addActor(node->governor.get());
    node->platform->attachTrace(trace_);
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
}

void
PowerShifter::attachTrace(trace::Recorder* recorder)
{
    trace_ = recorder;
    for (auto& node : nodes_)
        node->platform->attachTrace(recorder);
}

double
PowerShifter::totalCapWatts() const
{
    double total = 0.0;
    for (const auto& node : nodes_)
        total += node->capWatts;
    return total;
}

double
PowerShifter::totalPowerWatts() const
{
    double total = 0.0;
    for (const auto& node : nodes_) {
        if (node->online)
            total += node->platform->truePower();
    }
    return total;
}

void
PowerShifter::pushCaps()
{
    // Push the current caps to every online node's capping system. Node
    // governors with hardware backing re-enforce within milliseconds.
    for (auto& node : nodes_) {
        if (!node->online)
            continue;
        node->governor->setCap(node->capWatts);
        node->rapl->setTotalCapEvenSplit(node->capWatts);
    }
}

void
PowerShifter::updateMembership()
{
    if (schedule_ == nullptr)
        return;
    std::vector<Node*> rejoined;
    bool changed = false;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = *nodes_[i];
        const bool lost = schedule_->anyActive(faults::FaultKind::kNodeLoss,
                                               node.name, now_);
        if (lost && node.online) {
            // Node down: it draws nothing, and its budget share must not
            // evaporate with it -- the survivors absorb it below.
            trace::emit(trace_, now_, trace::EventKind::kNodeLoss,
                        node.capWatts, 0.0, int32_t(i));
            node.online = false;
            node.capWatts = 0.0;
            ++lossEvents_;
            changed = true;
        } else if (!lost && !node.online) {
            node.online = true;
            ++rejoinEvents_;
            rejoined.push_back(&node);
            changed = true;
        }
    }
    if (!changed)
        return;

    std::vector<Node*> online;
    for (auto& node : nodes_) {
        if (node->online)
            online.push_back(node.get());
    }
    if (online.empty())
        return;  // whole cluster dark; budget re-granted at first rejoin

    // Restore the invariant sum(online caps) == global budget. Survivors
    // keep their relative shares (so shifting history is preserved);
    // rejoiners start from an even share of the budget.
    const double budget = options_.globalBudgetWatts;
    const double share = budget / double(online.size());
    double survivorSum = 0.0;
    for (Node* node : online) {
        if (std::find(rejoined.begin(), rejoined.end(), node) ==
            rejoined.end())
            survivorSum += node->capWatts;
    }
    if (survivorSum <= 0.0) {
        for (Node* node : online)
            node->capWatts = share;
    } else {
        const double survivorBudget =
            budget - share * double(rejoined.size());
        const double factor = survivorBudget / survivorSum;
        for (Node* node : online) {
            if (std::find(rejoined.begin(), rejoined.end(), node) !=
                rejoined.end())
                node->capWatts = share;
            else
                node->capWatts *= factor;
        }
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (std::find(rejoined.begin(), rejoined.end(), nodes_[i].get()) !=
            rejoined.end())
            trace::emit(trace_, now_, trace::EventKind::kNodeRejoin,
                        nodes_[i]->capWatts, 0.0, int32_t(i));
    }
    pushCaps();
}

void
PowerShifter::reallocate()
{
    // Collect headroom (cap - consumption). Donors give away a fraction of
    // their headroom; the pool is granted to nodes at their cap,
    // proportionally to consumption (a proxy for demand). Offline nodes
    // hold no budget and take no part.
    double pool = 0.0;
    std::vector<double> grantWeight(nodes_.size(), 0.0);
    double weightSum = 0.0;
    size_t onlineCount = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        Node& node = *nodes_[i];
        if (!node.online)
            continue;
        ++onlineCount;
        const double power = node.platform->truePower();
        const double headroom = node.capWatts - power;
        if (headroom > 0.05 * node.capWatts) {
            const double donation = std::min(
                headroom * options_.donationFraction,
                node.capWatts - options_.minNodeCapWatts);
            if (donation > 0.0) {
                node.capWatts -= donation;
                pool += donation;
            }
        } else {
            grantWeight[i] = power;
            weightSum += power;
        }
    }
    if (pool <= 0.0 || onlineCount == 0)
        return;
    if (weightSum <= 0.0) {
        // Nobody is constrained: return the pool evenly.
        for (auto& node : nodes_) {
            if (node->online)
                node->capWatts += pool / double(onlineCount);
        }
    } else {
        for (size_t i = 0; i < nodes_.size(); ++i) {
            if (grantWeight[i] > 0.0)
                nodes_[i]->capWatts += pool * grantWeight[i] / weightSum;
        }
    }
    pushCaps();
    ++shifts_;
    trace::emit(trace_, now_, trace::EventKind::kRebalance, totalCapWatts(),
                totalPowerWatts(), shifts_);
}

void
PowerShifter::run(double untilSec)
{
    if (!started_) {
        started_ = true;
        // Initial even division of the global budget.
        const double share =
            options_.globalBudgetWatts / double(std::max<size_t>(
                                             1, nodes_.size()));
        for (auto& node : nodes_) {
            node->capWatts = share;
            node->governor->setCap(share);
        }
    }
    while (now_ < untilSec - 1e-9) {
        updateMembership();
        const double step = std::min(options_.periodSec, untilSec - now_);
        now_ += step;
        for (auto& node : nodes_) {
            if (node->online)
                node->platform->run(now_);
        }
        reallocate();
    }
}

}  // namespace pupil::cluster
