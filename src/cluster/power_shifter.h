#ifndef PUPIL_CLUSTER_POWER_SHIFTER_H_
#define PUPIL_CLUSTER_POWER_SHIFTER_H_

#include <memory>
#include <string>
#include <vector>

#include "capping/governor.h"
#include "cluster/budget_policy.h"
#include "cluster/leaf_model.h"
#include "faults/schedule.h"
#include "harness/experiment.h"
#include "load/load_driver.h"
#include "rapl/rapl.h"
#include "sim/platform.h"
#include "trace/trace.h"

namespace pupil::cluster {

/**
 * A cluster node: one simulated server with its RAPL firmware and a
 * node-level power-capping governor (any of this repo's governors; PUPiL
 * by default).
 */
struct Node
{
    std::string name;
    std::unique_ptr<sim::Platform> platform;
    std::unique_ptr<rapl::RaplController> rapl;
    std::unique_ptr<capping::Governor> governor;
    /** Tenant-traffic driver, or null when the node runs static apps. */
    std::unique_ptr<load::LoadDriver> load;
    /**
     * The simulation seam the BudgetTree control plane talks through: a
     * FullStackLeaf over the members above, or a SurrogateLeaf (in which
     * case platform/rapl/governor/load stay null). The flat PowerShifter
     * predates the seam and leaves this unset.
     */
    std::unique_ptr<LeafModel> leaf;
    double capWatts = 0.0;
    /** False while a node-loss fault has the node offline. */
    bool online = true;
    /**
     * Set when the node's platform threw during a (tree) step: the node
     * is isolated -- treated as permanently lost at the next membership
     * update -- instead of taking the whole cluster down. Unused by the
     * flat PowerShifter, whose nodes step on the caller's thread.
     */
    bool failed = false;
};

/**
 * Cluster-level power shifting (the setting the paper's related work
 * places node cappers into: Lefurgy et al., "Power capping: a prelude to
 * power shifting"; Raghavendra et al.'s coordinated multi-level managers).
 *
 * A fixed global budget is divided among nodes. Periodically the manager
 * measures each node's power headroom (cap minus consumption, read from
 * the node's governor-visible meter channel -- like a real cluster
 * manager it only sees meters, so node-local sensor faults reach it and
 * are guarded against); nodes with persistent headroom donate watts,
 * power-hungry nodes receive them, and each node's own capping system
 * (hardware-timely, e.g. PUPiL) re-enforces its new cap locally. The
 * invariant: per-node caps always sum to the global budget (clamped to
 * what the node TDPs can absorb), so the cluster never exceeds it even
 * mid-shift. The shifting arithmetic itself lives in budget_policy.h and
 * is shared with every interior level of cluster::BudgetTree.
 */
class PowerShifter
{
  public:
    struct Options
    {
        double globalBudgetWatts = 400.0;
        double periodSec = 2.0;       ///< reallocation period
        double minNodeCapWatts = 30.0;
        /** Fraction of measured headroom a node donates per period. */
        double donationFraction = 0.5;
        /**
         * Per-node cap ceiling (the machine's package TDPs; the modelled
         * dual-socket server carries 2 x 135 W). Grants above this are
         * watts the node can never draw, so they are clamped and
         * redistributed to nodes with ceiling headroom instead of being
         * stranded.
         */
        double nodeTdpWatts = 270.0;
    };

    explicit PowerShifter(const Options& options);

    /**
     * Add a node running @p apps under @p kind. Returns its index.
     * @p faultSpec optionally injects node-local faults (sensor/MSR/
     * actuator) into the node's own platform. Call before run().
     */
    size_t addNode(const std::string& name,
                   const std::vector<sched::AppDemand>& apps,
                   harness::GovernorKind kind = harness::GovernorKind::kPupil,
                   uint64_t seed = 1, const std::string& faultSpec = "");

    /**
     * Attach a cluster-level fault schedule. Only node-loss events are
     * interpreted here: a node whose name matches an active event goes
     * offline (its platform freezes, its watts are redistributed to the
     * survivors) and rejoins with a fresh even share when the window
     * ends. Null detaches. Not owned; must outlive run().
     */
    void setFaultSchedule(const faults::FaultSchedule* schedule)
    {
        schedule_ = schedule;
    }

    /**
     * Record cluster-level events (rebalances, node loss/rejoin) into
     * @p recorder, and thread it through to every node platform so
     * node-local subsystems share the same timeline. Null detaches. Not
     * owned; must outlive run().
     */
    void attachTrace(trace::Recorder* recorder);

    /** Advance every node to @p untilSec, reallocating caps on the way. */
    void run(double untilSec);

    size_t nodeCount() const { return nodes_.size(); }
    const Node& node(size_t i) const { return *nodes_[i]; }

    /**
     * Sum of per-node caps. Equals the global budget by construction
     * whenever at least one node is online (lost watts are redistributed,
     * never destroyed).
     */
    double totalCapWatts() const;

    /** Sum of measured power over online nodes. */
    double totalPowerWatts() const;

    /** Number of reallocations performed. */
    int shifts() const { return shifts_; }

    /** Node-loss transitions observed (offline events). */
    int lossEvents() const { return lossEvents_; }

    /** Node rejoin transitions observed. */
    int rejoinEvents() const { return rejoinEvents_; }

    /**
     * Conservation error of the budget invariant right now:
     * |sum(online caps) - min(globalBudget, sum(online TDPs))|. Zero (to
     * rounding) whenever at least one node is online; asserted in debug
     * builds after every reallocation and membership change.
     */
    double budgetErrorWatts() const;

  private:
    void reallocate();
    void updateMembership();
    void pushCaps();
    /** The per-level policy view of the options. */
    BudgetPolicy policy() const;
    /** Children snapshot (caps/ceilings/liveness; powers left zero). */
    std::vector<ChildBudget> children() const;

    Options options_;
    std::vector<std::unique_ptr<Node>> nodes_;
    const faults::FaultSchedule* schedule_ = nullptr;
    trace::Recorder* trace_ = nullptr;
    double now_ = 0.0;
    int shifts_ = 0;
    int lossEvents_ = 0;
    int rejoinEvents_ = 0;
    bool started_ = false;
};

}  // namespace pupil::cluster

#endif  // PUPIL_CLUSTER_POWER_SHIFTER_H_
