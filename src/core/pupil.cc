#include "pupil.h"

#include <cassert>

#include "core/ordering.h"
#include "sim/platform.h"
#include "workload/catalog.h"

namespace pupil::core {

Pupil::Pupil(PowerDistPolicy policy, const DecisionWalker::Options& options)
    : policy_(policy), options_(options)
{
    options_.checkPower = false;  // RAPL guarantees the cap
}

DecisionWalker::Options
Pupil::defaultOptions()
{
    DecisionWalker::Options options;
    options.windowSamples = 30;
    options.checkPower = false;
    return options;
}

bool
Pupil::converged() const
{
    return walker_ != nullptr && walker_->converged();
}

void
Pupil::programRapl(sim::Platform& platform,
                   const machine::MachineConfig& cfg)
{
    assert(rapl_ != nullptr);
    // Re-splitting the cap while a reconfiguration is still migrating can
    // leave a socket capped below its static floor (which hardware cannot
    // enforce) while the other socket still holds its full share -- a
    // transient total-cap violation. Tighten first: apply the per-socket
    // minimum of the old and new splits immediately, and relax to the new
    // split once the machine change has landed.
    targetCaps_ = splitCap(platform.powerModel(), cfg, cap_, policy_);
    for (int s = 0; s < 2; ++s) {
        const double tight = appliedCaps_[s] > 0.0
                                 ? std::min(appliedCaps_[s], targetCaps_[s])
                                 : targetCaps_[s];
        rapl_->setSocketCap(s, tight, true);
        appliedCaps_[s] = tight;
    }
    capsPending_ = true;
}

void
Pupil::onStart(sim::Platform& platform)
{
    // Timeliness first: hand the cap to hardware before exploring anything.
    machine::MachineConfig initial = machine::minimalConfig();
    initial.setUniformPState(machine::DvfsTable::kTurboPState);
    programRapl(platform, initial);

    const OrderingReport report = calibrateOrdering(
        platform.scheduler(), platform.powerModel(),
        workload::calibrationApp());
    walker_ = std::make_unique<DecisionWalker>(
        report.orderedResources(/*includeDvfs=*/false), options_);
    walker_->start(initial, cap_, platform.now());
    if (walker_->takeConfigDirty())
        platform.machine().requestConfig(walker_->config(), platform.now());
}

void
Pupil::onTick(sim::Platform& platform, double now)
{
    const double perf = platform.readPerformance();
    const double power = platform.readPower();
    walker_->addSample(perf, power, now);
    if (walker_->takeConfigDirty()) {
        const machine::MachineConfig& cfg = walker_->config();
        platform.machine().requestConfig(cfg, now);
        // Core allocation changed: re-distribute the per-socket caps.
        programRapl(platform, cfg);
    }
    // Relax to the full new split once the reconfiguration has landed.
    if (capsPending_ && !platform.machine().configChangePending(now)) {
        for (int s = 0; s < 2; ++s) {
            rapl_->setSocketCap(s, targetCaps_[s], true);
            appliedCaps_[s] = targetCaps_[s];
        }
        capsPending_ = false;
    }
}

}  // namespace pupil::core
