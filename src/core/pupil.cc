#include "pupil.h"

#include <cassert>

#include "core/ordering.h"
#include "sim/platform.h"
#include "workload/catalog.h"

namespace pupil::core {

Pupil::Pupil(PowerDistPolicy policy, const DecisionWalker::Options& options)
    : Pupil(policy, options, Resilience())
{
}

Pupil::Pupil(PowerDistPolicy policy, const DecisionWalker::Options& options,
             const Resilience& resilience)
    : policy_(policy), options_(options), resilience_(resilience),
      powerHealth_(resilience.powerHealth),
      perfHealth_(resilience.perfHealth)
{
    options_.checkPower = false;  // RAPL guarantees the cap
}

DecisionWalker::Options
Pupil::defaultOptions()
{
    DecisionWalker::Options options;
    options.windowSamples = 30;
    options.checkPower = false;
    return options;
}

bool
Pupil::converged() const
{
    return walker_ != nullptr && walker_->converged();
}

void
Pupil::programRapl(sim::Platform& platform,
                   const machine::MachineConfig& cfg)
{
    assert(rapl_ != nullptr);
    // Re-splitting the cap while a reconfiguration is still migrating can
    // leave a socket capped below its static floor (which hardware cannot
    // enforce) while the other socket still holds its full share -- a
    // transient total-cap violation. Tighten first: apply the per-socket
    // minimum of the old and new splits immediately, and relax to the new
    // split once the machine change has landed.
    targetCaps_ = splitCap(platform.powerModel(), cfg, cap_, policy_);
    trace::emit(platform.trace(), platform.now(),
                trace::EventKind::kCapSplit, targetCaps_[0], targetCaps_[1]);
    platform.metrics().addCounter("pupil.cap_splits");
    for (int s = 0; s < 2; ++s) {
        const double tight = appliedCaps_[s] > 0.0
                                 ? std::min(appliedCaps_[s], targetCaps_[s])
                                 : targetCaps_[s];
        rapl_->setSocketCap(s, tight, true);
        appliedCaps_[s] = tight;
    }
    capsPending_ = true;
}

void
Pupil::onStart(sim::Platform& platform)
{
    mode_ = Mode::kHybrid;
    powerHealth_.reset();
    perfHealth_.reset();
    healthyStreak_ = 0;

    // Timeliness first: hand the cap to hardware before exploring anything.
    machine::MachineConfig initial = machine::minimalConfig();
    initial.setUniformPState(machine::DvfsTable::kTurboPState);
    programRapl(platform, initial);

    const OrderingReport report = calibrateOrdering(
        platform.scheduler(), platform.powerModel(),
        workload::calibrationApp());
    walker_ = std::make_unique<DecisionWalker>(
        report.orderedResources(/*includeDvfs=*/false), options_);
    walker_->attachTrace(platform.trace());
    walker_->start(initial, cap_, platform.now());
    if (walker_->takeConfigDirty())
        platform.machine().requestConfig(walker_->config(), platform.now());
}

void
Pupil::onTick(sim::Platform& platform, double now)
{
    const double perf = platform.readPerformance();
    const double power = platform.readPower();
    const bool perfOk = perfHealth_.accept(perf);
    const bool powerOk = powerHealth_.accept(power);

    if (mode_ == Mode::kDegraded) {
        // Hardware-only fallback: RAPL enforces the cap; software only
        // watches for the telemetry to come back.
        platform.mutableCounters().addDegradedTime(periodSec());
        healthyStreak_ = (perfOk && powerOk) ? healthyStreak_ + 1 : 0;
        if (healthyStreak_ >= resilience_.reengageHealthySamples)
            reengage(platform, now);
        return;
    }

    if (!perfHealth_.healthy() || !powerHealth_.healthy()) {
        enterDegraded(platform, now);
        return;
    }

    walker_->addSample(perf, power, now);
    if (walker_->takeConfigDirty()) {
        const machine::MachineConfig& cfg = walker_->config();
        platform.machine().requestConfig(cfg, now);
        // Core allocation changed: re-distribute the per-socket caps.
        programRapl(platform, cfg);
    }
    // Relax to the full new split once the reconfiguration has landed.
    if (capsPending_ && !platform.machine().configChangePending(now)) {
        for (int s = 0; s < 2; ++s) {
            rapl_->setSocketCap(s, targetCaps_[s], true);
            appliedCaps_[s] = targetCaps_[s];
        }
        capsPending_ = false;
    }
    telemetry::MetricsRegistry& metrics = platform.metrics();
    metrics.setGauge("decision.walks", walker_->walkCount());
    metrics.setGauge("decision.steps", walker_->stepsTaken());
    metrics.setGauge("decision.samples_rejected",
                     double(walker_->samplesRejected()));
    metrics.setGauge("decision.converged_walks", walker_->convergedCount());
    metrics.setGauge("decision.converge_sec", walker_->lastWalkDurationSec());
}

void
Pupil::enterDegraded(sim::Platform& platform, double now)
{
    mode_ = Mode::kDegraded;
    ++degradedEntries_;
    healthyStreak_ = 0;
    platform.mutableCounters().addFaultsDetected(1);
    trace::emit(platform.trace(), now, trace::EventKind::kModeDegraded, 0.0,
                0.0, degradedEntries_);
    platform.metrics().addCounter("pupil.degraded_entries");
    // Hand the whole problem to hardware: the RAPL-only operating point
    // (everything on) with the cap split evenly between the sockets. The
    // config request may itself fail under an actuator fault; the caps go
    // through the hardware path, which stays trustworthy.
    rapl_->setTotalCapEvenSplit(cap_);
    appliedCaps_ = targetCaps_ = {cap_ / 2.0, cap_ / 2.0};
    capsPending_ = false;
    platform.machine().requestConfig(machine::maximalConfig(), now);
}

void
Pupil::reengage(sim::Platform& platform, double now)
{
    mode_ = Mode::kHybrid;
    ++reengagements_;
    powerHealth_.reset();
    perfHealth_.reset();
    trace::emit(platform.trace(), now, trace::EventKind::kModeReengage, 0.0,
                0.0, reengagements_);
    platform.metrics().addCounter("pupil.reengagements");
    // Fresh walk from the minimal configuration, exactly as at start:
    // whatever happened while blind, the exploration state is stale.
    machine::MachineConfig initial = machine::minimalConfig();
    initial.setUniformPState(machine::DvfsTable::kTurboPState);
    programRapl(platform, initial);
    walker_->start(initial, cap_, now);
    if (walker_->takeConfigDirty())
        platform.machine().requestConfig(walker_->config(), now);
}

}  // namespace pupil::core
