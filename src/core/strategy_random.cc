#include "strategy_random.h"

namespace pupil::core {

RandomRestartStrategy::RandomRestartStrategy(const StrategyOptions& options)
    : seed_(options.seed != 0 ? options.seed : 0x9e3779b97f4a7c15ULL),
      restarts_(options.randomRestarts > 0 ? options.randomRestarts : 1),
      rng_(seed_)
{
}

void
RandomRestartStrategy::begin(StrategyHost& host, double now)
{
    (void)host;
    (void)now;
    // Re-seed per walk so the stream does not depend on how many steps the
    // previous walk consumed, yet drift-triggered re-walks still explore
    // different starting points.
    rng_ = util::Rng(seed_ + 0x9e3779b97f4a7c15ULL * uint64_t(++walkNumber_));
    phase_ = Phase::kBaseline;
    restart_ = 0;
    idx_ = 0;
    prevSetting_ = 0;
    currentPerf_ = 0.0;
    haveBest_ = false;
    bestPerf_ = 0.0;
}

bool
RandomRestartStrategy::nextRestart(StrategyHost& host, double now)
{
    if (restart_ >= restarts_)
        return commitBest(host, now);
    ++restart_;
    machine::MachineConfig target = host.config();
    for (size_t i = 0; i < host.order().size(); ++i) {
        const Resource& r = host.order()[i];
        r.apply(target, int(rng_.uniformInt(uint64_t(r.settings()))));
    }
    host.applyTarget(target, now);
    phase_ = Phase::kStart;
    return false;
}

bool
RandomRestartStrategy::climbNext(StrategyHost& host, double now)
{
    const std::vector<Resource>& order = host.order();
    while (idx_ < order.size()) {
        const Resource& r = order[idx_];
        const int setting = r.setting(host.config());
        if (setting < r.settings() - 1) {
            prevSetting_ = setting;
            host.setResource(idx_, setting + 1, now);
            phase_ = Phase::kClimb;
            return false;
        }
        ++idx_;
    }
    // One greedy pass per start keeps the measurement budget bounded.
    return nextRestart(host, now);
}

bool
RandomRestartStrategy::commitBest(StrategyHost& host, double now)
{
    if (haveBest_) {
        host.applyTarget(bestCfg_, now);
        host.emitAccept(bestPerf_, 0.0, -1, restart_, now);
        return true;
    }
    // No start (the initial point included) ever measured under the cap:
    // retreat to the all-lowest corner, the least this walk can draw.
    machine::MachineConfig floor = host.config();
    for (size_t i = 0; i < host.order().size(); ++i)
        host.order()[i].apply(floor, 0);
    host.applyTarget(floor, now);
    return true;
}

bool
RandomRestartStrategy::step(StrategyHost& host, double perfF, double powerF,
                            double now)
{
    const bool feasible = !host.checkPower() || powerF <= host.capWatts();
    switch (phase_) {
      case Phase::kBaseline: {
        if (feasible) {
            haveBest_ = true;
            bestCfg_ = host.config();
            bestPerf_ = perfF;
        }
        return nextRestart(host, now);
      }

      case Phase::kStart: {
        if (!feasible) {
            // An over-cap start is not worth repairing -- the next random
            // point is as likely to land somewhere feasible and higher.
            host.emitReject(0.0, powerF, -1, restart_, now);
            return nextRestart(host, now);
        }
        if (!haveBest_ || perfF > bestPerf_) {
            haveBest_ = true;
            bestCfg_ = host.config();
            bestPerf_ = perfF;
        }
        currentPerf_ = perfF;
        idx_ = 0;
        return climbNext(host, now);
      }

      case Phase::kClimb: {
        const double ratio = currentPerf_ > 0.0 ? perfF / currentPerf_ : 0.0;
        const bool improved =
            perfF >= currentPerf_ * (1.0 + host.perfEpsilon());
        if (improved && feasible) {
            host.emitAccept(ratio, powerF, int32_t(idx_),
                            host.order()[idx_].setting(host.config()), now);
            currentPerf_ = perfF;
            if (perfF > bestPerf_) {
                bestCfg_ = host.config();
                bestPerf_ = perfF;
            }
            return climbNext(host, now);
        }
        host.setResource(idx_, prevSetting_, now);
        host.emitReject(ratio, powerF, int32_t(idx_), prevSetting_, now);
        ++idx_;
        return climbNext(host, now);
      }
    }
    return false;
}

std::string
RandomRestartStrategy::phaseName() const
{
    switch (phase_) {
      case Phase::kBaseline: return "rnd-baseline";
      case Phase::kStart: return "rnd-start";
      case Phase::kClimb: return "rnd-climb";
    }
    return "?";
}

}  // namespace pupil::core
