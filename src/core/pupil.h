#ifndef PUPIL_CORE_PUPIL_H_
#define PUPIL_CORE_PUPIL_H_

#include <memory>

#include "capping/governor.h"
#include "core/decision.h"
#include "core/power_dist.h"

namespace pupil::core {

/**
 * PUPiL -- Performance Under Power Limits (paper Section 3.3): the hybrid
 * hardware/software power capping system this repository reproduces.
 *
 * Timeliness: the RAPL hardware caps are programmed *first*, before any
 * exploration, so the power limit is enforced within milliseconds while
 * the software side is still thinking.
 *
 * Efficiency: the decision walker then explores the non-DVFS resources
 * (cores, sockets, hyperthreads, memory controllers). Voltage/frequency is
 * removed from software control -- hardware owns it -- and all software
 * power checks are dropped, because RAPL guarantees the cap; the walker
 * optimizes purely for performance feedback.
 *
 * Power distribution: hardware caps are per socket. Whenever the walker
 * changes the core allocation, PUPiL re-splits the total cap so each
 * socket receives its static power plus a dynamic share proportional to
 * its active core count (Section 3.3.2), letting asymmetric configurations
 * concentrate the budget where the threads run.
 */
class Pupil : public capping::Governor
{
  public:
    explicit Pupil(
        PowerDistPolicy policy = PowerDistPolicy::kCoreProportional,
        const DecisionWalker::Options& options = defaultOptions());

    static DecisionWalker::Options defaultOptions();

    std::string name() const override { return "PUPiL"; }
    bool converged() const override;

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.1; }

    const DecisionWalker* walker() const { return walker_.get(); }
    PowerDistPolicy policy() const { return policy_; }

  private:
    void programRapl(sim::Platform& platform,
                     const machine::MachineConfig& cfg);

    PowerDistPolicy policy_;
    DecisionWalker::Options options_;
    std::unique_ptr<DecisionWalker> walker_;
    std::array<double, 2> appliedCaps_ = {0.0, 0.0};
    std::array<double, 2> targetCaps_ = {0.0, 0.0};
    bool capsPending_ = false;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_PUPIL_H_
