#ifndef PUPIL_CORE_PUPIL_H_
#define PUPIL_CORE_PUPIL_H_

#include <memory>

#include "capping/governor.h"
#include "core/decision.h"
#include "core/power_dist.h"
#include "telemetry/health.h"

namespace pupil::core {

/**
 * PUPiL -- Performance Under Power Limits (paper Section 3.3): the hybrid
 * hardware/software power capping system this repository reproduces.
 *
 * Timeliness: the RAPL hardware caps are programmed *first*, before any
 * exploration, so the power limit is enforced within milliseconds while
 * the software side is still thinking.
 *
 * Efficiency: the decision walker then explores the non-DVFS resources
 * (cores, sockets, hyperthreads, memory controllers). Voltage/frequency is
 * removed from software control -- hardware owns it -- and all software
 * power checks are dropped, because RAPL guarantees the cap; the walker
 * optimizes purely for performance feedback.
 *
 * Power distribution: hardware caps are per socket. Whenever the walker
 * changes the core allocation, PUPiL re-splits the total cap so each
 * socket receives its static power plus a dynamic share proportional to
 * its active core count (Section 3.3.2), letting asymmetric configurations
 * concentrate the budget where the threads run.
 *
 * Graceful degradation: the governor watches its own telemetry through a
 * stale-sample watchdog with sanity bounds. When the software-visible
 * channels go unhealthy (a dead or stuck meter, see src/faults/) PUPiL
 * falls back to RAPL-only enforcement -- even-split hardware caps, the
 * default all-on configuration, no software exploration -- which is
 * exactly the paper's robustness argument for the hybrid design: hardware
 * keeps the cap while software is blind. After a run of consecutive
 * healthy samples the software layer re-engages with a fresh walk.
 * Degraded-mode time and detections are recorded in the platform's
 * telemetry::Counters.
 */
class Pupil : public capping::Governor
{
  public:
    /** Degradation state: software exploring, or hardware-only fallback. */
    enum class Mode { kHybrid, kDegraded };

    /** Knobs of the degradation state machine. */
    struct Resilience
    {
        /** Watchdog rules for the power / performance channels. */
        telemetry::HealthOptions powerHealth{0.5, 2000.0, 12, 10, 0.25};
        telemetry::HealthOptions perfHealth{1e-9, 1e9, 12, 10, 0.25};
        /** Consecutive healthy samples required to re-engage software. */
        int reengageHealthySamples = 20;
    };

    explicit Pupil(
        PowerDistPolicy policy = PowerDistPolicy::kCoreProportional,
        const DecisionWalker::Options& options = defaultOptions());
    Pupil(PowerDistPolicy policy, const DecisionWalker::Options& options,
          const Resilience& resilience);

    static DecisionWalker::Options defaultOptions();

    std::string name() const override { return "PUPiL"; }
    bool converged() const override;

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.1; }

    const DecisionWalker* walker() const { return walker_.get(); }
    PowerDistPolicy policy() const { return policy_; }

    /** Current degradation state. */
    Mode mode() const { return mode_; }

    /** Times the governor fell back to hardware-only enforcement. */
    int degradedEntries() const { return degradedEntries_; }

    /** Times the software layer re-engaged after a fallback. */
    int reengagements() const { return reengagements_; }

  private:
    void programRapl(sim::Platform& platform,
                     const machine::MachineConfig& cfg);
    void enterDegraded(sim::Platform& platform, double now);
    void reengage(sim::Platform& platform, double now);

    PowerDistPolicy policy_;
    DecisionWalker::Options options_;
    Resilience resilience_;
    std::unique_ptr<DecisionWalker> walker_;
    std::array<double, 2> appliedCaps_ = {0.0, 0.0};
    std::array<double, 2> targetCaps_ = {0.0, 0.0};
    bool capsPending_ = false;

    Mode mode_ = Mode::kHybrid;
    telemetry::HealthMonitor powerHealth_;
    telemetry::HealthMonitor perfHealth_;
    int healthyStreak_ = 0;
    int degradedEntries_ = 0;
    int reengagements_ = 0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_PUPIL_H_
