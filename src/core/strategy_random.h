#ifndef PUPIL_CORE_STRATEGY_RANDOM_H_
#define PUPIL_CORE_STRATEGY_RANDOM_H_

#include "core/strategy.h"
#include "util/rng.h"

namespace pupil::core {

/**
 * Random-restart hill climbing, the baseline the calibrated strategies
 * must beat: jump to a seed-deterministic random point in the walk space,
 * greedily climb from it (one upward probe per resource, riding
 * improvements like the hill climber), repeat for randomRestarts starts,
 * and commit the best configuration ever measured under the cap.
 *
 * All randomness flows from one util::Rng re-seeded per walk from the
 * strategy seed and the walk number, so runs are bit-reproducible and
 * drift-triggered re-walks explore different starts.
 */
class RandomRestartStrategy : public DecisionStrategy
{
  public:
    explicit RandomRestartStrategy(const StrategyOptions& options);

    const char* name() const override { return "random-restart"; }
    void begin(StrategyHost& host, double now) override;
    bool step(StrategyHost& host, double perfF, double powerF,
              double now) override;
    int phaseId() const override { return int(phase_); }
    std::string phaseName() const override;

  private:
    enum class Phase { kBaseline = 1, kStart = 2, kClimb = 3 };

    /** Jump to the next random start; true when restarts are exhausted. */
    bool nextRestart(StrategyHost& host, double now);

    /** Arm the next upward probe of this climb; true when the pass ends. */
    bool climbNext(StrategyHost& host, double now);

    /** Commit the best measured-feasible config; always ends the walk. */
    bool commitBest(StrategyHost& host, double now);

    uint64_t seed_;
    int restarts_;
    util::Rng rng_;

    Phase phase_ = Phase::kBaseline;
    int walkNumber_ = 0;
    int restart_ = 0;
    size_t idx_ = 0;
    int prevSetting_ = 0;
    double currentPerf_ = 0.0;
    bool haveBest_ = false;
    machine::MachineConfig bestCfg_;
    double bestPerf_ = 0.0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_STRATEGY_RANDOM_H_
