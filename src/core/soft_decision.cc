#include "soft_decision.h"

#include "core/ordering.h"
#include "sim/platform.h"
#include "workload/catalog.h"

namespace pupil::core {

SoftDecision::SoftDecision(const DecisionWalker::Options& options)
    : options_(options)
{
}

DecisionWalker::Options
SoftDecision::defaultOptions()
{
    DecisionWalker::Options options;
    options.windowSamples = 30;   // 2 s windows at the 100 ms sample period
    options.checkPower = true;
    // Feedback comes from the platform's noisy meters, where exact
    // repeats only happen when a sensor is stuck.
    options.powerHealth.staleRepeatLimit = 12;
    options.perfHealth.staleRepeatLimit = 12;
    return options;
}

bool
SoftDecision::converged() const
{
    return walker_ != nullptr && walker_->converged();
}

void
SoftDecision::onStart(sim::Platform& platform)
{
    // Resource order comes from the one-time platform calibration
    // (Algorithm 2); it is workload independent.
    const OrderingReport report = calibrateOrdering(
        platform.scheduler(), platform.powerModel(),
        workload::calibrationApp());
    walker_ = std::make_unique<DecisionWalker>(
        report.orderedResources(/*includeDvfs=*/true), options_);
    walker_->attachTrace(platform.trace());
    walker_->start(machine::minimalConfig(), cap_, platform.now());
    if (walker_->takeConfigDirty())
        platform.machine().requestConfig(walker_->config(), platform.now());
}

void
SoftDecision::onTick(sim::Platform& platform, double now)
{
    const double perf = platform.readPerformance();
    const double power = platform.readPower();
    walker_->addSample(perf, power, now);
    if (walker_->takeConfigDirty())
        platform.machine().requestConfig(walker_->config(), now);
    telemetry::MetricsRegistry& metrics = platform.metrics();
    metrics.setGauge("decision.walks", walker_->walkCount());
    metrics.setGauge("decision.steps", walker_->stepsTaken());
    metrics.setGauge("decision.samples_rejected",
                     double(walker_->samplesRejected()));
    metrics.setGauge("decision.converged_walks", walker_->convergedCount());
    metrics.setGauge("decision.converge_sec", walker_->lastWalkDurationSec());
}

}  // namespace pupil::core
