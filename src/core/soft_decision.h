#ifndef PUPIL_CORE_SOFT_DECISION_H_
#define PUPIL_CORE_SOFT_DECISION_H_

#include <memory>

#include "capping/governor.h"
#include "core/decision.h"

namespace pupil::core {

/**
 * The software-only decision framework (paper Section 3.1): the full
 * multi-resource walker including the DVFS knob, with power checks done in
 * software against the external meter. Flexible but slow -- every decision
 * costs a measurement window plus actuation delay, so the cap is only
 * loosely respected until the walk converges.
 */
class SoftDecision : public capping::Governor
{
  public:
    explicit SoftDecision(
        const DecisionWalker::Options& options = defaultOptions());

    static DecisionWalker::Options defaultOptions();

    std::string name() const override { return "Soft-Decision"; }
    bool converged() const override;

    void onStart(sim::Platform& platform) override;
    void onTick(sim::Platform& platform, double now) override;
    double periodSec() const override { return 0.1; }

    /** The walker, for tests and diagnostics. */
    const DecisionWalker* walker() const { return walker_.get(); }

  private:
    DecisionWalker::Options options_;
    std::unique_ptr<DecisionWalker> walker_;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_SOFT_DECISION_H_
