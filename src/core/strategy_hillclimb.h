#ifndef PUPIL_CORE_STRATEGY_HILLCLIMB_H_
#define PUPIL_CORE_STRATEGY_HILLCLIMB_H_

#include "core/strategy.h"

namespace pupil::core {

/**
 * NAS-powercap-style level hill climbing (heuristics.c, SNIPPETS.md
 * snippet 1), generalized from the original (threads x p-state) plane to
 * the full calibrated resource order:
 *
 *  - exploit: probe the current resource one setting higher; while the
 *    measurement improves performance and holds the (software-checked)
 *    cap, keep riding the same resource upward;
 *  - explore: when a probe is rejected (reverted to the previous setting),
 *    move on to the next resource in order;
 *  - repair: when the current point itself violates the cap, step the
 *    finest knob (the last resource in order with headroom) down one
 *    setting at a time until the measurement is back under budget.
 *
 * A full pass over the order with no accepted step is a local optimum and
 * ends the walk; hillMaxPasses bounds the total climb.
 */
class HillClimbStrategy : public DecisionStrategy
{
  public:
    explicit HillClimbStrategy(const StrategyOptions& options);

    const char* name() const override { return "hill-climb"; }
    void begin(StrategyHost& host, double now) override;
    bool step(StrategyHost& host, double perfF, double powerF,
              double now) override;
    int phaseId() const override { return int(phase_); }
    std::string phaseName() const override;

  private:
    enum class Phase { kBaseline = 1, kProbe = 2, kRepair = 3 };

    /** Arm the next upward probe; true when the walk is complete. */
    bool probeNext(StrategyHost& host, double now);

    /** Step the finest knob with headroom down; true when none is left. */
    bool stepDown(StrategyHost& host, double now);

    int maxPasses_;
    Phase phase_ = Phase::kBaseline;
    size_t idx_ = 0;
    int prevSetting_ = 0;
    double currentPerf_ = 0.0;
    bool acceptedInPass_ = false;
    int passes_ = 0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_STRATEGY_HILLCLIMB_H_
