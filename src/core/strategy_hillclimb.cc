#include "strategy_hillclimb.h"

namespace pupil::core {

HillClimbStrategy::HillClimbStrategy(const StrategyOptions& options)
    : maxPasses_(options.hillMaxPasses > 0 ? options.hillMaxPasses : 1)
{
}

void
HillClimbStrategy::begin(StrategyHost& host, double now)
{
    (void)host;
    (void)now;
    phase_ = Phase::kBaseline;
    idx_ = 0;
    prevSetting_ = 0;
    currentPerf_ = 0.0;
    acceptedInPass_ = false;
    passes_ = 0;
}

bool
HillClimbStrategy::probeNext(StrategyHost& host, double now)
{
    const std::vector<Resource>& order = host.order();
    while (true) {
        if (idx_ >= order.size()) {
            // End of an explore pass: nothing accepted means a local
            // optimum; otherwise climb again from the first resource.
            if (!acceptedInPass_)
                return true;
            if (++passes_ >= maxPasses_)
                return true;
            idx_ = 0;
            acceptedInPass_ = false;
            continue;
        }
        const Resource& r = order[idx_];
        const int setting = r.setting(host.config());
        if (setting < r.settings() - 1) {
            prevSetting_ = setting;
            host.setResource(idx_, setting + 1, now);
            phase_ = Phase::kProbe;
            return false;
        }
        ++idx_;
    }
}

bool
HillClimbStrategy::stepDown(StrategyHost& host, double now)
{
    const std::vector<Resource>& order = host.order();
    // The order puts coarse knobs first and the finest (DVFS when walked)
    // last, so repair trims from the back -- the smallest power step that
    // can bring the point under the cap.
    for (size_t i = order.size(); i-- > 0;) {
        const int setting = order[i].setting(host.config());
        if (setting > 0) {
            host.setResource(i, setting - 1, now);
            phase_ = Phase::kRepair;
            return false;
        }
    }
    // Everything already at its lowest setting: nowhere left to go.
    return true;
}

bool
HillClimbStrategy::step(StrategyHost& host, double perfF, double powerF,
                        double now)
{
    switch (phase_) {
      case Phase::kBaseline: {
        if (host.checkPower() && powerF > host.capWatts())
            return stepDown(host, now);
        currentPerf_ = perfF;
        idx_ = 0;
        acceptedInPass_ = false;
        return probeNext(host, now);
      }

      case Phase::kRepair: {
        if (host.checkPower() && powerF > host.capWatts())
            return stepDown(host, now);
        // Back under budget: climb from here.
        currentPerf_ = perfF;
        idx_ = 0;
        acceptedInPass_ = false;
        return probeNext(host, now);
      }

      case Phase::kProbe: {
        const double ratio =
            currentPerf_ > 0.0 ? perfF / currentPerf_ : 0.0;
        const bool improved =
            perfF >= currentPerf_ * (1.0 + host.perfEpsilon());
        const bool feasible =
            !host.checkPower() || powerF <= host.capWatts();
        if (improved && feasible) {
            // Exploit: commit the step and keep riding this resource.
            host.emitAccept(ratio, powerF, int32_t(idx_),
                            host.order()[idx_].setting(host.config()), now);
            currentPerf_ = perfF;
            acceptedInPass_ = true;
            return probeNext(host, now);
        }
        // Explore: revert and move on to the next resource.
        host.setResource(idx_, prevSetting_, now);
        host.emitReject(ratio, powerF, int32_t(idx_), prevSetting_, now);
        ++idx_;
        return probeNext(host, now);
      }
    }
    return false;
}

std::string
HillClimbStrategy::phaseName() const
{
    switch (phase_) {
      case Phase::kBaseline: return "hc-baseline";
      case Phase::kProbe: return "hc-probe";
      case Phase::kRepair: return "hc-repair";
    }
    return "?";
}

}  // namespace pupil::core
