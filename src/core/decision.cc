#include "decision.h"

#include <cassert>
#include <cmath>

namespace pupil::core {

DecisionWalker::DecisionWalker(std::vector<Resource> order,
                               const Options& options)
    : order_(std::move(order)),
      options_(options),
      perfFilter_(size_t(options.windowSamples)),
      powerFilter_(size_t(options.windowSamples)),
      perfHealth_(options.perfHealth),
      powerHealth_(options.powerHealth)
{
}

void
DecisionWalker::start(const machine::MachineConfig& initial, double capWatts,
                      double now)
{
    initial_ = initial;
    cap_ = capWatts;
    cfg_ = initial;
    dirty_ = true;
    resourceIdx_ = 0;
    phase_ = order_.empty() ? Phase::kMonitor : Phase::kBaseline;
    waitUntil_ = now + options_.settleExtraSec;
    perfFilter_.reset();
    powerFilter_.reset();
    ++walkCount_;
    walkStartedAt_ = now;
    trace::emit(trace_, now, trace::EventKind::kWalkStart, capWatts, 0.0,
                walkCount_);
    if (phase_ == Phase::kMonitor)
        enterMonitor(now);
}

bool
DecisionWalker::takeConfigDirty()
{
    const bool was = dirty_;
    dirty_ = false;
    return was;
}

void
DecisionWalker::setResource(const Resource& r, int settingIndex, double now)
{
    if (r.setting(cfg_) == settingIndex)
        return;
    r.apply(cfg_, settingIndex);
    dirty_ = true;
    waitUntil_ = now + r.delaySec() + options_.settleExtraSec;
    perfFilter_.reset();
    powerFilter_.reset();
    trace::emit(trace_, now, trace::EventKind::kConfigTry, 0.0, 0.0,
                int32_t(resourceIdx_), settingIndex);
}

void
DecisionWalker::advanceResource(double now)
{
    ++resourceIdx_;
    perfFilter_.reset();
    powerFilter_.reset();
    if (resourceIdx_ >= order_.size()) {
        enterMonitor(now);
    } else {
        phase_ = Phase::kBaseline;
    }
}

void
DecisionWalker::enterMonitor(double now)
{
    phase_ = Phase::kMonitor;
    monitorSince_ = now;
    baselinePerf_ = 0.0;  // captured from the first full monitor window
    ++convergedCount_;
    trace::emit(trace_, now, trace::EventKind::kWalkConverged,
                now - walkStartedAt_, 0.0, steps_);
}

void
DecisionWalker::addSample(double perf, double power, double now)
{
    if (phase_ == Phase::kIdle)
        return;
    // Watchdog first: staleness tracking must see every sample, including
    // those discarded while settling.
    const bool perfOk = perfHealth_.accept(perf);
    const bool powerOk = powerHealth_.accept(power);
    if (now < waitUntil_)
        return;
    if (!perfOk || !powerOk) {
        // Implausible or stuck reading: better to stall the walk than to
        // decide on garbage. PUPiL's degradation machine (and hardware
        // caps) covers the stall; software-only governors simply freeze.
        ++samplesRejected_;
        trace::emit(trace_, now, trace::EventKind::kSampleRejected, perf,
                    power);
        return;
    }
    perfFilter_.add(perf);
    powerFilter_.add(power);
    if (!perfFilter_.full())
        return;
    const double perfF = perfFilter_.filtered();
    const double powerF = powerFilter_.filtered();
    ++steps_;
    trace::emit(trace_, now, trace::EventKind::kWalkStep, perfF, powerF,
                int(phase_));

    switch (phase_) {
      case Phase::kIdle:
        break;

      case Phase::kBaseline: {
        const Resource& r = order_[resourceIdx_];
        perfOld_ = perfF;
        savedSetting_ = r.setting(cfg_);
        if (savedSetting_ == r.settings() - 1) {
            // Already at the highest setting; nothing to test.
            advanceResource(now);
            break;
        }
        setResource(r, r.settings() - 1, now);
        phase_ = Phase::kAfterSet;
        break;
      }

      case Phase::kAfterSet: {
        const Resource& r = order_[resourceIdx_];
        const double speedup = perfOld_ > 0.0 ? perfF / perfOld_ : 0.0;
        if (perfF < perfOld_ * (1.0 + options_.perfEpsilon)) {
            // No improvement: return the resource to its lowest setting.
            setResource(r, savedSetting_, now);
            trace::emit(trace_, now, trace::EventKind::kConfigReject,
                        speedup, powerF, int32_t(resourceIdx_),
                        savedSetting_);
            advanceResource(now);
        } else if (options_.checkPower && powerF > cap_) {
            // Improved but over budget: binary-search the highest setting
            // that respects the cap. savedSetting_ was under the cap.
            binaryLo_ = savedSetting_;
            binaryHi_ = r.settings() - 2;
            if (binaryLo_ > binaryHi_) {
                setResource(r, savedSetting_, now);
                trace::emit(trace_, now, trace::EventKind::kConfigAccept,
                            speedup, powerF, int32_t(resourceIdx_),
                            savedSetting_);
                advanceResource(now);
                break;
            }
            binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
            setResource(r, binaryMid_, now);
            phase_ = Phase::kBinaryProbe;
        } else {
            // Keep the highest setting: performance improved and the cap
            // (when software-checked) holds.
            trace::emit(trace_, now, trace::EventKind::kConfigAccept,
                        speedup, powerF, int32_t(resourceIdx_),
                        r.setting(cfg_));
            advanceResource(now);
        }
        break;
      }

      case Phase::kBinaryProbe: {
        const Resource& r = order_[resourceIdx_];
        if (powerF > cap_)
            binaryHi_ = binaryMid_ - 1;
        else
            binaryLo_ = binaryMid_;
        const double speedup = perfOld_ > 0.0 ? perfF / perfOld_ : 0.0;
        if (binaryLo_ >= binaryHi_) {
            setResource(r, binaryLo_, now);
            trace::emit(trace_, now, trace::EventKind::kConfigAccept,
                        speedup, powerF, int32_t(resourceIdx_), binaryLo_);
            advanceResource(now);
            break;
        }
        binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
        if (binaryMid_ == r.setting(cfg_)) {
            // Probe already measured (can happen when lo == mid).
            binaryLo_ = binaryMid_;
            if (binaryLo_ >= binaryHi_) {
                setResource(r, binaryLo_, now);
                trace::emit(trace_, now, trace::EventKind::kConfigAccept,
                            speedup, powerF, int32_t(resourceIdx_),
                            binaryLo_);
                advanceResource(now);
                break;
            }
            binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
        }
        setResource(r, binaryMid_, now);
        break;
      }

      case Phase::kMonitor: {
        if (baselinePerf_ <= 0.0) {
            baselinePerf_ = perfF;
            break;
        }
        if (now - monitorSince_ < options_.monitorCooldownSec)
            break;
        const bool perfDrift =
            std::fabs(perfF - baselinePerf_) >
            options_.driftThreshold * baselinePerf_;
        const bool powerViolation =
            options_.checkPower && powerF > cap_ * 1.03;
        if (perfDrift || powerViolation) {
            // Persistent change: the workload has moved; walk again.
            start(initial_, cap_, now);
        }
        break;
      }
    }
}

std::string
DecisionWalker::phaseName() const
{
    switch (phase_) {
      case Phase::kIdle: return "idle";
      case Phase::kBaseline: return "baseline";
      case Phase::kAfterSet: return "after-set";
      case Phase::kBinaryProbe: return "binary-probe";
      case Phase::kMonitor: return "monitor";
    }
    return "?";
}

}  // namespace pupil::core
