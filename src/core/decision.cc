#include "decision.h"

#include <cmath>

namespace pupil::core {

DecisionWalker::DecisionWalker(std::vector<Resource> order,
                               const Options& options)
    : order_(std::move(order)),
      options_(options),
      strategy_(makeStrategy(options.strategy)),
      perfFilter_(size_t(options.windowSamples)),
      powerFilter_(size_t(options.windowSamples)),
      perfHealth_(options.perfHealth),
      powerHealth_(options.powerHealth)
{
}

void
DecisionWalker::start(const machine::MachineConfig& initial, double capWatts,
                      double now)
{
    initial_ = initial;
    cap_ = capWatts;
    cfg_ = initial;
    dirty_ = true;
    waitUntil_ = now + options_.settleExtraSec;
    perfFilter_.reset();
    powerFilter_.reset();
    ++walkCount_;
    walkStartedAt_ = now;
    trace::emit(trace_, now, trace::EventKind::kWalkStart, capWatts, 0.0,
                walkCount_);
    if (order_.empty()) {
        // Nothing to walk: monitor the initial configuration. A walk that
        // never took a decision step is not a convergence, so neither
        // convergedCount_ nor kWalkConverged fires here.
        state_ = State::kMonitor;
        monitorSince_ = now;
        baselinePerf_ = 0.0;
        return;
    }
    state_ = State::kWalking;
    strategy_->begin(*this, now);
}

bool
DecisionWalker::takeConfigDirty()
{
    const bool was = dirty_;
    dirty_ = false;
    return was;
}

void
DecisionWalker::setResource(size_t resourceIdx, int settingIndex, double now)
{
    const Resource& r = order_[resourceIdx];
    if (r.setting(cfg_) == settingIndex)
        return;
    r.apply(cfg_, settingIndex);
    dirty_ = true;
    waitUntil_ = now + r.delaySec() + options_.settleExtraSec;
    perfFilter_.reset();
    powerFilter_.reset();
    trace::emit(trace_, now, trace::EventKind::kConfigTry, 0.0, 0.0,
                int32_t(resourceIdx), settingIndex);
}

void
DecisionWalker::applyTarget(const machine::MachineConfig& target, double now)
{
    double maxDelay = 0.0;
    bool changed = false;
    for (size_t i = 0; i < order_.size(); ++i) {
        const Resource& r = order_[i];
        const int setting = r.setting(target);
        if (r.setting(cfg_) == setting)
            continue;
        r.apply(cfg_, setting);
        changed = true;
        if (r.delaySec() > maxDelay)
            maxDelay = r.delaySec();
        trace::emit(trace_, now, trace::EventKind::kConfigTry, 0.0, 0.0,
                    int32_t(i), setting);
    }
    if (!changed)
        return;
    dirty_ = true;
    // One settle window for the whole jump, paced by the slowest knob.
    waitUntil_ = now + maxDelay + options_.settleExtraSec;
    perfFilter_.reset();
    powerFilter_.reset();
}

void
DecisionWalker::emitAccept(double speedup, double powerWatts, int32_t i0,
                           int32_t i1, double now)
{
    trace::emit(trace_, now, trace::EventKind::kConfigAccept, speedup,
                powerWatts, i0, i1);
}

void
DecisionWalker::emitReject(double ratio, double powerWatts, int32_t i0,
                           int32_t i1, double now)
{
    trace::emit(trace_, now, trace::EventKind::kConfigReject, ratio,
                powerWatts, i0, i1);
}

void
DecisionWalker::enterMonitor(double now)
{
    state_ = State::kMonitor;
    monitorSince_ = now;
    baselinePerf_ = 0.0;  // captured from the first full monitor window
    ++convergedCount_;
    lastWalkDurationSec_ = now - walkStartedAt_;
    trace::emit(trace_, now, trace::EventKind::kWalkConverged,
                now - walkStartedAt_, 0.0, steps_);
}

void
DecisionWalker::addSample(double perf, double power, double now)
{
    if (state_ == State::kIdle)
        return;
    // Watchdog first: staleness tracking must see every sample, including
    // those discarded while settling.
    const bool perfOk = perfHealth_.accept(perf);
    const bool powerOk = powerHealth_.accept(power);
    if (now < waitUntil_)
        return;
    if (!perfOk || !powerOk) {
        // Implausible or stuck reading: better to stall the walk than to
        // decide on garbage. PUPiL's degradation machine (and hardware
        // caps) covers the stall; software-only governors simply freeze.
        ++samplesRejected_;
        trace::emit(trace_, now, trace::EventKind::kSampleRejected, perf,
                    power);
        return;
    }
    perfFilter_.add(perf);
    powerFilter_.add(power);
    if (!perfFilter_.full())
        return;
    const double perfF = perfFilter_.filtered();
    const double powerF = powerFilter_.filtered();
    ++steps_;
    trace::emit(trace_, now, trace::EventKind::kWalkStep, perfF, powerF,
                state_ == State::kMonitor ? kMonitorPhaseId
                                          : strategy_->phaseId());

    if (state_ == State::kWalking) {
        const bool done = strategy_->step(*this, perfF, powerF, now);
        // Every decision consumes its window: the next one measures fresh
        // (the filters also reset inside setResource/applyTarget; the
        // monitor phase, by contrast, keeps its sliding window).
        perfFilter_.reset();
        powerFilter_.reset();
        if (done)
            enterMonitor(now);
        return;
    }

    // State::kMonitor.
    if (baselinePerf_ <= 0.0) {
        baselinePerf_ = perfF;
        return;
    }
    if (now - monitorSince_ < options_.monitorCooldownSec)
        return;
    const bool perfDrift = std::fabs(perfF - baselinePerf_) >
                           options_.driftThreshold * baselinePerf_;
    const bool powerViolation =
        options_.checkPower && powerF > cap_ * 1.03;
    if (perfDrift || powerViolation) {
        // Persistent change: the workload has moved; walk again.
        start(initial_, cap_, now);
    }
}

std::string
DecisionWalker::phaseName() const
{
    switch (state_) {
      case State::kIdle: return "idle";
      case State::kWalking: return strategy_->phaseName();
      case State::kMonitor: return "monitor";
    }
    return "?";
}

}  // namespace pupil::core
