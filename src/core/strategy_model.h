#ifndef PUPIL_CORE_STRATEGY_MODEL_H_
#define PUPIL_CORE_STRATEGY_MODEL_H_

#include <vector>

#include "capping/regression.h"
#include "core/strategy.h"

namespace pupil::core {

/**
 * Model-guided search (FastCap-style, PAPERS.md): instead of walking the
 * configuration space one measured step at a time, spend a handful of
 * measurements on a fixed probe design (the initial point, each resource
 * alone at its highest setting, all resources at mid level, all at max),
 * fit capping::ConfigRegression models for performance and power, and
 * jump straight to the predicted-best configuration whose predicted power
 * clears cap * modelMargin.
 *
 * Predictions are never trusted on their own -- the linear power model
 * systematically under-predicts at high clocks (paper Section 4.4) -- so
 * every candidate is verified by measurement: a measured violation feeds
 * the sample back into the fit, re-ranks the remaining candidates, and
 * tries the next one. The walk commits to the best configuration that was
 * actually measured under the cap.
 */
class ModelGuidedStrategy : public DecisionStrategy
{
  public:
    explicit ModelGuidedStrategy(const StrategyOptions& options);

    const char* name() const override { return "model-guided"; }
    void begin(StrategyHost& host, double now) override;
    bool step(StrategyHost& host, double perfF, double powerF,
              double now) override;
    int phaseId() const override { return int(phase_); }
    std::string phaseName() const override;

  private:
    enum class Phase { kProbe = 1, kVerify = 2 };

    /** Fit/refit models and re-rank the untried candidate configs. */
    void rankCandidates(StrategyHost& host);

    /** Commit the best measured-feasible config; always ends the walk. */
    bool commitBest(StrategyHost& host, double now);

    int maxCandidates_;
    double margin_;

    Phase phase_ = Phase::kProbe;
    std::vector<machine::MachineConfig> plan_;
    size_t planIdx_ = 0;
    std::vector<machine::MachineConfig> sampleCfgs_;
    std::vector<double> samplePerf_;
    std::vector<double> samplePower_;
    std::vector<machine::MachineConfig> tried_;
    std::vector<machine::MachineConfig> candidates_;
    int candidatesTried_ = 0;
    int feasibleVerified_ = 0;
    bool haveBest_ = false;
    machine::MachineConfig bestCfg_;
    double bestPerf_ = 0.0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_STRATEGY_MODEL_H_
