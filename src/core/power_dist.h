#ifndef PUPIL_CORE_POWER_DIST_H_
#define PUPIL_CORE_POWER_DIST_H_

#include <array>

#include "machine/config.h"
#include "machine/power_model.h"

namespace pupil::core {

/** Policy for splitting a total power cap across the two sockets. */
enum class PowerDistPolicy {
    /** cap/2 to each socket, RAPL's implicit default. */
    kEvenSplit,
    /**
     * PUPiL's policy (Section 3.3.2): each socket receives its estimated
     * static power plus a share of the remaining dynamic budget
     * proportional to the number of cores it is running.
     */
    kCoreProportional,
};

/**
 * Split @p capWatts across sockets for configuration @p cfg under
 * @p policy. The shares always sum to the total cap. With the
 * core-proportional policy an inactive socket receives exactly its idle
 * static draw -- even under a tight cap, where only the active sockets
 * are shrunk -- so an asymmetric configuration (e.g. one socket at 8
 * cores, one off) concentrates the dynamic budget where the threads are.
 */
std::array<double, 2> splitCap(const machine::PowerModel& powerModel,
                               const machine::MachineConfig& cfg,
                               double capWatts, PowerDistPolicy policy);

/** Policy name for benchmark tables. */
const char* policyName(PowerDistPolicy policy);

}  // namespace pupil::core

#endif  // PUPIL_CORE_POWER_DIST_H_
