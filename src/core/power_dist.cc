#include "power_dist.h"

#include <algorithm>

namespace pupil::core {

std::array<double, 2>
splitCap(const machine::PowerModel& powerModel,
         const machine::MachineConfig& cfg, double capWatts,
         PowerDistPolicy policy)
{
    if (policy == PowerDistPolicy::kEvenSplit)
        return {capWatts / 2.0, capWatts / 2.0};

    const std::array<double, 2> staticPower = {
        powerModel.staticSocketPower(cfg, 0),
        powerModel.staticSocketPower(cfg, 1),
    };
    const double totalStatic = staticPower[0] + staticPower[1];
    const double dynamicBudget = std::max(0.0, capWatts - totalStatic);

    const double totalCores = std::max(1, cfg.totalCores());
    std::array<double, 2> caps = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
        const double share = double(cfg.activeCores(s)) / totalCores;
        caps[s] = staticPower[s] + dynamicBudget * share;
    }
    // If the cap cannot even cover static power, shrink proportionally so
    // the shares still sum to the cap (RAPL will duty-cycle).
    if (totalStatic > capWatts && totalStatic > 0.0) {
        const double scale = capWatts / totalStatic;
        for (double& c : caps)
            c *= scale;
    }
    return caps;
}

const char*
policyName(PowerDistPolicy policy)
{
    return policy == PowerDistPolicy::kEvenSplit ? "even-split"
                                                 : "core-proportional";
}

}  // namespace pupil::core
