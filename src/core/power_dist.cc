#include "power_dist.h"

#include <algorithm>

namespace pupil::core {

std::array<double, 2>
splitCap(const machine::PowerModel& powerModel,
         const machine::MachineConfig& cfg, double capWatts,
         PowerDistPolicy policy)
{
    if (policy == PowerDistPolicy::kEvenSplit)
        return {capWatts / 2.0, capWatts / 2.0};

    const std::array<double, 2> staticPower = {
        powerModel.staticSocketPower(cfg, 0),
        powerModel.staticSocketPower(cfg, 1),
    };

    // A socket with no active cores draws its package-sleep floor no
    // matter what cap it is given: budget above the floor is stranded and
    // a cap below it is unenforceable. Reserve exactly that floor and
    // re-donate everything else to the sockets actually running cores.
    double idleStatic = 0.0;
    double activeStatic = 0.0;
    for (int s = 0; s < 2; ++s) {
        if (cfg.activeCores(s) > 0)
            activeStatic += staticPower[s];
        else
            idleStatic += staticPower[s];
    }

    std::array<double, 2> caps = {0.0, 0.0};
    const double activeBudget = capWatts - idleStatic;
    if (activeBudget <= 0.0) {
        // Degenerate: the cap cannot even cover the idle floors. Split
        // proportionally to static draw (RAPL will duty-cycle).
        const double totalStatic =
            std::max(idleStatic + activeStatic, 1e-12);
        for (int s = 0; s < 2; ++s)
            caps[s] = capWatts * staticPower[s] / totalStatic;
        return caps;
    }

    const double dynamicBudget = std::max(0.0, activeBudget - activeStatic);
    const double totalCores = std::max(1, cfg.totalCores());
    for (int s = 0; s < 2; ++s) {
        if (cfg.activeCores(s) == 0) {
            caps[s] = staticPower[s];
            continue;
        }
        const double share = double(cfg.activeCores(s)) / totalCores;
        caps[s] = staticPower[s] + dynamicBudget * share;
    }
    // Tight cap: the active sockets' static power alone exceeds what is
    // left after the idle floors. Shrink only the active sockets so the
    // shares still sum to the cap (RAPL will duty-cycle them).
    if (activeStatic > activeBudget) {
        const double scale = activeBudget / activeStatic;
        for (int s = 0; s < 2; ++s) {
            if (cfg.activeCores(s) > 0)
                caps[s] *= scale;
        }
    }
    return caps;
}

const char*
policyName(PowerDistPolicy policy)
{
    return policy == PowerDistPolicy::kEvenSplit ? "even-split"
                                                 : "core-proportional";
}

}  // namespace pupil::core
