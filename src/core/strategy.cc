#include "strategy.h"

#include "core/strategy_binary.h"
#include "core/strategy_hillclimb.h"
#include "core/strategy_model.h"
#include "core/strategy_random.h"

namespace pupil::core {

const char*
strategyName(StrategyKind kind)
{
    switch (kind) {
      case StrategyKind::kBinarySearch: return "binary-search";
      case StrategyKind::kHillClimb: return "hill-climb";
      case StrategyKind::kModelGuided: return "model-guided";
      case StrategyKind::kRandomRestart: return "random-restart";
    }
    return "?";
}

const std::vector<StrategyKind>&
allStrategyKinds()
{
    static const std::vector<StrategyKind> kinds = {
        StrategyKind::kBinarySearch,
        StrategyKind::kHillClimb,
        StrategyKind::kModelGuided,
        StrategyKind::kRandomRestart,
    };
    return kinds;
}

bool
parseStrategyKind(const std::string& text, StrategyKind* kind)
{
    for (const StrategyKind candidate : allStrategyKinds()) {
        if (text == strategyName(candidate)) {
            *kind = candidate;
            return true;
        }
    }
    return false;
}

std::unique_ptr<DecisionStrategy>
makeStrategy(const StrategyOptions& options)
{
    switch (options.kind) {
      case StrategyKind::kBinarySearch:
        return std::make_unique<BinarySearchStrategy>();
      case StrategyKind::kHillClimb:
        return std::make_unique<HillClimbStrategy>(options);
      case StrategyKind::kModelGuided:
        return std::make_unique<ModelGuidedStrategy>(options);
      case StrategyKind::kRandomRestart:
        return std::make_unique<RandomRestartStrategy>(options);
    }
    return nullptr;
}

}  // namespace pupil::core
