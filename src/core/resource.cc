#include "resource.h"

#include <cassert>

namespace pupil::core {

Resource::Resource(Kind kind, const machine::Topology& topo) : kind_(kind)
{
    switch (kind) {
      case Kind::kCoresPerSocket:
        name_ = "cores per socket";
        settings_ = topo.coresPerSocket;
        delaySec_ = 1.0;
        break;
      case Kind::kSockets:
        name_ = "sockets";
        settings_ = topo.sockets;
        delaySec_ = 1.0;
        break;
      case Kind::kHyperThreading:
        name_ = "hyperthreading";
        settings_ = 2;
        delaySec_ = 1.0;
        break;
      case Kind::kMemControllers:
        name_ = "mem controllers";
        settings_ = topo.memControllers;
        delaySec_ = 1.0;
        break;
      case Kind::kDvfs:
        name_ = "clock speeds";
        settings_ = machine::DvfsTable::kNumPStates;
        delaySec_ = 0.1;
        break;
    }
}

void
Resource::apply(machine::MachineConfig& cfg, int index) const
{
    assert(index >= 0 && index < settings_);
    switch (kind_) {
      case Kind::kCoresPerSocket:
        cfg.coresPerSocket = index + 1;
        break;
      case Kind::kSockets:
        cfg.sockets = index + 1;
        break;
      case Kind::kHyperThreading:
        cfg.hyperthreading = index != 0;
        break;
      case Kind::kMemControllers:
        cfg.memControllers = index + 1;
        break;
      case Kind::kDvfs:
        cfg.setUniformPState(index);
        break;
    }
}

int
Resource::setting(const machine::MachineConfig& cfg) const
{
    switch (kind_) {
      case Kind::kCoresPerSocket: return cfg.coresPerSocket - 1;
      case Kind::kSockets: return cfg.sockets - 1;
      case Kind::kHyperThreading: return cfg.hyperthreading ? 1 : 0;
      case Kind::kMemControllers: return cfg.memControllers - 1;
      case Kind::kDvfs: return cfg.pstate[0];
    }
    return 0;
}

std::vector<Resource>
platformResources(bool includeDvfs)
{
    std::vector<Resource> resources = {
        Resource(Resource::Kind::kCoresPerSocket),
        Resource(Resource::Kind::kSockets),
        Resource(Resource::Kind::kHyperThreading),
        Resource(Resource::Kind::kMemControllers),
    };
    if (includeDvfs)
        resources.emplace_back(Resource::Kind::kDvfs);
    return resources;
}

}  // namespace pupil::core
