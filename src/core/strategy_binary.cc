#include "strategy_binary.h"

namespace pupil::core {

void
BinarySearchStrategy::begin(StrategyHost& host, double now)
{
    (void)host;
    (void)now;
    phase_ = Phase::kBaseline;
    resourceIdx_ = 0;
}

bool
BinarySearchStrategy::advance(StrategyHost& host)
{
    ++resourceIdx_;
    phase_ = Phase::kBaseline;
    return resourceIdx_ >= host.order().size();
}

void
BinarySearchStrategy::forceAfterSetForTest(size_t resourceIdx,
                                           int savedSetting, double perfOld)
{
    resourceIdx_ = resourceIdx;
    savedSetting_ = savedSetting;
    perfOld_ = perfOld;
    phase_ = Phase::kAfterSet;
}

bool
BinarySearchStrategy::step(StrategyHost& host, double perfF, double powerF,
                           double now)
{
    const std::vector<Resource>& order = host.order();
    switch (phase_) {
      case Phase::kBaseline: {
        const Resource& r = order[resourceIdx_];
        perfOld_ = perfF;
        savedSetting_ = r.setting(host.config());
        if (savedSetting_ == r.settings() - 1) {
            // Already at the highest setting; nothing to test.
            return advance(host);
        }
        host.setResource(resourceIdx_, r.settings() - 1, now);
        phase_ = Phase::kAfterSet;
        return false;
      }

      case Phase::kAfterSet: {
        const Resource& r = order[resourceIdx_];
        const double speedup = perfOld_ > 0.0 ? perfF / perfOld_ : 0.0;
        if (perfF < perfOld_ * (1.0 + host.perfEpsilon())) {
            // No improvement: restore the setting measured at baseline
            // (in software mode, the last setting known to hold the cap).
            host.setResource(resourceIdx_, savedSetting_, now);
            host.emitReject(speedup, powerF, int32_t(resourceIdx_),
                            savedSetting_, now);
            return advance(host);
        }
        if (host.checkPower() && powerF > host.capWatts()) {
            // Improved but over budget: binary-search the highest setting
            // that respects the cap. savedSetting_ was under the cap.
            binaryLo_ = savedSetting_;
            binaryHi_ = r.settings() - 2;
            if (binaryLo_ > binaryHi_) {
                // No settings left between the (under-cap) baseline and
                // the over-cap top: the raise is rejected, exactly like
                // the no-improvement revert above. Unreachable through a
                // real walk (the baseline step skips a resource already
                // at its highest setting), kept defensively.
                host.setResource(resourceIdx_, savedSetting_, now);
                host.emitReject(speedup, powerF, int32_t(resourceIdx_),
                                savedSetting_, now);
                return advance(host);
            }
            binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
            host.setResource(resourceIdx_, binaryMid_, now);
            phase_ = Phase::kBinaryProbe;
            return false;
        }
        // Keep the highest setting: performance improved and the cap
        // (when software-checked) holds.
        host.emitAccept(speedup, powerF, int32_t(resourceIdx_),
                        r.setting(host.config()), now);
        return advance(host);
      }

      case Phase::kBinaryProbe: {
        const Resource& r = order[resourceIdx_];
        if (powerF > host.capWatts())
            binaryHi_ = binaryMid_ - 1;
        else
            binaryLo_ = binaryMid_;
        const double speedup = perfOld_ > 0.0 ? perfF / perfOld_ : 0.0;
        if (binaryLo_ >= binaryHi_) {
            host.setResource(resourceIdx_, binaryLo_, now);
            host.emitAccept(speedup, powerF, int32_t(resourceIdx_),
                            binaryLo_, now);
            return advance(host);
        }
        binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
        if (binaryMid_ == r.setting(host.config())) {
            // Probe already measured (can happen when lo == mid).
            binaryLo_ = binaryMid_;
            if (binaryLo_ >= binaryHi_) {
                host.setResource(resourceIdx_, binaryLo_, now);
                host.emitAccept(speedup, powerF, int32_t(resourceIdx_),
                                binaryLo_, now);
                return advance(host);
            }
            binaryMid_ = (binaryLo_ + binaryHi_ + 1) / 2;
        }
        host.setResource(resourceIdx_, binaryMid_, now);
        return false;
      }
    }
    return false;
}

std::string
BinarySearchStrategy::phaseName() const
{
    switch (phase_) {
      case Phase::kBaseline: return "baseline";
      case Phase::kAfterSet: return "after-set";
      case Phase::kBinaryProbe: return "binary-probe";
    }
    return "?";
}

}  // namespace pupil::core
