#ifndef PUPIL_CORE_STRATEGY_BINARY_H_
#define PUPIL_CORE_STRATEGY_BINARY_H_

#include "core/strategy.h"

namespace pupil::core {

/**
 * The paper's decision walk (Algorithm 1), one resource at a time in
 * calibrated order:
 *
 *  1. measure a baseline at the resource's current setting;
 *  2. raise the resource to its highest setting and measure again;
 *  3. if performance dropped, restore the baseline setting; else if the
 *     cap is software-checked and exceeded, binary-search the highest
 *     setting that respects the cap; else keep the highest setting.
 *
 * This is the pre-zoo DecisionWalker's decision logic verbatim -- the
 * event stream it produces through the host is pinned byte-for-byte by
 * the golden-trace tests.
 */
class BinarySearchStrategy : public DecisionStrategy
{
  public:
    const char* name() const override { return "binary-search"; }
    void begin(StrategyHost& host, double now) override;
    bool step(StrategyHost& host, double perfF, double powerF,
              double now) override;
    int phaseId() const override { return int(phase_); }
    std::string phaseName() const override;

    /**
     * Test-only: enter the after-set comparison as if the baseline step
     * had measured @p perfOld with the resource at @p savedSetting. The
     * degenerate over-cap revert (savedSetting == settings() - 1) cannot
     * be reached through a real walk -- the baseline step advances past a
     * resource that is already at its highest setting -- but the branch is
     * kept defensively, and this hook lets the regression test pin its
     * trace kind (a revert must read as kConfigReject).
     */
    void forceAfterSetForTest(size_t resourceIdx, int savedSetting,
                              double perfOld);

  private:
    /** Numbering matches the pre-zoo walker's Phase enum (golden i0s). */
    enum class Phase { kBaseline = 1, kAfterSet = 2, kBinaryProbe = 3 };

    /** Move to the next resource; true when the order is exhausted. */
    bool advance(StrategyHost& host);

    Phase phase_ = Phase::kBaseline;
    size_t resourceIdx_ = 0;
    int savedSetting_ = 0;
    int binaryLo_ = 0;
    int binaryHi_ = 0;
    int binaryMid_ = 0;
    double perfOld_ = 0.0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_STRATEGY_BINARY_H_
