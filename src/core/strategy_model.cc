#include "strategy_model.h"

#include <algorithm>
#include <tuple>

namespace pupil::core {
namespace {

/** Deterministic total order on configs (prediction tie-break). */
std::tuple<int, int, bool, int, int>
configKey(const machine::MachineConfig& cfg)
{
    return {cfg.coresPerSocket, cfg.sockets, cfg.hyperthreading,
            cfg.memControllers, cfg.pstate[0]};
}

bool
contains(const std::vector<machine::MachineConfig>& configs,
         const machine::MachineConfig& cfg)
{
    return std::find(configs.begin(), configs.end(), cfg) != configs.end();
}

/**
 * Every configuration reachable by this walk: the product of the order's
 * resource settings applied to the walk's base configuration (resources
 * outside the order keep their base setting).
 */
std::vector<machine::MachineConfig>
walkSpace(const StrategyHost& host, const machine::MachineConfig& base)
{
    std::vector<machine::MachineConfig> space = {base};
    for (size_t i = 0; i < host.order().size(); ++i) {
        const Resource& r = host.order()[i];
        std::vector<machine::MachineConfig> next;
        next.reserve(space.size() * size_t(r.settings()));
        for (const machine::MachineConfig& cfg : space) {
            for (int s = 0; s < r.settings(); ++s) {
                machine::MachineConfig variant = cfg;
                r.apply(variant, s);
                next.push_back(variant);
            }
        }
        space = std::move(next);
    }
    return space;
}

}  // namespace

ModelGuidedStrategy::ModelGuidedStrategy(const StrategyOptions& options)
    : maxCandidates_(options.modelCandidates > 0 ? options.modelCandidates
                                                 : 1),
      margin_(options.modelMargin)
{
}

void
ModelGuidedStrategy::begin(StrategyHost& host, double now)
{
    (void)now;
    phase_ = Phase::kProbe;
    planIdx_ = 0;
    sampleCfgs_.clear();
    samplePerf_.clear();
    samplePower_.clear();
    tried_.clear();
    candidates_.clear();
    candidatesTried_ = 0;
    feasibleVerified_ = 0;
    haveBest_ = false;
    bestPerf_ = 0.0;

    // The probe design, measured in order: the base point, each resource
    // alone at its highest setting (the calibration pattern), all
    // resources at mid level (curvature), and all at max.
    const machine::MachineConfig base = host.config();
    plan_.clear();
    plan_.push_back(base);
    for (size_t i = 0; i < host.order().size(); ++i) {
        machine::MachineConfig cfg = base;
        host.order()[i].apply(cfg, host.order()[i].settings() - 1);
        if (!contains(plan_, cfg))
            plan_.push_back(cfg);
    }
    machine::MachineConfig mid = base;
    machine::MachineConfig top = base;
    for (size_t i = 0; i < host.order().size(); ++i) {
        host.order()[i].apply(mid, host.order()[i].settings() / 2);
        host.order()[i].apply(top, host.order()[i].settings() - 1);
    }
    if (!contains(plan_, mid))
        plan_.push_back(mid);
    if (!contains(plan_, top))
        plan_.push_back(top);
}

void
ModelGuidedStrategy::rankCandidates(StrategyHost& host)
{
    const capping::ConfigRegression perfModel =
        capping::ConfigRegression::fit(sampleCfgs_, samplePerf_);
    const capping::ConfigRegression powerModel =
        capping::ConfigRegression::fit(sampleCfgs_, samplePower_);

    struct Scored
    {
        machine::MachineConfig cfg;
        double predictedPerf = 0.0;
    };
    std::vector<Scored> scored;
    for (const machine::MachineConfig& cfg :
         walkSpace(host, sampleCfgs_.front())) {
        if (contains(tried_, cfg) || contains(sampleCfgs_, cfg))
            continue;  // its truth is already known
        if (host.checkPower() &&
            powerModel.predict(cfg) > host.capWatts() * margin_)
            continue;
        scored.push_back({cfg, perfModel.predict(cfg)});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                  if (a.predictedPerf != b.predictedPerf)
                      return a.predictedPerf > b.predictedPerf;
                  return configKey(a.cfg) < configKey(b.cfg);
              });
    candidates_.clear();
    const int room = maxCandidates_ - candidatesTried_;
    for (int i = 0; i < room && i < int(scored.size()); ++i)
        candidates_.push_back(scored[size_t(i)].cfg);
}

bool
ModelGuidedStrategy::commitBest(StrategyHost& host, double now)
{
    if (haveBest_) {
        host.applyTarget(bestCfg_, now);
        host.emitAccept(bestPerf_, 0.0, -1, feasibleVerified_, now);
        return true;
    }
    // Nothing ever measured under the cap (the base point included):
    // retreat to the all-lowest corner, the least this walk can draw.
    machine::MachineConfig floor = host.config();
    for (size_t i = 0; i < host.order().size(); ++i)
        host.order()[i].apply(floor, 0);
    host.applyTarget(floor, now);
    return true;
}

bool
ModelGuidedStrategy::step(StrategyHost& host, double perfF, double powerF,
                          double now)
{
    const bool feasible = !host.checkPower() || powerF <= host.capWatts();
    switch (phase_) {
      case Phase::kProbe: {
        sampleCfgs_.push_back(host.config());
        samplePerf_.push_back(perfF);
        samplePower_.push_back(powerF);
        if (feasible && (!haveBest_ || perfF > bestPerf_)) {
            haveBest_ = true;
            bestCfg_ = host.config();
            bestPerf_ = perfF;
        }
        if (++planIdx_ < plan_.size()) {
            host.applyTarget(plan_[planIdx_], now);
            return false;
        }
        rankCandidates(host);
        if (candidates_.empty())
            return commitBest(host, now);
        phase_ = Phase::kVerify;
        host.applyTarget(candidates_.front(), now);
        return false;
      }

      case Phase::kVerify: {
        const machine::MachineConfig candidate = host.config();
        tried_.push_back(candidate);
        ++candidatesTried_;
        const double ratio = bestPerf_ > 0.0 ? perfF / bestPerf_ : 0.0;
        if (feasible) {
            host.emitAccept(ratio, powerF, -1, candidatesTried_, now);
            ++feasibleVerified_;
            if (!haveBest_ || perfF > bestPerf_) {
                haveBest_ = true;
                bestCfg_ = candidate;
                bestPerf_ = perfF;
            }
            // Two measured-feasible candidates are enough to stop trusting
            // the model ranking and commit the better one.
            if (feasibleVerified_ >= 2 ||
                candidatesTried_ >= maxCandidates_)
                return commitBest(host, now);
        } else {
            // The model under-predicted this point's power (the paper's
            // Soft-Modeling failure mode). Feed the violation back into
            // the fit and re-rank what is left.
            host.emitReject(ratio, powerF, -1, candidatesTried_, now);
            sampleCfgs_.push_back(candidate);
            samplePerf_.push_back(perfF);
            samplePower_.push_back(powerF);
            if (candidatesTried_ >= maxCandidates_)
                return commitBest(host, now);
            rankCandidates(host);
            if (candidates_.empty())
                return commitBest(host, now);
            host.applyTarget(candidates_.front(), now);
            return false;
        }
        // Feasible but not done: advance to the next ranked candidate.
        candidates_.erase(candidates_.begin());
        if (candidates_.empty())
            return commitBest(host, now);
        host.applyTarget(candidates_.front(), now);
        return false;
      }
    }
    return false;
}

std::string
ModelGuidedStrategy::phaseName() const
{
    switch (phase_) {
      case Phase::kProbe: return "model-probe";
      case Phase::kVerify: return "model-verify";
    }
    return "?";
}

}  // namespace pupil::core
