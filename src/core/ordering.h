#ifndef PUPIL_CORE_ORDERING_H_
#define PUPIL_CORE_ORDERING_H_

#include <vector>

#include "core/resource.h"
#include "machine/power_model.h"
#include "sched/scheduler.h"
#include "workload/app_model.h"

namespace pupil::core {

/** One row of the calibration report (the paper's Table 2). */
struct OrderingEntry
{
    Resource resource;
    double maxSpeedup = 1.0;  ///< perf(highest)/perf(minimal)
    double maxPowerup = 1.0;  ///< power(highest)/power(minimal)
};

/** Result of Algorithm 2: resources ordered by measured impact. */
struct OrderingReport
{
    /** Entries sorted by descending speedup, DVFS forced last. */
    std::vector<OrderingEntry> entries;

    /** The ordered resource list to feed into the decision walker. */
    std::vector<Resource> orderedResources(bool includeDvfs) const;
};

/**
 * Algorithm 2: ordering resources in calibration.
 *
 * Starting from the minimal configuration, each non-DVFS resource is
 * individually raised to its highest setting while running a well
 * understood, embarrassingly parallel calibration benchmark; the measured
 * speedup determines the resource's precedence (higher impact first).
 * DVFS is appended last by construction -- it is the fine-grained knob used
 * to trim power at the end of the walk. The calibration is performed once
 * per platform; the paper finds the resulting order is insensitive to the
 * application actually controlled later.
 */
OrderingReport calibrateOrdering(
    const sched::Scheduler& scheduler,
    const machine::PowerModel& powerModel,
    const workload::AppParams& calibrationApp);

}  // namespace pupil::core

#endif  // PUPIL_CORE_ORDERING_H_
