#include "ordering.h"

#include <algorithm>

namespace pupil::core {

std::vector<Resource>
OrderingReport::orderedResources(bool includeDvfs) const
{
    std::vector<Resource> ordered;
    for (const OrderingEntry& entry : entries) {
        if (entry.resource.kind() == Resource::Kind::kDvfs && !includeDvfs)
            continue;
        ordered.push_back(entry.resource);
    }
    return ordered;
}

OrderingReport
calibrateOrdering(const sched::Scheduler& scheduler,
                  const machine::PowerModel& powerModel,
                  const workload::AppParams& calibrationApp)
{
    const machine::MachineConfig minimal = machine::minimalConfig();
    const std::vector<sched::AppDemand> apps = {
        {&calibrationApp, machine::defaultTopology().totalContexts()}};

    auto evaluate = [&](const machine::MachineConfig& cfg, double& perf,
                        double& power) {
        const sched::SystemOutcome out =
            scheduler.solve(cfg, {1.0, 1.0}, apps);
        perf = out.apps[0].itemsPerSec;
        power = powerModel.totalPower(cfg, out.loads);
    };

    double perfMin = 0.0;
    double powerMin = 0.0;
    evaluate(minimal, perfMin, powerMin);

    OrderingReport report;
    for (const Resource& resource : platformResources(true)) {
        machine::MachineConfig cfg = minimal;
        resource.apply(cfg, resource.settings() - 1);
        double perf = 0.0;
        double power = 0.0;
        evaluate(cfg, perf, power);
        report.entries.push_back(
            {resource, perf / perfMin, power / powerMin});
    }

    // Sort non-DVFS entries by descending speedup; DVFS is pinned last.
    std::stable_sort(report.entries.begin(), report.entries.end(),
                     [](const OrderingEntry& a, const OrderingEntry& b) {
                         const bool aDvfs =
                             a.resource.kind() == Resource::Kind::kDvfs;
                         const bool bDvfs =
                             b.resource.kind() == Resource::Kind::kDvfs;
                         if (aDvfs != bDvfs)
                             return bDvfs;  // non-DVFS before DVFS
                         if (aDvfs)
                             return false;
                         return a.maxSpeedup > b.maxSpeedup;
                     });
    return report;
}

}  // namespace pupil::core
