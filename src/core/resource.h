#ifndef PUPIL_CORE_RESOURCE_H_
#define PUPIL_CORE_RESOURCE_H_

#include <string>
#include <vector>

#include "machine/config.h"

namespace pupil::core {

/**
 * One configurable resource the decision framework can tune.
 *
 * A resource exposes an ordered set of settings (index 0 = lowest /
 * weakest, settings()-1 = highest / strongest) and knows how to read and
 * write itself in a MachineConfig. Each resource carries its actuation
 * delay r.d (paper Algorithms 1 and 2: "wait r.d time units") so the
 * walker never measures before an action has taken effect.
 */
class Resource
{
  public:
    enum class Kind {
        kCoresPerSocket,
        kSockets,
        kHyperThreading,
        kMemControllers,
        kDvfs,
    };

    Resource(Kind kind, const machine::Topology& topo =
                            machine::defaultTopology());

    Kind kind() const { return kind_; }

    /** Human-readable name, e.g. "cores per socket". */
    const std::string& name() const { return name_; }

    /** Number of settings. */
    int settings() const { return settings_; }

    /** Actuation delay before effects are observable (seconds). */
    double delaySec() const { return delaySec_; }

    /** Write setting @p index (0-based) into @p cfg. */
    void apply(machine::MachineConfig& cfg, int index) const;

    /** Read this resource's current setting index from @p cfg. */
    int setting(const machine::MachineConfig& cfg) const;

  private:
    Kind kind_;
    std::string name_;
    int settings_;
    double delaySec_;
};

/**
 * The resources of the modelled platform, in an arbitrary (unordered)
 * sequence. @p includeDvfs false omits the clock-speed resource (PUPiL
 * leaves voltage/frequency to the RAPL hardware).
 */
std::vector<Resource> platformResources(bool includeDvfs);

}  // namespace pupil::core

#endif  // PUPIL_CORE_RESOURCE_H_
