#ifndef PUPIL_CORE_DECISION_H_
#define PUPIL_CORE_DECISION_H_

#include <string>
#include <vector>

#include "core/resource.h"
#include "machine/config.h"
#include "telemetry/filter.h"
#include "telemetry/health.h"
#include "trace/trace.h"

namespace pupil::core {

/**
 * The decision framework of the paper (Algorithm 1), written as a
 * non-blocking state machine fed by periodic (performance, power) samples.
 *
 * Starting from the minimal resource configuration, the walker takes each
 * resource in calibrated order (Algorithm 2), measures baseline feedback,
 * raises the resource to its highest setting, waits the resource's
 * actuation delay, and measures again:
 *  - if performance dropped, the resource returns to its lowest setting;
 *  - else if power exceeds the cap (software-only mode), a binary search
 *    finds the highest setting that respects the cap;
 *  - else the highest setting is kept.
 *
 * In hybrid (PUPiL) mode power checks are disabled -- RAPL hardware owns
 * the cap -- and the DVFS resource is excluded from the walk.
 *
 * After the walk converges the walker keeps monitoring the filtered
 * feedback; a persistent drift (workload phase change) or a power
 * violation triggers a fresh walk, implementing the paper's continually
 * repeating observe-decide-act loop.
 *
 * Measurements pass through the paper's 3-sigma outlier filter over a
 * sliding window, so transient disturbances do not trigger decisions.
 */
class DecisionWalker
{
  public:
    struct Options
    {
        /** Samples per measurement window (GetFeedback granularity). */
        int windowSamples = 20;
        /** Enforce the power cap in software (false for PUPiL). */
        bool checkPower = true;
        /**
         * Relative margin for the "performance dropped" test. Algorithm 1
         * returns a resource to its lowest setting only when performance
         * *decreased*; a flat result keeps the highest setting (power
         * checks or RAPL rein it in). The margin is slightly negative so
         * sensor noise cannot masquerade as a decrease.
         */
        double perfEpsilon = -0.01;
        /** Relative drift that re-triggers a walk while monitoring. */
        double driftThreshold = 0.5;
        /** Extra settle time after any configuration write (seconds). */
        double settleExtraSec = 0.5;
        /** Minimum time between convergence and a drift-triggered walk. */
        double monitorCooldownSec = 30.0;
        /**
         * Stale-sample watchdog and sanity bounds on the feedback
         * channels: implausible or stuck readings are rejected before
         * they reach the filters, so a dead power meter stalls the walk
         * instead of steering it (see src/faults/). On healthy channels
         * no sample is ever rejected and behaviour is unchanged.
         *
         * Staleness is off by default (limit 0): the exact-repeat test
         * only makes sense on noisy sensor streams, and walkers are also
         * driven directly from noiseless model evaluations in tests.
         * Governors sampling platform telemetry turn it on.
         */
        telemetry::HealthOptions powerHealth{0.5, 2000.0, 0, 10, 0.25};
        telemetry::HealthOptions perfHealth{1e-9, 1e9, 0, 10, 0.25};
    };

    DecisionWalker(std::vector<Resource> order, const Options& options);

    /** Begin a walk from @p initial under @p capWatts at time @p now. */
    void start(const machine::MachineConfig& initial, double capWatts,
               double now);

    /**
     * Feed one sample pair. Samples arriving before the current actuation
     * delay has elapsed are discarded (the "wait r.d time units" step).
     */
    void addSample(double perf, double power, double now);

    /** The configuration the walker currently wants applied. */
    const machine::MachineConfig& config() const { return cfg_; }

    /** True once after each configuration change (consumed). */
    bool takeConfigDirty();

    /** Whether the walk has finished and the walker is monitoring. */
    bool converged() const { return phase_ == Phase::kMonitor; }

    /** Number of walks started (>1 means phase-change re-walks). */
    int walkCount() const { return walkCount_; }

    /**
     * Number of walks that reached convergence (entered monitoring).
     * The perf-regression bench divides this by wall time to report
     * walker-convergence throughput.
     */
    int convergedCount() const { return convergedCount_; }

    /** Number of measurement windows consumed (decision steps). */
    int stepsTaken() const { return steps_; }

    /** Samples rejected by the telemetry watchdog (after settling). */
    uint64_t samplesRejected() const { return samplesRejected_; }

    /** Whether both feedback channels currently look healthy. */
    bool telemetryHealthy() const
    {
        return perfHealth_.healthy() && powerHealth_.healthy();
    }

    /** Name of the current phase (diagnostics). */
    std::string phaseName() const;

    /**
     * Attach a structured-event recorder (null detaches). The walker
     * emits walk-start/step, config-try and accept/reject (with the
     * speedup estimate that justified the decision), convergence, and
     * watchdog rejections. Purely observational: no decision, filter, or
     * RNG state depends on whether a recorder is attached.
     */
    void attachTrace(trace::Recorder* recorder) { trace_ = recorder; }

  private:
    enum class Phase { kIdle, kBaseline, kAfterSet, kBinaryProbe, kMonitor };

    void setResource(const Resource& r, int settingIndex, double now);
    void advanceResource(double now);
    void enterMonitor(double now);

    std::vector<Resource> order_;
    Options options_;

    machine::MachineConfig cfg_;
    machine::MachineConfig initial_;
    double cap_ = 1e9;
    bool dirty_ = false;

    Phase phase_ = Phase::kIdle;
    size_t resourceIdx_ = 0;
    int savedSetting_ = 0;
    int binaryLo_ = 0;
    int binaryHi_ = 0;
    int binaryMid_ = 0;
    double perfOld_ = 0.0;
    double waitUntil_ = 0.0;
    double monitorSince_ = 0.0;
    double baselinePerf_ = 0.0;
    int walkCount_ = 0;
    int convergedCount_ = 0;
    int steps_ = 0;

    telemetry::SigmaFilter perfFilter_;
    telemetry::SigmaFilter powerFilter_;
    telemetry::HealthMonitor perfHealth_;
    telemetry::HealthMonitor powerHealth_;
    uint64_t samplesRejected_ = 0;
    trace::Recorder* trace_ = nullptr;
    double walkStartedAt_ = 0.0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_DECISION_H_
