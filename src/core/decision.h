#ifndef PUPIL_CORE_DECISION_H_
#define PUPIL_CORE_DECISION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/resource.h"
#include "core/strategy.h"
#include "machine/config.h"
#include "telemetry/filter.h"
#include "telemetry/health.h"
#include "trace/trace.h"

namespace pupil::core {

/**
 * The decision framework of the paper (Algorithm 1), written as a
 * non-blocking driver fed by periodic (performance, power) samples.
 *
 * The driver owns everything common to every decision discipline: the
 * 3-sigma measurement filters, the telemetry watchdog, the actuation-delay
 * settle windows, the trace emission, and the post-convergence monitor
 * that re-triggers a walk on persistent drift (workload phase change) or
 * a power violation -- the paper's continually repeating
 * observe-decide-act loop.
 *
 * *Which* configuration to try next is delegated to a DecisionStrategy
 * (Options::strategy selects one from the zoo, default the paper's
 * per-resource binary search): once per settled measurement window the
 * strategy receives the filtered feedback and mutates the configuration
 * through the StrategyHost seam until it reports convergence.
 *
 * In hybrid (PUPiL) mode power checks are disabled -- RAPL hardware owns
 * the cap -- and the DVFS resource is excluded from the walk.
 */
class DecisionWalker : private StrategyHost
{
  public:
    struct Options
    {
        /** Samples per measurement window (GetFeedback granularity). */
        int windowSamples = 20;
        /** Enforce the power cap in software (false for PUPiL). */
        bool checkPower = true;
        /**
         * Relative margin for the "performance dropped" test. Algorithm 1
         * returns a resource to its lowest setting only when performance
         * *decreased*; a flat result keeps the highest setting (power
         * checks or RAPL rein it in). The margin is slightly negative so
         * sensor noise cannot masquerade as a decrease.
         */
        double perfEpsilon = -0.01;
        /** Relative drift that re-triggers a walk while monitoring. */
        double driftThreshold = 0.5;
        /** Extra settle time after any configuration write (seconds). */
        double settleExtraSec = 0.5;
        /** Minimum time between convergence and a drift-triggered walk. */
        double monitorCooldownSec = 30.0;
        /** Decision discipline walking the configuration space. */
        StrategyOptions strategy;
        /**
         * Stale-sample watchdog and sanity bounds on the feedback
         * channels: implausible or stuck readings are rejected before
         * they reach the filters, so a dead power meter stalls the walk
         * instead of steering it (see src/faults/). On healthy channels
         * no sample is ever rejected and behaviour is unchanged.
         *
         * Staleness is off by default (limit 0): the exact-repeat test
         * only makes sense on noisy sensor streams, and walkers are also
         * driven directly from noiseless model evaluations in tests.
         * Governors sampling platform telemetry turn it on.
         */
        telemetry::HealthOptions powerHealth{0.5, 2000.0, 0, 10, 0.25};
        telemetry::HealthOptions perfHealth{1e-9, 1e9, 0, 10, 0.25};
    };

    DecisionWalker(std::vector<Resource> order, const Options& options);

    /** Begin a walk from @p initial under @p capWatts at time @p now. */
    void start(const machine::MachineConfig& initial, double capWatts,
               double now);

    /**
     * Feed one sample pair. Samples arriving before the current actuation
     * delay has elapsed are discarded (the "wait r.d time units" step).
     */
    void addSample(double perf, double power, double now);

    /** The configuration the walker currently wants applied. */
    const machine::MachineConfig& config() const override { return cfg_; }

    /** True once after each configuration change (consumed). */
    bool takeConfigDirty();

    /** Whether the walk has finished and the walker is monitoring. */
    bool converged() const { return state_ == State::kMonitor; }

    /** Number of walks started (>1 means phase-change re-walks). */
    int walkCount() const { return walkCount_; }

    /**
     * Number of walks that reached convergence (entered monitoring) after
     * at least one decision step. A walk over an empty resource order goes
     * straight to monitoring but is *not* counted -- nothing was decided,
     * so nothing converged.
     *
     * The perf-regression bench divides this by wall time to report
     * walker-convergence throughput.
     */
    int convergedCount() const { return convergedCount_; }

    /** Number of measurement windows consumed (decision steps). */
    int stepsTaken() const { return steps_; }

    /** Samples rejected by the telemetry watchdog (after settling). */
    uint64_t samplesRejected() const { return samplesRejected_; }

    /** Whether both feedback channels currently look healthy. */
    bool telemetryHealthy() const
    {
        return perfHealth_.healthy() && powerHealth_.healthy();
    }

    /** strategyName() of the discipline driving this walker's walks. */
    const char* strategyName() const { return strategy_->name(); }

    /**
     * Duration of the most recent walk that reached convergence, in
     * simulated seconds (0 until the first convergence). The tournament
     * bench reports this as per-strategy convergence time.
     */
    double lastWalkDurationSec() const { return lastWalkDurationSec_; }

    /** Name of the current phase (diagnostics). */
    std::string phaseName() const;

    /**
     * Attach a structured-event recorder (null detaches). The walker
     * emits walk-start/step, config-try and accept/reject (with the
     * speedup estimate that justified the decision), convergence, and
     * watchdog rejections. Purely observational: no decision, filter, or
     * RNG state depends on whether a recorder is attached.
     */
    void attachTrace(trace::Recorder* recorder) { trace_ = recorder; }

  private:
    /**
     * Driver state around the strategy: kWalkStep events record the
     * strategy's phaseId() while walking and kMonitorPhaseId afterwards,
     * preserving the pre-zoo walker's phase numbering on the wire.
     */
    enum class State { kIdle, kWalking, kMonitor };
    static constexpr int kMonitorPhaseId = 4;

    // StrategyHost seam (the strategy's view of this driver).
    const std::vector<Resource>& order() const override { return order_; }
    double capWatts() const override { return cap_; }
    bool checkPower() const override { return options_.checkPower; }
    double perfEpsilon() const override { return options_.perfEpsilon; }
    void setResource(size_t resourceIdx, int settingIndex,
                     double now) override;
    void applyTarget(const machine::MachineConfig& target,
                     double now) override;
    void emitAccept(double speedup, double powerWatts, int32_t i0,
                    int32_t i1, double now) override;
    void emitReject(double ratio, double powerWatts, int32_t i0, int32_t i1,
                    double now) override;

    void enterMonitor(double now);

    std::vector<Resource> order_;
    Options options_;
    std::unique_ptr<DecisionStrategy> strategy_;

    machine::MachineConfig cfg_;
    machine::MachineConfig initial_;
    double cap_ = 1e9;
    bool dirty_ = false;

    State state_ = State::kIdle;
    double waitUntil_ = 0.0;
    double monitorSince_ = 0.0;
    double baselinePerf_ = 0.0;
    int walkCount_ = 0;
    int convergedCount_ = 0;
    int steps_ = 0;
    double lastWalkDurationSec_ = 0.0;

    telemetry::SigmaFilter perfFilter_;
    telemetry::SigmaFilter powerFilter_;
    telemetry::HealthMonitor perfHealth_;
    telemetry::HealthMonitor powerHealth_;
    uint64_t samplesRejected_ = 0;
    trace::Recorder* trace_ = nullptr;
    double walkStartedAt_ = 0.0;
};

}  // namespace pupil::core

#endif  // PUPIL_CORE_DECISION_H_
